// Dynamicmapping: implements the paper's future-work proposal (§7): instead
// of mapping threads to pipelines once from an offline profile, re-evaluate
// the §2.1 heuristic periodically on *observed* cache-miss behaviour and
// migrate threads whose ranking changed. Migration squashes the thread's
// in-flight work and pays a drain penalty, so the interval trades
// adaptivity against overhead.
package main

import (
	"fmt"
	"log"

	"hdsmt/internal/config"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("4W7") // crafty, perlbmk, mcf, bzip2 (MIX)
	opt := sim.Options{Budget: 20_000, Warmup: 8_000}

	fmt.Printf("workload %s: %v on %s\n\n", w.Name, w.Benchmarks, cfg.Name)
	fmt.Printf("%-10s %10s %10s %12s\n", "interval", "static", "dynamic", "migrations")

	for _, interval := range []uint64{512, sim.DefaultRemapInterval, 8_192} {
		r, err := sim.RunDynamic(cfg, w, interval, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %10.3f %10.3f %12d\n", interval, r.StaticIPC, r.DynamicIPC, r.Migrations)
	}
	fmt.Println("\nstatic = one-shot profile-guided mapping (§2.1);")
	fmt.Println("dynamic = same heuristic re-run on observed misses (§7 future work).")
}
