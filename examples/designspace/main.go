// Designspace: sweeps one workload across all six evaluated
// microarchitectures (Fig. 3) and prints raw IPC next to IPC per mm² —
// the paper's complexity-effectiveness comparison in miniature. The
// monolithic M8 usually wins raw IPC; the heterogeneous configurations win
// once area enters the metric.
package main

import (
	"fmt"
	"log"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	w := workload.MustByName("4W6") // gzip, twolf, bzip2, mcf (MIX)
	opt := sim.Options{Budget: 15_000, Warmup: 8_000}

	fmt.Printf("workload %s: %v\n\n", w.Name, w.Benchmarks)
	fmt.Printf("%-14s %10s %10s %12s %9s\n", "config", "area mm²", "IPC", "IPC/mm²", "mapping")

	for _, cfg := range config.EvaluatedMicroarchs() {
		var m mapping.Mapping
		var err error
		if cfg.Monolithic {
			m = make(mapping.Mapping, w.Threads())
		} else {
			m, err = sim.HeuristicMapping(cfg, w)
			if err != nil {
				log.Fatal(err)
			}
		}
		r, err := sim.Run(cfg, w, m, opt)
		if err != nil {
			log.Fatal(err)
		}
		a := area.MustTotal(cfg)
		fmt.Printf("%-14s %10.2f %10.3f %12.5f   %v\n", cfg.Name, a, r.IPC, r.IPC/a, m)
	}
}
