// Quickstart: build an hdSMT processor, run a two-thread workload with the
// paper's heuristic mapping, and print IPC — the minimal end-to-end use of
// the library.
package main

import (
	"fmt"
	"log"

	"hdsmt/internal/config"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	// A heterogeneous hdSMT: two 4-wide pipelines plus two 2-wide ones.
	cfg := config.MustParse("2M4+2M2")

	// 2W7 from the paper's Table 2: gzip (cache friendly, high ILP)
	// co-scheduled with twolf (memory bound).
	w := workload.MustByName("2W7")

	// The §2.1 profile-guided policy maps threads to pipelines by their
	// profiled data-cache miss counts.
	m, err := sim.HeuristicMapping(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heuristic mapping for %v: %v\n", w.Benchmarks, m)

	r, err := sim.Run(cfg, w, m, sim.Options{Budget: 30_000, Warmup: 10_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config %s, policy %s\n", r.Config, r.Policy)
	fmt.Printf("combined IPC %.3f over %d cycles\n", r.IPC, r.Cycles)
	for i, name := range w.Benchmarks {
		fmt.Printf("  %-8s pipeline %d: IPC %.3f\n", name, m[i], r.PerThreadIPC[i])
	}
}
