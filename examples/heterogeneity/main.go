// Heterogeneity: demonstrates why the thread-to-pipeline mapping is "a
// prime concern" (paper §7). The same four-thread mixed workload runs on
// the same heterogeneous hdSMT under every distinct mapping; the spread
// between the best, the §2.1 heuristic, and the worst shows how much of the
// machine's potential the mapping policy controls.
package main

import (
	"fmt"
	"log"

	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("4W6") // gzip, twolf, bzip2, mcf (MIX)
	opt := sim.Options{Budget: 10_000, Warmup: 5_000}

	fmt.Printf("workload %s: %v on %s\n\n", w.Name, w.Benchmarks, cfg.Name)

	// Enumerate every distinct thread-to-pipeline mapping and run each.
	all := mapping.Enumerate(cfg, w.Threads())
	fmt.Printf("distinct mappings: %d\n", len(all))
	type scored struct {
		m   mapping.Mapping
		ipc float64
	}
	var results []scored
	for _, m := range all {
		r, err := sim.Run(cfg, w, m, opt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{m, r.IPC})
	}

	best, worst := results[0], results[0]
	for _, s := range results[1:] {
		if s.ipc > best.ipc {
			best = s
		}
		if s.ipc < worst.ipc {
			worst = s
		}
	}

	hm, err := sim.HeuristicMapping(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	hr, err := sim.Run(cfg, w, hm, opt)
	if err != nil {
		log.Fatal(err)
	}

	describe := func(label string, m mapping.Mapping, ipc float64) {
		fmt.Printf("%-6s IPC %.3f  mapping %v:", label, ipc, m)
		for i, p := range m {
			fmt.Printf("  %s->%s", w.Benchmarks[i], cfg.Pipelines[p].Name)
		}
		fmt.Println()
	}
	describe("BEST", best.m, best.ipc)
	describe("HEUR", hm, hr.IPC)
	describe("WORST", worst.m, worst.ipc)
	fmt.Printf("\nheuristic accuracy: %.1f%% of oracle; worst mapping loses %.1f%%\n",
		100*hr.IPC/best.ipc, 100*(1-worst.ipc/best.ipc))
}
