// Fetchpolicy: compares the paper's fetch policies — plain ICOUNT 2.8,
// FLUSH (ICOUNT plus L2-miss flush/stall, the baseline's policy) and
// L1MCOUNT (the multipipeline policy) — on a monolithic SMT running a mixed
// workload where a memory-bound thread can clog shared resources.
package main

import (
	"fmt"
	"log"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/fetch"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	cfg := config.MustParse("M8")
	w := workload.MustByName("2W7") // gzip + twolf: ILP vs MEM contention
	specs, err := sim.Specs(w)
	if err != nil {
		log.Fatal(err)
	}

	policies := []fetch.Policy{fetch.ICount{}, fetch.Flush{}, fetch.L1MCount{}}
	fmt.Printf("workload %s (%v) on %s\n\n", w.Name, w.Benchmarks, cfg.Name)
	fmt.Printf("%-10s %8s %10s %10s %8s\n", "policy", "IPC", "gzip", "twolf", "flushes")

	for _, pol := range policies {
		p, err := core.New(cfg, specs, []int{0, 0},
			core.WithPolicy(pol), core.WithWarmup(10_000))
		if err != nil {
			log.Fatal(err)
		}
		r, err := p.Run(30_000)
		if err != nil {
			log.Fatal(err)
		}
		flushes := uint64(0)
		for _, st := range r.Threads {
			flushes += st.Flushes
		}
		fmt.Printf("%-10s %8.3f %10.3f %10.3f %8d\n",
			pol.Name(), r.IPC, r.PerThreadIPC[0], r.PerThreadIPC[1], flushes)
	}
	fmt.Println("\nFLUSH frees shared resources whenever twolf misses the L2,")
	fmt.Println("which is why the paper's baseline adopts it (§4).")
}
