module hdsmt

go 1.24
