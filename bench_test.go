// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation. Each benchmark
// regenerates its artifact at a scaled budget and reports the headline
// quantities as custom metrics (b.ReportMetric), so `go test -bench=.`
// reproduces the paper's rows and series. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison at the default scale.
package repro_test

import (
	"testing"

	"hdsmt/internal/area"
	"hdsmt/internal/bench"
	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/metrics"
	"hdsmt/internal/perf"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

// benchOptions keeps `go test -bench=.` affordable on one core while
// preserving comparative shape; cmd/experiments runs bigger budgets.
func benchOptions() sim.Options {
	return sim.Options{Budget: 4_000, Warmup: 2_500, OracleBudget: 2_000, MaxOracle: 24}
}

// BenchmarkTable1Config regenerates the Table 1 parameter set (a pure
// configuration check; the benchmark measures construction cost).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := config.DefaultSimParams()
		if p.FetchWidth != 8 || p.ROBPerThread != 256 {
			b.Fatal("Table 1 defaults corrupted")
		}
	}
}

// BenchmarkFig2aModels regenerates the pipeline model table.
func BenchmarkFig2aModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := config.Models()
		if len(ms) != 4 {
			b.Fatal("model count")
		}
	}
	b.ReportMetric(float64(config.M8.Width), "M8-width")
	b.ReportMetric(float64(config.M2.Width), "M2-width")
}

// BenchmarkFig2bArea regenerates the per-model area bars.
func BenchmarkFig2bArea(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		for _, m := range config.Models() {
			bd, err := area.SinglePipelineProcessor(m)
			if err != nil {
				b.Fatal(err)
			}
			total = bd.Total()
		}
	}
	m8, _ := area.SinglePipelineProcessor(config.M8)
	m2, _ := area.SinglePipelineProcessor(config.M2)
	b.ReportMetric(m8.Total(), "M8-mm2")
	b.ReportMetric(m2.Total(), "M2-mm2")
	_ = total
}

// BenchmarkFig3Area regenerates the configuration areas and their deltas
// against the baseline.
func BenchmarkFig3Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range config.EvaluatedMicroarchs() {
			if _, err := area.Total(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	d1, _ := area.DeltaVsBaseline(config.MustParse("2M4+2M2"))
	d2, _ := area.DeltaVsBaseline(config.MustParse("3M4"))
	b.ReportMetric(100*d1, "2M4+2M2-delta-pct")
	b.ReportMetric(100*d2, "3M4-delta-pct")
}

// BenchmarkTables23Workloads regenerates the workload tables.
func BenchmarkTables23Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(workload.All()) != 22 {
			b.Fatal("workload table corrupted")
		}
	}
	b.ReportMetric(float64(len(workload.Select(2, workload.MEM))), "2T-MEM-workloads")
}

// figureBench runs one Fig. 4 sub-figure and reports the overall harmonic
// means (Fig. 4) and per-area values (Fig. 5) of the baseline and the best
// heterogeneous configuration.
func figureBench(b *testing.B, t workload.Type) {
	var fig sim.FigResult
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = sim.RunFigure(t, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	m8 := fig.Values["M8"]["HMEAN"]
	hd := fig.Values["2M4+2M2"]["HMEAN"]
	b.ReportMetric(m8.Heur, "M8-IPC")
	b.ReportMetric(hd.Heur, "2M4+2M2-IPC")
	pa, err := fig.PerArea()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(1000*pa.Values["M8"]["HMEAN"].Heur, "M8-mIPC/mm2")
	b.ReportMetric(1000*pa.Values["2M4+2M2"]["HMEAN"].Heur, "2M4+2M2-mIPC/mm2")
}

// BenchmarkFig4aILP regenerates Fig. 4(a)/5(a): ILP workloads.
func BenchmarkFig4aILP(b *testing.B) { figureBench(b, workload.ILP) }

// BenchmarkFig4bMEM regenerates Fig. 4(b)/5(b): MEM workloads.
func BenchmarkFig4bMEM(b *testing.B) { figureBench(b, workload.MEM) }

// BenchmarkFig4cMIX regenerates Fig. 4(c)/5(c): MIX workloads.
func BenchmarkFig4cMIX(b *testing.B) { figureBench(b, workload.MIX) }

// BenchmarkHeadline reproduces the §5 summary: perf/area improvements of
// hdSMT over monolithic and homogeneous SMT, raw-IPC relation, and
// heuristic accuracy.
func BenchmarkHeadline(b *testing.B) {
	var s sim.Summary
	for i := 0; i < b.N; i++ {
		figs := map[workload.Type]sim.FigResult{}
		for _, t := range workload.Types() {
			fig, err := sim.RunFigure(t, benchOptions())
			if err != nil {
				b.Fatal(err)
			}
			figs[t] = fig
		}
		var err error
		s, err = sim.Summarize(figs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*s.PerfAreaVsMonolithic, "PA-vs-mono-pct")
	b.ReportMetric(100*s.PerfAreaVsHomogeneous, "PA-vs-homo-pct")
	b.ReportMetric(100*s.RawPerfMonoVsHd, "rawIPC-mono-vs-hd-pct")
	if acc, ok := s.HeurAccuracy["2M4+2M2"]; ok {
		b.ReportMetric(100*acc, "HEUR-acc-2M4+2M2-pct")
	}
}

// BenchmarkMappingOracle measures the oracle search on the configuration
// the paper discusses most (2M4+2M2 with a 4-thread MIX workload).
func BenchmarkMappingOracle(b *testing.B) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("4W6")
	for i := 0; i < b.N; i++ {
		m, err := sim.Evaluate(cfg, w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if m.Best < m.Worst {
			b.Fatal("oracle inverted")
		}
	}
}

// BenchmarkHeuristicMapping measures the §2.1 policy itself (profiles are
// memoized after the first run, as in an offline profiling setup).
func BenchmarkHeuristicMapping(b *testing.B) {
	cfg := config.MustParse("1M6+2M4+2M2")
	w := workload.MustByName("6W3")
	for i := 0; i < b.N; i++ {
		m, err := sim.HeuristicMapping(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		if err := mapping.Validate(cfg, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreStep measures the cycle-level hot path itself: one
// multipipeline processor stepped over a fixed budget, reported as
// simulated MIPS (millions of simulated instructions per wall second) and
// ns per simulated cycle. With b.ReportAllocs the steady-state allocation
// behaviour of step() is visible directly (it must stay at ~0 allocs/op).
func BenchmarkCoreStep(b *testing.B) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("4W6")
	const budget = 20_000
	b.ReportAllocs()
	b.ResetTimer()
	var committed, cycles uint64
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(cfg, w, mapping.Mapping{0, 1, 2, 3}, sim.Options{Budget: budget})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Committed {
			committed += c
		}
		cycles += r.Cycles
	}
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(committed)/secs/1e6, "MIPS")
	b.ReportMetric(secs*1e9/float64(cycles), "ns/cycle")
}

// BenchmarkEvaluateHEUR measures the throughput of the paper's central
// operation — evaluating the §2.1 HEUR mapping on the flagship
// heterogeneous configuration — in simulated MIPS. Like the Fig. 4
// sweeps, it covers one workload of each type (ILP, MEM, MIX), so the
// metric reflects the mix a real evaluation simulates: memory-bound cells
// dominate wall-clock, exactly where idle-cycle fast-forward pays. This
// is the quantity the perf trajectory in BENCH_PR2.json tracks across
// PRs. Profiles are warmed before timing (they are offline, memoized
// inputs to HEUR, not part of the simulation being measured).
func BenchmarkEvaluateHEUR(b *testing.B) {
	cfg := config.MustParse(perf.BasketConfig)
	cells := []struct {
		w workload.Workload
		m mapping.Mapping
	}{}
	for _, name := range perf.BasketWorkloads() {
		w := workload.MustByName(name)
		m, err := sim.HeuristicMapping(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		cells = append(cells, struct {
			w workload.Workload
			m mapping.Mapping
		}{w, m})
	}
	opt := sim.Options{Budget: perf.BasketBudget, Warmup: perf.BasketWarmup, Parallel: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			r, err := sim.Run(cfg, c.w, c.m, opt)
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range r.Committed {
				committed += n
			}
		}
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per second, the practical cost of every experiment above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := config.MustParse("M8")
	w := workload.MustByName("2W1")
	const budget = 20_000
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(cfg, w, mapping.Mapping{0, 0}, sim.Options{Budget: budget})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Committed {
			committed += c
		}
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkProfilePass measures the offline profiling pass feeding HEUR.
func BenchmarkProfilePass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DCacheMisses(bench.MustByName("twolf"), 50_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHMeanAggregation measures the metrics layer (micro).
func BenchmarkHMeanAggregation(b *testing.B) {
	xs := []float64{3.2, 1.1, 0.4, 2.2, 0.9}
	for i := 0; i < b.N; i++ {
		if metrics.HMean(xs) <= 0 {
			b.Fatal("hmean")
		}
	}
}

// BenchmarkAblationRFLatency sweeps the shared-register-file latency
// assumption of §4 (1 vs 2 vs 3 cycles on 2M4+2M2).
func BenchmarkAblationRFLatency(b *testing.B) {
	var a sim.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		a, err = sim.AblateRFLatency(workload.MustByName("2W1"), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.Points[0].IPC, "IPC-1cyc")
	b.ReportMetric(a.Points[1].IPC, "IPC-2cyc")
}

// BenchmarkAblationFetchBuffer sweeps the decoupling buffer sizes of §4.
func BenchmarkAblationFetchBuffer(b *testing.B) {
	var a sim.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		a, err = sim.AblateFetchBuffer(workload.MustByName("2W1"), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.Points[0].IPC, "IPC-smallest")
	b.ReportMetric(a.Points[len(a.Points)-1].IPC, "IPC-largest")
}

// BenchmarkAblationFetchPolicy compares ICOUNT/FLUSH/L1MCOUNT on the
// baseline for a MIX workload (§4's policy assignment).
func BenchmarkAblationFetchPolicy(b *testing.B) {
	var a sim.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		a, err = sim.AblateFetchPolicy(workload.MustByName("2W7"), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range a.Points {
		b.ReportMetric(p.IPC, "IPC-"+p.Label)
	}
}

// BenchmarkMappingPolicies compares the paper's §2.1 heuristic against this
// repository's WidthFit extension (see mapping.WidthFit) on a 6-thread ILP
// workload, where §2.1's private-pipeline rule costs the most.
func BenchmarkMappingPolicies(b *testing.B) {
	cfg := config.MustParse("1M6+2M4+2M2")
	w := workload.MustByName("6W1")
	var heurIPC, wfIPC float64
	for i := 0; i < b.N; i++ {
		hm, err := sim.HeuristicMapping(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		hr, err := sim.Run(cfg, w, hm, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		heurIPC = hr.IPC
		wm, err := sim.WidthFitMapping(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		wr, err := sim.Run(cfg, w, wm, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		wfIPC = wr.IPC
	}
	b.ReportMetric(heurIPC, "IPC-HEUR")
	b.ReportMetric(wfIPC, "IPC-WidthFit")
}

// BenchmarkFairness reports the SMT fairness metrics (weighted speedup,
// harmonic fairness) for the heuristic mapping on a MIX workload — an
// evaluation axis the paper omits.
func BenchmarkFairness(b *testing.B) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("2W7")
	var f sim.FairnessResult
	for i := 0; i < b.N; i++ {
		m, err := sim.HeuristicMapping(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		f, err = sim.Fairness(cfg, w, m, sim.Options{Budget: 8_000, Warmup: 6_000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.WeightedSpeedup, "weighted-speedup")
	b.ReportMetric(f.HarmonicFairness, "harmonic-fairness")
}

// BenchmarkDynamicMapping compares static §2.1 mapping against the §7
// future-work dynamic remapping extension.
func BenchmarkDynamicMapping(b *testing.B) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("4W7")
	var r sim.DynamicResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = sim.RunDynamic(cfg, w, sim.DefaultRemapInterval, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.StaticIPC, "IPC-static")
	b.ReportMetric(r.DynamicIPC, "IPC-dynamic")
	b.ReportMetric(float64(r.Migrations), "migrations")
}

// BenchmarkDesignSpaceExplore measures the extension design-space search
// over small candidates.
func BenchmarkDesignSpaceExplore(b *testing.B) {
	cands, err := sim.CandidateConfigs(2, 0)
	if err != nil {
		b.Fatal(err)
	}
	wls := []workload.Workload{workload.MustByName("2W7")}
	var rs []sim.ExploreResult
	for i := 0; i < b.N; i++ {
		rs, err = sim.Explore(wls, cands, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rs) == 0 || rs[0].Skipped {
		b.Fatal("exploration produced no ranking")
	}
	b.ReportMetric(rs[0].PerArea*1000, "best-mIPC/mm2")
}
