package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/mapping"
	"hdsmt/internal/perf"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

// The sampled-simulation benchmark (BENCH_PR10.json): the perf basket —
// the flagship heterogeneous configuration under its HEUR mappings, one
// workload per class — simulated once exactly and once in sampled mode
// over the same instruction coverage, comparing the estimate against the
// ground truth. The pinned report carries only deterministic quantities
// (IPCs, margins, errors); wall-clock throughput is machine-dependent and
// is printed to stdout instead, like the load generator's latency numbers
// in BENCH_PR8. The harness enforces the acceptance criteria itself, so
// the CI step is a real check: every estimate within its own reported 95%
// interval, worst error ≤ maxErrorPct, measured speedup ≥ minSpeedup.
const (
	// sampledBudget is the measured instructions per thread of the sampled
	// run; units = ceil(budget/Detail) intervals cover units×Period
	// instructions of every thread's stream, and the exact run measures
	// that same coverage.
	sampledBudget = 600_000

	maxErrorPct = 3.0
	minSpeedup  = 10.0
)

// sampledCellEntry compares one workload cell's sampled estimate against
// its exact ground truth.
type sampledCellEntry struct {
	Workload   string  `json:"workload"`
	ExactIPC   float64 `json:"exact_ipc"`
	SampledIPC float64 `json:"sampled_ipc"`
	// IPCMoE is the sampled run's own reported 95% margin of error.
	IPCMoE   float64 `json:"ipc_moe_95"`
	ErrorPct float64 `json:"error_pct"`
	// WithinCI: |sampled − exact| ≤ IPCMoE — the interval kept its promise.
	WithinCI bool `json:"within_ci"`
	Units    int  `json:"units"`
}

// sampledReport is BENCH_PR10.json. Every field is deterministic: two
// generations on any machine produce identical bytes.
type sampledReport struct {
	Name      string   `json:"name"`
	Config    string   `json:"config"`
	Workloads []string `json:"workloads"`

	Period uint64 `json:"period"`
	Detail uint64 `json:"detail"`
	Warm   uint64 `json:"warm"`
	// MeasuredPerThread is the sampled run's measured-instruction budget;
	// CoveredPerThread the stream coverage both runs share.
	MeasuredPerThread uint64 `json:"measured_per_thread"`
	CoveredPerThread  uint64 `json:"covered_per_thread"`
	// DetailedFraction is the detailed-pipeline share of the covered
	// stream, (Warm+Detail)/Period — the lower bound on achievable speedup
	// is roughly its inverse.
	DetailedFraction float64 `json:"detailed_fraction"`

	Cells       []sampledCellEntry `json:"cells"`
	MaxErrorPct float64            `json:"max_error_pct"`
	AllWithinCI bool               `json:"all_within_ci"`

	Criteria struct {
		MaxErrorPct float64 `json:"max_error_pct"`
		MinSpeedup  float64 `json:"min_speedup"`
	} `json:"criteria"`
}

// writeSampledReport runs the basket exactly and sampled, writes the
// deterministic comparison to path, and fails if any acceptance criterion
// (error bound, interval coverage, wall-clock speedup) does not hold.
func writeSampledReport(path string, reps int) error {
	cfg := config.MustParse(perf.BasketConfig)
	sp := core.DefaultSampleParams()
	units := (sampledBudget + sp.Detail - 1) / sp.Detail
	covered := units * sp.Period

	type cell struct {
		w workload.Workload
		m mapping.Mapping
	}
	var cells []cell
	for _, name := range perf.BasketWorkloads() {
		w := workload.MustByName(name)
		m, err := sim.HeuristicMapping(cfg, w) // also warms the profile cache
		if err != nil {
			return err
		}
		cells = append(cells, cell{w, m})
	}

	// Both passes cover units×Period instructions of the leading thread's
	// stream from the same cold start — the sampled run estimates the exact
	// run, transient included, not an idealized steady state. Each pass is
	// timed reps times — the simulation is deterministic, so the extra reps
	// only stabilize the wall clock — and the fastest rep is kept.
	exactOpt := sim.Options{Budget: covered}
	sampledOpt := sim.Options{Budget: sampledBudget, Sample: sp}
	pass := func(opt sim.Options) ([]core.Results, float64, error) {
		var results []core.Results
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			rs := make([]core.Results, 0, len(cells))
			start := time.Now()
			for _, c := range cells {
				r, err := sim.Run(cfg, c.w, c.m, opt)
				if err != nil {
					return nil, 0, err
				}
				rs = append(rs, r)
			}
			wall := time.Since(start).Seconds()
			if rep == 0 || wall < best {
				best = wall
			}
			results = rs
		}
		return results, best, nil
	}

	exact, exactWall, err := pass(exactOpt)
	if err != nil {
		return err
	}
	sampled, sampledWall, err := pass(sampledOpt)
	if err != nil {
		return err
	}

	report := sampledReport{
		Name:              fmt.Sprintf("sampled-HEUR/%s/%v", perf.BasketConfig, perf.BasketWorkloads()),
		Config:            perf.BasketConfig,
		Workloads:         perf.BasketWorkloads(),
		Period:            sp.Period,
		Detail:            sp.Detail,
		Warm:              sp.Warm,
		MeasuredPerThread: sampledBudget,
		CoveredPerThread:  covered,
		DetailedFraction:  float64(sp.Warm+sp.Detail) / float64(sp.Period),
		AllWithinCI:       true,
	}
	report.Criteria.MaxErrorPct = maxErrorPct
	report.Criteria.MinSpeedup = minSpeedup

	var exactInstr uint64
	for i, c := range cells {
		e, s := exact[i], sampled[i]
		for _, n := range e.Committed {
			exactInstr += n
		}
		entry := sampledCellEntry{
			Workload:   c.w.Name,
			ExactIPC:   e.IPC,
			SampledIPC: s.IPC,
			IPCMoE:     s.Sampled.IPCMoE,
			ErrorPct:   100 * abs(s.IPC-e.IPC) / e.IPC,
			WithinCI:   abs(s.IPC-e.IPC) <= s.Sampled.IPCMoE,
			Units:      s.Sampled.Units,
		}
		report.Cells = append(report.Cells, entry)
		if entry.ErrorPct > report.MaxErrorPct {
			report.MaxErrorPct = entry.ErrorPct
		}
		report.AllWithinCI = report.AllWithinCI && entry.WithinCI
		fmt.Printf("sampled: %-4s exact %.4f  sampled %.4f ±%.4f  error %.2f%%  within-CI %v  (%d units)\n",
			c.w.Name, entry.ExactIPC, entry.SampledIPC, entry.IPCMoE, entry.ErrorPct, entry.WithinCI, entry.Units)
	}

	// Simulated MIPS: instructions of the target (exact) run per wall
	// second — the sampled run estimates the same run, so both passes share
	// the numerator and the ratio is the harvest of sampling.
	exactMIPS := float64(exactInstr) / exactWall / 1e6
	sampledMIPS := float64(exactInstr) / sampledWall / 1e6
	speedup := exactWall / sampledWall
	fmt.Printf("sampled: exact %8.3f MIPS   sampled %8.3f MIPS   speedup %.1fx  (detailed fraction %.3f)\n",
		exactMIPS, sampledMIPS, speedup, report.DetailedFraction)

	if report.MaxErrorPct > maxErrorPct {
		return fmt.Errorf("worst IPC error %.2f%% exceeds the %.1f%% criterion", report.MaxErrorPct, maxErrorPct)
	}
	if !report.AllWithinCI {
		return fmt.Errorf("a sampled estimate fell outside its own reported 95%% interval")
	}
	if speedup < minSpeedup {
		return fmt.Errorf("measured speedup %.1fx is below the %.0fx criterion", speedup, minSpeedup)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sampled: report written to %s\n", path)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
