package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"hdsmt/internal/pareto"
	"hdsmt/internal/search"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

// seedEntry is one strategy's simulations-to-optimum record on the small
// space, comparing the ROADMAP's area-normalized issue-width prior against
// the uniform baseline. With one workload on a cold engine, a charged
// evaluation is exactly one executed simulation, so EvalsToOptimum is the
// simulations-to-optimum figure.
type seedEntry struct {
	Strategy     string `json:"strategy"`
	Seeded       bool   `json:"seeded"`
	Budget       int    `json:"budget"`
	Seed         int64  `json:"seed"`
	FoundOptimum bool   `json:"found_optimum"`
	// EvalsToOptimum is the evaluation at which the exhaustive optimum
	// became the incumbent (0 when missed).
	EvalsToOptimum int            `json:"evals_to_optimum"`
	Simulations    uint64         `json:"simulations"`
	Result         *search.Result `json:"result"`
}

// paretoReport is BENCH_PR4.json: the multi-objective front machinery
// exercised end to end — prior-seeded search efficiency on the small
// space, the exhaustive (ipc, area) front of the 20,736-genotype enriched
// space with the scalar optimum pinned onto it, budgeted NSGA-II and
// Pareto-ACO hypervolume trajectories, and per-workload-class
// specialization deltas.
type paretoReport struct {
	Name      string `json:"name"`
	SimBudget uint64 `json:"sim_budget"`
	SimWarmup uint64 `json:"sim_warmup"`

	// Seeding: uniform vs issue-width-prior variants on the small space.
	Seeding struct {
		Workloads  []string    `json:"workloads"`
		Genotypes  int64       `json:"genotypes"`
		Optimum    string      `json:"optimum"` // the exhaustive scalar optimum's name
		Exhaustive int         `json:"exhaustive_evaluations"`
		Entries    []seedEntry `json:"entries"`
	} `json:"seeding"`

	// EnrichedSpace: the exhaustive (ipc, area) front and the budgeted
	// multi-objective strategies on the space exhaustive search was built
	// to dwarf.
	EnrichedSpace struct {
		Workloads []string `json:"workloads"`
		Genotypes int64    `json:"genotypes"`
		// FrontObjectives are the exhaustive front's axes; the budgeted
		// nsga2/paco runs use StrategyObjectives (fairness included), so
		// their hypervolumes are 3-D and not comparable to the front's.
		FrontObjectives    []string                 `json:"front_objectives"`
		StrategyObjectives []string                 `json:"strategy_objectives"`
		ScalarBest         *search.TrajectoryPoint  `json:"scalar_best"`
		OptimumOnFront     bool                     `json:"optimum_on_front"`
		FrontSize          int                      `json:"front_size"`
		Front              []search.TrajectoryPoint `json:"front"`
		NSGA2              *search.Result           `json:"nsga2"`
		PACO               *search.Result           `json:"paco"`
	} `json:"enriched_space"`

	// Specialization: one machine per workload class vs the generic one,
	// over (ipc, area, fairness).
	Specialization *search.SpecializationReport `json:"specialization"`
}

// writeParetoReport runs the multi-objective benchmark. Every claim the CI
// smoke step depends on is asserted here and fails the command loudly:
// non-empty mutually non-dominated fronts, monotone hypervolume
// trajectories, the scalar optimum on the enriched front, and every seeded
// strategy still finding the small-space optimum.
func writeParetoReport(path string, seed int64) error {
	const wlName = "2W7"
	wls := []workload.Workload{workload.MustByName(wlName)}
	simOpt := sim.Options{Budget: 2_000, Warmup: 1_000}
	report := paretoReport{Name: "pareto-front", SimBudget: simOpt.Budget, SimWarmup: simOpt.Warmup}

	// ---- Part 1: prior seeding on the small space -----------------------
	small := search.NewSpace(3, 0, wls)
	small.QueueScales = []int{75, 100, 125}
	small.RemapIntervals = []uint64{0, sim.DefaultRemapInterval}
	report.Seeding.Workloads = []string{wlName}
	report.Seeding.Genotypes = small.Size()

	exh, err := runSearch(small, search.Exhaustive{}, search.Options{Sim: simOpt, Telemetry: obs.reg})
	if err != nil {
		return err
	}
	if exh.Best == nil {
		return fmt.Errorf("exhaustive search found no feasible machine")
	}
	report.Seeding.Optimum = exh.Best.Name()
	report.Seeding.Exhaustive = exh.Evaluations
	budget := exh.Evaluations * 30 / 100
	fmt.Printf("pareto: small-space optimum %s after %d exhaustive evaluations; strategy budget %d\n",
		exh.Best.Name(), exh.Evaluations, budget)

	for _, name := range []string{"hillclimb", "hillclimb-seeded", "aco", "aco-seeded"} {
		st, err := search.ByName(name)
		if err != nil {
			return err
		}
		res, err := runSearch(small, st, search.Options{Budget: budget, Seed: seed, Sim: simOpt, Telemetry: obs.reg})
		if err != nil {
			return err
		}
		entry := seedEntry{Strategy: name, Seeded: strings.HasSuffix(name, "-seeded"),
			Budget: budget, Seed: seed, Simulations: res.Simulations, Result: res}
		if res.Best != nil && res.Best.Config == exh.Best.Config &&
			res.Best.Policy == exh.Best.Policy && res.Best.Remap == exh.Best.Remap {
			entry.FoundOptimum = true
			entry.EvalsToOptimum = res.Best.Evaluations
		}
		report.Seeding.Entries = append(report.Seeding.Entries, entry)
		fmt.Printf("pareto: %-18s optimum=%v after %d evaluations (%d simulations)\n",
			name, entry.FoundOptimum, entry.EvalsToOptimum, res.Simulations)
		if !entry.FoundOptimum {
			got := "(none)"
			if res.Best != nil {
				got = res.Best.Name()
			}
			return fmt.Errorf("%s missed the exhaustive optimum (%s vs %s)", name, got, exh.Best.Name())
		}
	}

	// ---- Part 2: the enriched-space front -------------------------------
	enriched := search.EnrichedSpace(4, 0, wls)
	report.EnrichedSpace.Workloads = []string{wlName}
	report.EnrichedSpace.Genotypes = enriched.Size()
	ipcArea, err := pareto.Parse("ipc,area")
	if err != nil {
		return err
	}
	threeObjs, err := pareto.Parse("ipc,area,fairness")
	if err != nil {
		return err
	}
	report.EnrichedSpace.FrontObjectives = pareto.Keys(ipcArea)
	report.EnrichedSpace.StrategyObjectives = pareto.Keys(threeObjs)

	// One shared runner: the scalar pass simulates every candidate once,
	// the multi-objective pass re-reads the same results from the engine.
	runner, err := sim.NewRunner(obsEngineOptions(0))
	if err != nil {
		return err
	}
	defer runner.Close()
	drv := search.NewDriver(runner)
	scalar, err := drv.Search(context.Background(), enriched, search.Exhaustive{}, search.Options{Sim: simOpt, Telemetry: obs.reg})
	if err != nil {
		return err
	}
	if scalar.Best == nil {
		return fmt.Errorf("enriched exhaustive search found no feasible machine")
	}
	report.EnrichedSpace.ScalarBest = scalar.Best
	mo, err := drv.Search(context.Background(), enriched, search.Exhaustive{}, search.Options{
		Sim: simOpt, Objectives: ipcArea, ArchiveCap: 1 << 12, Telemetry: obs.reg,
	})
	if err != nil {
		return err
	}
	if mo.Simulations != 0 {
		return fmt.Errorf("multi-objective pass executed %d fresh simulations, want 0 (warm engine)", mo.Simulations)
	}
	if len(mo.Front) == 0 {
		return fmt.Errorf("enriched exhaustive front is empty")
	}
	report.EnrichedSpace.FrontSize = len(mo.Front)
	report.EnrichedSpace.Front = mo.Front
	for _, fp := range mo.Front {
		if fp.Config == scalar.Best.Config && fp.Policy == scalar.Best.Policy && fp.Remap == scalar.Best.Remap {
			report.EnrichedSpace.OptimumOnFront = true
		}
	}
	if !report.EnrichedSpace.OptimumOnFront {
		return fmt.Errorf("scalar optimum %s missing from the %d-point enriched front",
			scalar.Best.Name(), len(mo.Front))
	}
	if err := search.CheckFront(ipcArea, mo.Front); err != nil {
		return err
	}
	fmt.Printf("pareto: enriched space (%d genotypes): %d-point (ipc, area) front; scalar optimum %s on it\n",
		enriched.Size(), len(mo.Front), scalar.Best.Name())

	// Budgeted multi-objective strategies on fresh engines, over the full
	// three objectives (fairness prices its alone-run baselines in).
	for _, name := range []string{"nsga2", "paco"} {
		st, err := search.ByName(name)
		if err != nil {
			return err
		}
		res, err := runSearch(enriched, st, search.Options{
			Budget: 48, Seed: seed, Sim: simOpt, Objectives: threeObjs, Telemetry: obs.reg,
		})
		if err != nil {
			return err
		}
		if len(res.Front) == 0 {
			return fmt.Errorf("%s produced an empty front", name)
		}
		if err := search.CheckFront(threeObjs, res.Front); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := assertMonotoneHV(res); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch name {
		case "nsga2":
			report.EnrichedSpace.NSGA2 = res
		case "paco":
			report.EnrichedSpace.PACO = res
		}
		last := res.Hypervolume[len(res.Hypervolume)-1]
		fmt.Printf("pareto: %-6s front %d machines, hypervolume %.2f after %d evaluations\n",
			name, len(res.Front), last.Hypervolume, res.Evaluations)
	}

	// ---- Part 3: per-workload-class specialization ----------------------
	classWls := []workload.Workload{
		workload.MustByName("2W1"), // ILP
		workload.MustByName("2W4"), // MEM
		workload.MustByName("2W7"), // MIX
	}
	spec := search.NewSpace(3, 0, classWls)
	specRunner, err := sim.NewRunner(obsEngineOptions(0))
	if err != nil {
		return err
	}
	defer specRunner.Close()
	rep, err := search.NewDriver(specRunner).Specialize(context.Background(), spec, search.NewNSGA2(),
		search.Options{Budget: 16, Seed: seed, Sim: simOpt, Objectives: threeObjs, Telemetry: obs.reg})
	if err != nil {
		return err
	}
	if len(rep.Classes) != 3 {
		return fmt.Errorf("specialization covered %d classes, want 3", len(rep.Classes))
	}
	report.Specialization = rep
	for _, cf := range rep.Classes {
		if cf.Result.Best == nil {
			return fmt.Errorf("%s specialized search found no feasible machine", cf.Class)
		}
		gen := "(infeasible)"
		if cf.GenericBest != nil {
			gen = fmt.Sprintf("generic %s IPC/mm² %.5f", cf.GenericBest.Name(), cf.GenericBest.Metric("per_area"))
		}
		fmt.Printf("pareto: %s specialized %s IPC/mm² %.5f vs %s (%+.1f%%)\n",
			cf.Class, cf.Result.Best.Name(), cf.Result.Best.Metric("per_area"), gen, 100*cf.PerAreaGain)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("pareto: report written to %s\n", path)
	return nil
}

// runSearch runs one search on a fresh engine, so simulation counts are
// honest (no cross-strategy cache help).
func runSearch(sp search.Space, st search.Strategy, opts search.Options) (*search.Result, error) {
	runner, err := sim.NewRunner(obsEngineOptions(0))
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	return search.NewDriver(runner).Search(context.Background(), sp, st, opts)
}

// assertMonotoneHV verifies the hypervolume trajectory never decreases —
// true whenever the archive never prunes, which these budgets guarantee.
func assertMonotoneHV(res *search.Result) error {
	if len(res.Hypervolume) == 0 {
		return fmt.Errorf("no hypervolume trajectory")
	}
	last := 0.0
	for _, hp := range res.Hypervolume {
		if hp.Hypervolume < last {
			return fmt.Errorf("hypervolume fell from %v to %v at evaluation %d", last, hp.Hypervolume, hp.Evaluations)
		}
		last = hp.Hypervolume
	}
	return nil
}
