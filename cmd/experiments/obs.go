package main

import (
	"fmt"
	"os"
	"time"

	"hdsmt/internal/engine"
	"hdsmt/internal/telemetry"
)

// obs is the process-wide observability state: one registry feeding the
// periodic stderr progress line, and an optional Chrome tracer behind
// -tracepath. Every runner the command builds shares them (through
// obsEngineOptions), so the progress line counts jobs across all sweeps
// and the trace covers every engine job in the run. Wall-clock output
// stays on stderr and in the trace file — the BENCH_PR*.json artifacts
// remain byte-reproducible.
var obs struct {
	reg       *telemetry.Registry
	tracer    *telemetry.Tracer
	rep       *telemetry.Reporter
	tracePath string
	quiet     bool
}

// obsInit wires the run's observability from the -tracepath and -quiet
// flags; call once, right after flag parsing.
func obsInit(tracePath string, quiet bool) {
	obs.reg = telemetry.NewRegistry()
	obs.tracePath = tracePath
	obs.quiet = quiet
	if tracePath != "" {
		obs.tracer = telemetry.NewTracer()
	}
}

// obsEngineOptions is the one way this command builds engine options, so
// no runner can be created without joining the shared registry and trace.
// The progress reporter starts with the first runner — modes that never
// simulate (-list, -area) stay silent.
func obsEngineOptions(workers int) engine.Options {
	if obs.rep == nil && !obs.quiet {
		obs.rep = telemetry.StartReporter(os.Stderr, obs.reg, 5*time.Second)
	}
	return engine.Options{Workers: workers, Telemetry: obs.reg, Tracer: obs.tracer}
}

// obsClose stops the progress reporter (printing its final line) and
// flushes the trace. Runs on the success paths; an os.Exit error path
// loses the trace, which is fine — the run it described failed.
func obsClose() {
	obs.rep.Stop()
	if obs.tracePath == "" {
		return
	}
	if err := obs.tracer.WriteFile(obs.tracePath); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace written to %s (%d events; open in chrome://tracing)\n",
		obs.tracePath, obs.tracer.Len())
}
