// Command experiments regenerates every table and figure of the paper's
// evaluation: the area figures (Fig. 2b, Fig. 3), the IPC comparison
// (Fig. 4a-c), the performance-per-area comparison (Fig. 5a-c) and the §5
// headline summary. Budgets are scaled (the paper simulates 300M
// instructions per thread); pass -budget to change the scale.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/perf"
	"hdsmt/internal/search"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	var (
		budget      = flag.Uint64("budget", 30_000, "measured instructions per thread")
		warmup      = flag.Uint64("warmup", 10_000, "warm-up instructions per thread")
		oracle      = flag.Uint64("oracle", 0, "oracle search budget (0 = same as -budget)")
		maxOracle   = flag.Int("maxoracle", 96, "cap on oracle mappings searched (0 = exhaustive)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		list        = flag.Bool("list", false, "list workloads (Tables 2-3) and exit")
		areaOnly    = flag.Bool("area", false, "print area figures (Fig. 2b, Fig. 3) and exit")
		only        = flag.String("figure", "", "run a single sub-figure: 4a|4b|4c (5a-c derive from the same runs)")
		detail      = flag.Bool("detail", false, "also print per-workload measurements")
		ablate      = flag.Bool("ablate", false, "run the design-choice ablations and exit")
		csvDir      = flag.String("csv", "", "also write per-figure CSV files into this directory")
		perfOut     = flag.String("perf", "", "measure simulator throughput (optimized vs reference stepping), write a perf trajectory report to this JSON file, and exit")
		perfReps    = flag.Int("perfreps", 5, "repetitions per cell for -perf")
		searchOut   = flag.String("search", "", "run the search-efficiency benchmark (metaheuristics vs exhaustive enumeration), write the report to this JSON file, and exit")
		searchSd    = flag.Int64("searchseed", 1, "random seed for -search")
		paretoOut   = flag.String("pareto", "", "run the multi-objective benchmark (fronts, hypervolume trajectories, seeded priors, per-class specialization), write the report to this JSON file, and exit")
		paretoSd    = flag.Int64("paretoseed", 1, "random seed for -pareto")
		sampledOut  = flag.String("sampled", "", "run the sampled-simulation benchmark (systematic sampling vs exact on the HEUR basket: error, interval coverage, speedup), write the report to this JSON file, and exit")
		sampledReps = flag.Int("sampledreps", 3, "timing repetitions per pass for -sampled")
		powerOut    = flag.String("power", "", "run the power-model benchmark (per-machine EPI/ED/ED², the 4-objective ipc/area/fairness/energy front, NSGA-II/PACO hypervolume trajectories), write the report to this JSON file, and exit")
		powerSd     = flag.Int64("powerseed", 1, "random seed for -power")
		powerFull   = flag.Bool("powerfull", false, "run -power at full scale (exhaustive 4-objective front over the whole enriched space; default is the CI-sized short mode)")
		tracePath   = flag.String("tracepath", "", "write a Chrome trace_event JSON of every engine job to this file (open in chrome://tracing or Perfetto)")
		quiet       = flag.Bool("quiet", false, "suppress the periodic progress line on stderr")
	)
	flag.Parse()
	obsInit(*tracePath, *quiet)
	defer obsClose()

	if *list {
		printWorkloads()
		return
	}
	if *perfOut != "" {
		if err := writePerfReport(*perfOut, *perfReps); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *searchOut != "" {
		if err := writeSearchReport(*searchOut, *searchSd); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *paretoOut != "" {
		if err := writeParetoReport(*paretoOut, *paretoSd); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sampledOut != "" {
		if err := writeSampledReport(*sampledOut, *sampledReps); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *powerOut != "" {
		if err := writePowerReport(*powerOut, *powerSd, *powerFull); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	printAreaFigures()
	if *areaOnly {
		return
	}

	opt := sim.Options{Budget: *budget, Warmup: *warmup, OracleBudget: *oracle, MaxOracle: *maxOracle, Parallel: *parallel}

	// One shared runner for every sweep below, so cells common to several
	// figures (and the ablations) are simulated once.
	runner, err := sim.NewRunner(obsEngineOptions(*parallel))
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer runner.Close()
	ctx := context.Background()

	if *ablate {
		as, err := runner.RunAblations(ctx, workload.MustByName("4W6"), opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		for _, a := range as {
			fmt.Println(a.Render())
		}
		return
	}

	types := map[string]workload.Type{"4a": workload.ILP, "4b": workload.MEM, "4c": workload.MIX}
	order := []string{"4a", "4b", "4c"}
	figs := map[workload.Type]sim.FigResult{}
	for _, key := range order {
		if *only != "" && *only != key {
			continue
		}
		t := types[key]
		fmt.Printf("running Fig. %s (%s workloads)...\n", key, t)
		fig, err := runner.RunFigure(ctx, t, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		figs[t] = fig
		fmt.Println(fig.Render())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, key, fig); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
		pa, err := fig.PerArea()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(pa.Render())
		if *detail {
			fmt.Println(fig.RenderPerWorkload())
		}
	}

	if *only == "" && len(figs) == 3 {
		s, err := sim.Summarize(figs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(s.Render())
	}
}

// writeCSVs emits fig<key>.csv (aggregates) and fig<key>_workloads.csv
// (raw measurements) into dir.
func writeCSVs(dir, key string, fig sim.FigResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	agg, err := os.Create(filepath.Join(dir, "fig"+key+".csv"))
	if err != nil {
		return err
	}
	defer agg.Close()
	if err := fig.WriteCSV(agg); err != nil {
		return err
	}
	per, err := os.Create(filepath.Join(dir, "fig"+key+"_workloads.csv"))
	if err != nil {
		return err
	}
	defer per.Close()
	return fig.WritePerWorkloadCSV(per)
}

// writePerfReport measures the perf trajectory: the standard basket
// (perf.BasketConfig × perf.BasketWorkloads, shared with
// BenchmarkEvaluateHEUR) timed on the naive reference stepping path and
// on the optimized (event-driven wakeup + idle fast-forward) path,
// written as a machine-readable report. Both modes produce bit-identical
// simulation results, so the report carries its own machine-independent
// baseline.
func writePerfReport(path string, reps int) error {
	opt := sim.Options{Budget: perf.BasketBudget, Warmup: perf.BasketWarmup, Parallel: 1}
	cfg := config.MustParse(perf.BasketConfig)
	type cell struct {
		w workload.Workload
		m mapping.Mapping
	}
	var cells []cell
	for _, name := range perf.BasketWorkloads() {
		w := workload.MustByName(name)
		m, err := sim.HeuristicMapping(cfg, w) // also warms the profile cache
		if err != nil {
			return err
		}
		cells = append(cells, cell{w, m})
	}

	report := perf.NewReport(fmt.Sprintf("evaluate-HEUR/%s/%v", perf.BasketConfig, perf.BasketWorkloads()))
	for _, mode := range []string{"reference", "optimized"} {
		run := sim.Run
		if mode == "reference" {
			run = sim.RunReference
		}
		s, err := report.Measure("evaluate-HEUR", mode, func() (uint64, uint64, error) {
			var instructions, cycles uint64
			for rep := 0; rep < reps; rep++ {
				for _, c := range cells {
					r, err := run(cfg, c.w, c.m, opt)
					if err != nil {
						return 0, 0, err
					}
					for _, n := range r.Committed {
						instructions += n
					}
					cycles += r.Cycles
				}
			}
			return instructions, cycles, nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("perf: %-10s %8.3f MIPS  %8.1f ns/cycle  %6.3f allocs/cycle\n",
			mode, s.MIPS, s.NsPerCycle, s.AllocsPerCycle)
	}
	report.ComputeSpeedups()
	if sp, ok := report.Speedup["evaluate-HEUR"]; ok {
		fmt.Printf("perf: optimized/reference speedup = %.2fx\n", sp)
	}
	if err := report.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("perf: report written to %s\n", path)
	return nil
}

// searchStrategyEntry is one guided strategy's search-efficiency record.
type searchStrategyEntry struct {
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
	Seed     int64  `json:"seed"`
	// FoundOptimum: the strategy's incumbent equals the exhaustive optimum.
	FoundOptimum bool `json:"found_optimum"`
	// SimulationRatio is this search's executed simulations over the
	// exhaustive baseline's (the simulations-to-optimum criterion: ≤ 0.30).
	SimulationRatio float64        `json:"simulation_ratio"`
	Result          *search.Result `json:"result"`
}

// searchReport is BENCH_PR3.json: search efficiency vs exhaustive
// enumeration on a space small enough to enumerate, plus a budgeted ACO
// trajectory on the enriched space exhaustive search cannot touch.
type searchReport struct {
	Name      string   `json:"name"`
	Workloads []string `json:"workloads"`
	SimBudget uint64   `json:"sim_budget"`
	SimWarmup uint64   `json:"sim_warmup"`

	SmallSpace struct {
		Genotypes  int64                 `json:"genotypes"`
		Candidates int                   `json:"candidates"`
		Exhaustive *search.Result        `json:"exhaustive"`
		Strategies []searchStrategyEntry `json:"strategies"`
	} `json:"small_space"`

	EnrichedSpace struct {
		Genotypes int64          `json:"genotypes"`
		ACO       *search.Result `json:"aco"`
	} `json:"enriched_space"`
}

// writeSearchReport measures search efficiency. Every run uses a fresh
// engine so simulation counts are honest (no cross-strategy cache help);
// the report fails loudly if a guided strategy misses the optimum or
// overspends the 30% criterion, so the CI smoke step is a real check.
func writeSearchReport(path string, seed int64) error {
	const wlName = "2W7"
	wls := []workload.Workload{workload.MustByName(wlName)}
	simOpt := sim.Options{Budget: 2_000, Warmup: 1_000}

	report := searchReport{Name: "search-efficiency", Workloads: []string{wlName},
		SimBudget: simOpt.Budget, SimWarmup: simOpt.Warmup}

	runOn := func(sp search.Space, st search.Strategy, opts search.Options) (*search.Result, error) {
		runner, err := sim.NewRunner(obsEngineOptions(0))
		if err != nil {
			return nil, err
		}
		defer runner.Close()
		return search.NewDriver(runner).Search(context.Background(), sp, st, opts)
	}

	// Small space: every multiset of ≤ 3 pipelines × 3 queue scalings ×
	// static/dynamic mapping. Enumerable, so exhaustive gives the ground
	// truth the metaheuristics are scored against.
	small := search.NewSpace(3, 0, wls)
	small.QueueScales = []int{75, 100, 125}
	small.RemapIntervals = []uint64{0, sim.DefaultRemapInterval}
	report.SmallSpace.Genotypes = small.Size()
	report.SmallSpace.Candidates = len(small.Candidates())

	exh, err := runOn(small, search.Exhaustive{}, search.Options{Sim: simOpt, Telemetry: obs.reg})
	if err != nil {
		return err
	}
	if exh.Best == nil {
		return fmt.Errorf("exhaustive search found no feasible machine")
	}
	report.SmallSpace.Exhaustive = exh
	fmt.Printf("search: exhaustive %d evaluations, %d simulations, optimum %s (IPC/mm² %.5f)\n",
		exh.Evaluations, exh.Simulations, exh.Best.Config, exh.Best.Metric("per_area"))

	budget := exh.Evaluations * 30 / 100
	for _, name := range []string{"hillclimb", "aco"} {
		st, err := search.ByName(name)
		if err != nil {
			return err
		}
		res, err := runOn(small, st, search.Options{Budget: budget, Seed: seed, Sim: simOpt, Telemetry: obs.reg})
		if err != nil {
			return err
		}
		entry := searchStrategyEntry{Strategy: name, Budget: budget, Seed: seed, Result: res}
		entry.SimulationRatio = float64(res.Simulations) / float64(exh.Simulations)
		entry.FoundOptimum = res.Best != nil &&
			res.Best.Config == exh.Best.Config &&
			res.Best.Policy == exh.Best.Policy &&
			res.Best.Remap == exh.Best.Remap
		report.SmallSpace.Strategies = append(report.SmallSpace.Strategies, entry)
		fmt.Printf("search: %-9s found optimum=%v with %d simulations (%.0f%% of exhaustive), cache-hit %.0f%%\n",
			name, entry.FoundOptimum, res.Simulations, 100*entry.SimulationRatio, 100*res.CacheHitRate)
		if !entry.FoundOptimum {
			got := "(none)"
			if res.Best != nil {
				got = res.Best.Name()
			}
			return fmt.Errorf("%s missed the exhaustive optimum (%s vs %s)", name, got, exh.Best.Name())
		}
		if entry.SimulationRatio > 0.30 {
			return fmt.Errorf("%s spent %.0f%% of the exhaustive simulation count (criterion: <= 30%%)",
				name, 100*entry.SimulationRatio)
		}
	}

	// Enriched space: > 10⁴ genotypes — policies, remap intervals and both
	// sizing axes in play. A budgeted ACO walk records the trajectory.
	enriched := search.EnrichedSpace(4, 0, wls)
	report.EnrichedSpace.Genotypes = enriched.Size()
	aco, err := runOn(enriched, search.NewACO(), search.Options{Budget: 48, Seed: seed, Sim: simOpt, Telemetry: obs.reg})
	if err != nil {
		return err
	}
	if aco.Best == nil || len(aco.Trajectory) == 0 {
		return fmt.Errorf("enriched ACO run produced no trajectory")
	}
	report.EnrichedSpace.ACO = aco
	fmt.Printf("search: enriched space (%d genotypes) ACO best %s (IPC/mm² %.5f) after %d evaluations\n",
		enriched.Size(), aco.Best.Name(), aco.Best.Metric("per_area"), aco.Evaluations)

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("search: report written to %s\n", path)
	return nil
}

func printWorkloads() {
	fmt.Println("Tables 2-3: workloads")
	for _, w := range workload.All() {
		fmt.Printf("  %-4s %-4s %s\n", w.Name, w.Type, strings.Join(w.Benchmarks, ", "))
	}
}

func printAreaFigures() {
	fmt.Println("Fig. 2b: area per pipeline model (mm², 0.18µm; single-pipeline processor)")
	fmt.Printf("  %-6s", "model")
	for s := area.Stage(0); s < area.NumStages; s++ {
		fmt.Printf(" %8s", s)
	}
	fmt.Printf(" %9s\n", "TOTAL")
	for _, m := range config.Models() {
		b, err := area.SinglePipelineProcessor(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %-6s", m.Name)
		for s := area.Stage(0); s < area.NumStages; s++ {
			fmt.Printf(" %8.2f", b[s])
		}
		fmt.Printf(" %9.2f\n", b.Total())
	}

	fmt.Println("\nFig. 3: area of evaluated microarchitectures")
	base := area.MustTotal(config.MustParse("M8"))
	for _, cfg := range config.EvaluatedMicroarchs() {
		total := area.MustTotal(cfg)
		fmt.Printf("  %-14s %8.2f mm²  (%+.2f%% vs M8)\n", cfg.Name, total, 100*(total-base)/base)
	}
	fmt.Println()
}
