package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/metrics"
	"hdsmt/internal/pareto"
	"hdsmt/internal/search"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

// machineEnergy is one evaluated microarchitecture's energy accounting on
// the baseline workload: the activity-priced dynamic + leakage energy per
// instruction and the derived ED/ED² figures.
type machineEnergy struct {
	Config  string  `json:"config"`
	AreaMM2 float64 `json:"area_mm2"`
	IPC     float64 `json:"ipc"`
	// EPI is nJ per committed instruction; ED and ED2 the energy-delay and
	// energy-delay² products (EPI/IPC, EPI/IPC²).
	EPI float64 `json:"epi_nj"`
	ED  float64 `json:"ed"`
	ED2 float64 `json:"ed2"`
	// DynamicPJ/LeakagePJ split the run's total; Units decomposes the
	// dynamic energy by unit.
	DynamicPJ float64        `json:"dynamic_pj"`
	LeakagePJ float64        `json:"leakage_pj"`
	Units     metrics.Values `json:"units"`
}

// powerReport is BENCH_PR5.json: the activity-based power model end to end
// — the per-unit energy table, the six evaluated machines' EPI/ED/ED²
// baseline, the exhaustive 4-objective (ipc, area, fairness, energy) front
// with its Monte-Carlo hypervolume and the ED/ED² incumbents read off it,
// and budgeted NSGA-II/PACO hypervolume trajectories over the enriched
// space. Fixed seeds and the deterministic-seed Monte-Carlo estimator make
// the file byte-identical across invocations.
type powerReport struct {
	Name      string `json:"name"`
	SimBudget uint64 `json:"sim_budget"`
	SimWarmup uint64 `json:"sim_warmup"`
	Full      bool   `json:"full"`

	// EnergyModel echoes the per-access energy table the report was priced
	// with.
	EnergyModel config.EnergyModel `json:"energy_model"`

	// Baseline prices the paper's six evaluated configurations on the
	// baseline workload under the heuristic mapping.
	Baseline struct {
		Workload string          `json:"workload"`
		Machines []machineEnergy `json:"machines"`
	} `json:"baseline"`

	// FourObjective is the exhaustive front over (ipc, area, fairness,
	// energy): the many-objective result the Monte-Carlo hypervolume
	// estimator unlocks. EDIncumbent/ED2Incumbent are the front members
	// minimizing the derived ED/ED² metrics — ED-optimal machines are
	// Pareto-optimal in (ipc, energy), so with an unpruned archive the
	// front provably contains them.
	FourObjective struct {
		Workloads     []string                 `json:"workloads"`
		Genotypes     int64                    `json:"genotypes"`
		Objectives    []string                 `json:"objectives"`
		FrontSize     int                      `json:"front_size"`
		Front         []search.TrajectoryPoint `json:"front"`
		HypervolumeMC float64                  `json:"hypervolume_mc"`
		EDIncumbent   *search.TrajectoryPoint  `json:"ed_incumbent"`
		ED2Incumbent  *search.TrajectoryPoint  `json:"ed2_incumbent"`
	} `json:"four_objective"`

	// EnrichedSpace holds the budgeted 4-objective strategy runs and their
	// hypervolume trajectories.
	EnrichedSpace struct {
		Genotypes int64          `json:"genotypes"`
		NSGA2     *search.Result `json:"nsga2"`
		PACO      *search.Result `json:"paco"`
	} `json:"enriched_space"`
}

// writePowerReport runs the power benchmark. Every claim the CI smoke step
// depends on is asserted here and fails the command loudly: every machine
// and front member carries an energy value, the 4-objective front is
// non-empty and mutually non-dominated with the ED/ED² incumbents on it,
// and the budgeted strategies' Monte-Carlo hypervolume trajectories are
// monotone (the estimator's fixed sampling box guarantees it for an
// unpruned archive).
func writePowerReport(path string, seed int64, full bool) error {
	const wlName = "2W7"
	wls := []workload.Workload{workload.MustByName(wlName)}
	simOpt := sim.Options{Budget: 2_000, Warmup: 1_000}
	report := powerReport{Name: "power-model", SimBudget: simOpt.Budget, SimWarmup: simOpt.Warmup,
		Full: full, EnergyModel: config.DefaultEnergyModel()}

	// ---- Part 1: the six evaluated machines' energy baseline ------------
	report.Baseline.Workload = wlName
	runner, err := sim.NewRunner(obsEngineOptions(0))
	if err != nil {
		return err
	}
	defer runner.Close()
	w := workload.MustByName(wlName)
	for _, cfg := range config.EvaluatedMicroarchs() {
		m, err := sim.DefaultMapping(cfg, w)
		if err != nil {
			return err
		}
		res, err := runner.Run(context.Background(), cfg, w, m, simOpt)
		if err != nil {
			return err
		}
		eb, err := sim.EnergyOf(cfg.ForThreads(w.Threads()), res)
		if err != nil {
			return err
		}
		if eb.EPI <= 0 {
			return fmt.Errorf("power: %s EPI = %v, want positive", cfg.Name, eb.EPI)
		}
		a, err := area.Total(cfg)
		if err != nil {
			return err
		}
		vals := metrics.Values{"ipc": res.IPC, "area": a, "energy": eb.EPI}
		metrics.Finalize(vals)
		report.Baseline.Machines = append(report.Baseline.Machines, machineEnergy{
			Config:    cfg.Name,
			AreaMM2:   a,
			IPC:       res.IPC,
			EPI:       eb.EPI,
			ED:        vals["ed"],
			ED2:       vals["ed2"],
			DynamicPJ: eb.DynamicPJ, LeakagePJ: eb.LeakagePJ,
			Units: eb.Units,
		})
		fmt.Printf("power: %-14s %8.2f mm²  IPC %6.3f  EPI %7.2f nJ  ED %8.2f  ED² %9.2f\n",
			cfg.Name, a, res.IPC, eb.EPI, vals["ed"], vals["ed2"])
	}

	// ---- Part 2: the exhaustive 4-objective front -----------------------
	objs, err := pareto.Parse("ipc,area,fairness,energy")
	if err != nil {
		return err
	}
	sp := search.NewSpace(3, 0, wls)
	sp.QueueScales = []int{75, 100, 125}
	sp.FetchBufScales = []int{75, 100, 125}
	sp.RemapIntervals = []uint64{0, sim.DefaultRemapInterval}
	if full {
		sp = search.EnrichedSpace(4, 0, wls)
	}
	report.FourObjective.Workloads = []string{wlName}
	report.FourObjective.Genotypes = sp.Size()
	report.FourObjective.Objectives = pareto.Keys(objs)

	exh, err := runSearch(sp, search.Exhaustive{}, search.Options{
		Sim: simOpt, Objectives: objs, ArchiveCap: 1 << 12, Telemetry: obs.reg,
	})
	if err != nil {
		return err
	}
	if len(exh.Front) == 0 {
		return fmt.Errorf("power: exhaustive 4-objective front is empty")
	}
	if err := search.CheckFront(objs, exh.Front); err != nil {
		return err
	}
	report.FourObjective.FrontSize = len(exh.Front)
	report.FourObjective.Front = exh.Front
	report.FourObjective.HypervolumeMC = pareto.HypervolumeOf(objs, frontVectors(objs, exh.Front))

	for i := range exh.Front {
		fp := &exh.Front[i]
		for _, key := range []string{"energy", "ed", "ed2"} {
			if _, ok := fp.Values[key]; !ok {
				return fmt.Errorf("power: front member %s has no %s value", fp.Name(), key)
			}
		}
		if report.FourObjective.EDIncumbent == nil || fp.Metric("ed") < report.FourObjective.EDIncumbent.Metric("ed") {
			report.FourObjective.EDIncumbent = fp
		}
		if report.FourObjective.ED2Incumbent == nil || fp.Metric("ed2") < report.FourObjective.ED2Incumbent.Metric("ed2") {
			report.FourObjective.ED2Incumbent = fp
		}
	}
	fmt.Printf("power: %d-genotype space: %d-point (ipc, area, fairness, energy) front, MC hypervolume %.1f\n",
		sp.Size(), len(exh.Front), report.FourObjective.HypervolumeMC)
	fmt.Printf("power: ED incumbent %s (ED %.2f), ED² incumbent %s (ED² %.2f)\n",
		report.FourObjective.EDIncumbent.Name(), report.FourObjective.EDIncumbent.Metric("ed"),
		report.FourObjective.ED2Incumbent.Name(), report.FourObjective.ED2Incumbent.Metric("ed2"))

	// ---- Part 3: budgeted 4-objective strategies on the enriched space --
	enriched := search.EnrichedSpace(4, 0, wls)
	report.EnrichedSpace.Genotypes = enriched.Size()
	budget := 48
	if full {
		budget = 128
	}
	for _, name := range []string{"nsga2", "paco"} {
		st, err := search.ByName(name)
		if err != nil {
			return err
		}
		// ArchiveCap above any reachable front size: a crowding prune can
		// shrink the dominated region, and assertMonotoneHV would then fail
		// the run (the default 64-member cap is only safe below 64
		// evaluations).
		res, err := runSearch(enriched, st, search.Options{
			Budget: budget, Seed: seed, Sim: simOpt, Objectives: objs, ArchiveCap: 1 << 12, Telemetry: obs.reg,
		})
		if err != nil {
			return err
		}
		if len(res.Front) == 0 {
			return fmt.Errorf("power: %s produced an empty front", name)
		}
		if err := search.CheckFront(objs, res.Front); err != nil {
			return fmt.Errorf("power: %s: %w", name, err)
		}
		if err := assertMonotoneHV(res); err != nil {
			return fmt.Errorf("power: %s: %w", name, err)
		}
		switch name {
		case "nsga2":
			report.EnrichedSpace.NSGA2 = res
		case "paco":
			report.EnrichedSpace.PACO = res
		}
		last := res.Hypervolume[len(res.Hypervolume)-1]
		fmt.Printf("power: %-6s front %d machines, MC hypervolume %.1f after %d evaluations\n",
			name, len(res.Front), last.Hypervolume, res.Evaluations)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("power: report written to %s\n", path)
	return nil
}

// frontVectors extracts the front's raw objective vectors.
func frontVectors(objs []pareto.Objective, front []search.TrajectoryPoint) []pareto.Vector {
	out := make([]pareto.Vector, len(front))
	for i, fp := range front {
		out[i] = fp.ObjectiveVector(objs)
	}
	return out
}
