// Command hdsmtd serves the hdSMT batch-simulation engine over HTTP:
// submit runs, evaluations or whole BEST/HEUR/WORST sweeps as async jobs,
// poll their progress, and fetch aggregated results. All jobs share one
// engine and one memoization store; with -cache or -journal, results also
// persist across restarts, and with -job-journal the job table itself is
// durable — a killed daemon restarts knowing every job it ever accepted.
//
//	hdsmtd -addr :8080 -workers 8 -cache /var/tmp/hdsmt-cache
//
//	curl -s localhost:8080/jobs -d '{"kind":"sweep","configs":["M8","2M4+2M2"],"workloads":["2W7","4W6"],"budget":20000}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/jobs/job-000001/result
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdsmt/internal/engine"
	"hdsmt/internal/faultinject"
	"hdsmt/internal/obslog"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
	"hdsmt/internal/tshist"
	"hdsmt/internal/version"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "", "on-disk memoization store directory (optional)")
		journal  = flag.String("journal", "", "JSONL checkpoint journal path (optional)")
		archives = flag.String("archives", "", "directory for named pareto-front archives (optional; a canceled \"pareto\" job resubmitted with the same archive name resumes its front)")
		debug    = flag.Bool("debug", false, "mount net/http/pprof profiling handlers under /debug/pprof/")

		jobJournal  = flag.String("job-journal", "", "JSONL job journal path (optional): makes the job table durable across restarts — settled jobs re-list, archive-backed pareto jobs resume, the rest are marked interrupted")
		maxActive   = flag.Int("max-active", 0, "max concurrently executing jobs (0 = unlimited)")
		maxPending  = flag.Int("max-pending", 64, "accept-queue depth beyond -max-active; a full queue answers 429 + Retry-After (only meaningful with -max-active)")
		tenantQuota = flag.Int("tenant-quota", 0, "max unsettled jobs per tenant, keyed by the X-API-Key header (0 = unlimited)")
		rate        = flag.Float64("rate", 0, "sustained job-submission rate in jobs/s, token bucket shared by all tenants (0 = unlimited)")
		burst       = flag.Int("burst", 0, "token-bucket depth for -rate (0 = max(rate, 1))")
		jobTimeout  = flag.Duration("job-timeout", 0, "default per-job execution deadline, any kind (0 = none); jobs may lower it with timeout_sec")
		maxBody     = flag.Int64("max-body", 1<<20, "largest accepted POST /jobs body in bytes")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, how long to let accepted jobs finish before exiting")
		faults      = flag.String("fault", "", "fault-injection spec for chaos testing, e.g. 'engine.store.save:err=0.3,engine.simulate:delay=5ms@0.5' (see internal/faultinject; empty = disabled)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for the fault-injection schedule (same seed + same spec = same faults)")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error (debug adds a per-request access line)")
		logFormat   = flag.String("log-format", "text", "log output format: text (key=value) or json (one object per line)")

		sseHeartbeat = flag.Duration("sse-heartbeat", 15*time.Second, "idle SSE stream heartbeat period (must be > 0); keeps proxies from timing out quiet event streams")
		histInterval = flag.Duration("history-interval", 5*time.Second, "metrics-history sampling period for GET /metrics/history (must be > 0)")
		histCap      = flag.Int("history-cap", 512, "metrics-history ring size in samples; with -history-interval 5s, 512 covers ~42 minutes")
		sloAvail     = flag.Float64("slo-availability", 0.999, "availability SLO objective: target fraction of non-5xx responses (0 < objective < 1)")
		sloLatency   = flag.String("slo-latency", "", "per-kind latency SLO targets, e.g. 'run=0.5,sweep=30' (kind=p95 seconds; empty = none)")
		traceSpans   = flag.Int("trace-spans", telemetry.DefaultJobTraceCap, "per-job span-buffer capacity for GET /jobs/{id}/trace; oldest spans are dropped beyond it")
	)
	flag.Parse()

	if *sseHeartbeat <= 0 {
		fmt.Fprintf(os.Stderr, "hdsmtd: -sse-heartbeat: must be > 0 (got %v)\n", *sseHeartbeat)
		os.Exit(2)
	}
	if *histInterval <= 0 {
		fmt.Fprintf(os.Stderr, "hdsmtd: -history-interval: must be > 0 (got %v)\n", *histInterval)
		os.Exit(2)
	}
	if *sloAvail <= 0 || *sloAvail >= 1 {
		fmt.Fprintf(os.Stderr, "hdsmtd: -slo-availability: objective must be in (0, 1), got %g\n", *sloAvail)
		os.Exit(2)
	}
	latencySLOs, err := tshist.ParseLatencyTargets(*sloLatency)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdsmtd: -slo-latency: %v\n", err)
		os.Exit(2)
	}

	level, err := obslog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdsmtd: -log-level: %v\n", err)
		os.Exit(2)
	}
	logOpts := []obslog.Option{obslog.WithLevel(level)}
	switch *logFormat {
	case "json":
		logOpts = append(logOpts, obslog.WithJSON())
	case "text":
	default:
		fmt.Fprintf(os.Stderr, "hdsmtd: -log-format: unknown format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := obslog.New(os.Stderr, logOpts...)
	log := logger.With(obslog.F("component", "hdsmtd"))

	if *faults != "" {
		plan, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdsmtd: -fault: %v\n", err)
			os.Exit(2)
		}
		faultinject.Enable(*faultSeed, plan)
		log.Warn("FAULT INJECTION ARMED", obslog.F("seed", *faultSeed), obslog.F("plan", faultinject.Summary()))
	}

	// One registry spans every layer: the engine's cache counters, the
	// search drivers' per-strategy progress and the server's per-kind job
	// instruments all land in the same GET /metrics scrape.
	reg := telemetry.NewRegistry()
	// The sampler snapshots that registry on a fixed cadence, turning the
	// instantaneous counters into windowed rates, latency quantiles and
	// SLO burn status for GET /metrics/history and hdsmtop.
	sampler := tshist.New(reg, tshist.Config{
		Interval: *histInterval,
		Capacity: *histCap,
		SLOs:     append([]tshist.SLO{tshist.AvailabilitySLO(*sloAvail)}, latencySLOs...),
	})
	samplerCtx, samplerStop := context.WithCancel(context.Background())
	defer samplerStop()
	go sampler.Run(samplerCtx)

	runner, err := sim.NewRunner(engine.Options{
		Workers:     *workers,
		CacheDir:    *cache,
		JournalPath: *journal,
		Telemetry:   reg,
		Log:         logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdsmtd: %v\n", err)
		os.Exit(1)
	}
	defer runner.Close()
	if st := runner.Stats(); st.Restored > 0 {
		log.Info("restored results from journal", obslog.F("restored", st.Restored), obslog.F("journal", *journal))
	}

	srvOpts := []server.Option{
		server.WithTelemetry(reg),
		server.WithLogger(logger),
		server.WithMaxBodyBytes(*maxBody),
		server.WithSSEHeartbeat(*sseHeartbeat),
		server.WithHistory(sampler),
		server.WithTraceSpanCap(*traceSpans),
		server.WithAdmission(server.AdmissionConfig{
			MaxActive:   *maxActive,
			MaxPending:  *maxPending,
			TenantQuota: *tenantQuota,
			Rate:        *rate,
			Burst:       *burst,
		}),
	}
	if *archives != "" {
		srvOpts = append(srvOpts, server.WithArchiveDir(*archives))
	}
	if *jobJournal != "" {
		srvOpts = append(srvOpts, server.WithJobJournal(*jobJournal))
	}
	if *jobTimeout > 0 {
		srvOpts = append(srvOpts, server.WithDeadlines(map[string]time.Duration{
			"run": *jobTimeout, "evaluate": *jobTimeout, "sweep": *jobTimeout,
			"search": *jobTimeout, "pareto": *jobTimeout,
		}))
	}
	jobSrv, err := server.New(runner, srvOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdsmtd: %v\n", err)
		os.Exit(1)
	}
	defer jobSrv.Close()
	handler := jobSrv.Handler()
	if *debug {
		// Profiling is opt-in: the handlers expose stacks and heap
		// contents, so they stay off unless the operator asks.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Info("pprof enabled at /debug/pprof/")
	}
	// The header/read timeouts bound what one slow or malicious client
	// can hold open; there is deliberately no WriteTimeout because result
	// payloads for large sweeps can be slow to stream and job execution
	// itself is bounded by -job-timeout, not the connection.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Info("hdsmtd listening", obslog.F("addr", *addr), obslog.F("version", version.Version))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", obslog.Err(err))
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Graceful drain: stop accepting (503 + Retry-After), let accepted
	// jobs settle — journaled, so nothing is lost either way — then take
	// the listener down. A second signal aborts the wait.
	log.Info("draining; signal again to abort", obslog.F("timeout", drainWait.String()))
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	go func() {
		<-stop
		log.Warn("second signal: aborting drain")
		dcancel()
	}()
	if err := jobSrv.Drain(dctx); err != nil {
		log.Warn("drain incomplete; unfinished jobs will be recovered from the job journal", obslog.Err(err))
	}
	dcancel()
	log.Info("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}
