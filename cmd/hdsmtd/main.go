// Command hdsmtd serves the hdSMT batch-simulation engine over HTTP:
// submit runs, evaluations or whole BEST/HEUR/WORST sweeps as async jobs,
// poll their progress, and fetch aggregated results. All jobs share one
// engine and one memoization store; with -cache or -journal, results also
// persist across restarts.
//
//	hdsmtd -addr :8080 -workers 8 -cache /var/tmp/hdsmt-cache
//
//	curl -s localhost:8080/jobs -d '{"kind":"sweep","configs":["M8","2M4+2M2"],"workloads":["2W7","4W6"],"budget":20000}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/jobs/job-000001/result
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdsmt/internal/engine"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "", "on-disk memoization store directory (optional)")
		journal  = flag.String("journal", "", "JSONL checkpoint journal path (optional)")
		archives = flag.String("archives", "", "directory for named pareto-front archives (optional; a canceled \"pareto\" job resubmitted with the same archive name resumes its front)")
		debug    = flag.Bool("debug", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	)
	flag.Parse()

	// One registry spans every layer: the engine's cache counters, the
	// search drivers' per-strategy progress and the server's per-kind job
	// instruments all land in the same GET /metrics scrape.
	reg := telemetry.NewRegistry()
	runner, err := sim.NewRunner(engine.Options{
		Workers:     *workers,
		CacheDir:    *cache,
		JournalPath: *journal,
		Telemetry:   reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdsmtd: %v\n", err)
		os.Exit(1)
	}
	defer runner.Close()
	if st := runner.Stats(); st.Restored > 0 {
		log.Printf("restored %d results from journal %s", st.Restored, *journal)
	}

	srvOpts := []server.Option{server.WithTelemetry(reg)}
	if *archives != "" {
		srvOpts = append(srvOpts, server.WithArchiveDir(*archives))
	}
	handler := server.New(runner, srvOpts...).Handler()
	if *debug {
		// Profiling is opt-in: the handlers expose stacks and heap
		// contents, so they stay off unless the operator asks.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("hdsmtd listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("hdsmtd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}
