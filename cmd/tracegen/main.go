// Command tracegen materializes a benchmark's synthetic dynamic instruction
// stream to a trace file (see internal/trace's codec) or inspects one.
// Pre-generated traces replay byte-identically, the way the paper collects
// SPEC trace segments once and replays them in SMTSIM.
//
// Examples:
//
//	tracegen -benchmark mcf -n 1000000 -o mcf.trace
//	tracegen -inspect mcf.trace
//	tracegen -benchmark gzip -n 50000 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"hdsmt/internal/bench"
	"hdsmt/internal/isa"
	"hdsmt/internal/trace"
)

func main() {
	var (
		benchName = flag.String("benchmark", "", "benchmark to generate (e.g. mcf)")
		n         = flag.Uint64("n", 1_000_000, "instructions to generate")
		out       = flag.String("o", "", "output trace file (default: <benchmark>.trace)")
		inspect   = flag.String("inspect", "", "print the header and first records of a trace file")
		stats     = flag.Bool("stats", false, "print the stream's instruction mix instead of writing a file")
		listAll   = flag.Bool("list", false, "list available benchmarks")
	)
	flag.Parse()

	switch {
	case *listAll:
		for _, b := range bench.All() {
			fmt.Printf("  %-8s %s\n", b.Name, b.Class)
		}
	case *inspect != "":
		inspectFile(*inspect)
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fail(err)
		}
		if *stats {
			printStats(b, *n)
			return
		}
		path := *out
		if path == "" {
			path = b.Name + ".trace"
		}
		if err := generate(b, *n, path); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d instructions to %s\n", *n, path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(b bench.Benchmark, n uint64, path string) error {
	prog, err := b.Build(0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, b.Name)
	if err != nil {
		return err
	}
	s := trace.NewStream(prog, b.Params.Seed, 0)
	for i := uint64(0); i < n; i++ {
		in, _ := s.Next()
		if err := w.Write(&in); err != nil {
			return err
		}
	}
	return w.Flush()
}

func inspectFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("benchmark: %s\n", r.Name())
	count := uint64(0)
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		if count < 20 {
			fmt.Printf("  %6d %v\n", in.Seq, &in)
		}
		count++
	}
	fmt.Printf("records: %d\n", count)
}

func printStats(b bench.Benchmark, n uint64) {
	prog, err := b.Build(0)
	if err != nil {
		fail(err)
	}
	s := trace.NewStream(prog, b.Params.Seed, 0)
	counts := map[isa.Class]uint64{}
	taken := uint64(0)
	var branches uint64
	for i := uint64(0); i < n; i++ {
		in, _ := s.Next()
		counts[in.Class]++
		if in.Class == isa.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	fmt.Printf("%s (%s), %d instructions:\n", b.Name, b.Class, n)
	for c := isa.Class(0); int(c) < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Printf("  %-7s %8d (%5.2f%%)\n", c, counts[c], 100*float64(counts[c])/float64(n))
	}
	if branches > 0 {
		fmt.Printf("  conditional taken rate: %.2f%%\n", 100*float64(taken)/float64(branches))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
