// Command hdsmtsim runs one workload on one microarchitecture and reports
// per-thread and combined IPC plus pipeline statistics — the simulator's
// direct command-line front end.
//
// Examples:
//
//	hdsmtsim -config 2M4+2M2 -workload 4W6
//	hdsmtsim -config M8 -benchmarks gzip,mcf -maxinsn 100000
//	hdsmtsim -config 2M4+2M2 -workload 2W7 -mapping 0,2
//	hdsmtsim -printconfig
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hdsmt/internal/area"
	"hdsmt/internal/bench"
	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/mapping"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	var (
		cfgName     = flag.String("config", "M8", "microarchitecture (M8, 3M4, 4M4, 2M4+2M2, 3M4+2M2, 1M6+2M4+2M2, ...)")
		wlName      = flag.String("workload", "", "workload from Tables 2-3 (e.g. 4W6)")
		benchNames  = flag.String("benchmarks", "", "comma-separated benchmark list (alternative to -workload)")
		mapSpec     = flag.String("mapping", "", "comma-separated thread-to-pipeline mapping (default: §2.1 heuristic)")
		maxInsn     = flag.Uint64("maxinsn", 50_000, "measured instructions per thread (paper: 300000000)")
		warmup      = flag.Uint64("warmup", 10_000, "warm-up instructions per thread")
		printConfig = flag.Bool("printconfig", false, "print Table 1 parameters and Fig. 2a models, then exit")
	)
	flag.Parse()

	if *printConfig {
		printConfiguration()
		return
	}

	cfg, err := config.Parse(*cfgName)
	if err != nil {
		fail(err)
	}

	names, err := resolveNames(*wlName, *benchNames)
	if err != nil {
		fail(err)
	}
	w := workload.Workload{Name: "custom", Benchmarks: names}
	if *wlName != "" {
		w, err = workload.ByName(*wlName)
		if err != nil {
			fail(err)
		}
	}

	var m mapping.Mapping
	if *mapSpec != "" {
		m, err = parseMapping(*mapSpec)
		if err != nil {
			fail(err)
		}
	} else if cfg.Monolithic {
		m = make(mapping.Mapping, len(w.Benchmarks))
	} else {
		m, err = sim.HeuristicMapping(cfg, w)
		if err != nil {
			fail(err)
		}
	}

	r, err := sim.Run(cfg, w, m, sim.Options{Budget: *maxInsn, Warmup: *warmup})
	if err != nil {
		fail(err)
	}
	report(cfg, w, m, r)
}

func resolveNames(wlName, benchNames string) ([]string, error) {
	switch {
	case wlName != "" && benchNames != "":
		return nil, fmt.Errorf("use either -workload or -benchmarks, not both")
	case wlName != "":
		w, err := workload.ByName(wlName)
		if err != nil {
			return nil, err
		}
		return w.Benchmarks, nil
	case benchNames != "":
		names := strings.Split(benchNames, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
			if _, err := bench.ByName(names[i]); err != nil {
				return nil, err
			}
		}
		return names, nil
	}
	return nil, fmt.Errorf("one of -workload or -benchmarks is required")
}

func parseMapping(spec string) (mapping.Mapping, error) {
	parts := strings.Split(spec, ",")
	m := make(mapping.Mapping, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mapping element %q", p)
		}
		m[i] = v
	}
	return m, nil
}

func report(cfg config.Microarch, w workload.Workload, m mapping.Mapping, r core.Results) {
	fmt.Printf("config    %s (policy %s)\n", r.Config, r.Policy)
	fmt.Printf("workload  %s: %s\n", w.Name, strings.Join(w.Benchmarks, ", "))
	fmt.Printf("mapping   %v\n", m)
	fmt.Printf("cycles    %d\n", r.Cycles)
	fmt.Printf("IPC       %.4f combined\n", r.IPC)
	if a, err := area.Total(cfg); err == nil {
		fmt.Printf("area      %.2f mm² -> %.5f IPC/mm²\n", a, r.IPC/a)
	}
	for i, st := range r.Threads {
		fmt.Printf("  thread %d %-8s pipe %d: committed=%d ipc=%.4f misp=%d flushes=%d l1dMiss=%d l2Miss=%d wrongpath=%d\n",
			i, w.Benchmarks[i], m[i], st.Committed, r.PerThreadIPC[i],
			st.Mispredicts, st.Flushes, st.LoadMisses, st.L2LoadMisses, st.WrongPath)
	}
}

func printConfiguration() {
	fmt.Println("Table 1: simulation parameters")
	p := config.DefaultSimParams()
	fmt.Printf("  fetch width/threads     %d from %d\n", p.FetchWidth, p.FetchMaxThreads)
	fmt.Printf("  ROB (per thread)        %d entries\n", p.ROBPerThread)
	fmt.Printf("  rename registers        %d\n", p.RenameRegs)
	fmt.Printf("  pipeline depth          %d stages\n", p.PipelineDepth)
	fmt.Println("  branch predictor        perceptron (4K local, 256 perceps)")
	fmt.Println("  BTB / RAS               256 entries 4-way / 256 entries")
	fmt.Println("  L1 I/D                  64KB 2-way 8 banks, 3 cyc (+22 miss)")
	fmt.Println("  L2                      512KB 2-way 8 banks, 12 cyc; memory 250 cyc")
	fmt.Println("  I-TLB/D-TLB             48/128 entries, 300 cyc miss")
	fmt.Println("\nFig. 2a: pipeline models")
	fmt.Printf("  %-6s %9s %6s %8s %7s %5s %5s %6s %9s\n",
		"model", "contexts", "width", "thr/cyc", "queues", "int", "fp", "ldst", "fetchbuf")
	for _, m := range config.Models() {
		fmt.Printf("  %-6s %9d %6d %8d %7d %5d %5d %6d %9d\n",
			m.Name, m.Contexts, m.Width, m.ThreadsPerCycle, m.IQ,
			m.IntUnits, m.FPUnits, m.LdStUnits, m.FetchBuf)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hdsmtsim: %v\n", err)
	os.Exit(1)
}
