// Command areacalc prints the paper's area cost model outputs: the
// per-pipeline-model stage breakdown of Fig. 2(b) and the evaluated
// microarchitectures of Fig. 3 with their deltas against the M8 baseline.
// Arbitrary configurations can be priced with -config.
package main

import (
	"flag"
	"fmt"
	"os"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
)

func main() {
	var (
		models  = flag.Bool("models", false, "print Fig. 2a model resources")
		fig2b   = flag.Bool("fig2b", false, "print Fig. 2b stage areas")
		fig3    = flag.Bool("fig3", false, "print Fig. 3 configuration areas")
		cfgName = flag.String("config", "", "price one configuration (e.g. 2M4+2M2)")
	)
	flag.Parse()
	all := !*models && !*fig2b && !*fig3 && *cfgName == ""

	if *models || all {
		fmt.Println("Fig. 2a: pipeline model resources")
		fmt.Printf("  %-6s %9s %6s %8s %7s %5s %5s %6s\n",
			"model", "contexts", "width", "thr/cyc", "queues", "int", "fp", "ldst")
		for _, m := range config.Models() {
			fmt.Printf("  %-6s %9d %6d %8d %7d %5d %5d %6d\n",
				m.Name, m.Contexts, m.Width, m.ThreadsPerCycle, m.IQ,
				m.IntUnits, m.FPUnits, m.LdStUnits)
		}
		fmt.Println()
	}

	if *fig2b || all {
		fmt.Println("Fig. 2b: area estimation per pipeline model (mm², 0.18µm)")
		fmt.Printf("  %-6s", "model")
		for s := area.Stage(0); s < area.NumStages; s++ {
			fmt.Printf(" %8s", s)
		}
		fmt.Printf(" %9s\n", "TOTAL")
		for _, m := range config.Models() {
			b, err := area.SinglePipelineProcessor(m)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-6s", m.Name)
			for s := area.Stage(0); s < area.NumStages; s++ {
				fmt.Printf(" %8.2f", b[s])
			}
			fmt.Printf(" %9.2f\n", b.Total())
		}
		fmt.Println()
	}

	if *fig3 || all {
		fmt.Println("Fig. 3: area estimation of evaluated microarchitectures")
		base := area.MustTotal(config.MustParse("M8"))
		for _, cfg := range config.EvaluatedMicroarchs() {
			b, err := area.MicroarchArea(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-14s %8.2f mm²  (%+6.2f%% vs M8)\n",
				cfg.Name, b.Total(), 100*(b.Total()-base)/base)
		}
		fmt.Println()
	}

	if *cfgName != "" {
		cfg, err := config.Parse(*cfgName)
		if err != nil {
			fail(err)
		}
		b, err := area.MicroarchArea(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s:\n", cfg.Name)
		for s := area.Stage(0); s < area.NumStages; s++ {
			fmt.Printf("  %-4s %8.2f mm²\n", s, b[s])
		}
		fmt.Printf("  %-4s %8.2f mm²\n", "sum", b.Total())
		d, err := area.DeltaVsBaseline(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  vs M8: %+.2f%%\n", 100*d)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "areacalc: %v\n", err)
	os.Exit(1)
}
