// Command explore searches the hdSMT design space for the best
// performance-per-area machine — the paper's complexity-effectiveness
// objective as a search.
//
// The default strategy, exhaustive, enumerates every multiset of M6/M4/M2
// pipelines under an area budget (plus the monolithic M8 baseline),
// evaluates each candidate over a workload set with the §2.1 heuristic
// mapping, and prints the full ranking — the cross-check baseline.
//
// The metaheuristic strategies (random, hillclimb, aco and their
// proxy-seeded variants; internal/search) instead walk an enriched space —
// pipeline multiset × fetch policy × dynamic-remap interval × issue-queue
// and decoupling-buffer sizing — under an evaluation budget, and print the
// best-so-far trajectory. A fixed -seed reproduces a search exactly.
//
// -objectives turns the run multi-objective (internal/pareto): the driver
// keeps an archive of non-dominated machines, the multi-objective
// strategies (nsga2, paco) optimize the whole front, and the output adds
// the front with its hypervolume trajectory (-frontcsv exports it).
//
// Examples:
//
//	explore                                   # exhaustive: MIX workloads, <= 4 pipelines
//	explore -maxpipes 5 -areacap 150
//	explore -strategy aco -evals 60 -enriched # guided search of the enriched space
//	explore -strategy hillclimb -evals 40 -qscales 75,100,125 -seed 7
//	explore -workloads 2W7,4W6,4W8 -budget 20000
//	explore -strategy nsga2 -objectives ipc,area,fairness -evals 64 -enriched
//	explore -strategy paco -objectives ipc,area -evals 48 -frontcsv front.csv
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hdsmt/internal/engine"
	"hdsmt/internal/metrics"
	"hdsmt/internal/pareto"
	"hdsmt/internal/search"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
	"hdsmt/internal/workload"
)

func main() {
	var (
		strategy  = flag.String("strategy", "exhaustive", "search strategy: exhaustive|random|hillclimb|hillclimb-seeded|aco|aco-seeded|nsga2|paco")
		maxPipes  = flag.Int("maxpipes", 4, "maximum pipelines per candidate")
		areaCap   = flag.Float64("areacap", 0, "area budget in mm² (0 = unlimited)")
		wlList    = flag.String("workloads", "2W7,4W6", "comma-separated workload set")
		budget    = flag.Uint64("budget", 10_000, "measured instructions per thread")
		warmup    = flag.Uint64("warmup", 5_000, "warm-up instructions per thread")
		evals     = flag.Int("evals", 64, "evaluation budget for the metaheuristic strategies")
		seed      = flag.Int64("seed", 1, "random seed (fixed seed = reproducible trajectory)")
		enriched  = flag.Bool("enriched", false, "search the full enriched space (policies × remap × sizings)")
		policies  = flag.String("policies", "", "comma-separated fetch-policy axis (empty entry = config default)")
		remaps    = flag.String("remap", "", "comma-separated dynamic-remap intervals in cycles (0 = static)")
		qscales   = flag.String("qscales", "", "comma-separated issue/load-queue scales in percent")
		fbscales  = flag.String("fbscales", "", "comma-separated decoupling-buffer scales in percent")
		out       = flag.String("out", "", "also write the result to this JSON file (search trajectory, or the exhaustive ranking)")
		objs      = flag.String("objectives", "", "comma-separated multi-objective axes (2+ registered metrics, e.g. ipc,area,fairness,energy; empty = scalar IPC/mm²)")
		archive   = flag.Int("archive", 0, "non-dominated archive capacity (0 = default; crowding pruning beyond it)")
		frontCSV  = flag.String("frontcsv", "", "write the Pareto front to this CSV file (multi-objective runs)")
		frontPath = flag.String("frontpath", "", "persist the non-dominated archive to this JSON file and resume from it when it exists (multi-objective runs)")
		tracePath = flag.String("tracepath", "", "write a Chrome trace_event JSON of every engine job to this file (open in chrome://tracing or Perfetto)")
		quiet     = flag.Bool("quiet", false, "suppress the periodic progress line on stderr")
	)
	flag.Parse()
	if *frontCSV != "" && *objs == "" {
		// Checked before any simulation: a forgotten -objectives must not
		// surface only after the whole search has been paid for.
		fail(fmt.Errorf("-frontcsv needs a multi-objective run: pass -objectives too"))
	}
	if *archive != 0 && *objs == "" {
		fail(fmt.Errorf("-archive needs a multi-objective run: pass -objectives too"))
	}
	if *frontPath != "" && *objs == "" {
		fail(fmt.Errorf("-frontpath needs a multi-objective run: pass -objectives too"))
	}

	var wls []workload.Workload
	for _, name := range strings.Split(*wlList, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		wls = append(wls, w)
	}
	opt := sim.Options{Budget: *budget, Warmup: *warmup}

	// Telemetry spans the whole run: the engine and the search driver feed
	// one registry, the periodic stderr progress line reads it back, and
	// -tracepath records every engine job as a Chrome trace. Wall-clock
	// estimates stay on stderr and in the trace file — never in -out JSON.
	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.NewTracer()
	}

	// The legacy table (CandidateConfigs + sim.Explore, M8 baseline
	// included) serves plain exhaustive runs — -out then writes the
	// ranking JSON; any enriched axis or objective list routes through
	// internal/search.
	if *strategy == "exhaustive" && !*enriched && *objs == "" &&
		*policies == "" && *remaps == "" && *qscales == "" && *fbscales == "" {
		exhaustive(wls, *maxPipes, *areaCap, opt, *out, reg, tracer, *tracePath, *quiet)
		return
	}

	st, err := search.ByName(*strategy)
	if err != nil {
		fail(err)
	}
	// Objective names are validated against the metric registry before any
	// simulation: a typo fails fast with the list of known metrics instead
	// of producing a zero-valued front.
	var objectives []pareto.Objective
	if *objs != "" {
		if objectives, err = pareto.Parse(*objs); err != nil {
			fail(err)
		}
	}
	sp := search.NewSpace(*maxPipes, *areaCap, wls)
	if *enriched {
		sp = search.EnrichedSpace(*maxPipes, *areaCap, wls)
	}
	if *policies != "" {
		sp.Policies = strings.Split(*policies, ",")
		for i := range sp.Policies {
			sp.Policies[i] = strings.TrimSpace(sp.Policies[i])
		}
	}
	if *remaps != "" {
		sp.RemapIntervals = nil
		for _, n := range splitInts(*remaps) {
			if n < 0 {
				fail(fmt.Errorf("remap interval %d must be non-negative", n))
			}
			sp.RemapIntervals = append(sp.RemapIntervals, uint64(n))
		}
	}
	if *qscales != "" {
		sp.QueueScales = splitInts(*qscales)
	}
	if *fbscales != "" {
		sp.FetchBufScales = splitInts(*fbscales)
	}
	if err := sp.Validate(); err != nil {
		fail(err)
	}

	runner, err := sim.NewRunner(engine.Options{Telemetry: reg, Tracer: tracer})
	if err != nil {
		fail(err)
	}
	defer runner.Close()

	budgetEvals := *evals
	budgetDesc := fmt.Sprintf("budget %d evaluations", budgetEvals)
	if *strategy == "exhaustive" {
		budgetEvals = 0 // enumeration terminates on its own
		budgetDesc = "full enumeration"
	} else if budgetEvals <= 0 {
		// Same rule the server enforces: an unbounded guided search would
		// silently simulate the whole space.
		fail(fmt.Errorf("%s search needs a positive -evals budget", *strategy))
	}
	fmt.Printf("searching %d-genotype space with %s (%s, seed %d) over %d workloads...\n",
		sp.Size(), st.Name(), budgetDesc, *seed, len(wls))

	var rep *telemetry.Reporter
	if !*quiet {
		rep = telemetry.StartReporter(os.Stderr, reg, 2*time.Second)
	}
	res, err := search.NewDriver(runner).Search(context.Background(), sp, st, search.Options{
		Budget:      budgetEvals,
		Seed:        *seed,
		Sim:         opt,
		Objectives:  objectives,
		ArchiveCap:  *archive,
		ArchivePath: *frontPath,
		Telemetry:   reg,
		Progress:    func(done, total int) { rep.SetTotal(total) },
	})
	rep.Stop()
	if err != nil {
		fail(err)
	}
	writeTrace(tracer, *tracePath)

	fmt.Println("\nbest-so-far trajectory:")
	fmt.Printf("%8s  %-24s %10s %10s %12s %12s\n", "evals", "machine", "area mm²", "IPC", "IPC/mm²", "EPI nJ")
	for _, tp := range res.Trajectory {
		fmt.Printf("%8d  %-24s %10.2f %10.3f %12.5f %12s\n", tp.Evaluations, tp.Name(),
			tp.Metric("area"), tp.Metric("ipc"), tp.Metric("per_area"), metricCell(tp, "energy"))
	}
	if res.Best == nil {
		fmt.Println("no feasible machine found")
	} else {
		fmt.Printf("\nbest: %s  IPC/mm² %.5f after %d evaluations\n", res.Best.Name(), res.Best.Metric("per_area"), res.Best.Evaluations)
	}
	printFront(res)
	fmt.Printf("cost: %d evaluations, %d simulations executed, %d submitted, cache-hit rate %.1f%%\n",
		res.Evaluations, res.Simulations, res.Submitted, 100*res.CacheHitRate)

	if *out != "" {
		writeJSON(*out, res)
	}
	if *frontCSV != "" {
		if len(res.Front) == 0 {
			fail(fmt.Errorf("-frontcsv needs a multi-objective run (-objectives) with a non-empty front"))
		}
		if err := writeFrontCSV(*frontCSV, res); err != nil {
			fail(err)
		}
		fmt.Printf("front written to %s\n", *frontCSV)
	}
}

// metricCell renders one metric value for a table, "-" when the point does
// not carry it (e.g. fairness on runs that never priced alone-run
// baselines in).
func metricCell(tp search.TrajectoryPoint, key string) string {
	v, ok := tp.Values[key]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// printFront renders the non-dominated archive of a multi-objective run,
// ordered as the driver archives it (descending first-objective gain).
func printFront(res *search.Result) {
	if len(res.Front) == 0 {
		return
	}
	fmt.Printf("\npareto front over (%s): %d machines", strings.Join(res.Objectives, ", "), len(res.Front))
	if res.RestoredFront > 0 {
		fmt.Printf(" (%d restored from the archive file)", res.RestoredFront)
	}
	fmt.Println()
	fmt.Printf("%8s  %-24s %10s %10s %10s %12s %10s\n", "evals", "machine", "area mm²", "IPC", "fairness", "IPC/mm²", "EPI nJ")
	for _, fp := range res.Front {
		fmt.Printf("%8d  %-24s %10.2f %10.3f %10s %12.5f %10s\n",
			fp.Evaluations, fp.Name(), fp.Metric("area"), fp.Metric("ipc"),
			metricCell(fp, "fairness"), fp.Metric("per_area"), metricCell(fp, "energy"))
	}
	if n := len(res.Hypervolume); n > 0 {
		fmt.Printf("hypervolume: %.4f after %d archive improvements\n",
			res.Hypervolume[n-1].Hypervolume, n)
	}
}

// writeFrontCSV exports the front: one row per machine, one column per
// registered metric (absent values stay empty), so a newly registered
// metric shows up here without touching the exporter.
func writeFrontCSV(path string, res *search.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"machine", "config", "policy", "remap", "evaluations"}
	header = append(header, metrics.Keys()...)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, fp := range res.Front {
		rec := []string{
			fp.Name(), fp.Config, fp.Policy, strconv.FormatUint(fp.Remap, 10),
			strconv.Itoa(fp.Evaluations),
		}
		for _, key := range metrics.Keys() {
			if v, ok := fp.Values[key]; ok {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// writeJSON writes v as indented JSON to path.
func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("result written to %s\n", path)
}

// exhaustive is the legacy cross-check baseline: CandidateConfigs +
// sim.Explore (M8 baseline included) with the telemetry-fed progress
// line. out, when non-empty, receives the full ranking as JSON.
func exhaustive(wls []workload.Workload, maxPipes int, areaCap float64, opt sim.Options, out string,
	reg *telemetry.Registry, tracer *telemetry.Tracer, tracePath string, quiet bool) {
	cands, err := sim.CandidateConfigs(maxPipes, areaCap)
	if err != nil {
		fail(err)
	}
	fmt.Printf("exploring %d candidate configurations over %d workloads...\n\n", len(cands), len(wls))

	runner, err := sim.NewRunner(engine.Options{Telemetry: reg, Tracer: tracer})
	if err != nil {
		fail(err)
	}
	defer runner.Close()
	var rep *telemetry.Reporter
	if !quiet {
		rep = telemetry.StartReporter(os.Stderr, reg, 2*time.Second)
	}
	rep.SetTotal(len(cands) * len(wls))
	rs, err := runner.Explore(context.Background(), wls, cands, opt, func(int) {})
	rep.Stop()
	if err != nil {
		fail(err)
	}
	writeTrace(tracer, tracePath)
	fmt.Print(sim.RenderExploration(rs))
	if out != "" {
		writeJSON(out, rs)
	}
}

// writeTrace flushes the recorded spans to path (no-op when tracing is
// off). Called before rendering so a broken disk fails loudly, after the
// run so the trace covers every job.
func writeTrace(tracer *telemetry.Tracer, path string) {
	if path == "" {
		return
	}
	if err := tracer.WriteFile(path); err != nil {
		fail(err)
	}
	fmt.Printf("trace written to %s (%d events; open in chrome://tracing)\n", path, tracer.Len())
}

func splitInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fail(fmt.Errorf("bad integer list %q: %w", s, err))
		}
		out = append(out, n)
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "explore: %v\n", err)
	os.Exit(1)
}
