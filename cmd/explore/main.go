// Command explore searches the hdSMT design space: it enumerates every
// multiset of M6/M4/M2 pipelines under an area budget (plus the monolithic
// M8 baseline), evaluates each candidate over a workload set with the §2.1
// heuristic mapping, and ranks the machines by performance per area —
// the paper's complexity-effectiveness objective as a search.
//
// Examples:
//
//	explore                                  # defaults: MIX workloads, <= 4 pipelines
//	explore -maxpipes 5 -areacap 150
//	explore -workloads 2W7,4W6,4W8 -budget 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

func main() {
	var (
		maxPipes = flag.Int("maxpipes", 4, "maximum pipelines per candidate")
		areaCap  = flag.Float64("areacap", 0, "area budget in mm² (0 = unlimited)")
		wlList   = flag.String("workloads", "2W7,4W6", "comma-separated workload set")
		budget   = flag.Uint64("budget", 10_000, "measured instructions per thread")
		warmup   = flag.Uint64("warmup", 5_000, "warm-up instructions per thread")
	)
	flag.Parse()

	var wls []workload.Workload
	for _, name := range strings.Split(*wlList, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: %v\n", err)
			os.Exit(1)
		}
		wls = append(wls, w)
	}

	cands, err := sim.CandidateConfigs(*maxPipes, *areaCap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("exploring %d candidate configurations over %d workloads...\n\n", len(cands), len(wls))

	rs, err := sim.Explore(wls, cands, sim.Options{Budget: *budget, Warmup: *warmup})
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sim.RenderExploration(rs))
}
