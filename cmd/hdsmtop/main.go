// Command hdsmtop is a live terminal dashboard for one hdsmtd instance,
// in the spirit of top(1): it polls GET /metrics/history for windowed
// throughput, latency quantiles and SLO burn status, follows the GET
// /events SSE firehose for a rolling tail of job activity, and redraws
// in place. It needs nothing beyond the standard library and a terminal
// that understands the two ANSI sequences "clear" and "home".
//
//	hdsmtop -addr http://localhost:8080
//
// For scripts and CI, -once -plain fetches a single snapshot and prints
// it without any escape codes:
//
//	hdsmtop -addr http://localhost:8080 -once -plain
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"hdsmt/internal/client"
	"hdsmt/internal/server"
	"hdsmt/internal/tshist"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "hdsmtd base URL")
		apiKey   = flag.String("api-key", "", "X-API-Key tenant header, if the server enforces quotas")
		interval = flag.Duration("interval", 2*time.Second, "dashboard refresh period")
		once     = flag.Bool("once", false, "fetch one snapshot, print it and exit (implies -plain)")
		plain    = flag.Bool("plain", false, "no ANSI escape codes: frames append instead of redrawing in place")
		eventsN  = flag.Int("events", 8, "recent events to keep in the activity pane")
	)
	flag.Parse()
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "hdsmtop: -interval must be > 0")
		os.Exit(2)
	}

	var copts []client.Option
	if *apiKey != "" {
		copts = append(copts, client.WithAPIKey(*apiKey))
	}
	c := client.New(*addr, copts...)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *once {
		h, err := c.History(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdsmtop: %v\n", err)
			os.Exit(1)
		}
		render(os.Stdout, *addr, h, nil, true)
		return
	}

	// The activity pane tails the server-wide firehose in the background;
	// a torn stream reconnects inside Watch, and a drained server simply
	// stops producing events while the history poll keeps the panes fresh.
	ring := &eventRing{cap: *eventsN}
	go func() {
		_ = c.Watch(ctx, 0, func(ev server.Event) error {
			ring.add(ev)
			return nil
		})
	}()

	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		h, err := c.History(ctx)
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, cursor home
		}
		if err != nil {
			fmt.Printf("hdsmtop: %s unreachable: %v\n", *addr, err)
		} else {
			render(os.Stdout, *addr, h, ring.tail(), *plain)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// eventRing is the bounded, concurrency-safe tail of the event feed.
type eventRing struct {
	mu  sync.Mutex
	cap int
	buf []server.Event
}

func (r *eventRing) add(ev server.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap <= 0 {
		return
	}
	r.buf = append(r.buf, ev)
	if len(r.buf) > r.cap {
		r.buf = r.buf[len(r.buf)-r.cap:]
	}
}

func (r *eventRing) tail() []server.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]server.Event(nil), r.buf...)
}

// render draws one full frame: SLO status, per-kind windowed stats,
// current gauges and the recent-event tail. The same renderer serves the
// live dashboard and -once -plain, so what CI greps is exactly what an
// operator sees.
func render(w io.Writer, addr string, h tshist.History, events []server.Event, plain bool) {
	fmt.Fprintf(w, "hdsmtop — %s   schema %s   %d samples @ %.0fs\n\n",
		addr, h.Schema, h.Samples, h.IntervalSeconds)

	// SLO pane: one row per objective, burn across every window.
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SLO\tSTATUS\tOBJECTIVE\tBURN 1m\tBURN 5m\tBURN 30m")
	slos := append([]tshist.SLOStatus(nil), h.SLOs...)
	sort.Slice(slos, func(i, j int) bool { return slos[i].Name < slos[j].Name })
	for _, s := range slos {
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.2f\t%.2f\t%.2f\n",
			s.Name, statusCell(s.Status, plain), s.Objective,
			s.Windows["1m"].Burn, s.Windows["5m"].Burn, s.Windows["30m"].Burn)
	}
	if len(slos) == 0 {
		fmt.Fprintln(tw, "(none declared)\t\t\t\t\t")
	}
	tw.Flush()
	fmt.Fprintln(w)

	// Traffic pane: requests and availability per window, then per-kind
	// throughput and latency quantiles.
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WINDOW\tREQS\t5xx\tAVAIL\tKIND\tJOBS\tRATE/s\tP50\tP95\tP99")
	for _, win := range tshist.Windows {
		ws, ok := h.Windows[win.Name]
		if !ok {
			continue
		}
		kinds := make([]string, 0, len(ws.Kinds))
		for k := range ws.Kinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		lead := fmt.Sprintf("%s\t%.0f\t%.0f\t%.4f", win.Name, ws.Requests, ws.ServerErrors, ws.Availability)
		if len(kinds) == 0 {
			fmt.Fprintf(tw, "%s\t—\t\t\t\t\t\n", lead)
			continue
		}
		for i, k := range kinds {
			ks := ws.Kinds[k]
			if i > 0 {
				lead = "\t\t\t" // window columns only on the first kind row
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%s\t%s\t%s\n",
				lead, k, ks.Count, ks.Rate, secs(ks.P50), secs(ks.P95), secs(ks.P99))
		}
	}
	tw.Flush()
	fmt.Fprintln(w)

	// Gauge pane: every unlabeled gauge the registry carries, one line,
	// sorted so the layout never jumps between frames.
	names := make([]string, 0, len(h.Gauges))
	for name := range h.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%g", strings.TrimPrefix(name, "hdsmt_"), h.Gauges[name]))
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "gauges: %s\n\n", strings.Join(parts, "  "))
	}

	if events != nil {
		fmt.Fprintln(w, "RECENT EVENTS")
		if len(events) == 0 {
			fmt.Fprintln(w, "  (none yet)")
		}
		for _, ev := range events {
			detail := ev.Detail
			if detail != "" {
				detail = " " + detail
			}
			fmt.Fprintf(w, "  %-12s %-12s%s\n", ev.Job, ev.Type, detail)
		}
	}
}

// statusCell colors an SLO status for the live view; plain mode passes
// the word through untouched for grep-ability.
func statusCell(status string, plain bool) string {
	if plain {
		return status
	}
	switch status {
	case "ok":
		return "\x1b[32m" + status + "\x1b[0m"
	case "warn":
		return "\x1b[33m" + status + "\x1b[0m"
	case "page":
		return "\x1b[31;1m" + status + "\x1b[0m"
	}
	return status
}

// secs renders a latency in the tightest readable unit.
func secs(v float64) string {
	switch {
	case v <= 0:
		return "—"
	case v < 0.001:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}
