// Command loadgen replays a deterministic, seed-generated fleet of mixed
// jobs (run / evaluate / search / pareto) against a running hdsmtd and
// writes BENCH_PR8.json: per-kind submit→settle latency percentiles,
// backpressure and retry counts, SSE event lag, timeline completeness
// and the engine's cache-hit rate.
//
//	hdsmtd -addr :8080 &
//	loadgen -addr http://localhost:8080 -jobs 20 -seed 1 -stream -out BENCH_PR8.json
//
// The report's "pinned" section contains only values derived from the
// seed and the engine's deterministic counters: two runs with the same
// flags against a freshly started daemon produce byte-identical pinned
// bytes (compare with -pinned-out). Wall-clock-dependent numbers live in
// the "timing" section, excluded from that comparison by construction.
//
// Exit status: 0 when every job settled done; 1 when any job failed or
// was rejected; 2 on usage or daemon-unreachable errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hdsmt/internal/loadgen"
	"hdsmt/internal/obslog"
)

func main() {
	var (
		addr         = flag.String("addr", "http://localhost:8080", "base URL of the hdsmtd under test")
		jobs         = flag.Int("jobs", 20, "fleet size")
		seed         = flag.Int64("seed", 1, "fleet generation seed (same seed = same fleet)")
		mixFlag      = flag.String("mix", "", "kind weights, e.g. 'run=3,evaluate=2,search=2,pareto=1' (empty = that default)")
		concurrency  = flag.Int("concurrency", 4, "closed-loop in-flight job limit")
		rate         = flag.Float64("rate", 0, "open-loop submissions/second (0 = closed loop)")
		stream       = flag.Bool("stream", true, "follow job timelines over SSE and measure event lag (false = poll)")
		budget       = flag.Uint64("budget", 2000, "simulation cycle budget per generated job")
		warmup       = flag.Uint64("warmup", 1000, "simulation warmup cycles per generated job")
		searchBudget = flag.Int("search-budget", 6, "evaluation budget of generated search/pareto jobs")
		apiKey       = flag.String("api-key", "", "X-API-Key tenant header")
		out          = flag.String("out", "BENCH_PR8.json", "report path")
		pinnedOut    = flag.String("pinned-out", "", "also write the pinned section alone to this path (for byte comparison)")
		timeout      = flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	)
	flag.Parse()
	log := obslog.Default().With(obslog.F("component", "loadgen"))

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -mix: %v\n", err)
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cfg := loadgen.Config{
		BaseURL:      *addr,
		Seed:         *seed,
		Jobs:         *jobs,
		Mix:          mix,
		Concurrency:  *concurrency,
		Rate:         *rate,
		Stream:       *stream,
		Budget:       *budget,
		Warmup:       *warmup,
		SearchBudget: *searchBudget,
		APIKey:       *apiKey,
	}
	report, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if *pinnedOut != "" {
		pb, err := report.Pinned.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*pinnedOut, append(pb, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
	}

	log.Info("fleet replayed",
		obslog.F("jobs", report.Pinned.Jobs),
		obslog.F("failed", report.Pinned.Failed),
		obslog.F("rejected", report.Pinned.Rejected),
		obslog.F("complete_timelines", report.Pinned.CompleteTimelines),
		obslog.F("cache_hit_rate", report.Pinned.CacheHitRate),
		obslog.F("wall_ms", report.Timing.WallMS),
		obslog.F("out", *out))
	if report.Pinned.Failed > 0 || report.Pinned.Rejected > 0 {
		os.Exit(1)
	}
}

// parseMix parses "kind=weight,kind=weight".
func parseMix(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		kind, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("malformed entry %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("weight of %q must be a positive integer", kind)
		}
		mix[kind] = w
	}
	return mix, nil
}
