package fetch

import (
	"testing"
	"testing/quick"
)

func ts(id, icount, loads, width int, fetchable bool) ThreadState {
	return ThreadState{ID: id, ICount: icount, InflightLoads: loads, PipeWidth: width, Fetchable: fetchable}
}

func TestICountOrdering(t *testing.T) {
	threads := []ThreadState{
		ts(0, 10, 0, 8, true),
		ts(1, 2, 0, 8, true),
		ts(2, 5, 0, 8, true),
	}
	got := ICount{}.Order(nil, threads)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestICountSkipsUnfetchable(t *testing.T) {
	threads := []ThreadState{
		ts(0, 1, 0, 8, false),
		ts(1, 5, 0, 8, true),
	}
	got := ICount{}.Order(nil, threads)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("order = %v", got)
	}
}

func TestICountTieBreaksByID(t *testing.T) {
	threads := []ThreadState{
		ts(3, 5, 0, 8, true),
		ts(1, 5, 0, 8, true),
		ts(2, 5, 0, 8, true),
	}
	got := ICount{}.Order(nil, threads)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestL1MCountPrimaryKey(t *testing.T) {
	threads := []ThreadState{
		ts(0, 0, 4, 8, true),
		ts(1, 99, 1, 2, true), // more icount but fewer loads: wins
	}
	got := L1MCount{}.Order(nil, threads)
	if got[0] != 1 {
		t.Fatalf("order = %v: fewer in-flight loads must win", got)
	}
}

func TestL1MCountWidthTieBreak(t *testing.T) {
	// Paper: "In case of equal number of inflight loads, threads allocated
	// to wider pipelines have priority."
	threads := []ThreadState{
		ts(0, 0, 2, 2, true),
		ts(1, 0, 2, 6, true),
	}
	got := L1MCount{}.Order(nil, threads)
	if got[0] != 1 {
		t.Fatalf("order = %v: wider pipeline must win the tie", got)
	}
}

func TestL1MCountICountFinalTieBreak(t *testing.T) {
	// Paper: "in case of pipeline coincidence, the ICOUNT 2.8 policy is
	// applied."
	threads := []ThreadState{
		ts(0, 9, 2, 4, true),
		ts(1, 3, 2, 4, true),
	}
	got := L1MCount{}.Order(nil, threads)
	if got[0] != 1 {
		t.Fatalf("order = %v: lower icount must win the final tie", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if (ICount{}).Name() != "ICOUNT2.8" {
		t.Error("ICOUNT name")
	}
	if (Flush{}).Name() != "FLUSH" {
		t.Error("FLUSH name")
	}
	if (L1MCount{}).Name() != "L1MCOUNT" {
		t.Error("L1MCOUNT name")
	}
}

func TestFlushOrdersLikeICount(t *testing.T) {
	threads := []ThreadState{
		ts(0, 10, 0, 8, true),
		ts(1, 2, 0, 8, true),
	}
	a := Flush{}.Order(nil, threads)
	b := ICount{}.Order(nil, threads)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("FLUSH must order like ICOUNT")
		}
	}
}

func TestForConfig(t *testing.T) {
	if ForConfig(true).Name() != "FLUSH" {
		t.Error("monolithic baseline uses FLUSH (paper §4)")
	}
	if ForConfig(false).Name() != "L1MCOUNT" {
		t.Error("multipipeline configs use L1MCOUNT (paper §4)")
	}
}

func TestOrderAppendsToDst(t *testing.T) {
	dst := []int{42}
	got := ICount{}.Order(dst, []ThreadState{ts(0, 1, 0, 8, true)})
	if len(got) != 2 || got[0] != 42 || got[1] != 0 {
		t.Fatalf("append semantics broken: %v", got)
	}
}

// Property: every policy returns a permutation of the fetchable thread IDs.
func TestPoliciesReturnPermutations(t *testing.T) {
	policies := []Policy{ICount{}, Flush{}, L1MCount{}}
	f := func(raw []uint16) bool {
		threads := make([]ThreadState, len(raw))
		fetchable := map[int]bool{}
		for i, r := range raw {
			threads[i] = ThreadState{
				ID:            i,
				Fetchable:     r&1 == 0,
				ICount:        int(r >> 1 & 0x1f),
				InflightLoads: int(r >> 6 & 0x7),
				PipeWidth:     int(r>>9&0x7) + 1,
			}
			if threads[i].Fetchable {
				fetchable[i] = true
			}
		}
		for _, p := range policies {
			got := p.Order(nil, threads)
			if len(got) != len(fetchable) {
				return false
			}
			seen := map[int]bool{}
			for _, id := range got {
				if !fetchable[id] || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
