// Package fetch implements the fetch-priority policies of paper §4.
//
// The shared fetch engine picks, each cycle, up to 2 threads and up to 8
// instructions (Table 1's global limit). Which threads get picked is the
// fetch policy:
//
//   - ICOUNT 2.8 (Tullsen et al.): threads with the fewest instructions in
//     the pre-issue stages go first.
//   - FLUSH (Tullsen & Brown): ICOUNT ordering, plus a mechanism — on a
//     detected L2 miss the offending thread's post-load instructions are
//     flushed and the thread is stalled until the load resolves. The
//     mechanism lives in the core (it squashes state); this package supplies
//     the ordering and the policy identity the core keys the mechanism on.
//   - L1MCOUNT (a DCache-Warn variant, used by all multipipeline
//     configurations): threads with fewer in-flight loads go first; ties
//     break toward threads on wider pipelines; remaining ties fall back to
//     ICOUNT.
package fetch

import "fmt"

// ThreadState is the per-thread information a policy ranks on. The core
// fills one per active thread each cycle.
type ThreadState struct {
	ID            int
	Fetchable     bool // mapped, not stalled, not finished, I-cache ready
	ICount        int  // instructions in pre-issue stages (ICOUNT)
	InflightLoads int  // loads fetched but not completed (L1MCOUNT)
	PipeWidth     int  // width of the pipeline the thread is mapped to
}

// Policy orders threads by fetch priority.
type Policy interface {
	Name() string
	// Order appends the IDs of fetchable threads, highest priority first,
	// to dst and returns it.
	Order(dst []int, threads []ThreadState) []int
}

// orderBy sorts fetchable thread IDs by the given less function, breaking
// exact ties by thread ID for determinism. It runs once per simulated
// cycle, so it allocates nothing: hardware thread counts are single-digit,
// making an insertion sort over indices both the fastest and the simplest
// choice (the comparison plus the ID tie-break forms a strict total
// order, so the result is identical to a stable library sort).
func orderBy(dst []int, threads []ThreadState, less func(a, b *ThreadState) bool) []int {
	start := len(dst)
	for i := range threads {
		if threads[i].Fetchable {
			dst = append(dst, i)
		}
	}
	sel := dst[start:]
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0; j-- {
			a, b := &threads[sel[j-1]], &threads[sel[j]]
			if !less(b, a) && (less(a, b) || a.ID < b.ID) {
				break
			}
			sel[j-1], sel[j] = sel[j], sel[j-1]
		}
	}
	for i, k := range sel {
		sel[i] = threads[k].ID
	}
	return dst
}

// ICount is the ICOUNT 2.8 policy.
type ICount struct{}

// Name returns the paper's name for the policy.
func (ICount) Name() string { return "ICOUNT2.8" }

// Order ranks threads by ascending in-flight pre-issue instruction count.
func (ICount) Order(dst []int, threads []ThreadState) []int {
	return orderBy(dst, threads, func(a, b *ThreadState) bool {
		return a.ICount < b.ICount
	})
}

// Flush is the FLUSH policy ordering: identical to ICOUNT (the flush/stall
// mechanism is engaged by the core when it sees this policy).
type Flush struct{ ICount }

// Name returns the paper's name for the policy.
func (Flush) Name() string { return "FLUSH" }

// L1MCount is the paper's L1MCOUNT policy, "a variant of the DCache Warn
// fetch policy": ascending in-flight loads, then descending pipeline width,
// then ICOUNT.
type L1MCount struct{}

// Name returns the paper's name for the policy.
func (L1MCount) Name() string { return "L1MCOUNT" }

// Order ranks threads per the L1MCOUNT rule.
func (L1MCount) Order(dst []int, threads []ThreadState) []int {
	return orderBy(dst, threads, func(a, b *ThreadState) bool {
		if a.InflightLoads != b.InflightLoads {
			return a.InflightLoads < b.InflightLoads
		}
		if a.PipeWidth != b.PipeWidth {
			return a.PipeWidth > b.PipeWidth
		}
		return a.ICount < b.ICount
	})
}

// ForConfig returns the paper's policy choice for a configuration:
// FLUSH for the monolithic baseline, L1MCOUNT for every multipipeline
// configuration (paper §4).
func ForConfig(monolithic bool) Policy {
	if monolithic {
		return Flush{}
	}
	return L1MCount{}
}

// Policies lists every implemented policy — the one registry shared by
// name-based lookups (simulation requests, search-space validation), so a
// new policy becomes selectable everywhere at once.
func Policies() []Policy {
	return []Policy{ICount{}, Flush{}, L1MCount{}}
}

// ByName resolves a policy from its Name().
func ByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fetch: unknown policy %q", name)
}
