// Package version identifies the build for logs, GET /readyz and the
// hdsmt_build_info metric, so a /metrics scrape names the binary that
// produced it.
package version

import "runtime"

// Version is the human-readable build version. Override at link time:
//
//	go build -ldflags "-X hdsmt/internal/version.Version=v1.2.3"
var Version = "v0.8.0-dev"

// Go returns the toolchain version the binary was built with.
func Go() string { return runtime.Version() }
