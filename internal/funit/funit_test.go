package funit

import (
	"testing"

	"hdsmt/internal/isa"
)

func TestNewPoolPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPool(-1, 0, 0)
}

func TestCounts(t *testing.T) {
	p := NewPool(6, 3, 4) // M8
	if p.Count(isa.UnitInt) != 6 || p.Count(isa.UnitFP) != 3 || p.Count(isa.UnitLdSt) != 4 {
		t.Error("unit counts wrong")
	}
	if p.Count(isa.UnitNone) != 0 {
		t.Error("UnitNone count must be 0")
	}
}

func TestPerCycleLimit(t *testing.T) {
	p := NewPool(2, 1, 1)
	if !p.TryIssue(isa.IntALU, 5) || !p.TryIssue(isa.IntALU, 5) {
		t.Fatal("two int units must accept two issues")
	}
	if p.TryIssue(isa.IntALU, 5) {
		t.Error("third int issue in one cycle must fail")
	}
	// Next cycle, pipelined units are free again.
	if !p.TryIssue(isa.IntALU, 6) {
		t.Error("pipelined unit must accept next cycle")
	}
	if p.Stats().StructStall != 1 {
		t.Errorf("stalls = %d", p.Stats().StructStall)
	}
}

func TestIndependentPools(t *testing.T) {
	p := NewPool(1, 1, 1)
	if !p.TryIssue(isa.IntALU, 0) || !p.TryIssue(isa.FPAdd, 0) || !p.TryIssue(isa.Load, 0) {
		t.Error("distinct unit kinds must not contend")
	}
	if p.TryIssue(isa.Store, 0) {
		t.Error("second ld/st in one cycle with one unit must fail")
	}
}

func TestUnpipelinedDivOccupies(t *testing.T) {
	p := NewPool(1, 0, 0)
	if !p.TryIssue(isa.IntDiv, 10) {
		t.Fatal("div should issue")
	}
	lat := uint64(isa.Latency(isa.IntDiv))
	// While the divide executes, the single unit is busy.
	for c := uint64(11); c < 10+lat; c++ {
		if p.TryIssue(isa.IntALU, c) {
			t.Fatalf("cycle %d: unit should be busy until %d", c, 10+lat)
		}
	}
	if !p.TryIssue(isa.IntALU, 10+lat) {
		t.Error("unit should free after divide completes")
	}
}

func TestFPDivUnpipelined(t *testing.T) {
	p := NewPool(0, 2, 0)
	if !p.TryIssue(isa.FPDiv, 0) || !p.TryIssue(isa.FPDiv, 0) {
		t.Fatal("two fp units, two divs")
	}
	if p.TryIssue(isa.FPAdd, 1) {
		t.Error("both fp units busy with divides")
	}
}

func TestNopAlwaysIssues(t *testing.T) {
	p := NewPool(0, 0, 0)
	for c := uint64(0); c < 5; c++ {
		if !p.TryIssue(isa.Nop, c) {
			t.Error("nop must always issue")
		}
	}
	if p.Stats().Issues != 5 {
		t.Errorf("issues = %d", p.Stats().Issues)
	}
}

func TestReset(t *testing.T) {
	p := NewPool(1, 0, 0)
	p.TryIssue(isa.IntDiv, 0)
	p.Reset()
	if !p.TryIssue(isa.IntALU, 1) {
		t.Error("reset should clear reservations")
	}
	if p.Stats().Issues != 1 {
		t.Error("reset should clear stats")
	}
}

func TestNonMonotonicCycleSafe(t *testing.T) {
	// The pool is queried by multiple pipelines in one core cycle; repeated
	// queries at the same cycle must not reset counters.
	p := NewPool(1, 0, 0)
	if !p.TryIssue(isa.IntALU, 3) {
		t.Fatal("first issue failed")
	}
	if p.TryIssue(isa.IntALU, 3) {
		t.Error("same-cycle second issue must fail after tick")
	}
}

func BenchmarkTryIssue(b *testing.B) {
	p := NewPool(6, 3, 4)
	for i := 0; i < b.N; i++ {
		p.TryIssue(isa.IntALU, uint64(i))
	}
}
