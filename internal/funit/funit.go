// Package funit models the private functional-unit pools of each pipeline
// (paper Fig. 2a: integer units, FP units, LD/ST units). Pipelined units
// accept one instruction per cycle each; unpipelined operations (divides)
// occupy their unit for the full latency.
package funit

import (
	"fmt"

	"hdsmt/internal/isa"
)

// Pool tracks the occupancy of one pipeline's functional units.
type Pool struct {
	counts [isa.NumUnits]int

	// cycleUsed counts issues in the current cycle per unit kind.
	cycleUsed  [isa.NumUnits]int
	cycleStamp uint64

	// busyUntil holds, per unit kind, the release cycles of units occupied
	// by unpipelined operations.
	busyUntil [isa.NumUnits][]uint64

	stats Stats
}

// Stats aggregates pool activity.
type Stats struct {
	Issues      uint64
	StructStall uint64 // issue attempts rejected for lack of a unit
}

// NewPool builds a pool with the given unit counts.
func NewPool(intUnits, fpUnits, ldstUnits int) *Pool {
	if intUnits < 0 || fpUnits < 0 || ldstUnits < 0 {
		panic(fmt.Sprintf("funit: negative unit count (%d,%d,%d)", intUnits, fpUnits, ldstUnits))
	}
	p := &Pool{}
	p.counts[isa.UnitInt] = intUnits
	p.counts[isa.UnitFP] = fpUnits
	p.counts[isa.UnitLdSt] = ldstUnits
	return p
}

// Count returns the number of units of kind u.
func (p *Pool) Count(u isa.Unit) int {
	if u == isa.UnitNone {
		return 0
	}
	return p.counts[u]
}

// Stats returns accumulated statistics.
func (p *Pool) Stats() Stats { return p.stats }

// Reset clears all occupancy and statistics.
func (p *Pool) Reset() {
	p.cycleUsed = [isa.NumUnits]int{}
	p.cycleStamp = 0
	for i := range p.busyUntil {
		p.busyUntil[i] = p.busyUntil[i][:0]
	}
	p.stats = Stats{}
}

// tick rolls the per-cycle issue counters forward and expires unpipelined
// reservations that end at or before the given cycle.
func (p *Pool) tick(cycle uint64) {
	if cycle == p.cycleStamp {
		return
	}
	p.cycleStamp = cycle
	p.cycleUsed = [isa.NumUnits]int{}
	for u := range p.busyUntil {
		live := p.busyUntil[u][:0]
		for _, until := range p.busyUntil[u] {
			if until > cycle {
				live = append(live, until)
			}
		}
		p.busyUntil[u] = live
	}
}

// available returns how many units of kind u can still start at cycle.
func (p *Pool) available(u isa.Unit, cycle uint64) int {
	p.tick(cycle)
	return p.counts[u] - p.cycleUsed[u] - len(p.busyUntil[u])
}

// TryIssue attempts to start an instruction of class c at the given cycle.
// It returns false (and records a structural stall) when no unit of the
// required kind is free. Nops always succeed.
func (p *Pool) TryIssue(c isa.Class, cycle uint64) bool {
	u := isa.UnitFor(c)
	if u == isa.UnitNone {
		p.stats.Issues++
		return true
	}
	if p.available(u, cycle) <= 0 {
		p.stats.StructStall++
		return false
	}
	if isa.Pipelined(c) {
		p.cycleUsed[u]++
	} else {
		// Unpipelined operations occupy the unit from this cycle until
		// completion; the busyUntil reservation covers the issue cycle
		// too, so cycleUsed must not also count it.
		p.busyUntil[u] = append(p.busyUntil[u], cycle+uint64(isa.Latency(c)))
	}
	p.stats.Issues++
	return true
}
