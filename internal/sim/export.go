package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the figure's aggregated cells as CSV for external
// plotting: one row per (config, group) with BEST/HEUR/WORST columns.
func (f FigResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "type", "config", "group", "best", "heur", "worst"}); err != nil {
		return fmt.Errorf("sim: writing CSV header: %w", err)
	}
	for _, cfg := range f.Configs {
		for _, g := range f.Groups {
			c := f.Values[cfg][g]
			rec := []string{
				f.Title, f.Type.String(), cfg, g,
				formatF(c.Best), formatF(c.Heur), formatF(c.Worst),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("sim: writing CSV row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePerWorkloadCSV emits the raw per-workload measurements.
func (f FigResult) WritePerWorkloadCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"type", "config", "workload", "best", "heur", "worst", "mappings", "heur_mapping"}); err != nil {
		return fmt.Errorf("sim: writing CSV header: %w", err)
	}
	for _, cfg := range f.Configs {
		names := make([]string, 0, len(f.PerWorkload[cfg]))
		for n := range f.PerWorkload[cfg] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := f.PerWorkload[cfg][n]
			rec := []string{
				f.Type.String(), cfg, n,
				formatF(m.Best), formatF(m.Heur), formatF(m.Worst),
				strconv.Itoa(m.Mappings), m.HeurMapping.String(),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("sim: writing CSV row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
