// Package sim is the experiment harness: it assembles processors for the
// paper's workloads (Tables 2-3) and microarchitectures (Fig. 3), runs the
// BEST/HEUR/WORST measurements of §5, and aggregates them into the series
// of Figs. 4 and 5 plus the headline summary numbers.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hdsmt/internal/bench"
	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/mapping"
	"hdsmt/internal/trace"
	"hdsmt/internal/workload"
)

// Options scales the simulation. The paper runs 300M instructions per
// thread; the default here is a laptop-scale segment whose comparative
// shape is stable (verified by TestBudgetInsensitivity).
type Options struct {
	// Budget is the measured instructions per thread; the run stops when
	// the first thread retires this many (the paper's stopping rule).
	Budget uint64
	// Warmup is the per-thread instruction count retired before
	// measurement, excluding cold-structure effects that 300M-instruction
	// runs amortize but scaled runs would not.
	Warmup uint64
	// OracleBudget is the per-mapping budget of the BEST/WORST exhaustive
	// search; 0 means Budget.
	OracleBudget uint64
	// MaxOracle caps the number of mappings the oracle simulates. When the
	// enumeration is larger, a deterministic stride subsample is searched
	// (plus the heuristic's mapping, which Evaluate always includes), so
	// BEST becomes a lower bound and WORST an upper bound of the true
	// extremes. 0 means unlimited (the paper's exhaustive oracle).
	MaxOracle int
	// Parallel bounds concurrent simulations for the package-level
	// one-shot helpers (Evaluate, RunFigure, Explore, RunAblations),
	// which size their private engine from it; 0 means GOMAXPROCS.
	// Runner methods ignore it — a shared Runner's concurrency is fixed
	// by engine.Options.Workers at construction.
	Parallel int
	// Sample, when enabled (Period > 0), runs simulations in sampled mode:
	// short detailed intervals at the given period with functional
	// fast-forward between them (core.RunSampled). Results carry a
	// SampleSummary with a 95% confidence interval, and request keys
	// include the sampling parameters, so sampled and exact runs of the
	// same design point memoize separately.
	Sample core.SampleParams
}

// DefaultOptions returns the scaled defaults.
func DefaultOptions() Options {
	return Options{Budget: 30_000, Warmup: 10_000}
}

func (o Options) oracleBudget() uint64 {
	if o.OracleBudget != 0 {
		return o.OracleBudget
	}
	return o.Budget
}

func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Address-space layout: each thread gets a distinct code and data region.
// Code bases are staggered by a non-set-aligned offset so threads do not
// collide pathologically in the I-cache.
const (
	codeBase    = 0x100000
	codeStride  = 0x4000000
	codeStagger = 0x11040
	dataBase    = 0x10000000
	dataStride  = 0x40000000
)

// progCache memoizes built benchmark programs by (benchmark, code base).
// A Program is deterministic in those two inputs and immutable after
// construction (safe for concurrent streams), so every simulation of a
// sweep can share one instance instead of rebuilding the dictionary per
// run — construction would otherwise dominate short-budget cells.
var progCache sync.Map // progKey -> *trace.Program

type progKey struct {
	name string
	base uint64
}

func buildProgram(b bench.Benchmark, base uint64) (*trace.Program, error) {
	key := progKey{b.Name, base}
	if p, ok := progCache.Load(key); ok {
		return p.(*trace.Program), nil
	}
	prog, err := b.Build(base)
	if err != nil {
		return nil, err
	}
	p, _ := progCache.LoadOrStore(key, prog)
	return p.(*trace.Program), nil
}

// Specs builds the per-thread specifications for a workload.
func Specs(w workload.Workload) ([]core.ThreadSpec, error) {
	bs, err := w.Resolve()
	if err != nil {
		return nil, err
	}
	specs := make([]core.ThreadSpec, len(bs))
	for i, b := range bs {
		prog, err := buildProgram(b, uint64(codeBase+i*codeStride+i*codeStagger))
		if err != nil {
			return nil, fmt.Errorf("sim: building %s: %w", b.Name, err)
		}
		specs[i] = core.ThreadSpec{
			Name:     b.Name,
			Program:  prog,
			Seed:     b.Params.Seed ^ uint64(i)<<32,
			DataBase: uint64(dataBase + i*dataStride),
		}
	}
	return specs, nil
}

// Run simulates workload w on cfg under the given thread mapping. When
// opt.Sample is enabled the run is sampled (core.RunSampled) and the
// results carry a SampleSummary.
func Run(cfg config.Microarch, w workload.Workload, m mapping.Mapping, opt Options) (core.Results, error) {
	specs, err := Specs(w)
	if err != nil {
		return core.Results{}, err
	}
	return runSpecs(cfg, specs, m, opt)
}

// RunReference is Run on the core's naive reference stepping path (no
// event-driven issue wakeup, no idle-cycle fast-forward). Results are
// bit-identical to Run — the equivalence tests assert it — so its only
// uses are as the oracle in those tests and as the self-contained baseline
// of perf trajectory reports (cmd/experiments -perf).
func RunReference(cfg config.Microarch, w workload.Workload, m mapping.Mapping, opt Options) (core.Results, error) {
	specs, err := Specs(w)
	if err != nil {
		return core.Results{}, err
	}
	var opts []core.Option
	if opt.Warmup > 0 {
		opts = append(opts, core.WithWarmup(opt.Warmup))
	}
	opts = append(opts, core.WithReferenceStepping())
	p, err := core.New(cfg, specs, m, opts...)
	if err != nil {
		return core.Results{}, err
	}
	return p.Run(opt.Budget)
}

func runSpecs(cfg config.Microarch, specs []core.ThreadSpec, m mapping.Mapping, opt Options) (core.Results, error) {
	opts := append([]core.Option{}, testCoreOptions...)
	if opt.Warmup > 0 {
		opts = append(opts, core.WithWarmup(opt.Warmup))
	}
	p, err := core.New(cfg, specs, m, opts...)
	if err != nil {
		return core.Results{}, err
	}
	if opt.Sample.Enabled() {
		return p.RunSampled(opt.Budget, opt.Sample)
	}
	return p.Run(opt.Budget)
}

// DefaultMapping returns the mapping used when the caller supplies none:
// the trivial all-zero mapping for monolithic configurations (every thread
// on the one pipeline), the §2.1 profile-guided heuristic otherwise.
func DefaultMapping(cfg config.Microarch, w workload.Workload) (mapping.Mapping, error) {
	if cfg.Monolithic {
		return make(mapping.Mapping, w.Threads()), nil
	}
	return HeuristicMapping(cfg, w)
}

// HeuristicMapping computes the §2.1 profile-guided mapping for w on cfg.
func HeuristicMapping(cfg config.Microarch, w workload.Workload) (mapping.Mapping, error) {
	bs, err := w.Resolve()
	if err != nil {
		return nil, err
	}
	misses := make([]uint64, len(bs))
	for i, b := range bs {
		m, err := bench.DCacheMisses(b, bench.ProfileLen)
		if err != nil {
			return nil, err
		}
		misses[i] = m
	}
	return mapping.Heuristic(cfg.ForThreads(len(bs)), misses)
}

// WidthFitMapping computes the extension WidthFit mapping (see
// mapping.WidthFit) from the same profile data HEUR uses.
func WidthFitMapping(cfg config.Microarch, w workload.Workload) (mapping.Mapping, error) {
	bs, err := w.Resolve()
	if err != nil {
		return nil, err
	}
	misses := make([]uint64, len(bs))
	for i, b := range bs {
		m, err := bench.DCacheMisses(b, bench.ProfileLen)
		if err != nil {
			return nil, err
		}
		misses[i] = m
	}
	return mapping.WidthFit(cfg.ForThreads(len(bs)), misses)
}

// Measurement is one (configuration, workload) cell of Figs. 4/5: the
// oracle BEST and WORST mappings' IPC and the heuristic's.
type Measurement struct {
	Config   string
	Workload string

	Best  float64
	Heur  float64
	Worst float64

	BestMapping  mapping.Mapping
	HeurMapping  mapping.Mapping
	WorstMapping mapping.Mapping

	// Mappings is the number of distinct mappings the oracle searched.
	Mappings int
}

// Evaluate produces the Measurement for one configuration and workload:
// monolithic configurations need no mapping (a single measurement serves
// all three series, as in the paper); multipipeline configurations run the
// heuristic mapping at full budget and exhaustively search all distinct
// mappings for BEST/WORST. All simulations fan out through a short-lived
// engine; use Runner.Evaluate to share an engine (and its cache) across
// calls.
func Evaluate(cfg config.Microarch, w workload.Workload, opt Options) (Measurement, error) {
	return ephemeral(opt, func(r *Runner) (Measurement, error) {
		return r.Evaluate(context.Background(), cfg, w, opt)
	})
}

// evalPlan is the batch of engine jobs behind one Measurement: the
// heuristic mapping at full budget plus every oracle mapping at the oracle
// budget (or the single trivial run, for monolithic configurations).
// Planning is separated from finishing so callers can concatenate many
// cells' jobs into a single engine batch (see Runner.RunFigure).
type evalPlan struct {
	cfg  config.Microarch
	w    workload.Workload
	mono bool
	hm   mapping.Mapping
	all  []mapping.Mapping // oracle mappings; reqs[1+i] simulates all[i]
	reqs []engine.Request
}

func planEvaluate(cfg config.Microarch, w workload.Workload, opt Options) (*evalPlan, error) {
	p := &evalPlan{cfg: cfg, w: w}
	n := w.Threads()

	if cfg.Monolithic {
		p.mono = true
		p.hm = make(mapping.Mapping, n) // all threads on the one pipeline
		p.reqs = []engine.Request{newRequest(cfg, w, p.hm, opt.Budget, opt.Warmup)}
		return p, nil
	}

	hm, err := HeuristicMapping(cfg, w)
	if err != nil {
		return nil, err
	}
	p.hm = hm

	all := mapping.Enumerate(cfg, n)
	if len(all) == 0 {
		return nil, fmt.Errorf("sim: no feasible mappings for %s/%s", cfg.Name, w.Name)
	}
	if opt.MaxOracle > 0 && len(all) > opt.MaxOracle {
		sampled := make([]mapping.Mapping, 0, opt.MaxOracle)
		stride := float64(len(all)) / float64(opt.MaxOracle)
		for i := 0; i < opt.MaxOracle; i++ {
			sampled = append(sampled, all[int(float64(i)*stride)])
		}
		all = sampled
	}
	p.all = all
	p.reqs = make([]engine.Request, 0, 1+len(all))
	p.reqs = append(p.reqs, newRequest(cfg, w, hm, opt.Budget, opt.Warmup))
	for _, m := range all {
		p.reqs = append(p.reqs, newRequest(cfg, w, m, opt.oracleBudget(), opt.Warmup))
	}
	return p, nil
}

// finish folds the batch's results (in p.reqs order) into the Measurement.
func (p *evalPlan) finish(results []core.Results) Measurement {
	meas := Measurement{Config: p.cfg.Name, Workload: p.w.Name}
	if p.mono {
		r := results[0]
		meas.Best, meas.Heur, meas.Worst = r.IPC, r.IPC, r.IPC
		meas.BestMapping, meas.HeurMapping, meas.WorstMapping = p.hm, p.hm, p.hm
		meas.Mappings = 1
		return meas
	}

	meas.Heur = results[0].IPC
	meas.HeurMapping = p.hm
	meas.Mappings = len(p.all)

	oracle := results[1:]
	best, worst := 0, 0
	for i := range oracle {
		if oracle[i].IPC > oracle[best].IPC {
			best = i
		}
		if oracle[i].IPC < oracle[worst].IPC {
			worst = i
		}
	}
	meas.Best, meas.BestMapping = oracle[best].IPC, p.all[best]
	meas.Worst, meas.WorstMapping = oracle[worst].IPC, p.all[worst]

	// The oracle search may run at a reduced budget; the heuristic runs at
	// full budget. Clamp so reported series stay consistent (BEST is by
	// definition at least HEUR, WORST at most).
	if meas.Heur > meas.Best {
		meas.Best = meas.Heur
		meas.BestMapping = p.hm
	}
	if meas.Heur < meas.Worst {
		meas.Worst = meas.Heur
		meas.WorstMapping = p.hm
	}
	return meas
}
