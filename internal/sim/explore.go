package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/engine"
	"hdsmt/internal/metrics"
	"hdsmt/internal/workload"
)

// Design-space exploration: the paper evaluates six hand-picked
// configurations; this extension searches the whole space of M6/M4/M2
// multisets under an area budget for the best performance-per-area machine,
// directly operationalizing the paper's goal of "minimizing the amount of
// resources wasted to achieve a given performance rate".

// CandidateConfigs enumerates every multiset of {M6, M4, M2} pipelines with
// between 1 and maxPipes members whose area fits areaCap (0 = no cap),
// plus the monolithic baseline for reference. Results are deterministic,
// ordered by ascending area.
func CandidateConfigs(maxPipes int, areaCap float64) ([]config.Microarch, error) {
	if maxPipes < 1 {
		return nil, fmt.Errorf("sim: maxPipes %d must be at least 1", maxPipes)
	}
	models := []config.Model{config.M6, config.M4, config.M2}
	var out []config.Microarch
	seen := map[string]bool{}

	add := func(cfg config.Microarch) error {
		if seen[cfg.Name] {
			return nil
		}
		a, err := area.Total(cfg)
		if err != nil {
			return err
		}
		if areaCap > 0 && a > areaCap {
			return nil
		}
		seen[cfg.Name] = true
		out = append(out, cfg)
		return nil
	}

	// Multisets via non-decreasing index sequences.
	var rec func(start int, picked []config.Model) error
	rec = func(start int, picked []config.Model) error {
		if len(picked) > 0 {
			if err := add(config.NewMicroarch(picked...)); err != nil {
				return err
			}
		}
		if len(picked) == maxPipes {
			return nil
		}
		for i := start; i < len(models); i++ {
			if err := rec(i, append(picked, models[i])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	if err := add(config.MustParse("M8")); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf(
			"sim: area cap %.2f mm² filters out every candidate (maxPipes %d); the smallest machine is 1M2 at %.2f mm²",
			areaCap, maxPipes, area.MustTotal(config.MustParse("M2")))
	}

	sort.SliceStable(out, func(i, j int) bool {
		return area.MustTotal(out[i]) < area.MustTotal(out[j])
	})
	return out, nil
}

// ExploreResult scores one candidate over the workload set.
type ExploreResult struct {
	Config  string
	Area    float64
	IPC     float64 // harmonic mean over the workloads, HEUR mapping
	PerArea float64
	Skipped bool // too few hardware contexts for some workload
}

// Explore evaluates every candidate on every workload under the §2.1
// heuristic mapping and ranks by performance per area. Candidates lacking
// contexts for any workload are reported as skipped.
func Explore(wls []workload.Workload, cands []config.Microarch, opt Options) ([]ExploreResult, error) {
	return ephemeral(opt, func(r *Runner) ([]ExploreResult, error) {
		return r.Explore(context.Background(), wls, cands, opt, nil)
	})
}

// Explore is Explore on this Runner's engine: every feasible
// (candidate, workload) run is submitted up front, so the worker pool
// stays saturated across candidate boundaries; candidates then settle in
// input order. progress, when non-nil, is called after each candidate
// settles with the count done so far (skipped candidates count — they are
// decided, just not simulated).
func (r *Runner) Explore(ctx context.Context, wls []workload.Workload, cands []config.Microarch, opt Options, progress func(done int)) ([]ExploreResult, error) {
	if len(wls) == 0 {
		return nil, fmt.Errorf("sim: no workloads to explore over")
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("sim: no candidate configurations to explore (CandidateConfigs or a non-empty candidate list required)")
	}
	out := make([]ExploreResult, 0, len(cands))
	offsets := make([]int, len(cands)) // tickets[offsets[i]:offsets[i+1]] belong to out[i]
	var tickets []*engine.Ticket
	for ci, cfg := range cands {
		res := ExploreResult{Config: cfg.Name, Area: area.MustTotal(cfg)}
		var cellReqs []engine.Request
		for _, w := range wls {
			eff := cfg.ForThreads(w.Threads())
			if eff.TotalContexts() < w.Threads() {
				res.Skipped = true
				break
			}
			m, err := DefaultMapping(eff, w)
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", cfg.Name, w.Name, err)
			}
			cellReqs = append(cellReqs, newRequest(eff, w, m, opt.Budget, opt.Warmup))
		}
		offsets[ci] = len(tickets)
		if !res.Skipped {
			for _, req := range cellReqs {
				tk, err := r.eng.Submit(ctx, req)
				if err != nil {
					return nil, fmt.Errorf("sim: submitting %s: %w", req, err)
				}
				tickets = append(tickets, tk)
			}
		}
		out = append(out, res)
	}

	for i := range out {
		end := len(tickets)
		if i+1 < len(out) {
			end = offsets[i+1]
		}
		var ipcs []float64
		for _, tk := range tickets[offsets[i]:end] {
			res, err := tk.Wait(ctx)
			if err != nil {
				return nil, fmt.Errorf("sim: exploring %s: %w", out[i].Config, err)
			}
			ipcs = append(ipcs, res.IPC)
		}
		if !out[i].Skipped {
			out[i].IPC = metrics.HMean(ipcs)
			out[i].PerArea = out[i].IPC / out[i].Area
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Skipped != out[j].Skipped {
			return !out[i].Skipped
		}
		return out[i].PerArea > out[j].PerArea
	})
	return out, nil
}

// RenderExploration formats the ranking.
func RenderExploration(rs []ExploreResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %12s\n", "config", "area mm²", "IPC", "IPC/mm²")
	for _, r := range rs {
		if r.Skipped {
			fmt.Fprintf(&b, "%-16s %10.2f %10s %12s\n", r.Config, r.Area, "-", "(too few contexts)")
			continue
		}
		fmt.Fprintf(&b, "%-16s %10.2f %10.3f %12.5f\n", r.Config, r.Area, r.IPC, r.PerArea)
	}
	return b.String()
}
