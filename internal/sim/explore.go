package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/engine"
	"hdsmt/internal/metrics"
	"hdsmt/internal/workload"
)

// Design-space exploration: the paper evaluates six hand-picked
// configurations; this extension searches the whole space of M6/M4/M2
// multisets under an area budget for the best performance-per-area machine,
// directly operationalizing the paper's goal of "minimizing the amount of
// resources wasted to achieve a given performance rate".

// CandidateConfigs enumerates every multiset of {M6, M4, M2} pipelines with
// between 1 and maxPipes members whose area fits areaCap (0 = no cap),
// plus the monolithic baseline for reference. Results are deterministic,
// ordered by ascending area.
func CandidateConfigs(maxPipes int, areaCap float64) ([]config.Microarch, error) {
	if maxPipes < 1 {
		return nil, fmt.Errorf("sim: maxPipes %d must be at least 1", maxPipes)
	}
	models := []config.Model{config.M6, config.M4, config.M2}
	var out []config.Microarch
	seen := map[string]bool{}

	add := func(cfg config.Microarch) error {
		if seen[cfg.Name] {
			return nil
		}
		a, err := area.Total(cfg)
		if err != nil {
			return err
		}
		if areaCap > 0 && a > areaCap {
			return nil
		}
		seen[cfg.Name] = true
		out = append(out, cfg)
		return nil
	}

	// Multisets via non-decreasing index sequences.
	var rec func(start int, picked []config.Model) error
	rec = func(start int, picked []config.Model) error {
		if len(picked) > 0 {
			if err := add(config.NewMicroarch(picked...)); err != nil {
				return err
			}
		}
		if len(picked) == maxPipes {
			return nil
		}
		for i := start; i < len(models); i++ {
			if err := rec(i, append(picked, models[i])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	if err := add(config.MustParse("M8")); err != nil {
		return nil, err
	}

	sort.SliceStable(out, func(i, j int) bool {
		return area.MustTotal(out[i]) < area.MustTotal(out[j])
	})
	return out, nil
}

// ExploreResult scores one candidate over the workload set.
type ExploreResult struct {
	Config  string
	Area    float64
	IPC     float64 // harmonic mean over the workloads, HEUR mapping
	PerArea float64
	Skipped bool // too few hardware contexts for some workload
}

// Explore evaluates every candidate on every workload under the §2.1
// heuristic mapping and ranks by performance per area. Candidates lacking
// contexts for any workload are reported as skipped.
func Explore(wls []workload.Workload, cands []config.Microarch, opt Options) ([]ExploreResult, error) {
	return ephemeral(opt, func(r *Runner) ([]ExploreResult, error) {
		return r.Explore(context.Background(), wls, cands, opt)
	})
}

// Explore is Explore on this Runner's engine: every feasible
// (candidate, workload) run is planned up front and submitted as one
// batch.
func (r *Runner) Explore(ctx context.Context, wls []workload.Workload, cands []config.Microarch, opt Options) ([]ExploreResult, error) {
	if len(wls) == 0 {
		return nil, fmt.Errorf("sim: no workloads to explore over")
	}
	out := make([]ExploreResult, 0, len(cands))
	var reqs []engine.Request
	owner := make([]int, 0, len(cands)*len(wls)) // reqs[i] belongs to out[owner[i]]
	for _, cfg := range cands {
		res := ExploreResult{Config: cfg.Name, Area: area.MustTotal(cfg)}
		var cellReqs []engine.Request
		for _, w := range wls {
			eff := cfg.ForThreads(w.Threads())
			if eff.TotalContexts() < w.Threads() {
				res.Skipped = true
				break
			}
			m, err := DefaultMapping(eff, w)
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", cfg.Name, w.Name, err)
			}
			cellReqs = append(cellReqs, newRequest(eff, w, m, opt.Budget, opt.Warmup))
		}
		if !res.Skipped {
			for range cellReqs {
				owner = append(owner, len(out))
			}
			reqs = append(reqs, cellReqs...)
		}
		out = append(out, res)
	}

	results, err := r.eng.RunBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	ipcs := make([][]float64, len(out))
	for i, res := range results {
		ipcs[owner[i]] = append(ipcs[owner[i]], res.IPC)
	}
	for i := range out {
		if !out[i].Skipped {
			out[i].IPC = metrics.HMean(ipcs[i])
			out[i].PerArea = out[i].IPC / out[i].Area
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Skipped != out[j].Skipped {
			return !out[i].Skipped
		}
		return out[i].PerArea > out[j].PerArea
	})
	return out, nil
}

// RenderExploration formats the ranking.
func RenderExploration(rs []ExploreResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %12s\n", "config", "area mm²", "IPC", "IPC/mm²")
	for _, r := range rs {
		if r.Skipped {
			fmt.Fprintf(&b, "%-16s %10.2f %10s %12s\n", r.Config, r.Area, "-", "(too few contexts)")
			continue
		}
		fmt.Fprintf(&b, "%-16s %10.2f %10.3f %12.5f\n", r.Config, r.Area, r.IPC, r.PerArea)
	}
	return b.String()
}
