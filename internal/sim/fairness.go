package sim

import (
	"fmt"
	"strings"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// Fairness metrics standard in the SMT literature but absent from the
// paper's evaluation (which reports only combined IPC): weighted speedup
// (Snavely & Tullsen) normalizes each thread's shared-mode throughput by its
// alone-mode throughput, so a policy cannot look good by starving slow
// threads; the harmonic mean of the same ratios additionally punishes
// imbalance.

// FairnessResult reports a configuration/mapping's fairness on a workload.
type FairnessResult struct {
	Config   string
	Workload string
	// PerThread[i] is thread i's relative speedup: shared IPC / alone IPC.
	PerThread []float64
	// WeightedSpeedup is the sum of relative speedups (n would be perfect
	// scaling; 1 means the machine delivers one thread's worth of work).
	WeightedSpeedup float64
	// HarmonicFairness is the harmonic mean of relative speedups.
	HarmonicFairness float64
}

// Render formats the result.
func (f FairnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fairness %s on %s: weighted speedup %.3f, harmonic %.3f\n",
		f.Workload, f.Config, f.WeightedSpeedup, f.HarmonicFairness)
	for i, v := range f.PerThread {
		fmt.Fprintf(&b, "  thread %d relative speedup %.3f\n", i, v)
	}
	return b.String()
}

// WeightedSpeedup sums the relative speedups: the Snavely & Tullsen
// throughput metric. An empty basket sums to 0.
func WeightedSpeedup(rels []float64) float64 {
	sum := 0.0
	for _, r := range rels {
		sum += r
	}
	return sum
}

// HarmonicFairness is the harmonic mean of the relative speedups. A single
// thread's fairness is its own relative speedup; an empty basket is 0; a
// starved thread (relative speedup <= 0) pins the harmonic mean at its
// limit, 0 — the mean must punish total starvation, not average it away.
func HarmonicFairness(rels []float64) float64 {
	if len(rels) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rels {
		if r <= 0 {
			return 0
		}
		sum += 1 / r
	}
	return float64(len(rels)) / sum
}

// relativeSpeedups divides each thread's shared-mode IPC by its alone-mode
// IPC. A non-positive alone IPC is a simulation defect, not a fairness
// signal, and errors out.
func relativeSpeedups(shared, alone []float64) ([]float64, error) {
	if len(shared) != len(alone) {
		return nil, fmt.Errorf("sim: %d shared IPCs vs %d alone runs", len(shared), len(alone))
	}
	rels := make([]float64, len(shared))
	for i := range shared {
		if alone[i] <= 0 {
			return nil, fmt.Errorf("sim: alone run %d produced no throughput", i)
		}
		rels[i] = shared[i] / alone[i]
	}
	return rels, nil
}

// aloneOptions scales the alone-mode warm-up: in the shared run the warm-up
// phase lasts until the *slowest* thread retires its quota, so fast threads
// enter measurement with far warmer caches and predictors than a plain
// single-thread warm-up would give them. Scaling the alone warm-up by the
// thread count keeps the two measurements comparable at scaled budgets (at
// the paper's 300M scale the difference vanishes).
func aloneOptions(opt Options, threads int) Options {
	out := opt
	out.Warmup = opt.Warmup * uint64(threads)
	return out
}

// AloneRequest builds the engine job measuring w's i-th benchmark alone on
// cfg: the single thread on the machine's widest pipeline (the best case a
// migration policy could give it), with the warm-up scaled as aloneOptions
// describes. The request carries no fetch-policy override and no remap
// interval — alone mode has no arbitration to police and nothing to
// migrate — so every policy/remap variant of a machine shares one cached
// alone baseline per benchmark.
func AloneRequest(cfg config.Microarch, w workload.Workload, i int, opt Options) engine.Request {
	name := w.Benchmarks[i]
	aloneW := workload.Workload{Name: w.Name + "/" + name, Benchmarks: []string{name}, Type: w.Type}
	aloneOpt := aloneOptions(opt, w.Threads())
	return newRequest(cfg, aloneW, mapping.Mapping{0}, aloneOpt.Budget, aloneOpt.Warmup)
}

// FairnessFromResults assembles the fairness metrics from an
// already-simulated shared run and the matching alone-run IPCs (in
// w.Benchmarks order) — the engine-batched path: callers submit the shared
// request and AloneRequest per benchmark through the engine, then derive
// fairness here without re-simulating anything.
func FairnessFromResults(cfg config.Microarch, w workload.Workload, shared core.Results, alone []float64) (FairnessResult, error) {
	return fairnessFrom(cfg, w, shared.PerThreadIPC, alone)
}

// fairnessFrom assembles the metrics from per-thread shared IPCs and the
// matching alone IPCs.
func fairnessFrom(cfg config.Microarch, w workload.Workload, shared, alone []float64) (FairnessResult, error) {
	out := FairnessResult{Config: cfg.Name, Workload: w.Name}
	rels, err := relativeSpeedups(shared, alone)
	if err != nil {
		return out, err
	}
	out.PerThread = rels
	out.WeightedSpeedup = WeightedSpeedup(rels)
	out.HarmonicFairness = HarmonicFairness(rels)
	return out, nil
}

// Fairness measures workload w on cfg under mapping m against each thread's
// alone-mode run. Alone mode places the single thread on the machine's
// widest pipeline (the best case a migration policy could give it).
func Fairness(cfg config.Microarch, w workload.Workload, m mapping.Mapping, opt Options) (FairnessResult, error) {
	shared, err := Run(cfg, w, m, opt)
	if err != nil {
		return FairnessResult{Config: cfg.Name, Workload: w.Name}, err
	}
	aloneOpt := aloneOptions(opt, w.Threads())
	alone := make([]float64, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		aloneW := workload.Workload{Name: w.Name + "/" + name, Benchmarks: []string{name}, Type: w.Type}
		r, err := Run(cfg, aloneW, mapping.Mapping{0}, aloneOpt)
		if err != nil {
			return FairnessResult{Config: cfg.Name, Workload: w.Name}, fmt.Errorf("sim: alone run of %s: %w", name, err)
		}
		alone[i] = r.IPC
	}
	return fairnessFrom(cfg, w, shared.PerThreadIPC, alone)
}
