package sim

import (
	"fmt"
	"strings"

	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// Fairness metrics standard in the SMT literature but absent from the
// paper's evaluation (which reports only combined IPC): weighted speedup
// (Snavely & Tullsen) normalizes each thread's shared-mode throughput by its
// alone-mode throughput, so a policy cannot look good by starving slow
// threads; the harmonic mean of the same ratios additionally punishes
// imbalance.

// FairnessResult reports a configuration/mapping's fairness on a workload.
type FairnessResult struct {
	Config   string
	Workload string
	// PerThread[i] is thread i's relative speedup: shared IPC / alone IPC.
	PerThread []float64
	// WeightedSpeedup is the sum of relative speedups (n would be perfect
	// scaling; 1 means the machine delivers one thread's worth of work).
	WeightedSpeedup float64
	// HarmonicFairness is the harmonic mean of relative speedups.
	HarmonicFairness float64
}

// Render formats the result.
func (f FairnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fairness %s on %s: weighted speedup %.3f, harmonic %.3f\n",
		f.Workload, f.Config, f.WeightedSpeedup, f.HarmonicFairness)
	for i, v := range f.PerThread {
		fmt.Fprintf(&b, "  thread %d relative speedup %.3f\n", i, v)
	}
	return b.String()
}

// Fairness measures workload w on cfg under mapping m against each thread's
// alone-mode run. Alone mode places the single thread on the machine's
// widest pipeline (the best case a migration policy could give it).
func Fairness(cfg config.Microarch, w workload.Workload, m mapping.Mapping, opt Options) (FairnessResult, error) {
	out := FairnessResult{Config: cfg.Name, Workload: w.Name}

	shared, err := Run(cfg, w, m, opt)
	if err != nil {
		return out, err
	}

	// Alone runs get a longer warm-up: in the shared run the warm-up phase
	// lasts until the *slowest* thread retires its quota, so fast threads
	// enter measurement with far warmer caches and predictors than a plain
	// single-thread warm-up would give them. Scaling the alone warm-up by
	// the thread count keeps the two measurements comparable at scaled
	// budgets (at the paper's 300M scale the difference vanishes).
	aloneOpt := opt
	aloneOpt.Warmup = opt.Warmup * uint64(w.Threads())

	sumRel, sumInv := 0.0, 0.0
	for i, name := range w.Benchmarks {
		aloneW := workload.Workload{Name: w.Name + "/" + name, Benchmarks: []string{name}, Type: w.Type}
		alone, err := Run(cfg, aloneW, mapping.Mapping{0}, aloneOpt)
		if err != nil {
			return out, fmt.Errorf("sim: alone run of %s: %w", name, err)
		}
		if alone.IPC <= 0 {
			return out, fmt.Errorf("sim: alone run of %s produced no throughput", name)
		}
		rel := shared.PerThreadIPC[i] / alone.IPC
		out.PerThread = append(out.PerThread, rel)
		sumRel += rel
		if rel > 0 {
			sumInv += 1 / rel
		}
	}
	out.WeightedSpeedup = sumRel
	n := float64(len(out.PerThread))
	if sumInv > 0 {
		out.HarmonicFairness = n / sumInv
	}
	return out, nil
}
