package sim

import (
	"fmt"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/metrics"
)

// Energy accounting: joins a run's per-unit activity counters
// (core.Results.Activity) with the activity-energy model
// (config.EnergyModel) and the area model (leakage is area-proportional)
// into total energy and energy-per-instruction — the base of the "energy"
// metric and the derived ED/ED² metrics in the registry.

// EnergyBreakdown is one run's energy accounting.
type EnergyBreakdown struct {
	Config string `json:"config"`
	// DynamicPJ is the switching energy summed over every counted unit
	// access; LeakagePJ the area-proportional static energy over the run's
	// cycles; TotalPJ their sum.
	DynamicPJ float64 `json:"dynamic_pj"`
	LeakagePJ float64 `json:"leakage_pj"`
	TotalPJ   float64 `json:"total_pj"`
	// EPI is the headline figure: total energy per committed instruction,
	// in nanojoules (the registry's "energy" metric).
	EPI float64 `json:"epi_nj"`
	// Units decomposes the dynamic energy by unit, in picojoules, for
	// reports (fetch, icache, branch, decode, rename, fetch_buf, queues,
	// regfile, fu, dcache, l2).
	Units metrics.Values `json:"units"`
}

// EnergyOf prices one completed run under the default energy model.
func EnergyOf(cfg config.Microarch, r core.Results) (EnergyBreakdown, error) {
	return EnergyOfModel(config.DefaultEnergyModel(), cfg, r)
}

// EnergyOfModel prices one completed run under an explicit energy model.
// cfg must be the simulated machine (the same value the request carried):
// per-pipeline activity is priced against that pipeline's structure sizes.
func EnergyOfModel(em config.EnergyModel, cfg config.Microarch, r core.Results) (EnergyBreakdown, error) {
	if err := em.Validate(); err != nil {
		return EnergyBreakdown{}, err
	}
	act := r.Activity
	if len(act.Pipes) != len(cfg.Pipelines) {
		return EnergyBreakdown{}, fmt.Errorf("sim: activity covers %d pipelines, %s has %d (result predates activity counters?)",
			len(act.Pipes), cfg.Name, len(cfg.Pipelines))
	}

	out := EnergyBreakdown{Config: cfg.Name, Units: metrics.Values{}}
	add := func(unit string, pj float64) {
		out.Units[unit] += pj
		out.DynamicPJ += pj
	}
	add("fetch", float64(act.Fetched)*em.FetchPJ)
	add("icache", float64(act.ICacheReads)*em.ICachePJ)
	add("branch", float64(act.BranchLookups)*em.BranchPJ)
	add("decode", float64(act.Decoded)*em.DecodePJ)
	add("rename", float64(act.RenameReads)*em.RenameReadPJ+float64(act.RenameWrites)*em.RenameWritePJ)
	add("regfile", float64(act.RegReads)*em.RegReadPJ+float64(act.RegWrites)*em.RegWritePJ)
	add("dcache", float64(act.DCacheReads+act.DCacheWrites)*em.DCachePJ)
	add("l2", float64(act.L2Accesses)*em.L2PJ)

	fuPJ := [core.QueueKinds]float64{em.FUIntPJ, em.FUFPPJ, em.FULdStPJ}
	for i, pa := range act.Pipes {
		model := cfg.Pipelines[i]
		// The monolithic M8 declares no decoupling buffer; the core gives
		// it a fetch-width latch instead, priced at that size.
		bufEntries := model.FetchBuf
		if bufEntries == 0 {
			bufEntries = cfg.Params.FetchWidth
		}
		add("fetch_buf", float64(pa.FetchBufWrites)*em.FetchBufEnergy(bufEntries))
		for k := 0; k < core.QueueKinds; k++ {
			entries := model.QueueEntries(k)
			add("queues", float64(pa.QueueWrites[k])*em.QueueWriteEnergy(entries)+
				float64(pa.QueueReads[k])*em.QueueReadEnergy(entries))
			add("fu", float64(pa.FUOps[k])*fuPJ[k])
		}
	}

	a, err := area.Total(cfg)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	out.LeakagePJ = em.LeakageEnergy(a, r.Cycles)
	out.TotalPJ = out.DynamicPJ + out.LeakagePJ

	var committed uint64
	for _, n := range r.Committed {
		committed += n
	}
	if committed == 0 {
		return EnergyBreakdown{}, fmt.Errorf("sim: run of %s committed no instructions; EPI undefined", cfg.Name)
	}
	out.EPI = out.TotalPJ / float64(committed) / 1000 // pJ → nJ
	return out, nil
}
