package sim

import (
	"strings"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// runFor simulates one small cell and returns its results.
func runFor(t *testing.T, cfgName string, wlName string) (config.Microarch, core.Results) {
	t.Helper()
	cfg := config.MustParse(cfgName)
	w := workload.MustByName(wlName)
	m, err := DefaultMapping(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg, w, m, Options{Budget: 2_000, Warmup: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	return cfg.ForThreads(w.Threads()), r
}

func TestEnergyOfRealRun(t *testing.T) {
	cfg, r := runFor(t, "2M4+2M2", "2W7")
	eb, err := EnergyOf(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if eb.DynamicPJ <= 0 || eb.LeakagePJ <= 0 || eb.EPI <= 0 {
		t.Fatalf("degenerate energy breakdown: %+v", eb)
	}
	if eb.TotalPJ != eb.DynamicPJ+eb.LeakagePJ {
		t.Errorf("total %v != dynamic %v + leakage %v", eb.TotalPJ, eb.DynamicPJ, eb.LeakagePJ)
	}
	// Every counted unit must price to something on a real run.
	for _, unit := range []string{"fetch", "icache", "branch", "decode", "rename", "fetch_buf", "queues", "regfile", "fu", "dcache", "l2"} {
		if eb.Units[unit] <= 0 {
			t.Errorf("unit %q priced at %v, want positive", unit, eb.Units[unit])
		}
	}
	// Order-of-magnitude sanity: tens of nJ per instruction at 0.18 µm.
	if eb.EPI < 1 || eb.EPI > 500 {
		t.Errorf("EPI %v nJ/instr outside the plausible range [1, 500]", eb.EPI)
	}
}

// TestEnergyMonotoneInQueueScaleEndToEnd is the satellite monotonicity
// test end to end: pricing the *same activity* on a machine with larger
// queues never yields less energy — bigger structures never cost less per
// access.
func TestEnergyMonotoneInQueueScaleEndToEnd(t *testing.T) {
	_, r := runFor(t, "2M4", "2W7")
	prev := -1.0
	for _, pct := range []int{50, 75, 100, 125, 150} {
		m, err := config.ScaleModel(config.M4, pct, 100)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.NewMicroarch(m, m)
		eb, err := EnergyOf(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		if eb.DynamicPJ < prev {
			t.Errorf("dynamic energy fell to %v at queue scale %d%% (was %v)", eb.DynamicPJ, pct, prev)
		}
		prev = eb.DynamicPJ
	}
}

// TestEnergyOfRejectsMissingActivity pins the stale-journal behaviour: a
// result without activity counters (journaled before they existed) must
// error rather than price to zero.
func TestEnergyOfRejectsMissingActivity(t *testing.T) {
	cfg, r := runFor(t, "2M4", "2W7")
	r.Activity.Pipes = nil
	if _, err := EnergyOf(cfg, r); err == nil || !strings.Contains(err.Error(), "activity") {
		t.Errorf("EnergyOf without activity counters: err = %v, want activity complaint", err)
	}
}

// TestEnergyLeakageScalesWithArea pins the static half: the same activity
// on a bigger machine pays more leakage.
func TestEnergyLeakageScalesWithArea(t *testing.T) {
	_, r := runFor(t, "2M4", "2W7")
	small, err := EnergyOf(config.MustParse("2M4"), r)
	if err != nil {
		t.Fatal(err)
	}
	// Same pipeline count (the activity slice must fit), bigger machine.
	big, err := EnergyOf(config.MustParse("2M6"), r)
	if err != nil {
		t.Fatal(err)
	}
	if big.LeakagePJ <= small.LeakagePJ {
		t.Errorf("leakage on 2M6 (%v) not above 2M4 (%v)", big.LeakagePJ, small.LeakagePJ)
	}
}

// TestEnergyFlowsThroughEngine pins the serialization path: a result
// round-tripped through the engine's JSON journal keeps its activity
// counters, so energy derived from a restored result matches the live one.
func TestEnergyFlowsThroughEngine(t *testing.T) {
	cfg := config.MustParse("2M4")
	w := workload.MustByName("2W7")
	dir := t.TempDir()
	opt := Options{Budget: 1_500, Warmup: 500}

	run := func() core.Results {
		r, err := NewRunner(engine.Options{JournalPath: dir + "/journal.jsonl"})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		m := mapping.Mapping{0, 1}
		res, err := r.Run(t.Context(), cfg, w, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	live := run()
	restored := run() // second engine preloads the journal
	liveE, err := EnergyOf(cfg.ForThreads(2), live)
	if err != nil {
		t.Fatal(err)
	}
	restoredE, err := EnergyOf(cfg.ForThreads(2), restored)
	if err != nil {
		t.Fatal(err)
	}
	if liveE.TotalPJ != restoredE.TotalPJ {
		t.Errorf("journal round-trip changed energy: %v vs %v", liveE.TotalPJ, restoredE.TotalPJ)
	}
}
