package sim

import (
	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// DynamicResult reports a dynamic-mapping run next to its static-HEUR
// reference.
type DynamicResult struct {
	StaticIPC  float64
	DynamicIPC float64
	Migrations uint64
	Interval   uint64
}

// RunDynamic runs workload w on cfg twice: once under the static §2.1
// profile-guided mapping, and once under the paper's §7 future-work
// proposal — the same heuristic re-evaluated every interval cycles on
// *observed* per-thread miss counts, migrating threads when the ranking
// changes.
func RunDynamic(cfg config.Microarch, w workload.Workload, interval uint64, opt Options) (DynamicResult, error) {
	out := DynamicResult{Interval: interval}
	specs, err := Specs(w)
	if err != nil {
		return out, err
	}
	initial, err := HeuristicMapping(cfg, w)
	if err != nil {
		return out, err
	}

	var coreOpts []core.Option
	if opt.Warmup > 0 {
		coreOpts = append(coreOpts, core.WithWarmup(opt.Warmup))
	}

	static, err := core.New(cfg, specs, initial, coreOpts...)
	if err != nil {
		return out, err
	}
	rs, err := static.Run(opt.Budget)
	if err != nil {
		return out, err
	}
	out.StaticIPC = rs.IPC

	dynOpts := append(coreOpts, core.WithDynamicMapping(interval, heuristicRemapper(cfg)))
	dyn, err := core.New(cfg, specs, initial, dynOpts...)
	if err != nil {
		return out, err
	}
	rd, err := dyn.Run(opt.Budget)
	if err != nil {
		return out, err
	}
	out.DynamicIPC = rd.IPC
	out.Migrations = dyn.Migrations()
	return out, nil
}

// DefaultRemapInterval is a reasonable reconsideration period: long enough
// to amortize the migration drain, short enough to catch phase changes.
const DefaultRemapInterval = 2_048

// heuristicRemapper is the §7 dynamic-mapping rule shared by RunDynamic
// and the engine's Remap request axis: the §2.1 heuristic re-evaluated on
// observed per-thread miss counts, staying put if the heuristic cannot
// produce a mapping (impossible for valid configurations).
func heuristicRemapper(cfg config.Microarch) core.Remapper {
	return func(misses []uint64, current []int) []int {
		m, err := mapping.Heuristic(cfg.ForThreads(len(misses)), misses)
		if err != nil {
			return current
		}
		return m
	}
}
