package sim

import (
	"strings"
	"testing"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

func TestAblateRFLatency(t *testing.T) {
	a, err := AblateRFLatency(workload.MustByName("2W1"), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != 3 {
		t.Fatalf("points = %d", len(a.Points))
	}
	// Slower register files must not help.
	if a.Points[0].IPC < a.Points[2].IPC {
		t.Errorf("1-cycle RF (%.3f) slower than 3-cycle RF (%.3f)",
			a.Points[0].IPC, a.Points[2].IPC)
	}
	if !strings.Contains(a.Render(), "register-file") {
		t.Error("render missing name")
	}
}

func TestAblateFetchBuffer(t *testing.T) {
	a, err := AblateFetchBuffer(workload.MustByName("2W1"), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != 4 {
		t.Fatalf("points = %d", len(a.Points))
	}
	for _, p := range a.Points {
		if p.IPC <= 0 {
			t.Errorf("%s: non-positive IPC", p.Label)
		}
	}
}

func TestAblateFetchPolicy(t *testing.T) {
	a, err := AblateFetchPolicy(workload.MustByName("2W7"), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ICOUNT2.8", "FLUSH", "L1MCOUNT"}
	if len(a.Points) != len(want) {
		t.Fatalf("points = %d", len(a.Points))
	}
	for i, p := range a.Points {
		if p.Label != want[i] {
			t.Errorf("point %d = %s, want %s", i, p.Label, want[i])
		}
		if p.IPC <= 0 {
			t.Errorf("%s: non-positive IPC", p.Label)
		}
	}
}

func TestRunAblations(t *testing.T) {
	as, err := RunAblations(workload.MustByName("2W7"), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 3 {
		t.Fatalf("ablations = %d", len(as))
	}
}

func TestRunDynamic(t *testing.T) {
	r, err := RunDynamic(config.MustParse("2M4+2M2"), workload.MustByName("2W7"),
		512, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.StaticIPC <= 0 || r.DynamicIPC <= 0 {
		t.Errorf("non-positive IPCs: %+v", r)
	}
	if r.Interval != 512 {
		t.Errorf("interval = %d", r.Interval)
	}
}

func TestCandidateConfigs(t *testing.T) {
	cands, err := CandidateConfigs(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Multisets of {M6,M4,M2} of size 1..3: C(3,1)+C(4,2)+C(5,3) with
	// repetition = 3 + 6 + 10 = 19, plus M8.
	if len(cands) != 20 {
		t.Errorf("candidates = %d, want 20", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Name] {
			t.Errorf("duplicate candidate %s", c.Name)
		}
		seen[c.Name] = true
	}
	if !seen["M8"] {
		t.Error("baseline missing")
	}
	if !seen["2M4"] || !seen["1M6+1M4+1M2"] {
		t.Errorf("expected multisets missing: %v", seen)
	}
	// Area cap filters.
	capped, err := CandidateConfigs(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range capped {
		if a := mustArea(t, c); a > 60 {
			t.Errorf("%s area %.1f exceeds cap", c.Name, a)
		}
	}
	if _, err := CandidateConfigs(0, 0); err == nil {
		t.Error("maxPipes 0 must fail")
	}
}

func mustArea(t *testing.T, c config.Microarch) float64 {
	t.Helper()
	a, err := area.Total(c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestExploreRanksByPerArea(t *testing.T) {
	cands, err := CandidateConfigs(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	wls := []workload.Workload{workload.MustByName("2W7")}
	rs, err := Explore(wls, cands, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(cands) {
		t.Fatalf("results = %d", len(rs))
	}
	lastPA := rs[0].PerArea
	for _, r := range rs {
		if r.Skipped {
			continue // skipped sort to the end
		}
		if r.PerArea > lastPA+1e-12 {
			t.Error("ranking not descending by IPC/mm²")
		}
		lastPA = r.PerArea
	}
	// Single-M2 candidates cannot hold a 2-thread workload.
	foundSkipped := false
	for _, r := range rs {
		if r.Config == "1M2" && r.Skipped {
			foundSkipped = true
		}
	}
	if !foundSkipped {
		t.Error("1M2 should be skipped for a 2-thread workload")
	}
	if RenderExploration(rs) == "" {
		t.Error("empty render")
	}
}

func TestExploreErrors(t *testing.T) {
	if _, err := Explore(nil, nil, tinyOptions()); err == nil {
		t.Error("empty workload set must fail")
	}
}

func TestFairnessMetrics(t *testing.T) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("2W7")
	m, err := HeuristicMapping(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// Fairness needs a long enough measurement window that per-thread
	// rates average over miss bursts; tiny budgets give meaningless
	// per-thread ratios.
	f, err := Fairness(cfg, w, m, Options{Budget: 12_000, Warmup: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PerThread) != 2 {
		t.Fatalf("per-thread = %d", len(f.PerThread))
	}
	for i, rel := range f.PerThread {
		// Relative speedups can slightly exceed 1 at scaled budgets
		// (warm-up asymmetries; see Fairness), but not wildly.
		if rel <= 0 || rel > 2.0 {
			t.Errorf("thread %d relative speedup %.3f implausible", i, rel)
		}
	}
	if f.WeightedSpeedup <= 0 || f.WeightedSpeedup > 1.5*float64(w.Threads()) {
		t.Errorf("weighted speedup %.3f out of range", f.WeightedSpeedup)
	}
	if f.HarmonicFairness > f.WeightedSpeedup/float64(w.Threads())+1e-9 {
		t.Error("harmonic fairness must not exceed the arithmetic mean of speedups")
	}
	if f.Render() == "" {
		t.Error("empty render")
	}
}

func TestWidthFitMapping(t *testing.T) {
	cfg := config.MustParse("1M6+2M4+2M2")
	w := workload.MustByName("6W1") // 6 ILP threads
	m, err := WidthFitMapping(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapping.Validate(cfg, m); err != nil {
		t.Fatal(err)
	}
	// WidthFit must fill the wide pipelines: nobody on an M2 when
	// M6 + 2xM4 can hold all six threads.
	for i, p := range m {
		if cfg.Pipelines[p].Name == "M2" {
			t.Errorf("thread %d (%s) stranded on M2 by WidthFit", i, w.Benchmarks[i])
		}
	}
}
