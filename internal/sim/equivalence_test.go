package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/workload"
)

// sweepArtifacts runs a small BEST/HEUR/WORST sweep and returns its two
// export artifacts: the JSON encoding of the measurements (what the job
// server returns for a sweep) and the per-workload CSV.
func sweepArtifacts(t *testing.T, reference bool) (jsonOut, csvOut []byte) {
	t.Helper()
	if reference {
		testCoreOptions = []core.Option{core.WithReferenceStepping()}
		defer func() { testCoreOptions = nil }()
	}
	r, err := NewRunner(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cells := []SweepCell{
		{Cfg: config.MustParse("M8"), W: workload.MustByName("2W4")},
		{Cfg: config.MustParse("2M4+2M2"), W: workload.MustByName("2W7")},
	}
	opt := Options{Budget: 4_000, Warmup: 1_000, OracleBudget: 2_000, MaxOracle: 6}
	ms, err := r.EvaluateAll(context.Background(), cells, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	fig := FigResult{
		Title:   "equivalence",
		Type:    workload.MIX,
		Configs: []string{"M8", "2M4+2M2"},
		Groups:  []string{"2T"},
		Values:  map[string]map[string]Cell{},
		PerWorkload: map[string]map[string]Measurement{
			"M8":      {"2W4": ms[0]},
			"2M4+2M2": {"2W7": ms[1]},
		},
	}
	fig.Values["M8"] = map[string]Cell{"2T": {Best: ms[0].Best, Heur: ms[0].Heur, Worst: ms[0].Worst}}
	fig.Values["2M4+2M2"] = map[string]Cell{"2T": {Best: ms[1].Best, Heur: ms[1].Heur, Worst: ms[1].Worst}}
	var csvBuf bytes.Buffer
	if err := fig.WritePerWorkloadCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	return j, csvBuf.Bytes()
}

// TestSweepJSONEquivalence pins the PR's headline correctness claim at the
// harness level: a BEST/HEUR/WORST sweep — heuristic mapping, oracle
// enumeration, engine fan-out and export included — produces byte-identical
// JSON and CSV whether the cores step with the event-driven wakeup and
// idle-cycle fast-forward or with the naive reference path.
func TestSweepJSONEquivalence(t *testing.T) {
	optJSON, optCSV := sweepArtifacts(t, false)
	refJSON, refCSV := sweepArtifacts(t, true)
	if !bytes.Equal(optJSON, refJSON) {
		t.Errorf("sweep JSON diverges between optimized and reference stepping:\noptimized:\n%s\nreference:\n%s", optJSON, refJSON)
	}
	if !bytes.Equal(optCSV, refCSV) {
		t.Errorf("sweep CSV diverges between optimized and reference stepping:\noptimized:\n%s\nreference:\n%s", optCSV, refCSV)
	}
}
