package sim

import (
	"strings"
	"sync"
	"testing"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// tinyOptions keeps unit tests fast; shape assertions use modest budgets.
func tinyOptions() Options {
	return Options{Budget: 3_000, Warmup: 2_000, OracleBudget: 1_500}
}

func TestSpecs(t *testing.T) {
	w := workload.MustByName("4W6")
	specs, err := Specs(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	seenCode := map[uint64]bool{}
	seenData := map[uint64]bool{}
	for _, s := range specs {
		lo, _ := s.Program.PCBounds()
		if seenCode[lo] {
			t.Error("duplicate code base")
		}
		seenCode[lo] = true
		if seenData[s.DataBase] {
			t.Error("duplicate data base")
		}
		seenData[s.DataBase] = true
	}
}

func TestRunMonolithic(t *testing.T) {
	w := workload.MustByName("2W1")
	r, err := Run(config.MustParse("M8"), w, mapping.Mapping{0, 0}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestHeuristicMappingUsesProfiles(t *testing.T) {
	// 2W7 = gzip (ILP) + twolf (MEM) on 2M4+2M2: contexts (6) exceed
	// threads (2), so step 4 gives gzip — the fewest-misses thread — the
	// widest pipeline privately; twolf lands on the next one. The two must
	// not share, and twolf must not get a wider pipeline than gzip.
	cfg := config.MustParse("2M4+2M2")
	m, err := HeuristicMapping(cfg, workload.MustByName("2W7"))
	if err != nil {
		t.Fatal(err)
	}
	gzipPipe, twolfPipe := m[0], m[1]
	if gzipPipe == twolfPipe {
		t.Errorf("mapping %v: step 4 must give gzip a private pipeline", m)
	}
	if gzipPipe != 0 {
		t.Errorf("mapping %v: gzip must take the widest pipeline", m)
	}
	if cfg.Pipelines[twolfPipe].Width > cfg.Pipelines[gzipPipe].Width {
		t.Errorf("mapping %v: twolf on a wider pipeline than gzip", m)
	}
}

func TestEvaluateMonolithic(t *testing.T) {
	m, err := Evaluate(config.MustParse("M8"), workload.MustByName("2W1"), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Best != m.Heur || m.Heur != m.Worst {
		t.Error("monolithic series must coincide (no mapping needed)")
	}
	if m.Mappings != 1 {
		t.Errorf("mappings = %d", m.Mappings)
	}
}

func TestEvaluateClusteredOrdering(t *testing.T) {
	m, err := Evaluate(config.MustParse("2M4+2M2"), workload.MustByName("2W7"), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Best < m.Heur || m.Heur < m.Worst {
		t.Errorf("series out of order: best=%.3f heur=%.3f worst=%.3f", m.Best, m.Heur, m.Worst)
	}
	if m.Mappings < 2 {
		t.Errorf("oracle searched %d mappings", m.Mappings)
	}
	if mapping.Validate(config.MustParse("2M4+2M2"), m.BestMapping) != nil {
		t.Error("best mapping invalid")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("2W9")
	a, err := Evaluate(cfg, w, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(cfg, w, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.Heur != b.Heur || a.Worst != b.Worst {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// memFig caches the MEM sub-figure across tests (it is the expensive part
// of this package's suite).
var memFig = struct {
	once sync.Once
	fig  FigResult
	err  error
}{}

func memFigure(t *testing.T) FigResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full MEM sub-figure sweep (tens of seconds); run without -short for it")
	}
	memFig.once.Do(func() {
		memFig.fig, memFig.err = RunFigure(workload.MEM, tinyOptions())
	})
	if memFig.err != nil {
		t.Fatal(memFig.err)
	}
	return memFig.fig
}

func TestRunFigureMEM(t *testing.T) {
	// MEM is the smallest sub-figure (5 workloads, no 6-thread group).
	fig := memFigure(t)
	if len(fig.Configs) != 6 {
		t.Fatalf("configs = %d", len(fig.Configs))
	}
	wantGroups := []string{"2 THREADS", "4 THREADS", "HMEAN"}
	if len(fig.Groups) != len(wantGroups) {
		t.Fatalf("groups = %v", fig.Groups)
	}
	for i, g := range wantGroups {
		if fig.Groups[i] != g {
			t.Errorf("group %d = %s, want %s", i, fig.Groups[i], g)
		}
	}
	for _, cfg := range fig.Configs {
		for _, g := range fig.Groups {
			c := fig.Values[cfg][g]
			if c.Heur <= 0 || c.Best < c.Heur || c.Heur < c.Worst {
				t.Errorf("%s/%s cell out of order: %+v", cfg, g, c)
			}
		}
	}
	if !strings.Contains(fig.Render(), "MEM workloads") {
		t.Error("render missing title")
	}
	if fig.RenderPerWorkload() == "" {
		t.Error("per-workload render empty")
	}
}

func TestPerAreaDerivation(t *testing.T) {
	fig := memFigure(t)
	pa, err := fig.PerArea()
	if err != nil {
		t.Fatal(err)
	}
	// 2M4+2M2 is 27% smaller than M8, so its per-area cells must gain
	// exactly the area ratio against its own IPC cells.
	ipc := fig.Values["2M4+2M2"]["HMEAN"].Heur
	pav := pa.Values["2M4+2M2"]["HMEAN"].Heur
	if pav <= 0 || pav >= ipc {
		t.Errorf("per-area %.5f vs ipc %.5f", pav, ipc)
	}
	if !strings.Contains(pa.Title, "Fig. 5") {
		t.Errorf("per-area title = %q", pa.Title)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.Budget == 0 || o.Warmup == 0 {
		t.Error("defaults must be non-zero")
	}
	if o.oracleBudget() != o.Budget {
		t.Error("oracle budget must default to Budget")
	}
	o.OracleBudget = 7
	if o.oracleBudget() != 7 {
		t.Error("oracle budget override ignored")
	}
	if o.workers() <= 0 {
		t.Error("workers must be positive")
	}
	o.Parallel = 3
	if o.workers() != 3 {
		t.Error("parallel override ignored")
	}
}

func TestWriteCSV(t *testing.T) {
	fig := memFigure(t)
	var buf strings.Builder
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	// Header + 6 configs x 3 groups.
	if lines != 1+6*3 {
		t.Errorf("CSV lines = %d, want %d", lines, 1+6*3)
	}
	if !strings.Contains(out, "2M4+2M2") {
		t.Error("CSV missing configs")
	}
	var per strings.Builder
	if err := fig.WritePerWorkloadCSV(&per); err != nil {
		t.Fatal(err)
	}
	// Header + 6 configs x 5 MEM workloads.
	if got := strings.Count(per.String(), "\n"); got != 1+6*5 {
		t.Errorf("per-workload CSV lines = %d, want %d", got, 1+6*5)
	}
}

// TestBudgetInsensitivity verifies the claim in the Options docstring: the
// comparative shape (which configuration wins performance-per-area) is
// stable across instruction budgets.
func TestBudgetInsensitivity(t *testing.T) {
	w := workload.MustByName("2W7")
	perArea := func(budget, warmup uint64) (m8, hd float64) {
		cfgM8 := config.MustParse("M8")
		r1, err := Run(cfgM8, w, mapping.Mapping{0, 0}, Options{Budget: budget, Warmup: warmup})
		if err != nil {
			t.Fatal(err)
		}
		cfgHd := config.MustParse("2M4+2M2")
		hm, err := HeuristicMapping(cfgHd, w)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(cfgHd, w, hm, Options{Budget: budget, Warmup: warmup})
		if err != nil {
			t.Fatal(err)
		}
		return r1.IPC / area.MustTotal(cfgM8), r2.IPC / area.MustTotal(cfgHd)
	}
	m8a, hda := perArea(5_000, 4_000)
	m8b, hdb := perArea(15_000, 8_000)
	if (hda > m8a) != (hdb > m8b) {
		t.Errorf("perf/area winner flips with budget: small %.5f vs %.5f, large %.5f vs %.5f",
			hda, m8a, hdb, m8b)
	}
	if hda <= m8a {
		t.Errorf("2M4+2M2 should win perf/area on 2W7 (got %.5f vs %.5f)", hda, m8a)
	}
}
