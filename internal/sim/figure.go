package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/metrics"
	"hdsmt/internal/workload"
)

// Cell is one bar triple of Figs. 4/5: the BEST/HEUR/WORST values
// (IPC for Fig. 4, IPC per mm² for Fig. 5) aggregated over a workload
// group by harmonic mean.
type Cell struct {
	Best, Heur, Worst float64
}

// scale returns the cell divided by a constant (area normalization).
func (c Cell) scale(d float64) Cell {
	return Cell{Best: c.Best / d, Heur: c.Heur / d, Worst: c.Worst / d}
}

// FigResult is one sub-figure of Fig. 4 or Fig. 5 (one workload type):
// for every configuration, the per-thread-count group harmonic means plus
// the overall HMEAN column, exactly the bars the paper plots.
type FigResult struct {
	Title   string
	Type    workload.Type
	Configs []string
	Groups  []string // "2 THREADS", "4 THREADS", ["6 THREADS",] "HMEAN"
	// Values[config][group] is the aggregated cell.
	Values map[string]map[string]Cell
	// PerWorkload[config][workload] holds the raw per-workload
	// measurements behind the aggregation.
	PerWorkload map[string]map[string]Measurement
}

// groupLabel formats a thread-count group header as the figure does.
func groupLabel(n int) string { return fmt.Sprintf("%d THREADS", n) }

// groupsFor lists the thread-count groups populated for a workload type
// (MEM has no 6-thread workloads) plus the overall HMEAN.
func groupsFor(t workload.Type) []string {
	var gs []string
	for _, n := range workload.ThreadCounts() {
		if len(workload.Select(n, t)) > 0 {
			gs = append(gs, groupLabel(n))
		}
	}
	return append(gs, "HMEAN")
}

// RunFigure computes the Fig. 4 sub-figure (IPC) for one workload type
// across all six evaluated microarchitectures. Fig. 5's per-area variant
// derives from the same measurements via PerArea.
func RunFigure(t workload.Type, opt Options) (FigResult, error) {
	return ephemeral(opt, func(r *Runner) (FigResult, error) {
		return r.RunFigure(context.Background(), t, opt)
	})
}

// RunFigure is RunFigure on this Runner's engine: every cell's heuristic
// run and oracle search is planned up front and submitted as one batch, so
// the engine's worker pool is the only fan-out and its cache deduplicates
// cells shared with earlier sweeps.
func (r *Runner) RunFigure(ctx context.Context, t workload.Type, opt Options) (FigResult, error) {
	configs := config.EvaluatedMicroarchs()
	fig := FigResult{
		Title:       fmt.Sprintf("Fig. 4: IPC, %s workloads", t),
		Type:        t,
		Groups:      groupsFor(t),
		Values:      map[string]map[string]Cell{},
		PerWorkload: map[string]map[string]Measurement{},
	}
	var wls []workload.Workload
	for _, n := range workload.ThreadCounts() {
		wls = append(wls, workload.Select(n, t)...)
	}

	var cells []SweepCell
	for _, cfg := range configs {
		fig.Configs = append(fig.Configs, cfg.Name)
		for _, w := range wls {
			cells = append(cells, SweepCell{Cfg: cfg, W: w})
		}
	}

	ms, err := r.EvaluateAll(ctx, cells, opt, nil)
	if err != nil {
		return fig, err
	}
	for i, m := range ms {
		cfgName := cells[i].Cfg.Name
		if fig.PerWorkload[cfgName] == nil {
			fig.PerWorkload[cfgName] = map[string]Measurement{}
		}
		fig.PerWorkload[cfgName][m.Workload] = m
	}

	// Aggregate harmonic means per group.
	for _, cfg := range configs {
		fig.Values[cfg.Name] = map[string]Cell{}
		var allBest, allHeur, allWorst []float64
		for _, n := range workload.ThreadCounts() {
			group := workload.Select(n, t)
			if len(group) == 0 {
				continue
			}
			var bs, hs, ws []float64
			for _, w := range group {
				m := fig.PerWorkload[cfg.Name][w.Name]
				bs = append(bs, m.Best)
				hs = append(hs, m.Heur)
				ws = append(ws, m.Worst)
			}
			fig.Values[cfg.Name][groupLabel(n)] = Cell{
				Best:  metrics.HMean(bs),
				Heur:  metrics.HMean(hs),
				Worst: metrics.HMean(ws),
			}
			allBest = append(allBest, bs...)
			allHeur = append(allHeur, hs...)
			allWorst = append(allWorst, ws...)
		}
		fig.Values[cfg.Name]["HMEAN"] = Cell{
			Best:  metrics.HMean(allBest),
			Heur:  metrics.HMean(allHeur),
			Worst: metrics.HMean(allWorst),
		}
	}
	return fig, nil
}

// PerArea converts a Fig. 4 result into its Fig. 5 counterpart by dividing
// every series by the configuration's area (a constant per configuration,
// so harmonic means divide through exactly).
func (f FigResult) PerArea() (FigResult, error) {
	out := f
	out.Title = strings.Replace(f.Title, "Fig. 4: IPC", "Fig. 5: IPC/mm²", 1)
	out.Values = map[string]map[string]Cell{}
	for _, cfgName := range f.Configs {
		a, err := area.Total(config.MustParse(cfgName))
		if err != nil {
			return out, err
		}
		out.Values[cfgName] = map[string]Cell{}
		for g, cell := range f.Values[cfgName] {
			out.Values[cfgName][g] = cell.scale(a)
		}
	}
	return out, nil
}

// Render formats the figure as an aligned text table, one row per
// configuration, BEST/HEUR/WORST columns per group.
func (f FigResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-14s", "config")
	for _, g := range f.Groups {
		fmt.Fprintf(&b, " | %-26s", g)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-14s", "")
	for range f.Groups {
		fmt.Fprintf(&b, " | %8s %8s %8s", "BEST", "HEUR", "WORST")
	}
	b.WriteByte('\n')
	for _, cfg := range f.Configs {
		fmt.Fprintf(&b, "%-14s", cfg)
		for _, g := range f.Groups {
			c := f.Values[cfg][g]
			fmt.Fprintf(&b, " | %8.4f %8.4f %8.4f", c.Best, c.Heur, c.Worst)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPerWorkload lists the raw per-workload measurements sorted by
// workload name, for the per-experiment appendix.
func (f FigResult) RenderPerWorkload() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-workload detail\n", f.Title)
	for _, cfg := range f.Configs {
		names := make([]string, 0, len(f.PerWorkload[cfg]))
		for n := range f.PerWorkload[cfg] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := f.PerWorkload[cfg][n]
			fmt.Fprintf(&b, "  %-12s %-4s best=%.4f heur=%.4f worst=%.4f (%d mappings, heur %v)\n",
				cfg, n, m.Best, m.Heur, m.Worst, m.Mappings, m.HeurMapping)
		}
	}
	return b.String()
}
