package sim

import (
	"context"
	"fmt"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/fetch"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// Runner executes this package's sweeps on a shared engine.Engine: every
// simulation — heuristic runs, oracle searches, ablation sweeps,
// design-space exploration — is submitted as a content-addressed job, so
// concurrency is bounded in one place and any simulation repeated across
// sweeps (or across re-runs, with a cache directory or journal) is served
// from the memoization store instead of being executed again.
//
// The package-level Evaluate/RunFigure/Explore/RunAblations helpers remain
// for one-shot use; they run on a private short-lived Runner. Long-lived
// callers (cmd/hdsmtd, repeated sweeps) should construct one Runner and
// share it.
type Runner struct {
	eng *engine.Engine
}

// NewRunner builds a Runner on a fresh engine. opts.Workers bounds
// concurrent simulations (0 = GOMAXPROCS); CacheDir and JournalPath enable
// the on-disk store and the checkpoint journal.
func NewRunner(opts engine.Options) (*Runner, error) {
	eng, err := engine.New(simulate, opts)
	if err != nil {
		return nil, err
	}
	return &Runner{eng: eng}, nil
}

// Close releases the engine's workers.
func (r *Runner) Close() { r.eng.Close() }

// Stats exposes the engine's hit/miss/executed counters.
func (r *Runner) Stats() engine.Stats { return r.eng.Stats() }

// Accepting reports whether the underlying engine still takes
// submissions; /readyz keys off it.
func (r *Runner) Accepting() bool { return r.eng.Accepting() }

// Engine returns the underlying engine (for direct Submit access).
func (r *Runner) Engine() *engine.Engine { return r.eng }

// testCoreOptions, when non-empty, is appended to every simulation's
// processor options. Equivalence tests use it to force the reference
// stepping path (core.WithReferenceStepping) under entire sweeps.
var testCoreOptions []core.Option

// simulate is the engine's runner function: it executes one request with
// the core simulator. It is deterministic — a requirement of the engine's
// memoization — because the core is (fixed seeds, no wall-clock input).
func simulate(ctx context.Context, req engine.Request) (core.Results, error) {
	if err := ctx.Err(); err != nil {
		return core.Results{}, err
	}
	specs, err := Specs(req.Workload)
	if err != nil {
		return core.Results{}, err
	}
	opts := append([]core.Option{}, testCoreOptions...)
	if req.Warmup > 0 {
		opts = append(opts, core.WithWarmup(req.Warmup))
	}
	if req.Policy != "" {
		pol, err := policyByName(req.Policy)
		if err != nil {
			return core.Results{}, err
		}
		opts = append(opts, core.WithPolicy(pol))
	}
	if req.Remap > 0 {
		opts = append(opts, core.WithDynamicMapping(req.Remap, heuristicRemapper(req.Cfg)))
	}
	p, err := core.New(req.Cfg, specs, req.Mapping, opts...)
	if err != nil {
		return core.Results{}, err
	}
	if sp := req.Sample(); sp.Enabled() {
		return p.RunSampled(req.Budget, sp)
	}
	return p.Run(req.Budget)
}

// defaultPolicyName is the policy core.New picks when none is overridden,
// so callers can avoid keying the default policy explicitly.
func defaultPolicyName(cfg config.Microarch) string {
	return fetch.ForConfig(cfg.Monolithic).Name()
}

// policyByName resolves a fetch.Policy from its Name().
func policyByName(name string) (fetch.Policy, error) {
	p, err := fetch.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return p, nil
}

// newRequest assembles the engine job for one simulation. The
// configuration is normalized with ForThreads (idempotent) so every
// caller keys the same simulation identically — the core applies the same
// stretch internally, and a divergent key would defeat cross-sweep
// memoization for monolithic cells.
func newRequest(cfg config.Microarch, w workload.Workload, m mapping.Mapping, budget, warmup uint64) engine.Request {
	return engine.Request{
		Cfg:      cfg.ForThreads(w.Threads()),
		Workload: w,
		Mapping:  m,
		Budget:   budget,
		Warmup:   warmup,
	}
}

// withSample stamps sampling parameters onto a request when opt enables
// sampled execution; the exact path leaves the request — and its cache key —
// untouched.
func withSample(req engine.Request, opt Options) engine.Request {
	if opt.Sample.Enabled() {
		req.SamplePeriod = opt.Sample.Period
		req.SampleDetail = opt.Sample.Detail
		req.SampleWarm = opt.Sample.Warm
	}
	return req
}

// NewRequest assembles the engine job for one design point: cfg on w under
// the default (§2.1 heuristic) mapping, with an optional fetch-policy
// override and an optional dynamic-remap interval. A policy equal to the
// configuration's default is normalized to "" and a remap interval on a
// monolithic configuration (where migration is meaningless) to 0, so
// equivalent points share one cache key. Design-space searchers build
// their evaluation batches from it and submit via Engine().
func NewRequest(cfg config.Microarch, w workload.Workload, opt Options, policy string, remap uint64) (engine.Request, error) {
	if policy != "" {
		if _, err := policyByName(policy); err != nil {
			return engine.Request{}, err
		}
	}
	m, err := DefaultMapping(cfg, w)
	if err != nil {
		return engine.Request{}, err
	}
	req := withSample(newRequest(cfg, w, m, opt.Budget, opt.Warmup), opt)
	if policy != "" && policy != defaultPolicyName(cfg) {
		req.Policy = policy
	}
	if remap > 0 && !cfg.Monolithic {
		req.Remap = remap
	}
	return req, nil
}

// Run simulates one (configuration, workload, mapping) cell through the
// engine, so repeated runs hit the cache.
func (r *Runner) Run(ctx context.Context, cfg config.Microarch, w workload.Workload, m mapping.Mapping, opt Options) (core.Results, error) {
	results, err := r.eng.RunBatch(ctx, []engine.Request{newRequest(cfg, w, m, opt.Budget, opt.Warmup)})
	if err != nil {
		return core.Results{}, err
	}
	return results[0], nil
}

// Evaluate is Evaluate on this Runner's engine.
func (r *Runner) Evaluate(ctx context.Context, cfg config.Microarch, w workload.Workload, opt Options) (Measurement, error) {
	ms, err := r.EvaluateAll(ctx, []SweepCell{{Cfg: cfg, W: w}}, opt, nil)
	if err != nil {
		return Measurement{Config: cfg.Name, Workload: w.Name}, err
	}
	return ms[0], nil
}

// SweepCell is one (configuration, workload) evaluation of a sweep.
type SweepCell struct {
	Cfg config.Microarch
	W   workload.Workload
}

// EvaluateAll evaluates every cell through one engine batch: all cells'
// simulations — heuristic runs and oracle searches alike — are submitted
// up front, so the worker pool stays saturated across cell boundaries
// (a lone monolithic cell cannot serialize the sweep). Cells finish in
// input order; progress, when non-nil, is called after each completed
// cell with the count done so far.
func (r *Runner) EvaluateAll(ctx context.Context, cells []SweepCell, opt Options, progress func(done int)) ([]Measurement, error) {
	plans := make([]*evalPlan, len(cells))
	offsets := make([]int, len(cells))
	var tickets []*engine.Ticket
	for i, c := range cells {
		p, err := planEvaluate(c.Cfg, c.W, opt)
		if err != nil {
			return nil, fmt.Errorf("sim: %s on %s: %w", c.W.Name, c.Cfg.Name, err)
		}
		plans[i] = p
		offsets[i] = len(tickets)
		for _, req := range p.reqs {
			tk, err := r.eng.Submit(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("sim: submitting %s: %w", req, err)
			}
			tickets = append(tickets, tk)
		}
	}

	out := make([]Measurement, len(cells))
	for i, p := range plans {
		results := make([]core.Results, len(p.reqs))
		for k := range p.reqs {
			res, err := tickets[offsets[i]+k].Wait(ctx)
			if err != nil {
				return nil, fmt.Errorf("sim: %s: %w", p.reqs[k], err)
			}
			results[k] = res
		}
		out[i] = p.finish(results)
		if progress != nil {
			progress(i + 1)
		}
	}
	return out, nil
}

// ephemeral runs f on a short-lived Runner sized by opt — the engine
// behind the package-level convenience functions.
func ephemeral[T any](opt Options, f func(*Runner) (T, error)) (T, error) {
	r, err := NewRunner(engine.Options{Workers: opt.workers()})
	if err != nil {
		var zero T
		return zero, err
	}
	defer r.Close()
	return f(r)
}
