package sim

import (
	"fmt"
	"strings"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/metrics"
	"hdsmt/internal/workload"
)

// Summary reproduces the paper's §5 headline numbers from the three
// sub-figures' measurements.
type Summary struct {
	// PerfAreaVsMonolithic is the improvement in IPC/mm² of the best
	// heterogeneous configuration over the monolithic baseline, averaged
	// over workload classes (paper: +13%).
	PerfAreaVsMonolithic float64
	// PerfAreaVsHomogeneous is the same against the best homogeneous
	// clustered configuration (paper: +14%).
	PerfAreaVsHomogeneous float64
	// RawPerfMonoVsHd is the monolithic baseline's raw-IPC speedup over
	// the best-performing heterogeneous configuration, averaged over
	// classes (paper: +6% overall; +5/4/15% for ILP/MEM/MIX against
	// 1M6+2M4+2M2).
	RawPerfMonoVsHd float64
	// RawPerfHdVsHomo is the heterogeneous raw-IPC speedup over
	// homogeneous clustering (paper: +7%).
	RawPerfHdVsHomo float64
	// PerClassPerfArea2M4 is 2M4+2M2's HEUR IPC/mm² improvement over the
	// baseline per class (paper: ILP +15%, MEM +18%, MIX +10%).
	PerClassPerfArea2M4 map[string]float64
	// RawPerClassMonoVs1M6 is M8's raw-IPC speedup over 1M6+2M4+2M2 per
	// class (paper: ILP 5%, MEM 4%, MIX 15%).
	RawPerClassMonoVs1M6 map[string]float64
	// HeurAccuracy is the mean HEUR/BEST ratio per heterogeneous
	// configuration (paper: 92% on 2M4+2M2, 88% on 3M4+2M2, 96% on
	// 1M6+2M4+2M2).
	HeurAccuracy map[string]float64
}

var (
	homogeneous   = []string{"3M4", "4M4"}
	heterogeneous = []string{"2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"}
)

// Summarize derives the headline numbers from the per-type figures
// (as produced by RunFigure for ILP, MEM and MIX).
func Summarize(figs map[workload.Type]FigResult) (Summary, error) {
	s := Summary{
		PerClassPerfArea2M4:  map[string]float64{},
		RawPerClassMonoVs1M6: map[string]float64{},
		HeurAccuracy:         map[string]float64{},
	}
	areaOf := func(name string) float64 {
		return area.MustTotal(config.MustParse(name))
	}

	heurOverall := func(f FigResult, cfg string) float64 {
		return f.Values[cfg]["HMEAN"].Heur
	}

	var vsMono, vsHomo, monoVsHd, hdVsHomo []float64
	for t, f := range figs {
		m8 := heurOverall(f, "M8")

		bestHetPA, bestHetName := 0.0, ""
		for _, name := range heterogeneous {
			if pa := heurOverall(f, name) / areaOf(name); pa > bestHetPA {
				bestHetPA, bestHetName = pa, name
			}
		}
		bestHomoPA := 0.0
		for _, name := range homogeneous {
			if pa := heurOverall(f, name) / areaOf(name); pa > bestHomoPA {
				bestHomoPA = pa
			}
		}
		_ = bestHetName
		m8PA := m8 / areaOf("M8")
		vsMono = append(vsMono, bestHetPA/m8PA)
		vsHomo = append(vsHomo, bestHetPA/bestHomoPA)

		bestHetIPC := 0.0
		for _, name := range heterogeneous {
			if v := heurOverall(f, name); v > bestHetIPC {
				bestHetIPC = v
			}
		}
		bestHomoIPC := 0.0
		for _, name := range homogeneous {
			if v := heurOverall(f, name); v > bestHomoIPC {
				bestHomoIPC = v
			}
		}
		monoVsHd = append(monoVsHd, m8/bestHetIPC)
		hdVsHomo = append(hdVsHomo, bestHetIPC/bestHomoIPC)

		// Per-class quotes.
		cls := t.String()
		s.PerClassPerfArea2M4[cls] = metrics.Improvement(
			heurOverall(f, "2M4+2M2")/areaOf("2M4+2M2"), m8PA)
		s.RawPerClassMonoVs1M6[cls] = metrics.Improvement(
			m8, heurOverall(f, "1M6+2M4+2M2"))
	}
	s.PerfAreaVsMonolithic = metrics.GeoMean(vsMono) - 1
	s.PerfAreaVsHomogeneous = metrics.GeoMean(vsHomo) - 1
	s.RawPerfMonoVsHd = metrics.GeoMean(monoVsHd) - 1
	s.RawPerfHdVsHomo = metrics.GeoMean(hdVsHomo) - 1

	// Heuristic accuracy per heterogeneous configuration, averaged over
	// every workload of every class.
	for _, name := range heterogeneous {
		var accs []float64
		for _, f := range figs {
			for _, m := range f.PerWorkload[name] {
				if m.Best > 0 {
					accs = append(accs, metrics.Accuracy(m.Heur, m.Best))
				}
			}
		}
		if len(accs) > 0 {
			s.HeurAccuracy[name] = metrics.GeoMean(accs)
		}
	}
	return s, nil
}

// Render formats the summary against the paper's quoted values.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline summary (paper §5 quotes in parentheses)\n")
	fmt.Fprintf(&b, "  IPC/mm² best-hdSMT vs monolithic SMT:    %+6.1f%%  (paper +13%%)\n", 100*s.PerfAreaVsMonolithic)
	fmt.Fprintf(&b, "  IPC/mm² best-hdSMT vs homogeneous:       %+6.1f%%  (paper +14%%)\n", 100*s.PerfAreaVsHomogeneous)
	fmt.Fprintf(&b, "  raw IPC monolithic vs best-hdSMT:        %+6.1f%%  (paper +6%%)\n", 100*s.RawPerfMonoVsHd)
	fmt.Fprintf(&b, "  raw IPC hdSMT vs homogeneous:            %+6.1f%%  (paper +7%%)\n", 100*s.RawPerfHdVsHomo)
	for _, cls := range []string{"ILP", "MEM", "MIX"} {
		if v, ok := s.PerClassPerfArea2M4[cls]; ok {
			fmt.Fprintf(&b, "  IPC/mm² 2M4+2M2 vs M8, %s:              %+6.1f%%\n", cls, 100*v)
		}
	}
	for _, cls := range []string{"ILP", "MEM", "MIX"} {
		if v, ok := s.RawPerClassMonoVs1M6[cls]; ok {
			fmt.Fprintf(&b, "  raw IPC M8 vs 1M6+2M4+2M2, %s:          %+6.1f%%\n", cls, 100*v)
		}
	}
	for _, name := range heterogeneous {
		if v, ok := s.HeurAccuracy[name]; ok {
			fmt.Fprintf(&b, "  HEUR accuracy on %-12s            %6.1f%%\n", name+":", 100*v)
		}
	}
	return b.String()
}
