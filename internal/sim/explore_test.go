package sim

import (
	"context"
	"strings"
	"testing"

	"hdsmt/internal/engine"
	"hdsmt/internal/workload"
)

// TestExploreProgress pins the satellite contract: every candidate reports
// exactly once, in order, skipped candidates included.
func TestExploreProgress(t *testing.T) {
	r, err := NewRunner(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cands, err := CandidateConfigs(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	wls := []workload.Workload{workload.MustByName("4W6")} // 4 threads: 1-pipe candidates skip
	var seen []int
	rs, err := r.Explore(context.Background(), wls, cands, tinyOptions(), func(done int) {
		seen = append(seen, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cands) {
		t.Fatalf("progress fired %d times for %d candidates", len(seen), len(cands))
	}
	for i, v := range seen {
		if v != i+1 {
			t.Fatalf("progress[%d] = %d, want %d", i, v, i+1)
		}
	}
	anySkipped := false
	for _, res := range rs {
		anySkipped = anySkipped || res.Skipped
	}
	if !anySkipped {
		t.Error("expected 1-pipeline candidates to be skipped on a 4-thread workload (progress must still count them)")
	}
}

// TestExploreCancellation covers the untested cancel path: a context
// canceled mid-exploration aborts the sweep with the context's error.
func TestExploreCancellation(t *testing.T) {
	r, err := NewRunner(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cands, err := CandidateConfigs(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	wls := []workload.Workload{workload.MustByName("2W7")}

	// Canceled before the first submission.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Explore(pre, wls, cands, tinyOptions(), nil); err == nil {
		t.Fatal("pre-canceled context must abort the exploration")
	}

	// Canceled mid-run, from the progress callback itself.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = r.Explore(ctx, wls, cands, tinyOptions(), func(done int) {
		if done == 1 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("mid-run cancellation must abort the exploration")
	}
	if ctx.Err() == nil {
		t.Fatal("test bug: context not canceled")
	}
}

// TestExploreValidation covers the satellite input checks: an empty
// candidate list is an error, not an empty ranking, and a filter
// combination that removes every candidate says so.
func TestExploreValidation(t *testing.T) {
	wls := []workload.Workload{workload.MustByName("2W7")}
	if _, err := Explore(wls, nil, tinyOptions()); err == nil {
		t.Error("empty candidate list must fail")
	} else if !strings.Contains(err.Error(), "no candidate configurations") {
		t.Errorf("unhelpful empty-candidates error: %v", err)
	}

	if _, err := CandidateConfigs(2, 1.0); err == nil {
		t.Error("an area cap below the smallest machine must fail")
	} else if !strings.Contains(err.Error(), "filters out every candidate") {
		t.Errorf("unhelpful all-filtered error: %v", err)
	}
}
