package sim

import (
	"math"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

func TestHarmonicFairnessEdgeCases(t *testing.T) {
	// Empty basket: no threads, no fairness signal.
	if got := HarmonicFairness(nil); got != 0 {
		t.Errorf("empty basket = %v, want 0", got)
	}
	// Single thread: the harmonic mean of one value is the value.
	if got := HarmonicFairness([]float64{0.83}); got != 0.83 {
		t.Errorf("single thread = %v, want 0.83", got)
	}
	// A starved (zero-IPC) thread pins the mean at its limit, 0 — it must
	// not be averaged away by the healthy threads.
	if got := HarmonicFairness([]float64{1.0, 0.9, 0}); got != 0 {
		t.Errorf("starved thread = %v, want 0", got)
	}
	if got := HarmonicFairness([]float64{1.0, -0.1}); got != 0 {
		t.Errorf("negative speedup = %v, want 0", got)
	}
	// The usual case: harmonic mean of {1, 0.5} = 2/3.
	if got := HarmonicFairness([]float64{1, 0.5}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("harmonic{1,0.5} = %v, want 2/3", got)
	}
	// Harmonic <= arithmetic, with equality only on uniform baskets.
	if got := HarmonicFairness([]float64{0.7, 0.7}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("uniform basket = %v, want 0.7", got)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	if got := WeightedSpeedup(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := WeightedSpeedup([]float64{0.5, 0.75, 0}); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("sum = %v, want 1.25", got)
	}
}

func TestRelativeSpeedups(t *testing.T) {
	rels, err := relativeSpeedups([]float64{1.0, 0.5}, []float64{2.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if rels[0] != 0.5 || rels[1] != 0.5 {
		t.Errorf("rels = %v", rels)
	}
	if _, err := relativeSpeedups([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := relativeSpeedups([]float64{1, 1}, []float64{1, 0}); err == nil {
		t.Error("zero alone IPC must fail")
	}
}

// TestFairnessSingleThread: with one thread mapped to the pipeline the
// alone baseline uses, shared and alone runs are the same simulation, so
// the relative speedup — and the harmonic mean — is exactly 1.
func TestFairnessSingleThread(t *testing.T) {
	cfg := config.MustParse("1M4+1M2")
	w := workload.Workload{Name: "solo", Benchmarks: []string{"gzip"}, Type: workload.ILP}
	f, err := Fairness(cfg, w, mapping.Mapping{0}, Options{Budget: 2_000, Warmup: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PerThread) != 1 {
		t.Fatalf("PerThread = %v, want one entry", f.PerThread)
	}
	if f.PerThread[0] != 1 {
		t.Errorf("single-thread relative speedup = %v, want exactly 1", f.PerThread[0])
	}
	if f.HarmonicFairness != 1 || f.WeightedSpeedup != 1 {
		t.Errorf("harmonic %v weighted %v, want 1/1", f.HarmonicFairness, f.WeightedSpeedup)
	}
}

// TestAloneRequestSharedBaseline: the alone request ignores policy and
// remap variants and scales the warm-up by the shared run's thread count,
// so every variant of one machine hits one cached baseline per benchmark.
func TestAloneRequestSharedBaseline(t *testing.T) {
	cfg := config.MustParse("2M4+2M2")
	w := workload.MustByName("4W6")
	opt := Options{Budget: 2_000, Warmup: 1_000}
	req := AloneRequest(cfg, w, 1, opt)
	if len(req.Workload.Benchmarks) != 1 || req.Workload.Benchmarks[0] != w.Benchmarks[1] {
		t.Errorf("alone workload = %v", req.Workload)
	}
	if req.Warmup != opt.Warmup*uint64(w.Threads()) {
		t.Errorf("alone warmup = %d, want %d", req.Warmup, opt.Warmup*uint64(w.Threads()))
	}
	if len(req.Mapping) != 1 || req.Mapping[0] != 0 {
		t.Errorf("alone mapping = %v, want the widest pipeline", req.Mapping)
	}
	if req.Policy != "" || req.Remap != 0 {
		t.Errorf("alone request carries policy %q remap %d, want none", req.Policy, req.Remap)
	}
	if req.Key() != AloneRequest(cfg, w, 1, opt).Key() {
		t.Error("alone request key must be stable")
	}
}
