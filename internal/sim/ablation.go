package sim

import (
	"fmt"
	"strings"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/fetch"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// Ablations quantify the design choices the paper asserts but does not
// sweep: the 2-cycle shared-register-file penalty (§4), the decoupling
// buffer sizes (§2/§4), and the fetch-policy choice (§4).

// AblationPoint is one configuration variant's result.
type AblationPoint struct {
	Label string
	IPC   float64
}

// AblationResult is a named sweep.
type AblationResult struct {
	Name     string
	Workload string
	Points   []AblationPoint
}

// Render formats the sweep as an aligned table.
func (a AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s (workload %s)\n", a.Name, a.Workload)
	for _, p := range a.Points {
		fmt.Fprintf(&b, "  %-24s IPC %.4f\n", p.Label, p.IPC)
	}
	return b.String()
}

// heurOrTrivial returns the mapping to use for an ablation run.
func heurOrTrivial(cfg config.Microarch, w workload.Workload) (mapping.Mapping, error) {
	if cfg.Monolithic {
		return make(mapping.Mapping, w.Threads()), nil
	}
	return HeuristicMapping(cfg, w)
}

// AblateRFLatency sweeps the shared-register-file access latency on a
// heterogeneous configuration. The paper charges hdSMT 2 cycles (vs the
// baseline's 1) for multipipeline register-file sharing; the sweep shows
// what that assumption costs.
func AblateRFLatency(w workload.Workload, opt Options) (AblationResult, error) {
	out := AblationResult{Name: "register-file access latency (2M4+2M2)", Workload: w.Name}
	for _, lat := range []int{1, 2, 3} {
		cfg := config.MustParse("2M4+2M2")
		cfg.Params.RegAccessLatency = lat
		m, err := heurOrTrivial(cfg, w)
		if err != nil {
			return out, err
		}
		r, err := Run(cfg, w, m, opt)
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, AblationPoint{
			Label: fmt.Sprintf("%d-cycle RF access", lat),
			IPC:   r.IPC,
		})
	}
	return out, nil
}

// AblateFetchBuffer sweeps the per-pipeline decoupling buffer size on
// 2M4+2M2 (the paper fixes 32 entries for M4 and 16 for M2; the sweep
// scales both proportionally).
func AblateFetchBuffer(w workload.Workload, opt Options) (AblationResult, error) {
	out := AblationResult{Name: "decoupling buffer size (2M4+2M2)", Workload: w.Name}
	for _, scale := range []int{1, 2, 4, 8} {
		m4 := config.M4
		m4.FetchBuf = 8 * scale
		m2 := config.M2
		m2.FetchBuf = 4 * scale
		cfg := config.NewMicroarch(m4, m4, m2, m2)
		m, err := heurOrTrivial(cfg, w)
		if err != nil {
			return out, err
		}
		r, err := Run(cfg, w, m, opt)
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, AblationPoint{
			Label: fmt.Sprintf("M4:%d/M2:%d entries", m4.FetchBuf, m2.FetchBuf),
			IPC:   r.IPC,
		})
	}
	return out, nil
}

// AblateFetchPolicy compares the three fetch policies on the monolithic
// baseline for one workload (the paper adopts FLUSH for the baseline and
// L1MCOUNT for multipipeline configurations).
func AblateFetchPolicy(w workload.Workload, opt Options) (AblationResult, error) {
	out := AblationResult{Name: "fetch policy (M8)", Workload: w.Name}
	cfg := config.MustParse("M8")
	specs, err := Specs(w)
	if err != nil {
		return out, err
	}
	for _, pol := range []fetch.Policy{fetch.ICount{}, fetch.Flush{}, fetch.L1MCount{}} {
		opts := []core.Option{core.WithPolicy(pol)}
		if opt.Warmup > 0 {
			opts = append(opts, core.WithWarmup(opt.Warmup))
		}
		p, err := core.New(cfg, specs, make(mapping.Mapping, w.Threads()), opts...)
		if err != nil {
			return out, err
		}
		r, err := p.Run(opt.Budget)
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, AblationPoint{Label: pol.Name(), IPC: r.IPC})
	}
	return out, nil
}

// RunAblations executes all three ablations on a representative MIX
// workload (4W6 unless overridden).
func RunAblations(w workload.Workload, opt Options) ([]AblationResult, error) {
	var out []AblationResult
	for _, f := range []func(workload.Workload, Options) (AblationResult, error){
		AblateRFLatency, AblateFetchBuffer, AblateFetchPolicy,
	} {
		a, err := f(w, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
