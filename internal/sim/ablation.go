package sim

import (
	"context"
	"fmt"
	"strings"

	"hdsmt/internal/config"
	"hdsmt/internal/engine"
	"hdsmt/internal/fetch"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// Ablations quantify the design choices the paper asserts but does not
// sweep: the 2-cycle shared-register-file penalty (§4), the decoupling
// buffer sizes (§2/§4), and the fetch-policy choice (§4). Every variant
// is an engine job — parameter mutations (RegAccessLatency, FetchBuf) and
// policy overrides are part of the request, so each variant keys and
// caches separately.

// AblationPoint is one configuration variant's result.
type AblationPoint struct {
	Label string
	IPC   float64
}

// AblationResult is a named sweep.
type AblationResult struct {
	Name     string
	Workload string
	Points   []AblationPoint
}

// Render formats the sweep as an aligned table.
func (a AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s (workload %s)\n", a.Name, a.Workload)
	for _, p := range a.Points {
		fmt.Fprintf(&b, "  %-24s IPC %.4f\n", p.Label, p.IPC)
	}
	return b.String()
}

// runSweep batches a labeled list of requests and collects their IPCs.
func (r *Runner) runSweep(ctx context.Context, out *AblationResult, labels []string, reqs []engine.Request) error {
	results, err := r.eng.RunBatch(ctx, reqs)
	if err != nil {
		return err
	}
	for i, res := range results {
		out.Points = append(out.Points, AblationPoint{Label: labels[i], IPC: res.IPC})
	}
	return nil
}

// AblateRFLatency sweeps the shared-register-file access latency on a
// heterogeneous configuration. The paper charges hdSMT 2 cycles (vs the
// baseline's 1) for multipipeline register-file sharing; the sweep shows
// what that assumption costs.
func AblateRFLatency(w workload.Workload, opt Options) (AblationResult, error) {
	return ephemeral(opt, func(r *Runner) (AblationResult, error) {
		return r.AblateRFLatency(context.Background(), w, opt)
	})
}

// AblateRFLatency is AblateRFLatency on this Runner's engine.
func (r *Runner) AblateRFLatency(ctx context.Context, w workload.Workload, opt Options) (AblationResult, error) {
	out := AblationResult{Name: "register-file access latency (2M4+2M2)", Workload: w.Name}
	var labels []string
	var reqs []engine.Request
	for _, lat := range []int{1, 2, 3} {
		cfg := config.MustParse("2M4+2M2")
		cfg.Params.RegAccessLatency = lat
		m, err := DefaultMapping(cfg, w)
		if err != nil {
			return out, err
		}
		labels = append(labels, fmt.Sprintf("%d-cycle RF access", lat))
		reqs = append(reqs, newRequest(cfg, w, m, opt.Budget, opt.Warmup))
	}
	err := r.runSweep(ctx, &out, labels, reqs)
	return out, err
}

// AblateFetchBuffer sweeps the per-pipeline decoupling buffer size on
// 2M4+2M2 (the paper fixes 32 entries for M4 and 16 for M2; the sweep
// scales both proportionally).
func AblateFetchBuffer(w workload.Workload, opt Options) (AblationResult, error) {
	return ephemeral(opt, func(r *Runner) (AblationResult, error) {
		return r.AblateFetchBuffer(context.Background(), w, opt)
	})
}

// AblateFetchBuffer is AblateFetchBuffer on this Runner's engine.
func (r *Runner) AblateFetchBuffer(ctx context.Context, w workload.Workload, opt Options) (AblationResult, error) {
	out := AblationResult{Name: "decoupling buffer size (2M4+2M2)", Workload: w.Name}
	var labels []string
	var reqs []engine.Request
	for _, scale := range []int{1, 2, 4, 8} {
		m4 := config.M4
		m4.FetchBuf = 8 * scale
		m2 := config.M2
		m2.FetchBuf = 4 * scale
		cfg := config.NewMicroarch(m4, m4, m2, m2)
		m, err := DefaultMapping(cfg, w)
		if err != nil {
			return out, err
		}
		labels = append(labels, fmt.Sprintf("M4:%d/M2:%d entries", m4.FetchBuf, m2.FetchBuf))
		reqs = append(reqs, newRequest(cfg, w, m, opt.Budget, opt.Warmup))
	}
	err := r.runSweep(ctx, &out, labels, reqs)
	return out, err
}

// AblateFetchPolicy compares the three fetch policies on the monolithic
// baseline for one workload (the paper adopts FLUSH for the baseline and
// L1MCOUNT for multipipeline configurations).
func AblateFetchPolicy(w workload.Workload, opt Options) (AblationResult, error) {
	return ephemeral(opt, func(r *Runner) (AblationResult, error) {
		return r.AblateFetchPolicy(context.Background(), w, opt)
	})
}

// AblateFetchPolicy is AblateFetchPolicy on this Runner's engine.
func (r *Runner) AblateFetchPolicy(ctx context.Context, w workload.Workload, opt Options) (AblationResult, error) {
	out := AblationResult{Name: "fetch policy (M8)", Workload: w.Name}
	cfg := config.MustParse("M8")
	var labels []string
	var reqs []engine.Request
	for _, pol := range []fetch.Policy{fetch.ICount{}, fetch.Flush{}, fetch.L1MCount{}} {
		req := newRequest(cfg, w, make(mapping.Mapping, w.Threads()), opt.Budget, opt.Warmup)
		// The configuration's own default policy keeps Policy empty so
		// this point shares its cache key with plain runs of cfg.
		if pol.Name() != defaultPolicyName(cfg) {
			req.Policy = pol.Name()
		}
		labels = append(labels, pol.Name())
		reqs = append(reqs, req)
	}
	err := r.runSweep(ctx, &out, labels, reqs)
	return out, err
}

// RunAblations executes all three ablations on a representative MIX
// workload (4W6 unless overridden).
func RunAblations(w workload.Workload, opt Options) ([]AblationResult, error) {
	return ephemeral(opt, func(r *Runner) ([]AblationResult, error) {
		return r.RunAblations(context.Background(), w, opt)
	})
}

// RunAblations is RunAblations on this Runner's engine.
func (r *Runner) RunAblations(ctx context.Context, w workload.Workload, opt Options) ([]AblationResult, error) {
	var out []AblationResult
	for _, f := range []func(context.Context, workload.Workload, Options) (AblationResult, error){
		r.AblateRFLatency, r.AblateFetchBuffer, r.AblateFetchPolicy,
	} {
		a, err := f(ctx, w, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
