package sim

import (
	"context"
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/engine"
	"hdsmt/internal/workload"
)

// sweepConfigs is the miniature sweep the engine-integration tests run:
// small enough for short mode, heterogeneous enough to exercise the
// oracle fan-out.
var sweepConfigs = []string{"M8", "2M4+2M2"}

func runSweep(t *testing.T, r *Runner, opt Options) []Measurement {
	t.Helper()
	w := workload.MustByName("2W7")
	out := make([]Measurement, 0, len(sweepConfigs))
	for _, name := range sweepConfigs {
		m, err := r.Evaluate(context.Background(), config.MustParse(name), w, opt)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunnerWarmCacheZeroExecutions pins the memoization acceptance
// criterion: re-running a sweep on a warm engine performs zero new
// simulations.
func TestRunnerWarmCacheZeroExecutions(t *testing.T) {
	r, err := NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cold := runSweep(t, r, tinyOptions())
	executed := r.Stats().Executed
	if executed == 0 {
		t.Fatal("cold sweep executed nothing")
	}
	warm := runSweep(t, r, tinyOptions())
	st := r.Stats()
	if st.Executed != executed {
		t.Errorf("warm re-run executed %d new simulations, want 0", st.Executed-executed)
	}
	if st.Hits == 0 {
		t.Error("warm re-run recorded no cache hits")
	}
	if mustJSON(t, cold) != mustJSON(t, warm) {
		t.Error("warm results differ from cold results")
	}
}

// TestRunnerDeterministicAcrossWorkers pins the determinism acceptance
// criterion: the aggregated sweep summary is byte-identical JSON across
// worker counts 1, 4 and GOMAXPROCS.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	var blobs []string
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, n := range counts {
		r, err := NewRunner(engine.Options{Workers: n})
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, mustJSON(t, runSweep(t, r, tinyOptions())))
		r.Close()
	}
	for i := 1; i < len(blobs); i++ {
		if blobs[i] != blobs[0] {
			t.Errorf("workers=%d produced a different summary than workers=%d", counts[i], counts[0])
		}
	}
}

// TestRunnerJournalResume pins the checkpoint/resume acceptance
// criterion: a sweep killed mid-way resumes from the journal, executes
// only the missing simulations, and its final summary is byte-identical
// to an uninterrupted run.
func TestRunnerJournalResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.jsonl")
	opt := tinyOptions()

	// Uninterrupted reference.
	ref, err := NewRunner(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, runSweep(t, ref, opt))
	total := ref.Stats().Executed
	ref.Close()

	// Phase 1: the sweep dies after its first cell.
	r1, err := NewRunner(engine.Options{Workers: 2, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Evaluate(context.Background(), config.MustParse(sweepConfigs[0]),
		workload.MustByName("2W7"), opt); err != nil {
		t.Fatal(err)
	}
	journaled := r1.Stats().Executed
	r1.Close()
	if journaled == 0 || journaled >= total {
		t.Fatalf("phase 1 executed %d of %d; need a strict mid-sweep prefix", journaled, total)
	}

	// Phase 2: a new runner on the same journal resumes the sweep.
	r2, err := NewRunner(engine.Options{Workers: 2, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if restored := r2.Stats().Restored; restored != journaled {
		t.Fatalf("restored %d journal entries, want %d", restored, journaled)
	}
	got := mustJSON(t, runSweep(t, r2, opt))
	if executed := r2.Stats().Executed; executed != total-journaled {
		t.Errorf("resume executed %d simulations, want %d (the un-journaled remainder)",
			executed, total-journaled)
	}
	if got != want {
		t.Error("resumed summary differs from uninterrupted run")
	}
}

// TestRequestKeyNormalizesForThreads pins the cross-sweep cache-key
// property: callers passing the raw configuration and callers passing the
// thread-stretched one (as Explore does) produce the same job key.
func TestRequestKeyNormalizesForThreads(t *testing.T) {
	cfg := config.MustParse("M8")
	w := workload.MustByName("6W1")
	m := make([]int, w.Threads())
	a := newRequest(cfg, w, m, 1_000, 100)
	b := newRequest(cfg.ForThreads(w.Threads()), w, m, 1_000, 100)
	if a.Key() != b.Key() {
		t.Error("stretched and unstretched configs key the same simulation differently")
	}
}

// TestRunnerAblationsShareCache verifies ablation sweeps ride the same
// memoization: the RF-latency sweep's 2-cycle point is the stock 2M4+2M2
// configuration, so it reuses any prior run of that exact request.
func TestRunnerAblationsShareCache(t *testing.T) {
	r, err := NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := workload.MustByName("2W7")
	opt := tinyOptions()

	a1, err := r.AblateRFLatency(context.Background(), w, opt)
	if err != nil {
		t.Fatal(err)
	}
	executed := r.Stats().Executed
	a2, err := r.AblateRFLatency(context.Background(), w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Executed != executed {
		t.Error("repeated ablation re-executed simulations")
	}
	if mustJSON(t, a1) != mustJSON(t, a2) {
		t.Error("repeated ablation differs")
	}
}

// TestNewRequestNormalization pins the design-point cache-key properties:
// the default policy and a monolithic remap interval normalize away, so
// equivalent points key (and therefore memoize) identically, while real
// overrides key differently.
func TestNewRequestNormalization(t *testing.T) {
	opt := tinyOptions()
	w := workload.MustByName("2W7")
	multi := config.MustParse("2M4")
	mono := config.MustParse("M8")

	plain, err := NewRequest(multi, w, opt, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defaulted, err := NewRequest(multi, w, opt, defaultPolicyName(multi), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() != defaulted.Key() {
		t.Error("explicit default policy keys differently from the implicit default")
	}
	if defaulted.Policy != "" {
		t.Errorf("default policy not normalized away: %q", defaulted.Policy)
	}

	monoRemap, err := NewRequest(mono, w, opt, "", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if monoRemap.Remap != 0 {
		t.Error("monolithic remap interval not normalized to 0")
	}

	overridden, err := NewRequest(multi, w, opt, "ICOUNT2.8", 0)
	if err != nil {
		t.Fatal(err)
	}
	if overridden.Key() == plain.Key() {
		t.Error("policy override shares the default's key")
	}
	remapped, err := NewRequest(multi, w, opt, "", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if remapped.Key() == plain.Key() {
		t.Error("remap interval shares the static key")
	}

	if _, err := NewRequest(multi, w, opt, "NOPE", 0); err == nil {
		t.Error("unknown policy must fail")
	}
}

// TestRemapRequestRuns executes a dynamic-remap request through the engine
// and checks it simulates (and keys) independently of the static run.
func TestRemapRequestRuns(t *testing.T) {
	r, err := NewRunner(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	opt := tinyOptions()
	w := workload.MustByName("2W7")
	cfg := config.MustParse("2M4")

	static, err := NewRequest(cfg, w, opt, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewRequest(cfg, w, opt, "", 512)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.Engine().RunBatch(context.Background(), []engine.Request{static, dyn})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.IPC <= 0 {
			t.Errorf("request %d: IPC = %v, want positive", i, res.IPC)
		}
	}
	if got := r.Stats().Executed; got != 2 {
		t.Errorf("executed %d simulations, want 2 (remap keys separately)", got)
	}
}
