package sim

import (
	"math"
	"strings"
	"testing"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/workload"
)

// syntheticFig builds a FigResult with chosen HMEAN HEUR values per config
// and consistent per-workload measurements, so Summarize can be unit tested
// without simulation.
func syntheticFig(t workload.Type, heur map[string]float64) FigResult {
	fig := FigResult{
		Type:        t,
		Groups:      []string{"HMEAN"},
		Values:      map[string]map[string]Cell{},
		PerWorkload: map[string]map[string]Measurement{},
	}
	for cfg, v := range heur {
		fig.Configs = append(fig.Configs, cfg)
		fig.Values[cfg] = map[string]Cell{
			"HMEAN": {Best: v * 1.1, Heur: v, Worst: v * 0.6},
		}
		fig.PerWorkload[cfg] = map[string]Measurement{
			"W1": {Config: cfg, Workload: "W1", Best: v * 1.1, Heur: v, Worst: v * 0.6},
		}
	}
	return fig
}

func TestSummarizeArithmetic(t *testing.T) {
	// Construct figures where 2M4+2M2 is exactly 10% below M8 in IPC for
	// every class. With areas 124.11 vs 170.00, its perf/area is then
	// 0.9*170/124.11 - 1 = +23.3% over the baseline.
	heur := map[string]float64{
		"M8":          2.0,
		"3M4":         1.7,
		"4M4":         1.6,
		"2M4+2M2":     1.8,
		"3M4+2M2":     1.5,
		"1M6+2M4+2M2": 1.6,
	}
	figs := map[workload.Type]FigResult{
		workload.ILP: syntheticFig(workload.ILP, heur),
		workload.MEM: syntheticFig(workload.MEM, heur),
		workload.MIX: syntheticFig(workload.MIX, heur),
	}
	s, err := Summarize(figs)
	if err != nil {
		t.Fatal(err)
	}

	m8Area := area.MustTotal(config.MustParse("M8"))
	hdArea := area.MustTotal(config.MustParse("2M4+2M2"))
	wantPA := (1.8 / hdArea) / (2.0 / m8Area)
	if math.Abs(s.PerfAreaVsMonolithic-(wantPA-1)) > 1e-9 {
		t.Errorf("PerfAreaVsMonolithic = %.4f, want %.4f", s.PerfAreaVsMonolithic, wantPA-1)
	}

	// Raw IPC: best heterogeneous = 1.8, M8 = 2.0 → M8 +11.1%.
	if math.Abs(s.RawPerfMonoVsHd-(2.0/1.8-1)) > 1e-9 {
		t.Errorf("RawPerfMonoVsHd = %.4f", s.RawPerfMonoVsHd)
	}
	// Best heterogeneous 1.8 vs best homogeneous 1.7 → +5.88%.
	if math.Abs(s.RawPerfHdVsHomo-(1.8/1.7-1)) > 1e-9 {
		t.Errorf("RawPerfHdVsHomo = %.4f", s.RawPerfHdVsHomo)
	}
	// HEUR accuracy = heur/best = 1/1.1 everywhere.
	for _, cfg := range []string{"2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"} {
		if math.Abs(s.HeurAccuracy[cfg]-1/1.1) > 1e-9 {
			t.Errorf("HeurAccuracy[%s] = %.4f", cfg, s.HeurAccuracy[cfg])
		}
	}
	// Per-class quotes exist for every class.
	for _, cls := range []string{"ILP", "MEM", "MIX"} {
		if _, ok := s.PerClassPerfArea2M4[cls]; !ok {
			t.Errorf("missing per-class perf/area for %s", cls)
		}
		if _, ok := s.RawPerClassMonoVs1M6[cls]; !ok {
			t.Errorf("missing per-class raw quote for %s", cls)
		}
	}

	out := s.Render()
	for _, want := range []string{"paper +13%", "paper +14%", "HEUR accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSummarizeRealMEMFigureOnly(t *testing.T) {
	// Summarize over a single real figure still works (one class).
	fig := memFigure(t)
	s, err := Summarize(map[workload.Type]FigResult{workload.MEM: fig})
	if err != nil {
		t.Fatal(err)
	}
	if s.PerfAreaVsMonolithic <= 0 {
		t.Errorf("hdSMT should win perf/area on MEM (got %+.3f)", s.PerfAreaVsMonolithic)
	}
	for _, cfg := range []string{"2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"} {
		acc := s.HeurAccuracy[cfg]
		if acc <= 0 || acc > 1 {
			t.Errorf("accuracy[%s] = %v out of (0,1]", cfg, acc)
		}
	}
}
