package search

import (
	"hdsmt/internal/area"
)

// The ROADMAP's search-space prior: area-normalized issue width is a cheap
// proxy for IPC/mm² — no simulation, just the area model — and the spaces
// here reward it (narrow pipelines buy the most width per mm², and the
// scalar optima are M2-heavy machines). Seeded strategies start from it
// instead of a uniform prior and typically reach the optimum in fewer
// simulations; BENCH_PR4.json records the comparison.

// priorBoost scales how far a model's normalized proxy tilts the initial
// pheromone above the neutral 1.0 trail: the best model starts at
// 1+priorBoost, a model half as area-efficient at 1+priorBoost/2. Strong
// enough to steer the first cohorts, weak enough that evaporation and real
// scores override a misleading prior within a few iterations.
const priorBoost = 2.0

// IssueWidthProxy is the candidate-level prior: summed pipeline issue
// width per mm². It ranks machines without simulating them.
func IssueWidthProxy(c Candidate) float64 {
	if c.Area <= 0 {
		return 0
	}
	return float64(c.Cfg.TotalWidth()) / c.Area
}

// Priors returns per-dimension initial pheromone levels derived from the
// per-model proxy: on each pipeline-slot dimension, choosing model m
// starts at 1 + priorBoost·(proxy(m)/maxProxy), "none" and every enriched
// axis stay at the neutral 1.0. The slice is indexed like Dims().
func (s *Space) Priors() [][]float64 {
	dims := s.Dims()
	proxies := make([]float64, len(s.Models))
	maxProxy := 0.0
	for i, m := range s.Models {
		b, err := area.SinglePipelineProcessor(m)
		if err != nil || b.Total() <= 0 {
			continue // unknown model: stays neutral
		}
		proxies[i] = float64(m.Width) / b.Total()
		if proxies[i] > maxProxy {
			maxProxy = proxies[i]
		}
	}
	out := make([][]float64, len(dims))
	for d := range dims {
		w := make([]float64, dims[d])
		for c := range w {
			w[c] = 1.0
		}
		if d < s.MaxPipes && maxProxy > 0 {
			for i, p := range proxies {
				w[i+1] = 1 + priorBoost*p/maxProxy // choice 0 is "none"
			}
		}
		out[d] = w
	}
	return out
}
