// Package search is the metaheuristic design-space optimizer: it describes
// an enriched hdSMT configuration space — pipeline multiset under an area
// budget, fetch policy, dynamic-remap interval, and scaled issue-queue /
// decoupling-buffer sizes — and searches it for the best performance per
// area (the paper's complexity-effectiveness objective) with pluggable
// strategies: exhaustive enumeration, seeded random sampling, greedy
// hill-climbing with restarts, and ant-colony optimization.
//
// Every point evaluation fans out through the batch-simulation engine
// (internal/engine) via a shared sim.Runner, so revisited points are
// memoization hits, concurrent evaluations saturate the worker pool, and a
// search costs only the simulations of the distinct points it actually
// reaches — a few hundred for spaces of 10⁵⁺ configurations.
package search

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"hdsmt/internal/area"
	"hdsmt/internal/config"
	"hdsmt/internal/fetch"
	"hdsmt/internal/workload"
)

// noModel is the slot choice meaning "no pipeline in this slot".
const noModel = 0

// Space is a parameterized hdSMT design space. Each axis is a small
// categorical dimension; a Point picks one choice per dimension and
// decodes deterministically to a concrete machine (config.Microarch, fetch
// policy, remap interval). The zero value is not useful; construct with
// NewSpace or fill the fields and call Validate.
type Space struct {
	// Models are the pipeline models choosable per slot. MaxPipes slots
	// each pick one model or "none"; at least one slot must be filled for
	// a point to be feasible.
	Models []config.Model
	// MaxPipes bounds the pipeline count per configuration.
	MaxPipes int
	// AreaCap, when positive, rejects machines above this area (mm²).
	AreaCap float64
	// Policies are the fetch-policy choices by name; "" means the
	// configuration's default (FLUSH monolithic, L1MCOUNT multipipeline).
	Policies []string
	// RemapIntervals are the dynamic-remap choices in cycles; 0 = static.
	RemapIntervals []uint64
	// QueueScales are issue/load-queue size scales in percent (100 = the
	// paper's sizes), applied to every pipeline of the machine.
	QueueScales []int
	// FetchBufScales are decoupling-buffer size scales in percent.
	FetchBufScales []int
	// Workloads is the evaluation set; the objective is harmonic-mean IPC
	// over it, divided by the machine's area.
	Workloads []workload.Workload
}

// NewSpace returns the pure multipipeline-multiset space (M6/M4/M2 slots,
// single defaults on every enriched axis) over the given workloads. Unlike
// sim.CandidateConfigs it does not append the monolithic M8 baseline: M8
// is not a multipipeline design point, and its special cases (thread
// stretching, 1-cycle register file) sit outside the axes this space
// scales — rank it against a search winner with sim.Explore. Callers
// widen axes by assigning the slice fields.
func NewSpace(maxPipes int, areaCap float64, wls []workload.Workload) Space {
	return Space{
		Models:         []config.Model{config.M6, config.M4, config.M2},
		MaxPipes:       maxPipes,
		AreaCap:        areaCap,
		Policies:       []string{""},
		RemapIntervals: []uint64{0},
		QueueScales:    []int{100},
		FetchBufScales: []int{100},
		Workloads:      wls,
	}
}

// EnrichedSpace returns the full search space used by the CLI and the
// server when no axes are given explicitly: up to maxPipes M6/M4/M2
// pipelines, the three fetch policies, static vs two remap intervals, and
// ±25% issue-queue and decoupling-buffer sizings. With maxPipes 4 this is
// a 20,736-genotype space — far past exhaustive reach at paper budgets.
func EnrichedSpace(maxPipes int, areaCap float64, wls []workload.Workload) Space {
	sp := NewSpace(maxPipes, areaCap, wls)
	sp.Policies = []string{"", "ICOUNT2.8", "FLUSH"}
	sp.RemapIntervals = []uint64{0, 2_048, 8_192}
	sp.QueueScales = []int{75, 100, 125}
	sp.FetchBufScales = []int{75, 100, 125}
	return sp
}

// MaxSpaceSize bounds Validate-accepted spaces to ones whose census
// (canonical enumeration + decode) stays sub-second; a genotype count
// beyond it means a misconfigured request (e.g. an enormous MaxPipes),
// which would otherwise wedge an unbounded CPU-bound enumeration.
const MaxSpaceSize = 1 << 22

// Validate checks the space is searchable.
func (s *Space) Validate() error {
	if s.MaxPipes < 1 {
		return fmt.Errorf("search: MaxPipes %d must be at least 1", s.MaxPipes)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("search: no pipeline models to choose from")
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("search: no workloads to evaluate on")
	}
	for _, field := range []struct {
		name string
		n    int
	}{
		{"Policies", len(s.Policies)},
		{"RemapIntervals", len(s.RemapIntervals)},
		{"QueueScales", len(s.QueueScales)},
		{"FetchBufScales", len(s.FetchBufScales)},
	} {
		if field.n == 0 {
			return fmt.Errorf("search: %s has no choices (use a single-element slice for a fixed axis)", field.name)
		}
	}
	// After the axis checks, so an empty axis reports itself rather than
	// the saturated Size this check would see.
	if size := s.Size(); size > MaxSpaceSize {
		return fmt.Errorf("search: space has %d genotypes, cap is %d (lower MaxPipes or an axis)", size, int64(MaxSpaceSize))
	}
	for _, pct := range s.QueueScales {
		if pct <= 0 {
			return fmt.Errorf("search: queue scale %d%% must be positive", pct)
		}
	}
	for _, pct := range s.FetchBufScales {
		if pct <= 0 {
			return fmt.Errorf("search: fetch-buffer scale %d%% must be positive", pct)
		}
	}
	for _, name := range s.Policies {
		if name == "" {
			continue
		}
		if _, err := fetch.ByName(name); err != nil {
			return fmt.Errorf("search: %w", err)
		}
	}
	return nil
}

// Point is one genotype: a choice index per dimension, in Dims order.
type Point []int

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Dims returns the cardinality of each dimension: MaxPipes slot dimensions
// (len(Models)+1 choices each — a model or none), then the policy, remap,
// queue-scale and fetch-buffer-scale dimensions.
func (s *Space) Dims() []int {
	dims := make([]int, 0, s.MaxPipes+4)
	for i := 0; i < s.MaxPipes; i++ {
		dims = append(dims, len(s.Models)+1)
	}
	return append(dims, len(s.Policies), len(s.RemapIntervals), len(s.QueueScales), len(s.FetchBufScales))
}

// Size returns the number of genotypes (the product of dimension
// cardinalities), saturating at MaxInt64 so absurd spaces cannot wrap
// into plausible counts. Distinct genotypes may decode to the same
// machine — slot order is canonicalized away — so this upper-bounds the
// phenotype count; it is the honest size of the space a strategy walks.
func (s *Space) Size() int64 {
	size := int64(1)
	for _, d := range s.Dims() {
		if d <= 0 || size > math.MaxInt64/int64(d) {
			return math.MaxInt64
		}
		size *= int64(d)
	}
	return size
}

// Candidate is a decoded point: a concrete machine plus its evaluation
// identity.
type Candidate struct {
	// Cfg is the assembled microarchitecture (scaled models applied).
	Cfg config.Microarch
	// Policy is the fetch-policy override ("" = configuration default).
	Policy string
	// Remap is the dynamic-remap interval in cycles (0 = static).
	Remap uint64
	// Area is the machine's total area in mm².
	Area float64
}

// renderName is the one rendering rule for decoded points, shared by
// Candidate.Name and TrajectoryPoint.Name: the configuration name plus
// policy-override and remap-interval suffixes.
func renderName(config, policy string, remap uint64) string {
	n := config
	if policy != "" {
		n += " " + policy
	}
	if remap != 0 {
		n += fmt.Sprintf(" r%d", remap)
	}
	return n
}

// Name renders the candidate compactly ("2M4+2M2", "3M4q75 FLUSH r2048").
func (c Candidate) Name() string { return renderName(c.Cfg.Name, c.Policy, c.Remap) }

// Key is the candidate's content-addressed identity: a hex SHA-256 over
// the full decoded machine (parameters included) and its evaluation axes.
// Genotypes that decode to the same machine share a key, so drivers
// deduplicate revisits before they reach the engine.
func (c Candidate) Key() string {
	b, err := json.Marshal(struct {
		Cfg    config.Microarch `json:"cfg"`
		Policy string           `json:"policy,omitempty"`
		Remap  uint64           `json:"remap,omitempty"`
	}{c.Cfg, c.Policy, c.Remap})
	if err != nil {
		// Plain data; Marshal cannot fail. Guard like engine.Request.Key.
		panic(fmt.Sprintf("search: marshaling candidate key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ErrInfeasible marks points that decode to no machine (no pipelines, or
// over the area cap). It carries no simulation cost.
type ErrInfeasible struct{ Reason string }

func (e ErrInfeasible) Error() string { return "search: infeasible point: " + e.Reason }

// Decode maps a genotype to its machine. Slot order is canonicalized (the
// multiset is what matters), scaled models are applied, a remap interval
// on a monolithic machine normalizes to 0 and a policy equal to the
// machine's default to "", so equivalent genotypes share one Candidate
// key. Returns ErrInfeasible for empty machines and area-cap violations.
func (s *Space) Decode(p Point) (Candidate, error) {
	dims := s.Dims()
	if len(p) != len(dims) {
		return Candidate{}, fmt.Errorf("search: point has %d dimensions, space has %d", len(p), len(dims))
	}
	for i, c := range p {
		if c < 0 || c >= dims[i] {
			return Candidate{}, fmt.Errorf("search: dimension %d choice %d out of range [0,%d)", i, c, dims[i])
		}
	}

	qPct := s.QueueScales[p[s.MaxPipes+2]]
	fPct := s.FetchBufScales[p[s.MaxPipes+3]]
	var models []config.Model
	for slot := 0; slot < s.MaxPipes; slot++ {
		choice := p[slot]
		if choice == noModel {
			continue
		}
		m, err := config.ScaleModel(s.Models[choice-1], qPct, fPct)
		if err != nil {
			return Candidate{}, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return Candidate{}, ErrInfeasible{"no pipelines selected"}
	}
	cfg := config.NewMicroarch(models...)
	a, err := area.Total(cfg)
	if err != nil {
		return Candidate{}, err
	}
	if s.AreaCap > 0 && a > s.AreaCap {
		return Candidate{}, ErrInfeasible{fmt.Sprintf("%s area %.2f mm² exceeds cap %.2f", cfg.Name, a, s.AreaCap)}
	}

	cand := Candidate{
		Cfg:    cfg,
		Policy: s.Policies[p[s.MaxPipes]],
		Remap:  s.RemapIntervals[p[s.MaxPipes+1]],
		Area:   a,
	}
	if cfg.Monolithic {
		cand.Remap = 0
	}
	if cand.Policy == fetch.ForConfig(cfg.Monolithic).Name() {
		cand.Policy = "" // the machine's own default: one key, one charge
	}
	return cand, nil
}

// Enumerate calls fn for every canonical genotype: slot choices are
// non-increasing (each pipeline multiset appears exactly once, empty
// machines never), crossed with every choice on the enriched axes. fn
// returning false stops the enumeration early. The visit order is
// deterministic. The Point passed to fn is reused between calls; Clone it
// before retaining.
func (s *Space) Enumerate(fn func(Point) bool) {
	dims := s.Dims()
	pt := make(Point, len(dims))
	var axes func(d int) bool
	axes = func(d int) bool {
		if d == len(pt) {
			return fn(pt)
		}
		for c := 0; c < dims[d]; c++ {
			pt[d] = c
			if !axes(d + 1) {
				return false
			}
		}
		return true
	}
	var slots func(slot, max int) bool
	slots = func(slot, max int) bool {
		if slot == s.MaxPipes {
			if pt[0] == noModel {
				return true // all slots empty: skip, keep enumerating
			}
			return axes(s.MaxPipes)
		}
		// Non-increasing choice sequences: "none" (0) only after every
		// filled slot, so each multiset has one canonical genotype.
		for c := max; c >= noModel; c-- {
			pt[slot] = c
			if !slots(slot+1, c) {
				return false
			}
		}
		return true
	}
	slots(0, len(s.Models))
}

// Candidates enumerates the space's distinct feasible machines, sorted by
// ascending area then name — the exhaustive candidate list, in the shape
// sim.Explore consumes (via their Cfg fields).
func (s *Space) Candidates() []Candidate {
	seen := map[string]bool{}
	var out []Candidate
	s.Enumerate(func(p Point) bool {
		c, err := s.Decode(p)
		if err != nil {
			return true // infeasible: skip
		}
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// FitsWorkloads reports whether the candidate's machine has enough
// hardware contexts for every workload in the space — the feasibility
// check that decides whether a point is ever simulated.
func (s *Space) FitsWorkloads(c Candidate) bool {
	for _, w := range s.Workloads {
		if c.Cfg.ForThreads(w.Threads()).TotalContexts() < w.Threads() {
			return false
		}
	}
	return true
}

// census counts the space's distinct decodable candidates (area-capped
// and empty machines excluded) and the chargeable subset that also fits
// every workload. The driver stops open-ended strategies once every
// decodable candidate is scored, and reports progress against the
// chargeable count.
func (s *Space) census() (decodable, chargeable int) {
	seen := map[string]bool{}
	s.Enumerate(func(p Point) bool {
		c, err := s.Decode(p)
		if err != nil {
			return true
		}
		if k := c.Key(); !seen[k] {
			seen[k] = true
			decodable++
			if s.FitsWorkloads(c) {
				chargeable++
			}
		}
		return true
	})
	return decodable, chargeable
}

// CountDistinct returns the number of distinct decodable candidates in
// the space (machines that later prove context-infeasible for a workload
// still count — they are decoded, just never simulated).
func (s *Space) CountDistinct() int {
	decodable, _ := s.census()
	return decodable
}

// RandomPoint samples a genotype uniformly per dimension from rng (any
// deterministic integer source; the driver passes its seeded RNG).
func (s *Space) RandomPoint(intn func(n int) int) Point {
	dims := s.Dims()
	pt := make(Point, len(dims))
	for i, d := range dims {
		pt[i] = intn(d)
	}
	return pt
}
