package search

import (
	"context"
	"math/rand"
)

// HillClimb is steepest-ascent hill-climbing with random restarts: from a
// seeded start, every single-dimension mutation is evaluated as one batch
// (free parallelism through the engine) and the walk moves to the best
// improving neighbor, restarting from a fresh random point at each local
// optimum. Memoized revisits cost nothing, so climbs that cross earlier
// trajectories stay cheap.
type HillClimb struct {
	// MaxStartTries bounds the decode-only feasibility probes per restart
	// (0 = default). Probing is free — no simulation — but must terminate
	// on spaces with no feasible points.
	MaxStartTries int
	// Seeded starts the *first* climb from the best of its feasible probes
	// under the area-normalized issue-width proxy (IssueWidthProxy)
	// instead of the first one — the same decode-only probes, ranked by
	// the ROADMAP's prior rather than taken in arrival order. Restarts
	// revert to uniform starts: re-ranking every restart would keep
	// landing in the proxy-best basin, spinning on free memoized revisits
	// instead of exploring.
	Seeded bool
}

// Name identifies the strategy.
func (h HillClimb) Name() string {
	if h.Seeded {
		return "hillclimb-seeded"
	}
	return "hillclimb"
}

// Run climbs until the evaluation budget runs out.
func (h HillClimb) Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
	tries := h.MaxStartTries
	if tries <= 0 {
		tries = 256
	}
	dims := sp.Dims()
	// fallbackStart hands out feasible starts in enumeration order when
	// random probing keeps missing (tight area caps can push the feasible
	// fraction below 1/tries): the nth call yields the nth decodable
	// point, and nil once the enumeration is spent — ending the search
	// instead of aborting a space that does have feasible machines.
	fallbacks := 0
	fallbackStart := func() Point {
		var start Point
		skip := fallbacks
		sp.Enumerate(func(p Point) bool {
			if _, err := sp.Decode(p); err != nil {
				return true
			}
			if skip > 0 {
				skip--
				return true
			}
			start = p.Clone()
			return false
		})
		fallbacks++
		return start
	}
	seedNext := h.Seeded
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// A feasible start, by decode-only probing; the seeded first climb
		// ranks the probes by the issue-width proxy and keeps the best.
		var start Point
		bestProxy := 0.0
		for i := 0; i < tries; i++ {
			p := sp.RandomPoint(rng.Intn)
			c, err := sp.Decode(p)
			if err != nil {
				continue
			}
			if !seedNext {
				start = p
				break
			}
			if proxy := IssueWidthProxy(c); start == nil || proxy > bestProxy {
				start, bestProxy = p, proxy
			}
		}
		seedNext = false
		if start == nil {
			if start = fallbackStart(); start == nil {
				return nil // every feasible start exhausted: done
			}
		}
		scores, err := eval(ctx, []Point{start})
		if done, err := stop(err); done {
			return err
		}
		cur, curScore := start, scores[0]

		for {
			// All single-dimension mutations of the current point.
			var neighbors []Point
			for d := range dims {
				for c := 0; c < dims[d]; c++ {
					if c == cur[d] {
						continue
					}
					n := cur.Clone()
					n[d] = c
					neighbors = append(neighbors, n)
				}
			}
			scores, err := eval(ctx, neighbors)
			best := -1
			for i := range scores {
				if scores[i].Better(curScore) && (best < 0 || scores[i].Better(scores[best])) {
					best = i
				}
			}
			if best >= 0 {
				cur, curScore = neighbors[best], scores[best]
			}
			if done, err := stop(err); done {
				return err
			}
			if best < 0 {
				break // local optimum: restart
			}
		}
	}
}
