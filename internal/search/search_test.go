package search

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/engine"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

// testSimOptions keeps per-point simulations tiny; the comparative shape
// of the space is stable at this scale (same property TestBudgetInsensitivity
// pins for the paper's figures).
func testSimOptions() sim.Options {
	return sim.Options{Budget: 2_000, Warmup: 1_000}
}

func testWorkloads(t *testing.T) []workload.Workload {
	t.Helper()
	return []workload.Workload{workload.MustByName("2W7")}
}

// smallSpace is the shared test space: ≤ 3 pipelines with queue-size and
// remap axes — 384 genotypes, 114 distinct machines, enumerable in
// seconds, rich enough for the guided strategies to earn their keep.
func smallSpace(t *testing.T) Space {
	t.Helper()
	sp := NewSpace(3, 0, testWorkloads(t))
	sp.QueueScales = []int{75, 100, 125}
	sp.RemapIntervals = []uint64{0, 2_048}
	return sp
}

func newTestRunner(t *testing.T) *sim.Runner {
	t.Helper()
	r, err := sim.NewRunner(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestSpaceSizeAndCandidates(t *testing.T) {
	sp := NewSpace(3, 0, testWorkloads(t))
	// 3 slots × (3 models + none) = 4³ = 64 genotypes on single-choice axes.
	if got := sp.Size(); got != 64 {
		t.Errorf("Size = %d, want 64", got)
	}
	// Distinct machines: multisets of {M6,M4,M2} of size 1..3 = 19.
	if got := len(sp.Candidates()); got != 19 {
		t.Errorf("candidates = %d, want 19", got)
	}

	sp = smallSpace(t)
	if got := sp.Size(); got != 384 {
		t.Errorf("enriched Size = %d, want 384 (64 × 3 queue scales × 2 remaps)", got)
	}
	// 19 multisets × 3 queue scales × 2 remaps = 114 distinct machines.
	if got := len(sp.Candidates()); got != 114 {
		t.Errorf("enriched candidates = %d, want 114", got)
	}
}

func TestSpaceValidate(t *testing.T) {
	ok := smallSpace(t)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.MaxPipes = 0
	if err := bad.Validate(); err == nil {
		t.Error("MaxPipes 0 must fail")
	}
	bad = ok
	bad.Workloads = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty workloads must fail")
	}
	bad = ok
	bad.Policies = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty policy axis must fail")
	}
	bad = ok
	bad.Policies = []string{"NOPE"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy must fail")
	}
	bad = ok
	bad.QueueScales = []int{0}
	if err := bad.Validate(); err == nil {
		t.Error("zero queue scale must fail")
	}
	// Absurd spaces are rejected up front rather than wedging the census
	// in an hours-long enumeration (Size saturates instead of wrapping).
	bad = ok
	bad.MaxPipes = 2_000
	if bad.Size() <= 0 {
		t.Errorf("Size overflowed to %d", bad.Size())
	}
	if err := bad.Validate(); err == nil {
		t.Error("a space beyond MaxSpaceSize must fail")
	}
}

// TestDecodeCanonicalization: genotypes differing only in slot order (or
// in axes that normalize away) decode to the same content-addressed key.
func TestDecodeCanonicalization(t *testing.T) {
	sp := smallSpace(t)
	// Slots (M6, M4, -) and (M4, -, M6): same multiset {M6, M4}.
	a, err := sp.Decode(Point{1, 2, 0, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Decode(Point{2, 0, 1, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("slot permutations decode to different keys: %s vs %s", a.Name(), b.Name())
	}
	if a.Cfg.Name != "1M6+1M4" {
		t.Errorf("decoded name = %q", a.Cfg.Name)
	}

	// The empty machine is infeasible.
	if _, err := sp.Decode(Point{0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("empty machine must be infeasible")
	} else if _, ok := err.(ErrInfeasible); !ok {
		t.Errorf("want ErrInfeasible, got %v", err)
	}

	// Area caps bite.
	capped := sp
	capped.AreaCap = 1
	if _, err := capped.Decode(Point{1, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("area cap must reject every machine at 1 mm²")
	}

	// A remap interval on a monolithic machine normalizes to 0.
	mono := NewSpace(1, 0, testWorkloads(t))
	mono.Models = []config.Model{config.M8}
	mono.RemapIntervals = []uint64{0, 2_048}
	withRemap, err := mono.Decode(Point{1, 0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if withRemap.Remap != 0 {
		t.Errorf("monolithic remap = %d, want 0", withRemap.Remap)
	}
	static, err := mono.Decode(Point{1, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if withRemap.Key() != static.Key() {
		t.Error("monolithic remap choices must share one key")
	}

	// A policy equal to the machine's default normalizes to "", so the
	// same machine is never charged twice via two policy spellings.
	pol := smallSpace(t)
	pol.Policies = []string{"", "L1MCOUNT", "ICOUNT2.8"}
	deflt, err := pol.Decode(Point{1, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := pol.Decode(Point{1, 0, 0, 1, 0, 0, 0}) // L1MCOUNT: multipipe default
	if err != nil {
		t.Fatal(err)
	}
	if spelled.Policy != "" || spelled.Key() != deflt.Key() {
		t.Errorf("explicit default policy not normalized: %q (keys equal: %v)",
			spelled.Policy, spelled.Key() == deflt.Key())
	}
	override, err := pol.Decode(Point{1, 0, 0, 2, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if override.Policy != "ICOUNT2.8" || override.Key() == deflt.Key() {
		t.Error("real policy override must keep its own key")
	}
}

// TestExhaustiveMatchesSimExplore cross-checks the new subsystem against
// the existing ranking: on a pure multiset space, the exhaustive strategy's
// optimum is the machine sim.Explore ranks first, with the same score.
func TestExhaustiveMatchesSimExplore(t *testing.T) {
	wls := testWorkloads(t)
	sp := NewSpace(3, 0, wls)
	opt := testSimOptions()

	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, Exhaustive{}, Options{Sim: opt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("exhaustive found nothing")
	}

	var cfgs []config.Microarch
	for _, c := range sp.Candidates() {
		cfgs = append(cfgs, c.Cfg)
	}
	ranking, err := r.Explore(context.Background(), wls, cfgs, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ranking[0].Config != res.Best.Config {
		t.Errorf("exhaustive best %s, sim.Explore ranks %s first", res.Best.Config, ranking[0].Config)
	}
	if diff := ranking[0].PerArea - res.Best.Metric("per_area"); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("objective mismatch: %v vs %v", res.Best.Metric("per_area"), ranking[0].PerArea)
	}
	// 19 machines, minus 1M2 (one context cannot hold the 2-thread
	// workload — context-infeasible, never simulated).
	if res.Evaluations != 18 {
		t.Errorf("evaluations = %d, want 18", res.Evaluations)
	}
	if res.Infeasible == 0 {
		t.Error("1M2 should have been counted infeasible")
	}
}

// TestStrategiesFindOptimum is the satellite correctness test: on the
// small space, every strategy — budgeted to 30% of the exhaustive
// simulation count for the guided ones — lands on the machine the
// exhaustive baseline proves optimal.
func TestStrategiesFindOptimum(t *testing.T) {
	sp := smallSpace(t)
	opt := testSimOptions()

	exhRunner := newTestRunner(t)
	exh, err := NewDriver(exhRunner).Search(context.Background(), sp, Exhaustive{}, Options{Sim: opt})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Best == nil {
		t.Fatal("exhaustive found nothing")
	}
	budget := exh.Evaluations * 30 / 100

	for _, tc := range []struct {
		name string
		seed int64
	}{
		{"hillclimb", 1},
		{"aco", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			r := newTestRunner(t) // fresh engine: simulation counts are honest
			res, err := NewDriver(r).Search(context.Background(), sp, st, Options{Budget: budget, Seed: tc.seed, Sim: opt})
			if err != nil {
				t.Fatal(err)
			}
			if res.Best == nil {
				t.Fatal("no feasible point found")
			}
			if res.Best.Config != exh.Best.Config || res.Best.Remap != exh.Best.Remap || res.Best.Policy != exh.Best.Policy {
				t.Errorf("best = %s r%d %q, exhaustive optimum = %s r%d %q",
					res.Best.Config, res.Best.Remap, res.Best.Policy,
					exh.Best.Config, exh.Best.Remap, exh.Best.Policy)
			}
			if limit := exh.Simulations * 30 / 100; res.Simulations > limit {
				t.Errorf("simulations = %d, want <= %d (30%% of exhaustive's %d)",
					res.Simulations, limit, exh.Simulations)
			}
		})
	}
}

// TestTrajectoryDeterminism is the satellite determinism test: a fixed
// seed reproduces the trajectory JSON byte for byte, on a cold engine each
// time.
func TestTrajectoryDeterminism(t *testing.T) {
	sp := smallSpace(t)
	run := func() []byte {
		r := newTestRunner(t)
		res, err := NewDriver(r).Search(context.Background(), sp, NewACO(),
			Options{Budget: 20, Seed: 42, Sim: testSimOptions()})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("same seed, different trajectory JSON:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"trajectory"`) {
		t.Errorf("result JSON lacks a trajectory: %s", a)
	}
}

// TestBudgetAccounting pins the budget ledger: evaluations never exceed
// the budget, simulations never exceed evaluations × workloads, and
// revisits/infeasible points ride free.
func TestBudgetAccounting(t *testing.T) {
	sp := smallSpace(t)
	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, Random{},
		Options{Budget: 7, Seed: 3, Sim: testSimOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 7 {
		t.Errorf("evaluations = %d, budget 7", res.Evaluations)
	}
	if max := uint64(res.Evaluations * len(sp.Workloads)); res.Simulations > max {
		t.Errorf("simulations = %d, want <= %d", res.Simulations, max)
	}
	if res.Visited < res.Evaluations {
		t.Errorf("visited %d < evaluations %d", res.Visited, res.Evaluations)
	}

	// A second identical search on the same runner re-spends its budget
	// but the engine serves every simulation from cache.
	res2, err := NewDriver(r).Search(context.Background(), sp, Random{},
		Options{Budget: 7, Seed: 3, Sim: testSimOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Simulations != 0 {
		t.Errorf("warm rerun executed %d simulations, want 0", res2.Simulations)
	}
	if res2.CacheHitRate != 1 {
		t.Errorf("warm rerun cache-hit rate = %v, want 1", res2.CacheHitRate)
	}
	if res2.Best == nil || res.Best == nil || res2.Best.Metric("per_area") != res.Best.Metric("per_area") {
		t.Error("warm rerun found a different best")
	}
}

// TestSpaceExhaustionTerminates is the non-termination regression test:
// an open-ended strategy whose budget exceeds the space's distinct
// candidates must stop once every candidate is scored, not spin on free
// memoized revisits forever.
func TestSpaceExhaustionTerminates(t *testing.T) {
	sp := NewSpace(2, 0, testWorkloads(t)) // 9 distinct machines
	if got := sp.CountDistinct(); got != 9 {
		t.Fatalf("CountDistinct = %d, want 9", got)
	}
	for _, name := range []string{"random", "hillclimb", "aco"} {
		t.Run(name, func(t *testing.T) {
			st, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			r := newTestRunner(t)
			res, err := NewDriver(r).Search(context.Background(), sp, st,
				Options{Budget: 1_000, Seed: 5, Sim: testSimOptions()})
			if err != nil {
				t.Fatal(err)
			}
			// 9 machines minus context-infeasible 1M2 = 8 chargeable.
			if res.Evaluations != 8 {
				t.Errorf("evaluations = %d, want 8 (the whole space)", res.Evaluations)
			}
			if res.Best == nil {
				t.Error("no best found despite full coverage")
			}
		})
	}
}

// TestSearchCancellation: a canceled context aborts the search with an
// error rather than a truncated result.
func TestSearchCancellation(t *testing.T) {
	sp := smallSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := newTestRunner(t)
	if _, err := NewDriver(r).Search(ctx, sp, Random{}, Options{Budget: 10, Sim: testSimOptions()}); err == nil {
		t.Error("pre-canceled context must abort the search")
	}
}

// TestProgressReporting: the progress callback sees every charged
// evaluation, in order.
func TestProgressReporting(t *testing.T) {
	sp := smallSpace(t)
	r := newTestRunner(t)
	var seen []int
	_, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 5, Seed: 9, Sim: testSimOptions(),
		Progress: func(done, total int) {
			if total != 5 {
				t.Errorf("total = %d, want 5", total)
			}
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("progress fired %d times, want 5: %v", len(seen), seen)
	}
	for i, v := range seen {
		if v != i+1 {
			t.Errorf("progress[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range StrategyNames() {
		st, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if st.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, st.Name())
		}
	}
	if _, err := ByName("genetic"); err == nil {
		t.Error("unknown strategy must fail")
	}
}

// TestHillClimbTightAreaCap: when random probing cannot find a feasible
// start (the cap leaves a sub-1/256 feasible fraction), hillclimb must
// still search via enumeration-order fallbacks rather than abort.
func TestHillClimbTightAreaCap(t *testing.T) {
	// Only the single-M2 machines fit under 20 mm²; the 2-thread workload
	// then makes them context-infeasible, but the search must still
	// terminate cleanly rather than error out.
	sp := NewSpace(4, 20, testWorkloads(t))
	sp.QueueScales = []int{75, 100}
	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, HillClimb{MaxStartTries: 4},
		Options{Budget: 10, Seed: 1, Sim: testSimOptions()})
	if err != nil {
		t.Fatalf("tight-cap hillclimb errored: %v", err)
	}
	if res.Best != nil {
		t.Errorf("no machine fits 2 threads under the cap, got best %s", res.Best.Config)
	}

	// With a cap that admits 2M2 variants, the fallback must find them.
	sp2 := NewSpace(4, 35, testWorkloads(t))
	sp2.QueueScales = []int{75, 100}
	r2 := newTestRunner(t)
	res2, err := NewDriver(r2).Search(context.Background(), sp2, HillClimb{MaxStartTries: 1},
		Options{Budget: 10, Seed: 1, Sim: testSimOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best == nil {
		t.Fatal("hillclimb found nothing despite feasible 2M2 machines under the cap")
	}
}
