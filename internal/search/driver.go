package search

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"

	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/metrics"
	"hdsmt/internal/pareto"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
)

// Options configures one search run.
type Options struct {
	// Budget is the number of point evaluations the search may charge: a
	// distinct feasible candidate scored for the first time costs 1 (its
	// per-workload simulations fan out through the engine; any of them may
	// still be engine cache hits). Infeasible decodes and revisits are
	// free. Budget <= 0 means unbounded — sensible only for Exhaustive,
	// whose enumeration terminates on its own.
	Budget int
	// Seed drives every stochastic choice. The same seed, space, strategy
	// and budget reproduce the identical trajectory, byte for byte.
	Seed int64
	// Sim scales the per-point simulations (Budget/Warmup per thread).
	Sim sim.Options
	// Objectives, when non-empty, makes the run multi-objective: every
	// settled score carries its gain vector over this list, the driver
	// maintains an archive of non-dominated points, and the Result gains
	// the front and its hypervolume trajectory. Empty means the scalar
	// IPC/mm² search (scores then carry the one-element [per_area] vector,
	// so the multi-objective strategies degrade gracefully to scalar
	// optimizers). Objectives resolve from the metric registry; one whose
	// metric needs alone-run baselines (fairness) additionally prices
	// per-benchmark alone simulations into every first visit.
	Objectives []pareto.Objective
	// ArchiveCap bounds the non-dominated archive (crowding-distance
	// pruning beyond it; 0 = pareto.DefaultArchiveCap). Pruning can make
	// the hypervolume trajectory non-monotone — size the cap above the
	// expected front for indicator studies.
	ArchiveCap int
	// ArchivePath, when non-empty on a multi-objective run, persists the
	// non-dominated archive as JSON at this path (atomic rewrite on every
	// archive change) and — when the file already exists — seeds the
	// archive from it before the strategy runs, so a canceled run resumed
	// with the same path restores its front instead of rediscovering it.
	// Meant to sit next to the engine's checkpoint journal: the journal
	// resumes the simulations, the archive file resumes the front.
	ArchivePath string
	// Progress, when non-nil, is called after each charged evaluation with
	// (evaluations spent, target), where target is the effective number of
	// evaluations the search can charge: min(Budget, distinct candidates),
	// or the distinct-candidate count when Budget is unbounded. Not part
	// of the result.
	Progress func(done, total int)
	// FrontProgress, when non-nil, is called after every archive change on
	// a multi-objective run with the incumbent front (canonical order) and
	// its hypervolume — the hook behind the server's mid-run front
	// streaming. Not part of the result.
	FrontProgress func(front []TrajectoryPoint, hypervolume float64)
	// Telemetry, when non-nil, receives per-strategy counters (charged
	// evaluations, engine submissions, cache-served submissions) and a
	// best-so-far age gauge (evaluations since the scalar incumbent last
	// improved). Purely observational: the Result carries the same ledger,
	// so a nil registry loses nothing but live visibility.
	Telemetry *telemetry.Registry
	// Sample, when enabled (Period > 0), triages first visits with sampled
	// simulations at these parameters: every candidate is first scored from
	// the cheap sampled estimates, and only those whose optimistic bound —
	// point estimate shifted by its 95% margin in the improving direction —
	// could displace the scalar incumbent or enter the Pareto archive are
	// re-simulated in full before they settle. Incumbents and archive
	// members are therefore always exact measurements; scores settled from
	// the triage pass carry their margins as metric companions in Values
	// (metrics.SetMoE), so consumers can see how trustworthy they are.
	Sample core.SampleParams
}

// TrajectoryPoint is one recorded machine: the incumbent of a best-so-far
// improvement (Trajectory), or a front member (Front).
type TrajectoryPoint struct {
	// Evaluations is the budget spent when this point was found.
	Evaluations int `json:"evaluations"`
	// Config is the machine's canonical configuration name.
	Config string `json:"config"`
	// Policy is the fetch-policy override ("" = configuration default).
	Policy string `json:"policy,omitempty"`
	// Remap is the dynamic-remap interval in cycles (0 = static).
	Remap uint64 `json:"remap,omitempty"`
	// Values holds the machine's metric values by registry key (the
	// settled Score's Values; see Score).
	Values metrics.Values `json:"values"`
}

// Name renders the point like Candidate.Name ("2M4+2M2", "3M4q75 FLUSH
// r2048").
func (tp TrajectoryPoint) Name() string { return renderName(tp.Config, tp.Policy, tp.Remap) }

// Metric returns one of the point's metric values by registry key (0 when
// absent).
func (tp TrajectoryPoint) Metric(key string) float64 { return tp.Values[key] }

// ObjectiveVector extracts the point's raw values over the given objective
// list, in list order — the one key-to-value mapping front checks and
// exporters share. Unknown keys panic, like objectiveValue.
func (tp TrajectoryPoint) ObjectiveVector(objs []pareto.Objective) pareto.Vector {
	v := make(pareto.Vector, len(objs))
	for i, o := range objs {
		v[i] = objectiveValue(Score{Values: tp.Values}, o.Key)
	}
	return v
}

// CheckFront verifies a front's members are mutually non-dominated under
// objs — the invariant every archive rendering must satisfy, shared by the
// benchmark's assertions and the tests.
func CheckFront(objs []pareto.Objective, front []TrajectoryPoint) error {
	for i := range front {
		for j := range front {
			if i != j && pareto.Dominates(objs, front[i].ObjectiveVector(objs), front[j].ObjectiveVector(objs)) {
				return fmt.Errorf("search: front member %s dominates %s", front[i].Name(), front[j].Name())
			}
		}
	}
	return nil
}

// HypervolumePoint is one step of the front-quality trajectory: the
// archive's hypervolume after the evaluation that changed it.
type HypervolumePoint struct {
	Evaluations int     `json:"evaluations"`
	Hypervolume float64 `json:"hypervolume"`
}

// Result is one search's auditable outcome: the incumbent, the best-so-far
// curve, on multi-objective runs the non-dominated front with its
// hypervolume trajectory, and the cost accounting that lets search
// efficiency be compared against exhaustive enumeration. It marshals
// deterministically — a fixed seed reproduces the JSON byte for byte (no
// wall-clock fields).
type Result struct {
	Strategy  string `json:"strategy"`
	SpaceSize int64  `json:"space_size"` // genotypes in the space
	Budget    int    `json:"budget"`     // 0 = unbounded
	Seed      int64  `json:"seed"`
	// Objectives names the run's objective keys, in vector order; empty on
	// scalar runs.
	Objectives []string `json:"objectives,omitempty"`

	// Evaluations is the budget actually spent (distinct candidates
	// scored). Visited counts every point proposed, Revisits the memoized
	// re-proposals, Infeasible the decode- or context-infeasible points.
	Evaluations int `json:"evaluations"`
	Visited     int `json:"visited"`
	Revisits    int `json:"revisits"`
	Infeasible  int `json:"infeasible"`

	// Submitted counts the simulation requests this search submitted to
	// the engine; Simulations is the subset not served from the engine's
	// in-memory store at submission — the search's own simulation cost
	// (attribution is per-ticket, so concurrent jobs on the same runner
	// cannot skew it; a request coalesced with or disk-served for another
	// job still counts here, making Simulations an upper bound).
	// CacheHitRate = 1 - Simulations/Submitted.
	Simulations  uint64  `json:"simulations"`
	Submitted    uint64  `json:"submitted"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Triaged counts candidates first scored from sampled simulations
	// (Options.Sample); Promoted is the subset whose optimistic estimate
	// warranted a full re-simulation before settling. Both zero on exact
	// runs.
	Triaged  int `json:"triaged,omitempty"`
	Promoted int `json:"promoted,omitempty"`

	// RestoredFront counts archive members seeded from Options.ArchivePath
	// before the strategy ran (0 on fresh runs).
	RestoredFront int `json:"restored_front,omitempty"`

	// Best is the scalar IPC/mm² incumbent (nil when no feasible point was
	// found); Trajectory is every incumbent in discovery order, Best last.
	// Both are maintained on multi-objective runs too, anchoring the front
	// to the complexity-effectiveness objective the paper argues with.
	Best       *TrajectoryPoint  `json:"best,omitempty"`
	Trajectory []TrajectoryPoint `json:"trajectory"`

	// Front is the archive at the end of a multi-objective run: mutually
	// non-dominated machines in the archive's canonical order (descending
	// first-objective gain). Hypervolume records the front-quality
	// trajectory — one point per evaluation that changed the archive
	// (evaluation 0 is the restored front, when ArchivePath seeded one).
	Front       []TrajectoryPoint  `json:"front,omitempty"`
	Hypervolume []HypervolumePoint `json:"hypervolume,omitempty"`
}

// Driver runs strategies over a space, fanning point evaluations out
// through a shared sim.Runner's engine and recording the trajectory. The
// caller keeps ownership of the runner (and its memoization store, which
// successive searches share — a warm store makes overlapping searches
// nearly free).
type Driver struct {
	runner *sim.Runner
}

// NewDriver builds a Driver on r.
func NewDriver(r *sim.Runner) *Driver { return &Driver{runner: r} }

// Search runs one strategy over sp under opts. Budget exhaustion is normal
// termination; context cancellation and simulation failures are errors.
func (d *Driver) Search(ctx context.Context, sp Space, st Strategy, opts Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("search: nil strategy")
	}

	res := &Result{
		Strategy:   st.Name(),
		SpaceSize:  sp.Size(),
		Budget:     opts.Budget,
		Seed:       opts.Seed,
		Trajectory: []TrajectoryPoint{},
	}
	state := &evalState{
		driver: d, space: &sp, opts: opts, res: res,
		memo: map[string]Score{},
		objs: opts.Objectives,
	}
	state.instrument(opts.Telemetry, st.Name())
	if len(state.objs) > 0 {
		res.Objectives = pareto.Keys(state.objs)
		state.archive = pareto.NewArchive(state.objs, opts.ArchiveCap)
		state.needsAlone = needsAloneRuns(state.objs)
		if opts.ArchivePath != "" {
			if err := state.restoreArchive(); err != nil {
				return nil, err
			}
		}
	} else if opts.ArchivePath != "" {
		return nil, fmt.Errorf("search: ArchivePath needs a multi-objective run (set Objectives)")
	}
	var chargeable int
	state.distinct, chargeable = sp.census()
	state.target = chargeable
	if opts.Budget > 0 && opts.Budget < state.target {
		state.target = opts.Budget
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if err := st.Run(ctx, &sp, rng, state.evaluate); err != nil {
		return nil, err
	}

	res.Submitted = state.submitted
	res.Simulations = state.submitted - state.hits
	if res.Submitted > 0 {
		res.CacheHitRate = float64(state.hits) / float64(res.Submitted)
	}
	if len(res.Trajectory) > 0 {
		res.Best = &res.Trajectory[len(res.Trajectory)-1]
	}
	if state.archive != nil {
		res.Front = state.front()
	}
	return res, nil
}

// needsAloneRuns reports whether any objective's metric requires
// per-benchmark alone-run baseline simulations (metrics.Metric
// .NeedsAloneRuns — fairness, today).
func needsAloneRuns(objs []pareto.Objective) bool {
	for _, o := range objs {
		if m, ok := metrics.Lookup(o.Key); ok && m.NeedsAloneRuns {
			return true
		}
	}
	return false
}

// objectiveValue extracts one objective's raw value from a settled score.
// A missing value panics: the driver guarantees (settleJob's availability
// check) that every settled feasible score carries every objective metric,
// so absence here is a programming error, not an input error.
func objectiveValue(sc Score, key string) float64 {
	v, ok := sc.Values[key]
	if !ok {
		panic(fmt.Sprintf("search: objective %q has no value on this score (known metrics: %v)", key, metrics.Keys()))
	}
	return v
}

// evalState is the driver-side half of one search: the budget ledger, the
// candidate memo, the trajectory recorder, and (multi-objective runs) the
// non-dominated archive behind the Evaluator closure handed to the
// strategy.
type evalState struct {
	driver *Driver
	space  *Space
	opts   Options
	res    *Result
	memo   map[string]Score // candidate key -> settled score
	// settled counts charged evaluations whose score has landed; it trails
	// Evaluations (charged at submission) and drives Progress.
	settled int
	// distinct is the space's decodable-candidate count; once the memo
	// covers it no proposal can progress, so evaluate stops open-ended
	// strategies with ErrSpaceExhausted. target is the effective charge
	// ceiling reported to Progress: min(Budget, distinct).
	distinct int
	target   int
	// submitted/hits attribute engine traffic to this search per ticket.
	submitted, hits uint64

	// Multi-objective state: the run's objectives, whether a metric among
	// them needs alone-run baselines, and the non-dominated archive (each
	// entry carries its TrajectoryPoint rendering as the payload).
	objs       []pareto.Objective
	needsAlone bool
	archive    *pareto.Archive

	// Per-strategy telemetry (nil series no-op when Options.Telemetry is
	// unset). bestAge backs the sampled gauge — an atomic because scrapes
	// race the driver goroutine.
	telEvals, telSubmitted, telHits *telemetry.Counter
	bestAge                         atomic.Int64
}

// instrument registers the run's per-strategy series in reg (nil = off).
func (s *evalState) instrument(reg *telemetry.Registry, strategy string) {
	if reg == nil {
		return
	}
	s.telEvals = reg.CounterVec(telemetry.MetricSearchEvaluations,
		"charged point evaluations", "strategy").With(strategy)
	s.telSubmitted = reg.CounterVec(telemetry.MetricSearchSubmitted,
		"simulation requests submitted to the engine", "strategy").With(strategy)
	s.telHits = reg.CounterVec(telemetry.MetricSearchCacheHits,
		"submissions served from the engine's in-memory store", "strategy").With(strategy)
	reg.GaugeFuncWith(telemetry.MetricSearchBestAge,
		"evaluations since the scalar incumbent last improved", "strategy", strategy,
		func() float64 { return float64(s.bestAge.Load()) })
}

// cellTickets is one workload's in-flight simulations for a candidate: the
// shared run and — on alone-run-priced objective runs — one alone run per
// benchmark.
type cellTickets struct {
	shared *engine.Ticket
	alone  []*engine.Ticket
}

// job is one batch entry that needs simulation: the candidate, its charge
// number, and its per-workload ticket groups.
type job struct {
	pos    int // index into the batch's scores
	cand   Candidate
	charge int // res.Evaluations value at charge time (1-based)
	cells  []cellTickets
}

// infeasibleScore is the settled verdict for points that decode to no
// simulatable machine: Settled so strategies can tell it from a pending
// placeholder, Feasible false.
var infeasibleScore = Score{Settled: true}

// evaluate implements Evaluator: decode, dedup, charge, fan out, settle in
// order. See the interface comment for the truncation contract.
func (s *evalState) evaluate(ctx context.Context, pts []Point) ([]Score, error) {
	scores := make([]Score, 0, len(pts))
	var jobs []job
	inflight := map[string]bool{} // keys charged in this batch, score pending
	// Duplicates of an in-flight key stay placeholders until the batch
	// settles — blocking on the first occurrence mid-loop would serialize
	// the rest of the batch's submissions.
	type dup struct {
		pos int
		key string
	}
	var backfill []dup

	settle := func() error {
		for _, j := range jobs {
			sc, err := s.settleJob(ctx, j)
			if err != nil {
				return err
			}
			s.memo[j.cand.Key()] = sc
			scores[j.pos] = sc
			if err := s.record(j, sc); err != nil {
				return err
			}
		}
		jobs = nil
		for _, d := range backfill {
			scores[d.pos] = s.memo[d.key]
		}
		backfill = nil
		return nil
	}

	for _, pt := range pts {
		if len(s.memo) >= s.distinct {
			// Every decodable candidate is scored: nothing left to learn.
			if err := settle(); err != nil {
				return nil, err
			}
			return scores, ErrSpaceExhausted
		}
		s.res.Visited++
		cand, err := s.space.Decode(pt)
		if err != nil {
			if _, ok := err.(ErrInfeasible); ok {
				s.res.Infeasible++
				scores = append(scores, infeasibleScore)
				continue
			}
			return nil, err
		}
		key := cand.Key()
		if inflight[key] {
			s.res.Revisits++
			backfill = append(backfill, dup{pos: len(scores), key: key})
			scores = append(scores, Score{}) // filled at settle
			continue
		}
		if sc, ok := s.memo[key]; ok {
			s.res.Revisits++
			scores = append(scores, sc)
			continue
		}

		if !s.space.FitsWorkloads(cand) {
			s.res.Infeasible++
			s.memo[key] = infeasibleScore
			scores = append(scores, infeasibleScore)
			continue
		}

		if s.opts.Budget > 0 && s.res.Evaluations >= s.opts.Budget {
			if err := settle(); err != nil {
				return nil, err
			}
			return scores, ErrBudgetExhausted
		}
		s.res.Evaluations++
		s.telEvals.Inc()
		j := job{pos: len(scores), cand: cand, charge: s.res.Evaluations}
		if j.cells, err = s.submitCells(ctx, cand, s.opts.Sample.Enabled()); err != nil {
			return nil, err
		}
		inflight[key] = true
		scores = append(scores, Score{}) // placeholder, settled below
		jobs = append(jobs, j)
	}
	if err := settle(); err != nil {
		return nil, err
	}
	return scores, nil
}

// submitCells fans out one candidate's simulations: per workload the
// shared run plus — when an objective's metric needs them — one alone-run
// baseline per benchmark (AloneRequest on the ForThreads-normalized
// configuration, like the shared run, so keys match across callers).
// sampled selects the sampled triage pass; the settle pass always runs
// exact, whatever the caller put in Options.Sim.
func (s *evalState) submitCells(ctx context.Context, cand Candidate, sampled bool) ([]cellTickets, error) {
	simOpt := s.opts.Sim
	if sampled {
		simOpt.Sample = s.opts.Sample
	} else {
		simOpt.Sample = core.SampleParams{}
	}
	var cells []cellTickets
	for _, w := range s.space.Workloads {
		req, err := sim.NewRequest(cand.Cfg, w, simOpt, cand.Policy, cand.Remap)
		if err != nil {
			return nil, fmt.Errorf("search: %s on %s: %w", cand.Name(), w.Name, err)
		}
		cell := cellTickets{}
		if cell.shared, err = s.submit(ctx, req); err != nil {
			return nil, err
		}
		if s.needsAlone {
			for b := range w.Benchmarks {
				tk, err := s.submit(ctx, sim.AloneRequest(req.Cfg, w, b, simOpt))
				if err != nil {
					return nil, err
				}
				cell.alone = append(cell.alone, tk)
			}
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// submit sends one request to the engine and attributes its cache fate to
// this search.
func (s *evalState) submit(ctx context.Context, req engine.Request) (*engine.Ticket, error) {
	tk, err := s.driver.runner.Engine().Submit(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("search: submitting %s: %w", req, err)
	}
	s.submitted++
	s.telSubmitted.Inc()
	if tk.CacheHit() {
		s.hits++
		s.telHits.Inc()
	}
	return tk, nil
}

// settleJob produces one candidate's settled score. On exact runs it just
// assembles the simulations' metrics. Under the sampled triage policy
// (Options.Sample) the charged cells were sampled estimates: the score is
// assembled with its margins, and when its optimistic bound could displace
// the scalar incumbent or enter the archive, the candidate is re-simulated
// in full and the exact score settles instead — the coarse pass spends the
// search budget, the accurate pass is reserved for points that matter.
func (s *evalState) settleJob(ctx context.Context, j job) (Score, error) {
	sc, err := s.assembleScore(ctx, j)
	if err != nil || !s.opts.Sample.Enabled() {
		return sc, err
	}
	s.res.Triaged++
	if !s.promotable(sc) {
		return sc, nil
	}
	s.res.Promoted++
	if j.cells, err = s.submitCells(ctx, j.cand, false); err != nil {
		return Score{}, err
	}
	return s.assembleScore(ctx, j)
}

// promotable judges a sampled triage score by its optimistic bound — every
// objective shifted by its 95% margin in the improving direction. Scalar
// runs promote when the bound beats the incumbent; multi-objective runs
// promote when no archive member dominates it (mirroring Archive.Add's
// rejection rule, so a non-promoted point provably could not have entered).
func (s *evalState) promotable(sc Score) bool {
	if !sc.Feasible {
		return false
	}
	if len(s.objs) == 0 {
		best := s.res.Best
		optimistic := sc.Metric("per_area") * (1 + metrics.RelMoE(sc.Values, "per_area"))
		return best == nil || optimistic > best.Metric("per_area")
	}
	raw := make(pareto.Vector, len(s.objs))
	for i, o := range s.objs {
		v := objectiveValue(sc, o.Key)
		rel := metrics.RelMoE(sc.Values, o.Key)
		if o.Sense == pareto.Minimize {
			v *= 1 - rel
		} else {
			v *= 1 + rel
		}
		raw[i] = v
	}
	g := pareto.Gain(s.objs, raw)
	for _, m := range s.archive.Members() {
		if pareto.GainDominates(pareto.Gain(s.objs, m.Vector), g) {
			return false
		}
	}
	return true
}

// assembleScore waits for one candidate's simulations and assembles its
// score: the base metrics — harmonic-mean IPC over the workloads, area,
// mean energy per instruction from the runs' activity counters, mean
// harmonic fairness when an objective prices its alone runs in — then
// every derivable registered metric (metrics.Finalize), and the gain
// vector over the run's objectives. Sampled results additionally settle
// their 95% margins into the Values companion channel (metrics.SetMoE),
// propagated conservatively: the worst per-workload relative margin, with
// one factor per sampled estimate entering a derived ratio. A run whose
// objective metric cannot be produced (e.g. energy over results journaled
// before activity counters existed) fails loudly rather than archiving
// zeros.
func (s *evalState) assembleScore(ctx context.Context, j job) (Score, error) {
	sc := Score{Settled: true, Feasible: true, Values: metrics.Values{"area": j.cand.Area}}
	ipcs := make([]float64, len(j.cells))
	fairSum, energySum, rel := 0.0, 0.0, 0.0
	energyOK := true
	for k, cell := range j.cells {
		shared, err := cell.shared.Wait(ctx)
		if err != nil {
			return Score{}, fmt.Errorf("search: evaluating %s: %w", j.cand.Name(), err)
		}
		ipcs[k] = shared.IPC
		if sp := shared.Sampled; sp != nil && sp.IPCMean > 0 {
			if r := sp.IPCMoE / sp.IPCMean; r > rel {
				rel = r
			}
		}
		if energyOK {
			// Price energy from the shared run's activity counters. The
			// counters cost nothing extra, so energy is computed for every
			// run — but a result restored from a pre-activity journal has
			// none; the metric is then simply absent (and the availability
			// check below rejects the run only if an objective needs it).
			eb, err := sim.EnergyOf(j.cand.Cfg.ForThreads(s.space.Workloads[k].Threads()), shared)
			if err != nil {
				energyOK = false
			} else {
				energySum += eb.EPI
			}
		}
		if s.needsAlone {
			alone := make([]float64, len(cell.alone))
			for b, tk := range cell.alone {
				r, err := tk.Wait(ctx)
				if err != nil {
					return Score{}, fmt.Errorf("search: alone run for %s: %w", j.cand.Name(), err)
				}
				alone[b] = r.IPC
			}
			f, err := sim.FairnessFromResults(j.cand.Cfg, s.space.Workloads[k], shared, alone)
			if err != nil {
				return Score{}, fmt.Errorf("search: fairness of %s: %w", j.cand.Name(), err)
			}
			fairSum += f.HarmonicFairness
		}
	}
	sc.Values["ipc"] = metrics.HMean(ipcs)
	if energyOK {
		sc.Values["energy"] = energySum / float64(len(j.cells))
	}
	if s.needsAlone {
		sc.Values["fairness"] = fairSum / float64(len(j.cells))
	}
	metrics.Finalize(sc.Values)
	if rel > 0 {
		// The worst per-workload relative margin bounds the aggregate's
		// (the harmonic mean's relative error never exceeds its worst
		// component). Derived ratios take one factor per sampled input:
		// per_area divides by exact area, ed stacks energy on ipc, ed²
		// another ipc. Fairness mixes the sampled shared run with exact
		// alone baselines, so one factor covers it.
		for key, factors := range map[string]float64{
			"ipc": 1, "energy": 1, "fairness": 1, "per_area": 1, "ed": 2, "ed2": 3,
		} {
			if v, ok := sc.Values[key]; ok {
				metrics.SetMoE(sc.Values, key, v*rel*factors)
			}
		}
	}
	if len(s.objs) > 0 {
		raw := make(pareto.Vector, len(s.objs))
		for i, o := range s.objs {
			v, ok := sc.Values[o.Key]
			if !ok {
				return Score{}, fmt.Errorf("search: objective %q has no value for %s (results predate its base counters?)", o.Key, j.cand.Name())
			}
			raw[i] = v
		}
		sc.Objectives = pareto.Gain(s.objs, raw)
	} else {
		sc.Objectives = pareto.Vector{sc.Metric("per_area")}
	}
	return sc, nil
}

// record advances the best-so-far curve and the multi-objective archive
// (persisting it and streaming the front when the options ask), then
// reports progress.
func (s *evalState) record(j job, sc Score) error {
	tp := TrajectoryPoint{
		Evaluations: j.charge,
		Config:      j.cand.Cfg.Name,
		Policy:      j.cand.Policy,
		Remap:       j.cand.Remap,
		Values:      sc.Values,
	}
	if sc.Feasible && (s.res.Best == nil || sc.Metric("per_area") > s.res.Best.Metric("per_area")) {
		s.res.Trajectory = append(s.res.Trajectory, tp)
		s.res.Best = &s.res.Trajectory[len(s.res.Trajectory)-1]
	}
	if s.res.Best != nil {
		s.bestAge.Store(int64(j.charge - s.res.Best.Evaluations))
	}
	if s.archive != nil && sc.Feasible {
		raw := make(pareto.Vector, len(s.objs))
		for i, o := range s.objs {
			raw[i] = objectiveValue(sc, o.Key)
		}
		if s.archive.Add(pareto.Entry{Key: j.cand.Key(), Name: j.cand.Name(), Vector: raw, Payload: tp}) {
			hv := s.archive.Hypervolume()
			s.res.Hypervolume = append(s.res.Hypervolume, HypervolumePoint{
				Evaluations: j.charge,
				Hypervolume: hv,
			})
			if err := s.archiveChanged(hv); err != nil {
				return err
			}
		}
	}
	s.settled++
	if s.opts.Progress != nil {
		s.opts.Progress(s.settled, s.target)
	}
	return nil
}

// front renders the archive in canonical order.
func (s *evalState) front() []TrajectoryPoint {
	out := make([]TrajectoryPoint, 0, s.archive.Len())
	for _, m := range s.archive.Members() {
		out = append(out, m.Payload.(TrajectoryPoint))
	}
	return out
}

// archiveChanged runs the change hooks: persistence and front streaming.
func (s *evalState) archiveChanged(hv float64) error {
	var front []TrajectoryPoint
	if s.opts.ArchivePath != "" || s.opts.FrontProgress != nil {
		front = s.front()
	}
	if s.opts.ArchivePath != "" {
		if err := saveArchive(s.opts.ArchivePath, s.res.Objectives, front); err != nil {
			return err
		}
	}
	if s.opts.FrontProgress != nil {
		s.opts.FrontProgress(front, hv)
	}
	return nil
}

// persistedArchive is the on-disk shape of a saved front: the objective
// keys pin what the vectors meant, so a resume under different objectives
// fails loudly instead of silently merging incomparable fronts.
type persistedArchive struct {
	Objectives []string          `json:"objectives"`
	Front      []TrajectoryPoint `json:"front"`
}

// saveArchive writes the front atomically (temp file + rename), so a
// process killed mid-save leaves the previous checkpoint intact.
func saveArchive(path string, objectives []string, front []TrajectoryPoint) error {
	b, err := json.MarshalIndent(persistedArchive{Objectives: objectives, Front: front}, "", "  ")
	if err != nil {
		return fmt.Errorf("search: marshaling archive: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("search: saving archive: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("search: saving archive: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("search: saving archive: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("search: saving archive: %w", err)
	}
	return nil
}

// restoreArchive seeds the archive from Options.ArchivePath when the file
// exists. Restored members keep their recorded metric values and re-derive
// their keys from the canonical configuration name, so a member the
// strategy rediscovers deduplicates instead of re-entering. A hypervolume
// trajectory point at evaluation 0 records the restored front's quality.
func (s *evalState) restoreArchive() error {
	b, err := os.ReadFile(s.opts.ArchivePath)
	if os.IsNotExist(err) {
		return nil // fresh run: the first archive change creates the file
	}
	if err != nil {
		return fmt.Errorf("search: reading archive: %w", err)
	}
	var pa persistedArchive
	if err := json.Unmarshal(b, &pa); err != nil {
		return fmt.Errorf("search: parsing archive %s: %w", s.opts.ArchivePath, err)
	}
	if len(pa.Objectives) != len(s.res.Objectives) {
		return fmt.Errorf("search: archive %s was built over objectives %v, this run uses %v",
			s.opts.ArchivePath, pa.Objectives, s.res.Objectives)
	}
	for i, key := range pa.Objectives {
		if key != s.res.Objectives[i] {
			return fmt.Errorf("search: archive %s was built over objectives %v, this run uses %v",
				s.opts.ArchivePath, pa.Objectives, s.res.Objectives)
		}
	}
	for _, tp := range pa.Front {
		cand, err := candidateFromTrajectory(tp)
		if err != nil {
			return fmt.Errorf("search: restoring archive member %s: %w", tp.Name(), err)
		}
		// A member missing an objective value is a corrupt or foreign file;
		// fail the run, not the process (ObjectiveVector would panic).
		for _, o := range s.objs {
			if _, ok := tp.Values[o.Key]; !ok {
				return fmt.Errorf("search: archive member %s in %s has no %q value",
					tp.Name(), s.opts.ArchivePath, o.Key)
			}
		}
		if s.archive.Add(pareto.Entry{Key: cand.Key(), Name: cand.Name(), Vector: tp.ObjectiveVector(s.objs), Payload: tp}) {
			s.res.RestoredFront++
		}
	}
	if s.res.RestoredFront > 0 {
		s.res.Hypervolume = append(s.res.Hypervolume, HypervolumePoint{
			Evaluations: 0,
			Hypervolume: s.archive.Hypervolume(),
		})
	}
	return nil
}
