package search

import (
	"context"
	"fmt"
	"math/rand"

	"hdsmt/internal/engine"
	"hdsmt/internal/metrics"
	"hdsmt/internal/sim"
)

// Options configures one search run.
type Options struct {
	// Budget is the number of point evaluations the search may charge: a
	// distinct feasible candidate scored for the first time costs 1 (its
	// per-workload simulations fan out through the engine; any of them may
	// still be engine cache hits). Infeasible decodes and revisits are
	// free. Budget <= 0 means unbounded — sensible only for Exhaustive,
	// whose enumeration terminates on its own.
	Budget int
	// Seed drives every stochastic choice. The same seed, space, strategy
	// and budget reproduce the identical trajectory, byte for byte.
	Seed int64
	// Sim scales the per-point simulations (Budget/Warmup per thread).
	Sim sim.Options
	// Progress, when non-nil, is called after each charged evaluation with
	// (evaluations spent, target), where target is the effective number of
	// evaluations the search can charge: min(Budget, distinct candidates),
	// or the distinct-candidate count when Budget is unbounded. Not part
	// of the result.
	Progress func(done, total int)
}

// TrajectoryPoint is one best-so-far improvement: the machine that became
// the incumbent after its evaluation, and how much budget it took to find.
type TrajectoryPoint struct {
	// Evaluations is the budget spent when this incumbent was found.
	Evaluations int `json:"evaluations"`
	// Config is the machine's canonical configuration name.
	Config string `json:"config"`
	// Policy is the fetch-policy override ("" = configuration default).
	Policy string `json:"policy,omitempty"`
	// Remap is the dynamic-remap interval in cycles (0 = static).
	Remap uint64 `json:"remap,omitempty"`

	IPC     float64 `json:"ipc"`
	Area    float64 `json:"area"`
	PerArea float64 `json:"per_area"`
}

// Name renders the point like Candidate.Name ("2M4+2M2", "3M4q75 FLUSH
// r2048").
func (tp TrajectoryPoint) Name() string { return renderName(tp.Config, tp.Policy, tp.Remap) }

// Result is one search's auditable outcome: the incumbent, the best-so-far
// curve, and the cost accounting that lets search efficiency be compared
// against exhaustive enumeration. It marshals deterministically — a fixed
// seed reproduces the JSON byte for byte (no wall-clock fields).
type Result struct {
	Strategy  string `json:"strategy"`
	SpaceSize int64  `json:"space_size"` // genotypes in the space
	Budget    int    `json:"budget"`     // 0 = unbounded
	Seed      int64  `json:"seed"`

	// Evaluations is the budget actually spent (distinct candidates
	// scored). Visited counts every point proposed, Revisits the memoized
	// re-proposals, Infeasible the decode- or context-infeasible points.
	Evaluations int `json:"evaluations"`
	Visited     int `json:"visited"`
	Revisits    int `json:"revisits"`
	Infeasible  int `json:"infeasible"`

	// Submitted counts the simulation requests this search submitted to
	// the engine; Simulations is the subset not served from the engine's
	// in-memory store at submission — the search's own simulation cost
	// (attribution is per-ticket, so concurrent jobs on the same runner
	// cannot skew it; a request coalesced with or disk-served for another
	// job still counts here, making Simulations an upper bound).
	// CacheHitRate = 1 - Simulations/Submitted.
	Simulations  uint64  `json:"simulations"`
	Submitted    uint64  `json:"submitted"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Best is the incumbent (nil when no feasible point was found);
	// Trajectory is every incumbent in discovery order, Best last.
	Best       *TrajectoryPoint  `json:"best,omitempty"`
	Trajectory []TrajectoryPoint `json:"trajectory"`
}

// Driver runs strategies over a space, fanning point evaluations out
// through a shared sim.Runner's engine and recording the trajectory. The
// caller keeps ownership of the runner (and its memoization store, which
// successive searches share — a warm store makes overlapping searches
// nearly free).
type Driver struct {
	runner *sim.Runner
}

// NewDriver builds a Driver on r.
func NewDriver(r *sim.Runner) *Driver { return &Driver{runner: r} }

// Search runs one strategy over sp under opts. Budget exhaustion is normal
// termination; context cancellation and simulation failures are errors.
func (d *Driver) Search(ctx context.Context, sp Space, st Strategy, opts Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("search: nil strategy")
	}

	res := &Result{
		Strategy:   st.Name(),
		SpaceSize:  sp.Size(),
		Budget:     opts.Budget,
		Seed:       opts.Seed,
		Trajectory: []TrajectoryPoint{},
	}
	state := &evalState{
		driver: d, space: &sp, opts: opts, res: res,
		memo: map[string]Score{},
	}
	var chargeable int
	state.distinct, chargeable = sp.census()
	state.target = chargeable
	if opts.Budget > 0 && opts.Budget < state.target {
		state.target = opts.Budget
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if err := st.Run(ctx, &sp, rng, state.evaluate); err != nil {
		return nil, err
	}

	res.Submitted = state.submitted
	res.Simulations = state.submitted - state.hits
	if res.Submitted > 0 {
		res.CacheHitRate = float64(state.hits) / float64(res.Submitted)
	}
	if len(res.Trajectory) > 0 {
		res.Best = &res.Trajectory[len(res.Trajectory)-1]
	}
	return res, nil
}

// evalState is the driver-side half of one search: the budget ledger, the
// candidate memo, and the trajectory recorder behind the Evaluator closure
// handed to the strategy.
type evalState struct {
	driver *Driver
	space  *Space
	opts   Options
	res    *Result
	memo   map[string]Score // candidate key -> settled score
	// settled counts charged evaluations whose score has landed; it trails
	// Evaluations (charged at submission) and drives Progress.
	settled int
	// distinct is the space's decodable-candidate count; once the memo
	// covers it no proposal can progress, so evaluate stops open-ended
	// strategies with ErrSpaceExhausted. target is the effective charge
	// ceiling reported to Progress: min(Budget, distinct).
	distinct int
	target   int
	// submitted/hits attribute engine traffic to this search per ticket.
	submitted, hits uint64
}

// job is one batch entry that needs simulation: the candidate, its charge
// number, and the tickets of its per-workload requests.
type job struct {
	pos     int // index into the batch's scores
	cand    Candidate
	charge  int // res.Evaluations value at charge time (1-based)
	tickets []*engine.Ticket
}

// evaluate implements Evaluator: decode, dedup, charge, fan out, settle in
// order. See the interface comment for the truncation contract.
func (s *evalState) evaluate(ctx context.Context, pts []Point) ([]Score, error) {
	scores := make([]Score, 0, len(pts))
	var jobs []job
	inflight := map[string]bool{} // keys charged in this batch, score pending
	// Duplicates of an in-flight key stay placeholders until the batch
	// settles — blocking on the first occurrence mid-loop would serialize
	// the rest of the batch's submissions.
	type dup struct {
		pos int
		key string
	}
	var backfill []dup

	settle := func() error {
		for _, j := range jobs {
			sc := Score{Feasible: true, Area: j.cand.Area}
			ipcs := make([]float64, len(j.tickets))
			for k, tk := range j.tickets {
				r, err := tk.Wait(ctx)
				if err != nil {
					return fmt.Errorf("search: evaluating %s: %w", j.cand.Name(), err)
				}
				ipcs[k] = r.IPC
			}
			sc.IPC = metrics.HMean(ipcs)
			sc.PerArea = sc.IPC / sc.Area
			s.memo[j.cand.Key()] = sc
			scores[j.pos] = sc
			s.record(j, sc)
		}
		jobs = nil
		for _, d := range backfill {
			scores[d.pos] = s.memo[d.key]
		}
		backfill = nil
		return nil
	}

	for _, pt := range pts {
		if len(s.memo) >= s.distinct {
			// Every decodable candidate is scored: nothing left to learn.
			if err := settle(); err != nil {
				return nil, err
			}
			return scores, ErrSpaceExhausted
		}
		s.res.Visited++
		cand, err := s.space.Decode(pt)
		if err != nil {
			if _, ok := err.(ErrInfeasible); ok {
				s.res.Infeasible++
				scores = append(scores, Score{})
				continue
			}
			return nil, err
		}
		key := cand.Key()
		if inflight[key] {
			s.res.Revisits++
			backfill = append(backfill, dup{pos: len(scores), key: key})
			scores = append(scores, Score{}) // filled at settle
			continue
		}
		if sc, ok := s.memo[key]; ok {
			s.res.Revisits++
			scores = append(scores, sc)
			continue
		}

		if !s.space.FitsWorkloads(cand) {
			s.res.Infeasible++
			s.memo[key] = Score{}
			scores = append(scores, Score{})
			continue
		}

		if s.opts.Budget > 0 && s.res.Evaluations >= s.opts.Budget {
			if err := settle(); err != nil {
				return nil, err
			}
			return scores, ErrBudgetExhausted
		}
		s.res.Evaluations++
		j := job{pos: len(scores), cand: cand, charge: s.res.Evaluations}
		for _, w := range s.space.Workloads {
			req, err := sim.NewRequest(cand.Cfg, w, s.opts.Sim, cand.Policy, cand.Remap)
			if err != nil {
				return nil, fmt.Errorf("search: %s on %s: %w", cand.Name(), w.Name, err)
			}
			tk, err := s.driver.runner.Engine().Submit(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("search: submitting %s: %w", req, err)
			}
			s.submitted++
			if tk.CacheHit() {
				s.hits++
			}
			j.tickets = append(j.tickets, tk)
		}
		inflight[key] = true
		scores = append(scores, Score{}) // placeholder, settled below
		jobs = append(jobs, j)
	}
	if err := settle(); err != nil {
		return nil, err
	}
	return scores, nil
}

// record advances the best-so-far curve and reports progress.
func (s *evalState) record(j job, sc Score) {
	if sc.Feasible && (s.res.Best == nil || sc.PerArea > s.res.Best.PerArea) {
		s.res.Trajectory = append(s.res.Trajectory, TrajectoryPoint{
			Evaluations: j.charge,
			Config:      j.cand.Cfg.Name,
			Policy:      j.cand.Policy,
			Remap:       j.cand.Remap,
			IPC:         sc.IPC,
			Area:        sc.Area,
			PerArea:     sc.PerArea,
		})
		s.res.Best = &s.res.Trajectory[len(s.res.Trajectory)-1]
	}
	s.settled++
	if s.opts.Progress != nil {
		s.opts.Progress(s.settled, s.target)
	}
}
