package search

import (
	"context"
	"math/rand"
)

// ACO is an ant-colony optimizer over the space's categorical dimensions,
// after Carr & Wang's FaSACO: a pheromone table holds one trail level per
// (dimension, choice); each iteration a cohort of ants builds points by
// roulette selection proportional to the trails, the cohort is evaluated
// as one engine batch, trails evaporate, and the iteration's best ant plus
// the global best deposit pheromone scaled by solution quality (elitism).
// A trail floor keeps every choice reachable, so the colony explores
// forever instead of collapsing onto an early local optimum.
type ACO struct {
	// Ants per iteration (one evaluation batch).
	Ants int
	// Evaporation is the per-iteration trail decay in (0, 1).
	Evaporation float64
	// Deposit scales the pheromone laid by the iteration and global best.
	Deposit float64
	// Elite weights the global best's deposit relative to the iteration
	// best's.
	Elite float64
	// TrailFloor is the minimum trail level per choice.
	TrailFloor float64
	// Seeded initializes the trails from the space's area-normalized
	// issue-width prior (Space.Priors) instead of uniform levels, biasing
	// the first cohorts toward width-per-mm²-efficient machines.
	Seeded bool
}

// NewACO returns the default colony parameters — 6 ants, 45% evaporation,
// unit deposit, triple-weight elite, 2% trail floor — tuned for the tight
// budgets guided search is for (tens to hundreds of evaluations): small
// cohorts buy more pheromone updates per budget, and fast evaporation
// with a strong elite converges quickly while the trail floor keeps every
// choice reachable.
func NewACO() ACO {
	return ACO{Ants: 6, Evaporation: 0.45, Deposit: 1.0, Elite: 3.0, TrailFloor: 0.02}
}

// Name identifies the strategy.
func (a ACO) Name() string {
	if a.Seeded {
		return "aco-seeded"
	}
	return "aco"
}

// Run releases ant cohorts until the evaluation budget runs out.
func (a ACO) Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
	defaults := NewACO()
	if a.Ants <= 0 {
		a.Ants = defaults.Ants
	}
	if a.Evaporation <= 0 || a.Evaporation >= 1 {
		a.Evaporation = defaults.Evaporation
	}
	if a.Deposit <= 0 {
		a.Deposit = defaults.Deposit
	}
	if a.Elite <= 0 {
		a.Elite = defaults.Elite
	}
	if a.TrailFloor <= 0 {
		a.TrailFloor = defaults.TrailFloor
	}

	dims := sp.Dims()
	var tau [][]float64
	if a.Seeded {
		tau = sp.Priors()
	} else {
		tau = make([][]float64, len(dims))
		for d, n := range dims {
			tau[d] = make([]float64, n)
			for c := range tau[d] {
				tau[d][c] = 1.0
			}
		}
	}

	construct := func() Point {
		pt := make(Point, len(dims))
		for d := range dims {
			total := 0.0
			for _, t := range tau[d] {
				total += t
			}
			r := rng.Float64() * total
			for c, t := range tau[d] {
				r -= t
				if r < 0 {
					pt[d] = c
					break
				}
			}
		}
		return pt
	}

	deposit := func(pt Point, amount float64) {
		for d, c := range pt {
			tau[d][c] += amount
		}
	}

	var best Point
	var bestScore Score
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ants := make([]Point, a.Ants)
		for i := range ants {
			ants[i] = construct()
		}
		scores, err := eval(ctx, ants)

		iterBest := -1
		for i := range scores {
			if !scores[i].Feasible {
				continue
			}
			if iterBest < 0 || scores[i].Better(scores[iterBest]) {
				iterBest = i
			}
			if best == nil || scores[i].Better(bestScore) {
				best, bestScore = ants[i].Clone(), scores[i]
			}
		}

		// Evaporate, deposit, floor. Quality is normalized by the global
		// best so deposits stay O(Deposit) as absolute IPC/mm² varies.
		for d := range tau {
			for c := range tau[d] {
				tau[d][c] *= 1 - a.Evaporation
			}
		}
		if iterBest >= 0 && bestScore.Metric("per_area") > 0 {
			deposit(ants[iterBest], a.Deposit*scores[iterBest].Metric("per_area")/bestScore.Metric("per_area"))
		}
		if best != nil {
			deposit(best, a.Deposit*a.Elite)
		}
		for d := range tau {
			for c := range tau[d] {
				if tau[d][c] < a.TrailFloor {
					tau[d][c] = a.TrailFloor
				}
			}
		}

		if done, err := stop(err); done {
			return err
		}
	}
}
