package search

import (
	"context"
	"fmt"
	"sort"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/metrics"
	"hdsmt/internal/workload"
)

// Per-workload specialization (ROADMAP): instead of one machine serving
// every workload class, search one machine per class (ILP/MEM/MIX) and
// compare each specialized front against the single generic machine. The
// class searches run through the same engine as the generic search, so a
// candidate both walks visit is simulated once — the specialized searches
// are nearly free after the generic one.

// ClassFront is one workload class's specialized search and its comparison
// against the generic machine.
type ClassFront struct {
	// Class is the workload class ("ILP", "MEM", "MIX").
	Class string `json:"class"`
	// Workloads is the class's evaluation subset.
	Workloads []string `json:"workloads"`
	// Result is the class-specialized search (front, trajectory, costs).
	Result *Result `json:"result"`
	// GenericBest is the generic search's scalar incumbent re-scored on
	// this class's workloads — what the one-machine design delivers here.
	GenericBest *TrajectoryPoint `json:"generic_best,omitempty"`
	// PerAreaGain is the relative IPC/mm² improvement of the specialized
	// incumbent over the generic machine on this class
	// (metrics.Improvement; +0.13 = 13% better).
	PerAreaGain float64 `json:"per_area_gain"`
}

// SpecializationReport compares per-class specialized searches against one
// generic search over the union workload set. It marshals
// deterministically, like Result.
type SpecializationReport struct {
	Strategy string `json:"strategy"`
	// Generic is the search over every workload at once — the paper's
	// one-machine-for-everything design point.
	Generic *Result `json:"generic"`
	// Classes holds one specialized search per workload class present, in
	// ILP/MEM/MIX order.
	Classes []ClassFront `json:"classes"`
}

// Specialize runs st over sp once on the full workload set, then once per
// workload class present in it (same strategy, seed and budget; the class
// subset replaces the workload list), and scores the generic incumbent on
// each class for comparison. All runs share the driver's engine, so
// overlapping candidate visits cost one simulation.
func (d *Driver) Specialize(ctx context.Context, sp Space, st Strategy, opts Options) (*SpecializationReport, error) {
	generic, err := d.Search(ctx, sp, st, opts)
	if err != nil {
		return nil, fmt.Errorf("search: generic run: %w", err)
	}
	report := &SpecializationReport{Strategy: st.Name(), Generic: generic}

	byClass := map[workload.Type][]workload.Workload{}
	for _, w := range sp.Workloads {
		byClass[w.Type] = append(byClass[w.Type], w)
	}
	for _, t := range workload.Types() {
		wls := byClass[t]
		if len(wls) == 0 {
			continue
		}
		clsSpace := sp
		clsSpace.Workloads = wls
		res, err := d.Search(ctx, clsSpace, st, opts)
		if err != nil {
			return nil, fmt.Errorf("search: %s run: %w", t, err)
		}
		cf := ClassFront{Class: t.String(), Result: res}
		for _, w := range wls {
			cf.Workloads = append(cf.Workloads, w.Name)
		}
		sort.Strings(cf.Workloads)
		if generic.Best != nil {
			gb, err := d.scorePoint(ctx, &clsSpace, *generic.Best, opts)
			if err != nil {
				return nil, fmt.Errorf("search: scoring generic best on %s: %w", t, err)
			}
			cf.GenericBest = gb
			if res.Best != nil && gb != nil && gb.Metric("per_area") > 0 {
				cf.PerAreaGain = metrics.Improvement(res.Best.Metric("per_area"), gb.Metric("per_area"))
			}
		}
		report.Classes = append(report.Classes, cf)
	}
	return report, nil
}

// scorePoint re-evaluates a recorded machine on a space's workload set by
// round-tripping its canonical name through config.Parse and running the
// driver's own evaluation path (fairness included when the options ask) —
// every simulation goes through the engine, so a machine the class search
// already visited costs nothing. Returns nil when the machine cannot hold
// a workload of the set (context-infeasible).
func (d *Driver) scorePoint(ctx context.Context, sp *Space, tp TrajectoryPoint, opts Options) (*TrajectoryPoint, error) {
	cand, err := candidateFromTrajectory(tp)
	if err != nil {
		return nil, err
	}
	if !sp.FitsWorkloads(cand) {
		return nil, nil
	}
	state := &evalState{
		driver: d, space: sp, opts: opts,
		objs:       opts.Objectives,
		needsAlone: needsAloneRuns(opts.Objectives),
	}
	// Re-scoring is a settling act: always exact, whatever triage policy
	// the original search ran under.
	state.opts.Sample = core.SampleParams{}
	j := job{cand: cand, charge: 0}
	if j.cells, err = state.submitCells(ctx, cand, false); err != nil {
		return nil, err
	}
	sc, err := state.settleJob(ctx, j)
	if err != nil {
		return nil, err
	}
	return &TrajectoryPoint{
		Config: cand.Cfg.Name, Policy: cand.Policy, Remap: cand.Remap,
		Values: sc.Values,
	}, nil
}

// candidateFromTrajectory rebuilds the decoded candidate a trajectory or
// front point records: configuration names round-trip through config.Parse
// (scaled suffixes included), and the area model re-prices the machine.
func candidateFromTrajectory(tp TrajectoryPoint) (Candidate, error) {
	cfg, err := config.Parse(tp.Config)
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Cfg: cfg, Policy: tp.Policy, Remap: tp.Remap, Area: tp.Metric("area")}, nil
}

// Gains lists the report's specialized-vs-generic per-area deltas in class
// order, for quick inspection and tests.
func (r *SpecializationReport) Gains() []float64 {
	out := make([]float64, len(r.Classes))
	for i, c := range r.Classes {
		out[i] = c.PerAreaGain
	}
	return out
}
