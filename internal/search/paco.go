package search

import (
	"context"
	"math/rand"

	"hdsmt/internal/pareto"
)

// PACO is a Pareto ant-colony strategy: the pheromone model of ACO (one
// trail level per dimension choice, roulette construction, evaporation,
// trail floor) with the deposit rule replaced by an archive of mutually
// non-dominated solutions — every iteration, each archive member deposits
// an equal share of the colony's pheromone budget along its own genotype,
// so the trails model the whole front rather than collapsing onto one
// scalar incumbent. Crowding-distance pruning bounds the archive, keeping
// deposits spread across the front's span rather than its densest cluster.
type PACO struct {
	// Ants per iteration (one evaluation batch).
	Ants int
	// Evaporation is the per-iteration trail decay in (0, 1).
	Evaporation float64
	// Deposit is the colony's per-iteration pheromone budget, split evenly
	// across archive members.
	Deposit float64
	// TrailFloor is the minimum trail level per choice.
	TrailFloor float64
	// ArchiveCap bounds the strategy's internal archive (crowding pruning
	// beyond it).
	ArchiveCap int
}

// NewPACO returns the default colony: ACO's tight-budget tuning (6 ants,
// 45% evaporation, 2% floor) with a 24-member archive and a doubled
// deposit budget — the deposit is split across the front, so each member's
// share must stay visible against evaporation.
func NewPACO() PACO {
	return PACO{Ants: 6, Evaporation: 0.45, Deposit: 2.0, TrailFloor: 0.02, ArchiveCap: 24}
}

// Name identifies the strategy.
func (PACO) Name() string { return "paco" }

// Run releases ant cohorts until the evaluation budget runs out.
func (p PACO) Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
	defaults := NewPACO()
	if p.Ants <= 0 {
		p.Ants = defaults.Ants
	}
	if p.Evaporation <= 0 || p.Evaporation >= 1 {
		p.Evaporation = defaults.Evaporation
	}
	if p.Deposit <= 0 {
		p.Deposit = defaults.Deposit
	}
	if p.TrailFloor <= 0 {
		p.TrailFloor = defaults.TrailFloor
	}
	if p.ArchiveCap <= 0 {
		p.ArchiveCap = defaults.ArchiveCap
	}

	dims := sp.Dims()
	tau := make([][]float64, len(dims))
	for d, nChoices := range dims {
		tau[d] = make([]float64, nChoices)
		for c := range tau[d] {
			tau[d][c] = 1.0
		}
	}

	construct := func() Point {
		pt := make(Point, len(dims))
		for d := range dims {
			total := 0.0
			for _, t := range tau[d] {
				total += t
			}
			r := rng.Float64() * total
			for c, t := range tau[d] {
				r -= t
				if r < 0 {
					pt[d] = c
					break
				}
			}
		}
		return pt
	}

	// The archive lives in gain space (Score.Objectives is already
	// maximization-oriented), keyed by the decoded candidate's canonical
	// key — permuted genotypes of one machine must share a slot, or a
	// duplicated member would double its deposit and crowd a distinct
	// front point out of the bounded archive. Members carry their Point as
	// the payload so they can deposit.
	var archive *pareto.Archive

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ants := make([]Point, p.Ants)
		for i := range ants {
			ants[i] = construct()
		}
		scores, err := eval(ctx, ants)

		for i := range scores {
			if !scores[i].Feasible {
				continue
			}
			cand, decodeErr := sp.Decode(ants[i])
			if decodeErr != nil {
				continue // cannot happen for a feasible score; stay safe
			}
			if archive == nil {
				archive = pareto.NewArchive(pareto.GainObjectives(len(scores[i].Objectives)), p.ArchiveCap)
			}
			archive.Add(pareto.Entry{Key: cand.Key(), Vector: scores[i].Objectives.Clone(), Payload: ants[i].Clone()})
		}

		// Evaporate, then let the front deposit: an equal share of the
		// colony budget per member, laid along the member's own genotype.
		for d := range tau {
			for c := range tau[d] {
				tau[d][c] *= 1 - p.Evaporation
			}
		}
		if archive != nil && archive.Len() > 0 {
			share := p.Deposit / float64(archive.Len())
			for _, m := range archive.Members() {
				for d, c := range m.Payload.(Point) {
					tau[d][c] += share
				}
			}
		}
		for d := range tau {
			for c := range tau[d] {
				if tau[d][c] < p.TrailFloor {
					tau[d][c] = p.TrailFloor
				}
			}
		}

		if done, err := stop(err); done {
			return err
		}
	}
}
