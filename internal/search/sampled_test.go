package search

import (
	"context"
	"encoding/json"
	"testing"

	"hdsmt/internal/core"
	"hdsmt/internal/metrics"
	"hdsmt/internal/pareto"
)

// testTriageParams fits the tiny test simulation budget: 4 sampled units
// of 500 detailed instructions per 2 000-instruction period.
func testTriageParams() core.SampleParams {
	return core.SampleParams{Period: 2_000, Detail: 500, Warm: 500}
}

// noCompanions asserts a settled point carries only exact values — the
// incumbent/archive contract of the triage policy.
func noCompanions(t *testing.T, label string, v metrics.Values) {
	t.Helper()
	for key := range v {
		if metrics.IsMoEKey(key) {
			t.Errorf("%s carries sampled margin %q = %v; incumbents and archive members must settle exact",
				label, key, v[key])
		}
	}
}

// TestSampledTriageScalar pins the accuracy/budget policy on a scalar
// search: every charged candidate is triaged with sampled simulations,
// only promising ones are re-simulated in full, and the incumbent
// trajectory holds exact measurements only.
func TestSampledTriageScalar(t *testing.T) {
	sp := smallSpace(t)
	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, Random{},
		Options{Budget: 12, Seed: 5, Sim: testSimOptions(), Sample: testTriageParams()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible point found")
	}
	if res.Triaged != res.Evaluations {
		t.Errorf("triaged %d of %d charged evaluations, want all", res.Triaged, res.Evaluations)
	}
	if res.Promoted < 1 || res.Promoted > res.Triaged {
		t.Errorf("promoted %d of %d triaged, want within [1, triaged]", res.Promoted, res.Triaged)
	}
	for _, tp := range res.Trajectory {
		noCompanions(t, "incumbent "+tp.Name(), tp.Values)
	}

	// An exact run under the same seed visits the same candidates; the
	// triage run must not settle a *better* incumbent than full simulation
	// supports (its incumbent is exact, so it appears in the exact run's
	// reachable set).
	exact, err := NewDriver(newTestRunner(t)).Search(context.Background(), sp, Random{},
		Options{Budget: 12, Seed: 5, Sim: testSimOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Triaged != 0 || exact.Promoted != 0 {
		t.Errorf("exact run reports triage counters: %d/%d", exact.Triaged, exact.Promoted)
	}
	if res.Best.Metric("per_area") > exact.Best.Metric("per_area")+1e-12 {
		t.Errorf("triaged incumbent %.6f beats the exact run's %.6f — settled estimates leaked into the trajectory",
			res.Best.Metric("per_area"), exact.Best.Metric("per_area"))
	}
}

// TestSampledTriageMultiObjective: archive members settle exact, the front
// invariant holds, and the run reproduces byte for byte.
func TestSampledTriageMultiObjective(t *testing.T) {
	objs, err := pareto.Parse("ipc,area")
	if err != nil {
		t.Fatal(err)
	}
	sp := smallSpace(t)
	run := func() *Result {
		r := newTestRunner(t)
		res, err := NewDriver(r).Search(context.Background(), sp, Random{},
			Options{Budget: 10, Seed: 7, Sim: testSimOptions(),
				Objectives: objs, Sample: testTriageParams()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if err := CheckFront(objs, res.Front); err != nil {
		t.Error(err)
	}
	for _, tp := range res.Front {
		noCompanions(t, "front member "+tp.Name(), tp.Values)
	}
	if res.Triaged != res.Evaluations || res.Promoted < 1 {
		t.Errorf("triage ledger %d/%d over %d evaluations", res.Promoted, res.Triaged, res.Evaluations)
	}

	a, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(run())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("same seed, different triaged-run JSON:\n%s\n%s", a, b)
	}
}
