package search

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"hdsmt/internal/pareto"
	"hdsmt/internal/workload"
)

func mustObjectives(t *testing.T, csv string) []pareto.Objective {
	t.Helper()
	objs, err := pareto.Parse(csv)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

// scripted adapts a closure into a Strategy for driver-contract tests.
type scripted struct {
	fn func(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error
}

func (scripted) Name() string { return "scripted" }
func (s scripted) Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
	return s.fn(ctx, sp, rng, eval)
}

// TestScoreSettledContract is the satellite zero-value-ambiguity test:
// every score an Evaluator returns is Settled — including infeasible
// verdicts and in-batch duplicates — so the zero Score is unambiguously a
// pending placeholder and never a verdict.
func TestScoreSettledContract(t *testing.T) {
	sp := smallSpace(t)
	r := newTestRunner(t)
	feasible := Point{1, 0, 0, 0, 0, 0, 0} // one M6
	empty := Point{0, 0, 0, 0, 0, 0, 0}    // no pipelines: decode-infeasible
	ran := false
	_, err := NewDriver(r).Search(context.Background(), sp, scripted{fn: func(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
		ran = true
		scores, err := eval(ctx, []Point{feasible, empty, feasible.Clone(), feasible.Clone()})
		if err != nil {
			return err
		}
		if len(scores) != 4 {
			t.Fatalf("got %d scores, want 4", len(scores))
		}
		for i, sc := range scores {
			if !sc.Settled {
				t.Errorf("score %d not settled: %+v", i, sc)
			}
		}
		if !scores[0].Feasible || !scores[2].Feasible || !scores[3].Feasible {
			t.Error("feasible point must settle feasible (original, in-batch dup, memo dup)")
		}
		if scores[1].Feasible {
			t.Error("empty machine must settle infeasible")
		}
		if (Score{}).Settled {
			t.Error("the zero Score must read as unsettled")
		}
		if len(scores[0].Objectives) != 1 || scores[0].Objectives[0] != scores[0].Metric("per_area") {
			t.Errorf("scalar run must carry the [per_area] gain vector, got %v", scores[0].Objectives)
		}
		return nil
	}}, Options{Budget: 4, Sim: testSimOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("scripted strategy never ran")
	}
}

// TestScalarOptimumOnFront is the acceptance cross-check at test scale:
// the scalar IPC/mm² optimum of an exhaustive search is a member of the
// exhaustive (ipc, area) front — maximizing a ratio of the two objectives
// cannot be dominated in their plane.
func TestScalarOptimumOnFront(t *testing.T) {
	sp := smallSpace(t)
	objs := mustObjectives(t, "ipc,area")
	r := newTestRunner(t)
	drv := NewDriver(r)

	scalar, err := drv.Search(context.Background(), sp, Exhaustive{}, Options{Sim: testSimOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Best == nil {
		t.Fatal("scalar exhaustive found nothing")
	}
	// Same runner: the multi-objective pass re-uses every simulation.
	mo, err := drv.Search(context.Background(), sp, Exhaustive{}, Options{
		Sim: testSimOptions(), Objectives: objs, ArchiveCap: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mo.Simulations != 0 {
		t.Errorf("multi-objective pass executed %d fresh simulations, want 0 (warm engine)", mo.Simulations)
	}
	if len(mo.Front) == 0 {
		t.Fatal("empty front")
	}
	onFront := false
	for _, fp := range mo.Front {
		if fp.Config == scalar.Best.Config && fp.Policy == scalar.Best.Policy && fp.Remap == scalar.Best.Remap {
			onFront = true
		}
	}
	if !onFront {
		t.Errorf("scalar optimum %s missing from the %d-point (ipc, area) front", scalar.Best.Name(), len(mo.Front))
	}
	assertMutuallyNonDominated(t, objs, mo.Front)
}

// assertMutuallyNonDominated fails if any two front members dominate each
// other under the given objectives.
func assertMutuallyNonDominated(t *testing.T, objs []pareto.Objective, front []TrajectoryPoint) {
	t.Helper()
	if err := CheckFront(objs, front); err != nil {
		t.Error(err)
	}
}

// TestMultiObjectiveDeterminism: fixed seed, byte-identical result JSON —
// front and hypervolume trajectory included — for both new strategies, on
// a cold engine each time.
func TestMultiObjectiveDeterminism(t *testing.T) {
	sp := smallSpace(t)
	for _, name := range []string{"nsga2", "paco"} {
		t.Run(name, func(t *testing.T) {
			run := func() []byte {
				st, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				r := newTestRunner(t)
				res, err := NewDriver(r).Search(context.Background(), sp, st, Options{
					Budget: 18, Seed: 42, Sim: testSimOptions(),
					Objectives: mustObjectives(t, "ipc,area"),
				})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			a, b := run(), run()
			if string(a) != string(b) {
				t.Errorf("same seed, different JSON:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestMultiObjectiveRun pins the front contract on a budgeted NSGA-II run:
// non-empty mutually non-dominated front, monotone hypervolume trajectory
// (the archive never prunes below its default capacity at this budget),
// and a scalar incumbent maintained alongside.
func TestMultiObjectiveRun(t *testing.T) {
	sp := smallSpace(t)
	objs := mustObjectives(t, "ipc,area")
	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, NewNSGA2(), Options{
		Budget: 24, Seed: 7, Sim: testSimOptions(), Objectives: objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Best == nil {
		t.Error("multi-objective run must still track the scalar incumbent")
	}
	if got, want := res.Objectives, []string{"ipc", "area"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("objectives = %v", got)
	}
	assertMutuallyNonDominated(t, objs, res.Front)
	if len(res.Hypervolume) == 0 {
		t.Fatal("no hypervolume trajectory")
	}
	last := 0.0
	lastEvals := 0
	for _, hp := range res.Hypervolume {
		if hp.Hypervolume < last {
			t.Errorf("hypervolume fell from %v to %v", last, hp.Hypervolume)
		}
		if hp.Evaluations < lastEvals {
			t.Errorf("hypervolume trajectory out of order: %d after %d", hp.Evaluations, lastEvals)
		}
		last, lastEvals = hp.Hypervolume, hp.Evaluations
	}
}

// TestFairnessObjective: a three-objective run prices the alone-run
// baselines into its submissions and lands fairness values in (0, 1+ε] on
// every front member.
func TestFairnessObjective(t *testing.T) {
	sp := NewSpace(2, 0, testWorkloads(t)) // 9 machines, 8 chargeable
	objs := mustObjectives(t, "ipc,area,fairness")
	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 5, Seed: 11, Sim: testSimOptions(), Objectives: objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each charged evaluation submits 1 shared + 2 alone runs for the one
	// 2-thread workload.
	if want := uint64(res.Evaluations * 3); res.Submitted != want {
		t.Errorf("submitted = %d, want %d (1 shared + 2 alone per evaluation)", res.Submitted, want)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, fp := range res.Front {
		if fp.Metric("fairness") <= 0 || fp.Metric("fairness") > 1.5 {
			t.Errorf("%s fairness = %v, want within (0, 1.5]", fp.Name(), fp.Metric("fairness"))
		}
	}
	assertMutuallyNonDominated(t, objs, res.Front)
}

// TestPriors pins the seeding satellite's prior shape: slot dimensions are
// tilted by each model's width-per-area (M2 strongest for the calibrated
// areas, "none" neutral), enriched axes stay uniform.
func TestPriors(t *testing.T) {
	sp := smallSpace(t)
	priors := sp.Priors()
	if len(priors) != len(sp.Dims()) {
		t.Fatalf("priors cover %d dims, space has %d", len(priors), len(sp.Dims()))
	}
	for d := 0; d < sp.MaxPipes; d++ {
		w := priors[d]
		if w[0] != 1.0 {
			t.Errorf("slot %d: 'none' weight = %v, want neutral 1.0", d, w[0])
		}
		// Models are [M6, M4, M2]; M2 has the best width/area under the
		// calibrated model, so its trail must start highest, at 1+boost.
		if w[3] != 1+priorBoost {
			t.Errorf("slot %d: M2 weight = %v, want %v", d, w[3], 1+priorBoost)
		}
		if !(w[3] > w[2] && w[1] > w[2]) {
			t.Errorf("slot %d: prior order wrong: M6 %v M4 %v M2 %v", d, w[1], w[2], w[3])
		}
	}
	for d := sp.MaxPipes; d < len(priors); d++ {
		for c, v := range priors[d] {
			if v != 1.0 {
				t.Errorf("enriched dim %d choice %d weight = %v, want uniform 1.0", d, c, v)
			}
		}
	}

	// The candidate-level proxy prefers the known optimum family: 2M2
	// machines beat 3M4 on width per area.
	c2m2, err := sp.Decode(Point{3, 3, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	c3m4, err := sp.Decode(Point{2, 2, 2, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if IssueWidthProxy(c2m2) <= IssueWidthProxy(c3m4) {
		t.Errorf("proxy(2M2)=%v <= proxy(3M4)=%v", IssueWidthProxy(c2m2), IssueWidthProxy(c3m4))
	}
}

// TestSeededStrategiesComplete: the seeded variants keep the Strategy
// contract — right names, deterministic completion, a feasible incumbent.
func TestSeededStrategiesComplete(t *testing.T) {
	sp := smallSpace(t)
	for _, name := range []string{"aco-seeded", "hillclimb-seeded"} {
		t.Run(name, func(t *testing.T) {
			st, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if st.Name() != name {
				t.Errorf("Name() = %q, want %q", st.Name(), name)
			}
			r := newTestRunner(t)
			res, err := NewDriver(r).Search(context.Background(), sp, st,
				Options{Budget: 12, Seed: 3, Sim: testSimOptions()})
			if err != nil {
				t.Fatal(err)
			}
			if res.Best == nil {
				t.Fatal("seeded search found nothing")
			}
		})
	}
}

// TestSpecialize: per-class searches share the generic search's engine and
// report a comparable generic incumbent per class.
func TestSpecialize(t *testing.T) {
	wls := []workload.Workload{
		workload.MustByName("2W1"), // ILP
		workload.MustByName("2W4"), // MEM
		workload.MustByName("2W7"), // MIX
	}
	sp := NewSpace(2, 0, wls)
	r := newTestRunner(t)
	rep, err := NewDriver(r).Specialize(context.Background(), sp, NewNSGA2(), Options{
		Budget: 8, Seed: 5, Sim: testSimOptions(),
		Objectives: mustObjectives(t, "ipc,area"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generic == nil || rep.Generic.Best == nil {
		t.Fatal("no generic incumbent")
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("classes = %d, want ILP+MEM+MIX", len(rep.Classes))
	}
	for i, want := range []string{"ILP", "MEM", "MIX"} {
		cf := rep.Classes[i]
		if cf.Class != want {
			t.Errorf("class %d = %s, want %s", i, cf.Class, want)
		}
		if cf.Result == nil || cf.Result.Best == nil {
			t.Errorf("%s: no specialized incumbent", want)
			continue
		}
		if cf.GenericBest == nil {
			t.Errorf("%s: generic incumbent not scored on the class", want)
			continue
		}
		// The specialized machine can only match or beat the generic one
		// on its own class when the search found the generic point too;
		// at tiny budgets we only assert the comparison is well-formed.
		if cf.GenericBest.Metric("per_area") <= 0 || cf.Result.Best.Metric("per_area") <= 0 {
			t.Errorf("%s: degenerate per-area values %v / %v", want, cf.GenericBest.Metric("per_area"), cf.Result.Best.Metric("per_area"))
		}
	}
	if got := len(rep.Gains()); got != 3 {
		t.Errorf("gains = %d entries", got)
	}
}
