package search

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"hdsmt/internal/pareto"
)

// NSGA2 is an elitist multi-objective evolutionary strategy after Deb's
// NSGA-II: a population evolves by binary-tournament selection on
// (non-domination rank, crowding distance), uniform crossover and
// per-dimension mutation; each generation the parent and offspring
// populations are merged and the best Pop individuals survive — so a
// non-dominated point is never lost to drift. Scores' gain vectors (the
// driver's Score.Objectives) drive dominance, so the same strategy runs
// multi-objective fronts and — degenerately but correctly — scalar
// searches.
type NSGA2 struct {
	// Pop is the population size (one evaluation batch per generation).
	Pop int
	// CrossProb is the per-offspring uniform-crossover probability.
	CrossProb float64
	// MutProb is the per-dimension mutation probability (0 = 1/dims, the
	// canonical rate).
	MutProb float64
	// StartTries bounds the decode-only feasibility probes per initial
	// individual; probing is free but must terminate on hostile spaces.
	StartTries int
}

// NewNSGA2 returns the default parameters: a 16-individual population —
// small enough that tight budgets still see several generations — with 90%
// crossover and canonical 1/dims mutation.
func NewNSGA2() NSGA2 {
	return NSGA2{Pop: 16, CrossProb: 0.9, StartTries: 64}
}

// Name identifies the strategy.
func (NSGA2) Name() string { return "nsga2" }

// Run evolves generations until the evaluation budget runs out.
func (n NSGA2) Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
	defaults := NewNSGA2()
	if n.Pop < 2 {
		n.Pop = defaults.Pop
	}
	if n.CrossProb <= 0 || n.CrossProb > 1 {
		n.CrossProb = defaults.CrossProb
	}
	if n.StartTries <= 0 {
		n.StartTries = defaults.StartTries
	}
	dims := sp.Dims()
	mutProb := n.MutProb
	if mutProb <= 0 {
		mutProb = 1 / float64(len(dims))
	}

	// Initial population: feasibility-probed random points (decode-only,
	// free); a hostile space falls back to raw random points, which the
	// evaluator scores as infeasible without charge.
	pop := make([]Point, n.Pop)
	for i := range pop {
		pop[i] = sp.RandomPoint(rng.Intn)
		for try := 0; try < n.StartTries; try++ {
			if _, err := sp.Decode(pop[i]); err == nil {
				break
			}
			pop[i] = sp.RandomPoint(rng.Intn)
		}
	}
	popScores, err := eval(ctx, pop)
	pop = pop[:len(popScores)]
	if done, err := stop(err); done {
		return err
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(pop) == 0 {
			return nil
		}
		rank, crowd := nsgaSort(popScores)

		// Binary tournament on (rank, crowding), uniform crossover,
		// per-dimension mutation.
		tournament := func() int {
			a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
			if nsgaLess(rank, crowd, b, a) {
				return b
			}
			return a
		}
		offspring := make([]Point, n.Pop)
		for i := range offspring {
			a, b := pop[tournament()], pop[tournament()]
			child := a.Clone()
			if rng.Float64() < n.CrossProb {
				for d := range child {
					if rng.Intn(2) == 1 {
						child[d] = b[d]
					}
				}
			}
			for d := range child {
				if rng.Float64() < mutProb {
					child[d] = rng.Intn(dims[d])
				}
			}
			offspring[i] = child
		}
		offScores, err := eval(ctx, offspring)
		offspring = offspring[:len(offScores)]

		// Elitist environmental selection over the merged populations.
		merged := append(append([]Point{}, pop...), offspring...)
		mergedScores := append(append([]Score{}, popScores...), offScores...)
		mRank, mCrowd := nsgaSort(mergedScores)
		order := make([]int, len(merged))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(x, y int) bool {
			return nsgaLess(mRank, mCrowd, order[x], order[y])
		})
		keep := n.Pop
		if keep > len(order) {
			keep = len(order)
		}
		pop = make([]Point, keep)
		popScores = make([]Score, keep)
		for i := 0; i < keep; i++ {
			pop[i] = merged[order[i]]
			popScores[i] = mergedScores[order[i]]
		}

		if done, err := stop(err); done {
			return err
		}
	}
}

// nsgaLess is the crowded-comparison operator: lower rank wins, then larger
// crowding distance, then lower index (a deterministic tie-break so sorts
// cannot depend on anything but the inputs).
func nsgaLess(rank []int, crowd []float64, a, b int) bool {
	if rank[a] != rank[b] {
		return rank[a] < rank[b]
	}
	if crowd[a] != crowd[b] {
		return crowd[a] > crowd[b]
	}
	return a < b
}

// nsgaSort performs fast non-dominated sorting plus per-front crowding.
// Infeasible (or unsettled) scores are ranked behind every real front with
// zero crowding, so they survive selection only when nothing better exists.
func nsgaSort(scores []Score) (rank []int, crowd []float64) {
	n := len(scores)
	rank = make([]int, n)
	crowd = make([]float64, n)

	var feasible []int
	for i, sc := range scores {
		if sc.Settled && sc.Feasible {
			feasible = append(feasible, i)
		} else {
			rank[i] = math.MaxInt // behind every front
		}
	}

	// Dominance counting over the feasible subset (n is a population, not
	// a space: quadratic is fine and deterministic).
	domCount := map[int]int{}    // index -> points dominating it
	dominated := map[int][]int{} // index -> points it dominates
	for _, i := range feasible {
		for _, j := range feasible {
			if i == j {
				continue
			}
			if scores[i].Dominates(scores[j]) {
				dominated[i] = append(dominated[i], j)
			} else if scores[j].Dominates(scores[i]) {
				domCount[i]++
			}
		}
	}
	var front []int
	for _, i := range feasible {
		if domCount[i] == 0 {
			front = append(front, i)
		}
	}
	for level := 0; len(front) > 0; level++ {
		gains := make([]pareto.Vector, len(front))
		for k, i := range front {
			rank[i] = level
			gains[k] = scores[i].Objectives
		}
		for k, d := range pareto.CrowdingDistances(gains) {
			crowd[front[k]] = d
		}
		var next []int
		for _, i := range front {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		front = next
	}
	return rank, crowd
}
