package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"hdsmt/internal/metrics"
	"hdsmt/internal/pareto"
)

// Score is one evaluated point's verdict. Infeasible points (no
// pipelines, area cap, too few contexts for a workload) are Settled but
// Feasible false with no metric values; they cost no simulation and no
// budget.
//
// Settled distinguishes a decided score from the zero-value placeholder an
// Evaluator batch holds before its jobs land: the zero Score is *unsettled*
// (never a real verdict), an infeasible verdict is Score{Settled: true},
// and every score an Evaluator returns is settled. Strategies may rely on
// it; the driver's tests assert it.
type Score struct {
	Settled  bool `json:"settled"`
	Feasible bool `json:"feasible"`
	// Values holds the point's metric values by registry key
	// (internal/metrics): the measured base metrics — always ipc, area and
	// (when the run's activity counters allow) energy; fairness only when
	// an objective needs its alone-run baselines — plus every derivable
	// registered metric (per_area, ed, ed²). Adding a metric to the
	// registry adds it here without touching this struct. Nil on
	// infeasible scores.
	Values metrics.Values `json:"values,omitempty"`
	// Objectives is the point's gain vector over the run's objective list
	// (pareto.Gain: maximization-oriented, reference point at the origin),
	// [per_area] when the run is scalar. Multi-objective strategies compare
	// points with pareto.GainDominates; nil on infeasible scores.
	Objectives pareto.Vector `json:"objectives,omitempty"`
}

// Metric returns one of the score's metric values by registry key (0 when
// absent — infeasible scores carry none).
func (s Score) Metric(key string) float64 { return s.Values[key] }

// Better reports whether s beats o under the complexity-effectiveness
// objective (IPC/mm²). Any feasible score beats any infeasible one.
func (s Score) Better(o Score) bool {
	if s.Feasible != o.Feasible {
		return s.Feasible
	}
	return s.Metric("per_area") > o.Metric("per_area")
}

// Dominates reports whether s Pareto-dominates o on the run's gain
// vectors. Any feasible score dominates any infeasible one.
func (s Score) Dominates(o Score) bool {
	if s.Feasible != o.Feasible {
		return s.Feasible
	}
	if !s.Feasible || len(s.Objectives) != len(o.Objectives) {
		return false
	}
	return pareto.GainDominates(s.Objectives, o.Objectives)
}

// ErrBudgetExhausted is returned by an Evaluator once the evaluation
// budget is spent. Strategies treat it as their stop signal; the driver
// reports the search as complete, not failed.
var ErrBudgetExhausted = errors.New("search: evaluation budget exhausted")

// ErrSpaceExhausted is the Evaluator's stop signal when every distinct
// decodable candidate has been scored: no proposal can make progress, so
// open-ended strategies (random, aco, hillclimb restarts) terminate even
// when the budget exceeds the space. It matches ErrBudgetExhausted under
// errors.Is, so strategies need no second case.
var ErrSpaceExhausted = fmt.Errorf("search: every distinct candidate evaluated: %w", ErrBudgetExhausted)

// Evaluator scores a batch of points. All points of one call are submitted
// to the engine together (parallelism across the batch is free), and
// scores return in input order. Points beyond the remaining budget are not
// evaluated: the returned slice is truncated to the evaluated prefix and
// the error is ErrBudgetExhausted. Revisited points — same candidate key,
// whatever the genotype — are served from the driver's memo without
// spending budget.
type Evaluator func(ctx context.Context, pts []Point) ([]Score, error)

// Strategy walks a space, proposing points to eval until eval reports
// ErrBudgetExhausted (normal termination), the strategy is satisfied, or
// ctx ends. Implementations must derive every random choice from rng so a
// fixed seed reproduces the walk exactly.
type Strategy interface {
	Name() string
	Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error
}

// ByName resolves a strategy: "exhaustive", "random", "hillclimb", "aco",
// their proxy-seeded variants "hillclimb-seeded"/"aco-seeded", and the
// multi-objective "nsga2" and "paco".
func ByName(name string) (Strategy, error) {
	switch name {
	case "exhaustive":
		return Exhaustive{}, nil
	case "random":
		return Random{}, nil
	case "hillclimb":
		return HillClimb{}, nil
	case "hillclimb-seeded":
		return HillClimb{Seeded: true}, nil
	case "aco":
		return NewACO(), nil
	case "aco-seeded":
		a := NewACO()
		a.Seeded = true
		return a, nil
	case "nsga2":
		return NewNSGA2(), nil
	case "paco":
		return NewPACO(), nil
	}
	return nil, fmt.Errorf("search: unknown strategy %q (want one of %v)", name, StrategyNames())
}

// StrategyNames lists the built-in strategies in presentation order.
func StrategyNames() []string {
	return []string{"exhaustive", "random", "hillclimb", "hillclimb-seeded", "aco", "aco-seeded", "nsga2", "paco"}
}

// stop folds an Evaluator error into the strategy's control flow: budget
// exhaustion is normal termination (return nil), anything else aborts.
func stop(err error) (bool, error) {
	if err == nil {
		return false, nil
	}
	if errors.Is(err, ErrBudgetExhausted) {
		return true, nil
	}
	return true, err
}

// batchSize is how many points strategies hand the Evaluator at once: large
// enough to keep a worker pool busy, small enough that budget truncation
// stays fine-grained.
const batchSize = 16

// Exhaustive enumerates every canonical genotype in deterministic order —
// the cross-check baseline, feasible only on small spaces. It ignores rng.
type Exhaustive struct{}

// Name identifies the strategy.
func (Exhaustive) Name() string { return "exhaustive" }

// Run visits the whole space in enumeration order.
func (Exhaustive) Run(ctx context.Context, sp *Space, _ *rand.Rand, eval Evaluator) error {
	var batch []Point
	flush := func() (bool, error) {
		if len(batch) == 0 {
			return false, nil
		}
		_, err := eval(ctx, batch)
		batch = batch[:0]
		return stop(err)
	}
	var runErr error
	sp.Enumerate(func(p Point) bool {
		// Honor cancellation between points, not just at engine calls —
		// long decode-infeasible stretches never reach the engine.
		if err := ctx.Err(); err != nil {
			runErr = err
			return false
		}
		batch = append(batch, p.Clone())
		if len(batch) < batchSize {
			return true
		}
		done, err := flush()
		runErr = err
		return !done && err == nil
	})
	if runErr != nil {
		return runErr
	}
	_, err := flush()
	return err
}

// Random samples genotypes uniformly until the budget runs out: the
// baseline every guided strategy must beat.
type Random struct{}

// Name identifies the strategy.
func (Random) Name() string { return "random" }

// Run draws seeded uniform batches forever; the budget is the only stop.
func (Random) Run(ctx context.Context, sp *Space, rng *rand.Rand, eval Evaluator) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch := make([]Point, batchSize)
		for i := range batch {
			batch[i] = sp.RandomPoint(rng.Intn)
		}
		if done, err := stop(func() error { _, err := eval(ctx, batch); return err }()); done {
			return err
		}
	}
}
