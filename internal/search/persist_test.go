package search

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArchivePersistenceRoundTrip is the satellite persistence test: a
// multi-objective search pointed at an archive path checkpoints its front
// there, and a second search with the same path restores it instead of
// starting empty — the canceled-job resume path.
func TestArchivePersistenceRoundTrip(t *testing.T) {
	sp := smallSpace(t)
	objs := mustObjectives(t, "ipc,area")
	path := filepath.Join(t.TempDir(), "front.json")
	r := newTestRunner(t)

	first, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 6, Seed: 3, Sim: testSimOptions(), Objectives: objs, ArchivePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Front) == 0 {
		t.Fatal("first run archived nothing")
	}
	if first.RestoredFront != 0 {
		t.Errorf("fresh run restored %d members", first.RestoredFront)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("archive file missing: %v", err)
	}

	// A second run — different seed, tiny budget — must start from the
	// saved front rather than rediscover it.
	second, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 2, Seed: 99, Sim: testSimOptions(), Objectives: objs, ArchivePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.RestoredFront == 0 {
		t.Fatal("second run restored nothing from the archive file")
	}
	if len(second.Hypervolume) == 0 || second.Hypervolume[0].Evaluations != 0 {
		t.Errorf("restored front must open the hypervolume trajectory at evaluation 0, got %+v", second.Hypervolume)
	}
	// Every first-run front member either survives in the second front or
	// was evicted by a dominating discovery — it must never silently vanish
	// into a smaller dominated region (hypervolume can only grow).
	firstHV := first.Hypervolume[len(first.Hypervolume)-1].Hypervolume
	secondHV := second.Hypervolume[len(second.Hypervolume)-1].Hypervolume
	if secondHV < firstHV {
		t.Errorf("resumed hypervolume %v below the checkpoint's %v", secondHV, firstHV)
	}
	if err := CheckFront(objs, second.Front); err != nil {
		t.Error(err)
	}
}

// TestArchivePersistenceObjectiveMismatch pins the fail-fast: resuming an
// archive under different objectives must error, not merge incomparable
// vectors.
func TestArchivePersistenceObjectiveMismatch(t *testing.T) {
	sp := smallSpace(t)
	path := filepath.Join(t.TempDir(), "front.json")
	r := newTestRunner(t)
	if _, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 2, Seed: 1, Sim: testSimOptions(), Objectives: mustObjectives(t, "ipc,area"), ArchivePath: path,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 2, Seed: 1, Sim: testSimOptions(), Objectives: mustObjectives(t, "ipc,fairness"), ArchivePath: path,
	})
	if err == nil || !strings.Contains(err.Error(), "objectives") {
		t.Errorf("objective-mismatched resume: err = %v, want objectives complaint", err)
	}
}

// TestArchivePersistenceCorruptMember pins the fail-loudly path: a
// restored member missing an objective value (truncated or foreign file)
// errors out instead of panicking the process.
func TestArchivePersistenceCorruptMember(t *testing.T) {
	sp := smallSpace(t)
	path := filepath.Join(t.TempDir(), "front.json")
	corrupt := `{"objectives":["ipc","area"],"front":[{"evaluations":1,"config":"2M2","values":{"ipc":0.5}}]}`
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newTestRunner(t)
	_, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 2, Seed: 1, Sim: testSimOptions(), Objectives: mustObjectives(t, "ipc,area"), ArchivePath: path,
	})
	if err == nil || !strings.Contains(err.Error(), `"area"`) {
		t.Errorf("corrupt archive member: err = %v, want missing-value complaint", err)
	}
}

// TestArchivePathNeedsObjectives pins the scalar-run guard.
func TestArchivePathNeedsObjectives(t *testing.T) {
	sp := smallSpace(t)
	r := newTestRunner(t)
	_, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 2, Seed: 1, Sim: testSimOptions(), ArchivePath: filepath.Join(t.TempDir(), "f.json"),
	})
	if err == nil || !strings.Contains(err.Error(), "multi-objective") {
		t.Errorf("scalar run with ArchivePath: err = %v, want multi-objective complaint", err)
	}
}

// TestFrontProgressStreaming is the satellite streaming test at the driver
// level: the callback fires on archive changes with a mutually
// non-dominated front and a hypervolume matching the trajectory.
func TestFrontProgressStreaming(t *testing.T) {
	sp := smallSpace(t)
	objs := mustObjectives(t, "ipc,area")
	r := newTestRunner(t)
	calls := 0
	var lastFront []TrajectoryPoint
	var lastHV float64
	res, err := NewDriver(r).Search(context.Background(), sp, Random{}, Options{
		Budget: 6, Seed: 3, Sim: testSimOptions(), Objectives: objs,
		FrontProgress: func(front []TrajectoryPoint, hv float64) {
			calls++
			if len(front) == 0 {
				t.Error("front progress delivered an empty front")
			}
			if err := CheckFront(objs, front); err != nil {
				t.Error(err)
			}
			lastFront, lastHV = front, hv
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("front progress never fired")
	}
	if calls != len(res.Hypervolume) {
		t.Errorf("front progress fired %d times, hypervolume trajectory has %d points", calls, len(res.Hypervolume))
	}
	if want := res.Hypervolume[len(res.Hypervolume)-1].Hypervolume; lastHV != want {
		t.Errorf("last streamed hypervolume %v != final %v", lastHV, want)
	}
	if len(lastFront) != len(res.Front) {
		t.Errorf("last streamed front has %d members, result front %d", len(lastFront), len(res.Front))
	}
}

// TestFourObjectiveSearch runs the headline end-to-end path at test scale:
// a budgeted NSGA-II over (ipc, area, fairness, energy), every front
// member carrying all four metrics plus the derived ED/ED².
func TestFourObjectiveSearch(t *testing.T) {
	sp := smallSpace(t)
	objs := mustObjectives(t, "ipc,area,fairness,energy")
	r := newTestRunner(t)
	res, err := NewDriver(r).Search(context.Background(), sp, NewNSGA2(), Options{
		Budget: 8, Seed: 5, Sim: testSimOptions(), Objectives: objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty 4-objective front")
	}
	if err := CheckFront(objs, res.Front); err != nil {
		t.Fatal(err)
	}
	for _, fp := range res.Front {
		for _, key := range []string{"ipc", "area", "fairness", "energy", "per_area", "ed", "ed2"} {
			if v, ok := fp.Values[key]; !ok || v <= 0 {
				t.Errorf("front member %s: metric %q = %v (present %v), want positive", fp.Name(), key, v, ok)
			}
		}
	}
	last := 0.0
	for _, hp := range res.Hypervolume {
		if hp.Hypervolume < last {
			t.Fatalf("4-objective MC hypervolume fell from %v to %v", last, hp.Hypervolume)
		}
		last = hp.Hypervolume
	}
}
