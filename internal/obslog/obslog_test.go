package obslog

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// capture builds a logger writing into a shared buffer guarded by the
// logger's own output lock, returning the logger and a dump func.
func capture(opts ...Option) (*Logger, func() string) {
	var sb lockedBuilder
	lg := New(&sb, opts...)
	return lg, sb.String
}

type lockedBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuilder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuilder) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestTextFormat(t *testing.T) {
	lg, dump := capture()
	lg.Info("job settled", F("job", "job-000001"), F("state", "done"), F("n", 3))
	line := dump()
	for _, want := range []string{"level=info", "msg=\"job settled\"", "job=job-000001", "state=done", "n=3", "ts="} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Errorf("line not newline-terminated: %q", line)
	}
}

func TestQuoting(t *testing.T) {
	lg, dump := capture()
	lg.Warn("x", F("k", `a "b" = c`), F("empty", ""))
	line := dump()
	if !strings.Contains(line, `k="a \"b\" = c"`) {
		t.Errorf("value not quoted: %q", line)
	}
	if !strings.Contains(line, `empty=""`) {
		t.Errorf("empty value not quoted: %q", line)
	}
}

func TestJSONFormat(t *testing.T) {
	lg, dump := capture(WithJSON())
	lg.With(F("component", "server")).Error("boom",
		Err(errors.New("disk full")), F("count", 7), F("ratio", 0.5), F("ok", true))
	var rec map[string]any
	if err := json.Unmarshal([]byte(dump()), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v (%q)", err, dump())
	}
	if rec["level"] != "error" || rec["msg"] != "boom" || rec["component"] != "server" {
		t.Errorf("unexpected record: %v", rec)
	}
	if rec["err"] != "disk full" || rec["count"] != 7.0 || rec["ratio"] != 0.5 || rec["ok"] != true {
		t.Errorf("field encoding wrong: %v", rec)
	}
}

func TestLevelFiltering(t *testing.T) {
	lg, dump := capture(WithLevel(LevelWarn))
	lg.Debug("d")
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	out := dump()
	if strings.Contains(out, "msg=d") || strings.Contains(out, "msg=i") {
		t.Errorf("below-level records emitted: %q", out)
	}
	if !strings.Contains(out, "msg=w") || !strings.Contains(out, "msg=e") {
		t.Errorf("at-level records missing: %q", out)
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var lg *Logger
	lg.Info("nothing happens", F("k", "v"))
	lg.With(F("a", 1)).Error("still nothing")
	if lg.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestWithBindsFields(t *testing.T) {
	lg, dump := capture()
	child := lg.With(F("job", "job-1")).With(F("tenant", "t1"))
	child.Info("hello")
	line := dump()
	if !strings.Contains(line, "job=job-1") || !strings.Contains(line, "tenant=t1") {
		t.Errorf("bound fields missing: %q", line)
	}
	// The parent stays unpolluted.
	lg.Info("parent")
	if lines := strings.Split(strings.TrimSpace(dump()), "\n"); strings.Contains(lines[1], "job=") {
		t.Errorf("parent polluted by child fields: %q", lines[1])
	}
}

func TestConcurrentUse(t *testing.T) {
	lg, dump := capture()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lg.Info("concurrent", F("worker", j))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(dump()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=concurrent") {
			t.Fatalf("interleaved or torn line: %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(name)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Error("empty context has a request ID")
	}
	ctx = WithRequestID(ctx, "abc-1")
	if got := RequestID(ctx); got != "abc-1" {
		t.Errorf("RequestID = %q", got)
	}
	if WithRequestID(ctx, "") != ctx {
		t.Error("empty ID should not wrap the context")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty request ID %q", id)
		}
		if SanitizeRequestID(id) != id {
			t.Fatalf("minted ID %q fails its own sanitizer", id)
		}
		seen[id] = true
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for _, bad := range []string{"", "has space", "quote\"", "a=b", "ctrl\x01", strings.Repeat("x", 65)} {
		if got := SanitizeRequestID(bad); got != "" {
			t.Errorf("SanitizeRequestID(%q) = %q, want rejection", bad, got)
		}
	}
	if got := SanitizeRequestID("client-42/retry.1"); got != "client-42/retry.1" {
		t.Errorf("sane ID rejected: %q", got)
	}
}
