// Package obslog is the repository's structured logging layer: leveled,
// dependency-free records in logfmt (key=value) or JSON, with bound
// fields so every line a component emits carries its identifying context
// (job ID, tenant, request ID) without each call site repeating it.
//
// It exists because grepping interleaved log.Printf lines cannot answer
// "what happened to *this* job" once thousands run concurrently. Every
// record carries the correlation fields bound to its logger, and the
// request-ID helpers in this package thread one correlation ID from the
// client's X-Request-ID header through server, engine and search — the
// Magpie-style request extraction the serving path needs.
//
// Design constraints match internal/telemetry: no dependencies outside
// the standard library, safe for concurrent use, zero allocation on
// records below the logger's level, and wall-clock timestamps confined
// to log output (never artifacts — BENCH byte-reproducibility is a
// repo-wide invariant).
package obslog

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders record severities.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// Field is one key/value pair on a record or bound to a logger.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; the short name keeps call sites readable.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Err is the conventional error field.
func Err(err error) Field { return Field{Key: "err", Value: err} }

// Logger writes structured records at or above its level. The zero of
// *Logger (nil) is valid and silently discards everything, so optional
// logging costs one nil check.
type Logger struct {
	out    *output
	level  Level
	json   bool
	fields []Field // bound context, emitted on every record
}

// output serializes writes; loggers derived via With share one output so
// concurrent components never interleave bytes within a line.
type output struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test hook
}

// Option customizes a Logger at construction.
type Option func(*Logger)

// WithLevel sets the minimum level emitted (default LevelInfo).
func WithLevel(l Level) Option { return func(lg *Logger) { lg.level = l } }

// WithJSON switches the record format from logfmt to one JSON object per
// line.
func WithJSON() Option { return func(lg *Logger) { lg.json = true } }

// New builds a Logger writing to w.
func New(w io.Writer, opts ...Option) *Logger {
	lg := &Logger{out: &output{w: w, now: time.Now}, level: LevelInfo}
	for _, o := range opts {
		o(lg)
	}
	return lg
}

// Default returns a process-wide logfmt logger on stderr at LevelInfo.
// Components that are not handed a logger fall back to it, so their
// records still carry structure.
func Default() *Logger { return defaultLogger }

var defaultLogger = New(os.Stderr)

// With returns a child logger whose records all carry fields, in addition
// to any already bound. The child shares the parent's writer and level.
func (lg *Logger) With(fields ...Field) *Logger {
	if lg == nil || len(fields) == 0 {
		return lg
	}
	bound := make([]Field, 0, len(lg.fields)+len(fields))
	bound = append(bound, lg.fields...)
	bound = append(bound, fields...)
	return &Logger{out: lg.out, level: lg.level, json: lg.json, fields: bound}
}

// Enabled reports whether records at l would be emitted.
func (lg *Logger) Enabled(l Level) bool { return lg != nil && l >= lg.level }

// Debug, Info, Warn and Error emit one record at their level.
func (lg *Logger) Debug(msg string, fields ...Field) { lg.log(LevelDebug, msg, fields) }
func (lg *Logger) Info(msg string, fields ...Field)  { lg.log(LevelInfo, msg, fields) }
func (lg *Logger) Warn(msg string, fields ...Field)  { lg.log(LevelWarn, msg, fields) }
func (lg *Logger) Error(msg string, fields ...Field) { lg.log(LevelError, msg, fields) }

func (lg *Logger) log(l Level, msg string, fields []Field) {
	if !lg.Enabled(l) {
		return
	}
	var b strings.Builder
	ts := lg.out.now().UTC().Format(time.RFC3339Nano)
	if lg.json {
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":"`)
		b.WriteString(l.String())
		b.WriteString(`","msg":`)
		b.WriteString(strconv.Quote(msg))
		for _, f := range lg.fields {
			writeJSONField(&b, f)
		}
		for _, f := range fields {
			writeJSONField(&b, f)
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(l.String())
		b.WriteString(" msg=")
		b.WriteString(quoteIfNeeded(msg))
		for _, f := range lg.fields {
			writeTextField(&b, f)
		}
		for _, f := range fields {
			writeTextField(&b, f)
		}
		b.WriteByte('\n')
	}
	lg.out.mu.Lock()
	_, _ = io.WriteString(lg.out.w, b.String())
	lg.out.mu.Unlock()
}

func writeTextField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	b.WriteString(quoteIfNeeded(formatValue(f.Value)))
}

func writeJSONField(b *strings.Builder, f Field) {
	b.WriteByte(',')
	b.WriteString(strconv.Quote(f.Key))
	b.WriteByte(':')
	switch v := f.Value.(type) {
	case int:
		b.WriteString(strconv.Itoa(v))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	case bool:
		b.WriteString(strconv.FormatBool(v))
	default:
		b.WriteString(strconv.Quote(formatValue(f.Value)))
	}
}

func formatValue(v any) string {
	switch v := v.(type) {
	case string:
		return v
	case error:
		if v == nil {
			return "<nil>"
		}
		return v.Error()
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprint(v)
	}
}

// quoteIfNeeded quotes a logfmt value containing spaces, quotes, '=' or
// control characters; bare tokens stay bare for readability.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
