package obslog

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// HeaderRequestID is the HTTP header carrying the correlation ID:
// internal/client stamps it on every call, the server adopts or mints one
// at admission, echoes it on every response, binds it to the job's logs
// and timeline, and threads it (via context) through engine and search so
// one grep — or one /jobs/{id}/events read — reconstructs a request
// end to end.
const HeaderRequestID = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID extracts the correlation ID from ctx ("" when absent).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ridCounter disambiguates IDs minted within one process even if the
// random source ever repeats.
var ridCounter atomic.Uint64

// NewRequestID mints a correlation ID: 8 random bytes hex plus a process
// sequence number — short enough for a log line, unique enough for a
// fleet. IDs are correlation handles only; they never enter cache keys or
// BENCH artifacts, so their randomness does not threaten reproducibility.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A broken entropy source should not take logging down; fall back
		// to the counter alone.
		return fmt.Sprintf("req-%d", ridCounter.Add(1))
	}
	return hex.EncodeToString(b[:]) + "-" + fmt.Sprint(ridCounter.Add(1))
}

// SanitizeRequestID bounds a client-supplied correlation ID: printable
// ASCII without spaces or quotes, at most 64 bytes. Anything else is
// discarded (the caller mints a fresh ID) so a hostile header cannot
// corrupt log lines or SSE frames.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '=' {
			return ""
		}
	}
	return id
}
