package trace

import (
	"bytes"
	"errors"
	"testing"

	"hdsmt/internal/isa"
)

func TestStreamDeterminism(t *testing.T) {
	p := mustBuild(t, testParams(1))
	a := NewStream(p, 99, 0x10000)
	b := NewStream(p, 99, 0x10000)
	for i := 0; i < 5000; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatalf("streams diverged at %d: %v vs %v", i, &x, &y)
		}
	}
}

// TestStreamAdvanceEquivalence: Advance(n) leaves the stream in exactly
// the state n Next calls would — the instructions generated afterwards are
// identical, at every alignment relative to loops, calls and returns.
func TestStreamAdvanceEquivalence(t *testing.T) {
	p := mustBuild(t, testParams(1))
	for _, skip := range []uint64{1, 7, 64, 500, 4_096, 33_333} {
		a := NewStream(p, 99, 0x10000)
		b := NewStream(p, 99, 0x10000)
		for i := uint64(0); i < skip; i++ {
			a.Next()
		}
		b.Advance(skip, nil)
		if a.Seq() != b.Seq() {
			t.Fatalf("skip %d: Seq %d vs %d", skip, a.Seq(), b.Seq())
		}
		for i := 0; i < 2000; i++ {
			x, _ := a.Next()
			y, _ := b.Next()
			if x != y {
				t.Fatalf("skip %d: streams diverged %d instructions later: %v vs %v", skip, i, &x, &y)
			}
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	p := mustBuild(t, testParams(1))
	a := NewStream(p, 1, 0)
	b := NewStream(p, 2, 0)
	diff := false
	for i := 0; i < 5000 && !diff; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamFollowsControlFlow(t *testing.T) {
	p := mustBuild(t, testParams(2))
	s := NewStream(p, 7, 0)
	prev, ok := s.Next()
	if !ok {
		t.Fatal("stream empty")
	}
	for i := 0; i < 20000; i++ {
		in, ok := s.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if in.PC != prev.NextPC() {
			t.Fatalf("at seq %d: pc %#x does not follow %v", in.Seq, in.PC, &prev)
		}
		prev = in
	}
}

func TestStreamSeqMonotonic(t *testing.T) {
	p := mustBuild(t, testParams(2))
	s := NewStream(p, 7, 0)
	for i := uint64(0); i < 1000; i++ {
		in, _ := s.Next()
		if in.Seq != i {
			t.Fatalf("seq %d at position %d", in.Seq, i)
		}
	}
	if s.Seq() != 1000 {
		t.Errorf("Seq() = %d, want 1000", s.Seq())
	}
}

func TestStreamAddressesWithinSpace(t *testing.T) {
	p := mustBuild(t, testParams(3))
	const base = 0x4000000
	s := NewStream(p, 3, base)
	seen := 0
	for i := 0; i < 50000; i++ {
		in, _ := s.Next()
		if !in.Class.IsMem() {
			continue
		}
		seen++
		if in.EffAddr < base {
			t.Fatalf("address %#x below thread base %#x", in.EffAddr, base)
		}
		if in.EffAddr%8 != 0 {
			t.Fatalf("unaligned address %#x", in.EffAddr)
		}
		if in.MemSize != 8 {
			t.Fatalf("unexpected access size %d", in.MemSize)
		}
	}
	if seen == 0 {
		t.Fatal("no memory instructions in 50000")
	}
}

func TestStreamCallReturnPairing(t *testing.T) {
	p := mustBuild(t, testParams(4))
	s := NewStream(p, 11, 0)
	var stack []uint64
	returns, matched := 0, 0
	for i := 0; i < 200000; i++ {
		in, _ := s.Next()
		switch in.Class {
		case isa.Call:
			stack = append(stack, in.FallThrough())
			if len(stack) > maxCallDepth {
				stack = stack[1:]
			}
		case isa.Return:
			returns++
			if n := len(stack); n > 0 {
				if in.Target == stack[n-1] {
					matched++
				}
				stack = stack[:n-1]
			}
		}
	}
	if returns == 0 {
		t.Skip("no returns executed in this segment")
	}
	if matched != returns {
		t.Errorf("matched %d of %d returns to call sites", matched, returns)
	}
}

func TestStreamLoopBranchPeriodicity(t *testing.T) {
	// Build a program and find a loop branch, then verify its outcome
	// sequence has the declared period.
	p := mustBuild(t, testParams(5))
	var loop *StaticInst
	for _, b := range p.Blocks {
		last := &b.Insts[len(b.Insts)-1]
		if last.Class == isa.Branch && last.Kind == BranchLoop {
			loop = last
			break
		}
	}
	if loop == nil {
		t.Fatal("no loop branch generated")
	}
	period := uint64(loop.Period)
	for count := uint64(0); count < 3*period; count++ {
		in := Materialize(loop, 9, 0, count)
		wantTaken := count%period != period-1
		if in.Taken != wantTaken {
			t.Fatalf("count %d: taken=%v want %v (period %d)", count, in.Taken, wantTaken, period)
		}
	}
}

func TestMaterializeBiasedProbability(t *testing.T) {
	st := &StaticInst{PC: 0x1000, Class: isa.Branch, Kind: BranchBiased, TakenProb: 0.9, Target: 0x2000}
	taken := 0
	const n = 20000
	for c := uint64(0); c < n; c++ {
		if Materialize(st, 42, 0, c).Taken {
			taken++
		}
	}
	frac := float64(taken) / n
	if frac < 0.88 || frac > 0.92 {
		t.Errorf("biased branch taken rate = %.3f, want ~0.9", frac)
	}
}

func TestMaterializeStrideAddresses(t *testing.T) {
	st := &StaticInst{
		PC: 0x1000, Class: isa.Load, Pattern: MemStride,
		Region: 1024, Stride: 8, MemBase: 0x100,
	}
	for c := uint64(0); c < 300; c++ {
		in := Materialize(st, 1, 0x1000000, c)
		want := uint64(0x1000000) + 0x100 + (8*c)%1024
		want &^= 7
		if in.EffAddr != want {
			t.Fatalf("count %d: addr %#x want %#x", c, in.EffAddr, want)
		}
	}
}

func TestMaterializeStackAddressesBounded(t *testing.T) {
	st := &StaticInst{PC: 0x1000, Class: isa.Store, Pattern: MemStack, Region: stackRegionBytes}
	for c := uint64(0); c < 1000; c++ {
		in := Materialize(st, 1, 0, c)
		if in.EffAddr >= st.MemBase+stackRegionBytes {
			t.Fatalf("stack address %#x outside hot region", in.EffAddr)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := mustBuild(t, testParams(6))
	s := NewStream(p, 13, 0x2000000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "testbench")
	if err != nil {
		t.Fatal(err)
	}
	var orig []isa.Instruction
	for i := 0; i < 2000; i++ {
		in, _ := s.Next()
		orig = append(orig, in)
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2000 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "testbench" {
		t.Errorf("name = %q", r.Name())
	}
	for i, want := range orig {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("reader ended at %d", i)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("reader should be exhausted")
	}
}

func TestFileReaderBadMagic(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := NewFileReader(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func BenchmarkStreamNext(b *testing.B) {
	p := mustBuild(b, testParams(1))
	s := NewStream(p, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func TestWriterPropagatesErrors(t *testing.T) {
	w, err := NewWriter(failWriter{}, "x")
	if err == nil {
		// Header may be buffered; the flush must surface the failure.
		in := isa.Instruction{PC: 4, Class: isa.IntALU}
		_ = w.Write(&in)
		if w.Flush() == nil {
			t.Error("flush to failing writer must error")
		}
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("synthetic write failure")

func TestFileReaderTruncatedRecord(t *testing.T) {
	p := mustBuild(t, testParams(8))
	s := NewStream(p, 1, 0)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		in, _ := s.Next()
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the last record mid-way: the reader must stop cleanly.
	data := buf.Bytes()
	r, err := NewFileReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("read %d whole records from truncated file, want 2", n)
	}
}

func TestFileReaderHugeNameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("HDSMTTR1")
	// Name length varint far beyond the sanity cap.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := NewFileReader(&buf); err == nil {
		t.Error("unreasonable name length must be rejected")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Program { return mustBuild(t, testParams(9)) }

	p := fresh()
	p.Blocks[0].Insts[1].PC += 4 // break contiguity
	if p.Validate() == nil {
		t.Error("non-contiguous block accepted")
	}

	p = fresh()
	// Control flow in the middle of a block.
	mid := &p.Blocks[0].Insts[0]
	mid.Class = isa.Jump
	mid.Target = p.Blocks[1].Start()
	if p.Validate() == nil {
		t.Error("mid-block control accepted")
	}

	p = fresh()
	// Branch to a non-block-start address.
	last := &p.Blocks[0].Insts[len(p.Blocks[0].Insts)-1]
	if last.Class.IsControl() && last.Class != isa.Return {
		last.Target += 4
		if p.Validate() == nil {
			t.Error("dangling branch target accepted")
		}
	}

	empty := &Program{Name: "empty"}
	if empty.Validate() == nil {
		t.Error("empty program accepted")
	}
	bad := &Program{Name: "emptyblock", Blocks: []*Block{{}}}
	if bad.Validate() == nil {
		t.Error("empty block accepted")
	}
}
