package trace

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("seed 0 generator produced only %d distinct values", len(seen))
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for n := 1; n <= 64; n *= 2 {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %.3f, want ~0.5", mean)
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) rate = %.3f", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1.1) {
		t.Error("Bool(>1) must be true")
	}
}

func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Error("Mix must be a pure function")
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Error("Mix should be order sensitive")
	}
}

func TestMixFloatRange(t *testing.T) {
	f := func(a, b, c uint64) bool {
		v := MixFloat(a, b, c)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mix distributes — flipping any input changes the output almost
// always (sampled).
func TestMixSensitivity(t *testing.T) {
	f := func(a, b uint64) bool {
		return Mix(a, b) != Mix(a^1, b) || a == a^1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkMix3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Mix(uint64(i), 0xabc, 42)
	}
}
