// Package trace synthesizes the dynamic instruction streams the simulator
// executes.
//
// The paper drives its simulator with 300M-instruction SPECint2000 Alpha
// trace segments. Those traces are not redistributable, so this package
// substitutes a deterministic synthetic equivalent: a per-benchmark
// *program* (a synthetic control-flow graph whose static instructions form
// the basic-block dictionary the paper uses for wrong-path fetch) plus a
// *stream* that walks the program resolving branch outcomes and effective
// addresses. Benchmark profiles (see package bench) control instruction mix,
// dependence distances, branch-pattern predictability and working-set
// locality, which are the properties the paper's evaluation depends on.
package trace

import "math/bits"

// Rand is a small, fast, deterministic PRNG (xoshiro256** with a splitmix64
// seeder). The simulator cannot use math/rand because reproducibility across
// Go releases is required for the golden-value tests, and because streams
// need O(1)-cost independent generators per static instruction.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed value; used
// only to expand seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a generator deterministically derived from seed. Distinct
// seeds yield statistically independent sequences.
func NewRand(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro256 requires a nonzero state; splitmix64 of any seed cannot
	// produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Mix hashes an arbitrary set of 64-bit inputs into one well-distributed
// value. Streams use it to derive per-instance decisions (branch outcomes,
// addresses) as pure functions of (seed, static site, execution count),
// making every dynamic instruction reproducible in isolation.
func Mix(vs ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vs {
		h ^= v
		h = splitmix64(&h)
	}
	return h
}

// Mix3 is Mix specialized to its hot-path arity — (seed, static site,
// execution count) — avoiding the variadic slice and loop on every
// materialized branch outcome and effective address. It must compute
// exactly Mix(a, b, c).
func Mix3(a, b, c uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	h ^= a
	h = splitmix64(&h)
	h ^= b
	h = splitmix64(&h)
	h ^= c
	h = splitmix64(&h)
	return h
}

// MixFloat maps Mix(vs...) to [0,1).
func MixFloat(vs ...uint64) float64 {
	return float64(Mix(vs...)>>11) / (1 << 53)
}

// Mix3Float maps Mix3(a, b, c) to [0,1).
func Mix3Float(a, b, c uint64) float64 {
	return float64(Mix3(a, b, c)>>11) / (1 << 53)
}
