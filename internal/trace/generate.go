package trace

import (
	"fmt"

	"hdsmt/internal/isa"
)

// GenParams controls synthetic-program construction. Package bench supplies
// one calibrated GenParams per SPECint2000 benchmark; tests construct ad-hoc
// ones. All fractions are in [0,1].
type GenParams struct {
	Name string
	Seed uint64

	// Structure.
	NumBlocks int    // basic blocks in the main body
	NumFuncs  int    // single-block callable functions appended after the body
	BlockMin  int    // min non-terminator instructions per block
	BlockMax  int    // max non-terminator instructions per block
	CodeBase  uint64 // address of the first instruction

	// Instruction mix (fractions of non-terminator instructions; the
	// remainder is integer ALU work).
	LoadFrac  float64
	StoreFrac float64
	MulFrac   float64
	DivFrac   float64
	FPFrac    float64

	// Dependences: source operands are drawn from the destinations of the
	// previous DepWindow instructions. Small windows create serial chains
	// (low ILP); large windows create independent work (high ILP).
	DepWindow int

	// Block terminators.
	JumpFrac float64 // unconditional jumps
	CallFrac float64 // calls to a function block
	// The rest are conditional branches, split into kinds:
	LoopFrac   float64 // loop back-edges (periodic, predictable)
	BiasedFrac float64 // heavily biased guards
	// remainder: random (hard-to-predict) branches.
	LoopPeriodMin   int
	LoopPeriodMax   int
	BiasProb        float64 // taken probability of biased branches
	RandomTakenProb float64 // taken probability of random branches

	// Memory behaviour.
	WorkingSet uint64  // region size for stride/random accesses, bytes
	StrideFrac float64 // array walks
	StackFrac  float64 // hot-stack accesses; remainder: random in WorkingSet
	StrideMin  int     // bytes
	StrideMax  int     // bytes
}

// check validates parameters, applying defaults for zero fields.
func (g *GenParams) check() error {
	if g.NumBlocks <= 0 {
		return fmt.Errorf("trace: %s: NumBlocks must be positive", g.Name)
	}
	if g.BlockMin <= 0 || g.BlockMax < g.BlockMin {
		return fmt.Errorf("trace: %s: bad block length range [%d,%d]", g.Name, g.BlockMin, g.BlockMax)
	}
	if g.DepWindow <= 0 {
		return fmt.Errorf("trace: %s: DepWindow must be positive", g.Name)
	}
	if g.WorkingSet == 0 {
		return fmt.Errorf("trace: %s: WorkingSet must be positive", g.Name)
	}
	if g.LoopPeriodMin <= 1 || g.LoopPeriodMax < g.LoopPeriodMin {
		return fmt.Errorf("trace: %s: bad loop period range [%d,%d]", g.Name, g.LoopPeriodMin, g.LoopPeriodMax)
	}
	if g.StrideMin <= 0 || g.StrideMax < g.StrideMin {
		return fmt.Errorf("trace: %s: bad stride range [%d,%d]", g.Name, g.StrideMin, g.StrideMax)
	}
	sum := g.LoadFrac + g.StoreFrac + g.MulFrac + g.DivFrac + g.FPFrac
	if sum > 1 {
		return fmt.Errorf("trace: %s: instruction mix sums to %.2f > 1", g.Name, sum)
	}
	if g.JumpFrac+g.CallFrac > 1 {
		return fmt.Errorf("trace: %s: terminator mix exceeds 1", g.Name)
	}
	if g.LoopFrac+g.BiasedFrac > 1 {
		return fmt.Errorf("trace: %s: branch kind mix exceeds 1", g.Name)
	}
	return nil
}

// stackRegionBytes is the size of the hot region MemStack accesses touch.
const stackRegionBytes = 512

// BuildProgram deterministically constructs the synthetic program described
// by g. The same parameters always yield the identical program.
func BuildProgram(g GenParams) (*Program, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	rng := NewRand(Mix(g.Seed, 0xb10c5))
	p := &Program{Name: g.Name}

	totalBlocks := g.NumBlocks + g.NumFuncs
	lengths := make([]int, totalBlocks)
	for i := range lengths {
		lengths[i] = g.BlockMin + rng.Intn(g.BlockMax-g.BlockMin+1)
	}
	// Lay out block start addresses (every block gains one terminator).
	starts := make([]uint64, totalBlocks)
	pc := g.CodeBase
	for i, n := range lengths {
		starts[i] = pc
		pc += uint64(n+1) * isa.InstrBytes
	}

	// Rolling window of recent destination registers for dependence wiring.
	recentInt := newRegWindow(g.DepWindow)
	recentFP := newRegWindow(g.DepWindow)
	intDest, fpDest := 0, 0
	nextIntDest := func() isa.Reg {
		intDest = (intDest + 1) % (isa.NumIntRegs - 2) // avoid r31 (zero) and r30 (stack-ish)
		return isa.IntReg(intDest)
	}
	nextFPDest := func() isa.Reg {
		fpDest = (fpDest + 1) % isa.NumFPRegs
		return isa.FPReg(fpDest)
	}

	bodyInst := func(pc uint64) StaticInst {
		x := rng.Float64()
		var class isa.Class
		switch {
		case x < g.LoadFrac:
			class = isa.Load
		case x < g.LoadFrac+g.StoreFrac:
			class = isa.Store
		case x < g.LoadFrac+g.StoreFrac+g.MulFrac:
			class = isa.IntMul
		case x < g.LoadFrac+g.StoreFrac+g.MulFrac+g.DivFrac:
			class = isa.IntDiv
		case x < g.LoadFrac+g.StoreFrac+g.MulFrac+g.DivFrac+g.FPFrac:
			switch rng.Intn(8) {
			case 0:
				class = isa.FPDiv
			case 1, 2:
				class = isa.FPMul
			default:
				class = isa.FPAdd
			}
		default:
			class = isa.IntALU
		}
		in := StaticInst{PC: pc, Class: class}
		if class.IsFP() {
			in.Src1 = recentFP.pick(rng)
			in.Src2 = recentFP.pick(rng)
			in.Dest = nextFPDest()
			recentFP.push(in.Dest)
			return in
		}
		in.Src1 = recentInt.pick(rng)
		if class != isa.Load { // loads have one register source (the base)
			in.Src2 = recentInt.pick(rng)
		} else {
			in.Src2 = isa.RegNone
		}
		switch class {
		case isa.Store:
			in.Dest = isa.RegNone // stores produce no register value
		default:
			in.Dest = nextIntDest()
			recentInt.push(in.Dest)
		}
		if class.IsMem() {
			y := rng.Float64()
			switch {
			case y < g.StrideFrac+g.StackFrac && y >= g.StrideFrac:
				// Hot-stack accesses stay inside a single small area near
				// the bottom of the data space.
				in.Pattern = MemStack
				in.Region = stackRegionBytes
				in.MemBase = uint64(rng.Intn(8)) * stackRegionBytes
			default:
				// Stride and random accesses share the benchmark's working
				// set: each static instruction touches a sub-region, and
				// the union of sub-regions never exceeds WorkingSet, so
				// the parameter genuinely bounds the data footprint.
				region := g.WorkingSet / 4
				if region < 4096 {
					region = 4096
				}
				if region > g.WorkingSet {
					region = g.WorkingSet
				}
				in.Region = region
				if span := g.WorkingSet - region; span > 0 {
					in.MemBase = (uint64(rng.Intn(int(span/64+1))) * 64)
				}
				if y < g.StrideFrac {
					in.Pattern = MemStride
					in.Stride = uint32(g.StrideMin + rng.Intn(g.StrideMax-g.StrideMin+1))
				} else {
					in.Pattern = MemRandom
				}
			}
		}
		return in
	}

	for bi := 0; bi < totalBlocks; bi++ {
		blk := &Block{}
		pc := starts[bi]
		for k := 0; k < lengths[bi]; k++ {
			blk.Insts = append(blk.Insts, bodyInst(pc))
			pc += isa.InstrBytes
		}
		term := StaticInst{PC: pc, Src1: recentInt.pick(rng), Src2: isa.RegNone, Dest: isa.RegNone}
		isFunc := bi >= g.NumBlocks
		switch {
		case isFunc:
			// Function bodies end with an indirect return.
			term.Class = isa.Return
		case bi == g.NumBlocks-1:
			// Close the main body with a jump back to the top so the
			// stream never falls off the end into function bodies.
			term.Class = isa.Jump
			term.Target = starts[0]
		default:
			x := rng.Float64()
			switch {
			case x < g.JumpFrac:
				term.Class = isa.Jump
				term.Target = starts[rng.Intn(g.NumBlocks)]
			case x < g.JumpFrac+g.CallFrac && g.NumFuncs > 0:
				term.Class = isa.Call
				term.Target = starts[g.NumBlocks+rng.Intn(g.NumFuncs)]
			default:
				term.Class = isa.Branch
				y := rng.Float64()
				switch {
				case y < g.LoopFrac:
					term.Kind = BranchLoop
					term.Period = uint32(g.LoopPeriodMin + rng.Intn(g.LoopPeriodMax-g.LoopPeriodMin+1))
					term.Target = starts[bi] // back-edge to own block head
				case y < g.LoopFrac+g.BiasedFrac:
					term.Kind = BranchBiased
					term.TakenProb = g.BiasProb
					term.Target = starts[rng.Intn(g.NumBlocks)]
				default:
					term.Kind = BranchRandom
					term.TakenProb = g.RandomTakenProb
					term.Target = starts[rng.Intn(g.NumBlocks)]
				}
			}
		}
		blk.Insts = append(blk.Insts, term)
		p.Blocks = append(p.Blocks, blk)
		if isFunc {
			p.Entries = append(p.Entries, bi)
		}
	}

	p.finalize()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// regWindow keeps the destinations of the last w register-writing
// instructions so that sources can be wired to recent producers.
type regWindow struct {
	regs []isa.Reg
	next int
	full bool
}

func newRegWindow(w int) *regWindow {
	return &regWindow{regs: make([]isa.Reg, w)}
}

func (rw *regWindow) push(r isa.Reg) {
	rw.regs[rw.next] = r
	rw.next++
	if rw.next == len(rw.regs) {
		rw.next = 0
		rw.full = true
	}
}

func (rw *regWindow) pick(rng *Rand) isa.Reg {
	n := rw.next
	if rw.full {
		n = len(rw.regs)
	}
	if n == 0 {
		return isa.RegNone
	}
	return rw.regs[rng.Intn(n)]
}
