package trace

import (
	"fmt"
	"sort"

	"hdsmt/internal/isa"
)

// BranchKind classifies the outcome pattern of a static conditional branch.
// The mixture of kinds is what makes one synthetic benchmark more
// predictable than another.
type BranchKind uint8

const (
	// BranchBiased branches go one way with high probability (if-guards).
	BranchBiased BranchKind = iota
	// BranchLoop branches are taken period-1 times then fall through once
	// (loop back-edges): perfectly predictable by history predictors.
	BranchLoop
	// BranchRandom branches are data-dependent coin flips with probability
	// TakenProb: the hard case for any predictor.
	BranchRandom
)

// String names the branch kind.
func (k BranchKind) String() string {
	switch k {
	case BranchBiased:
		return "biased"
	case BranchLoop:
		return "loop"
	case BranchRandom:
		return "random"
	}
	return fmt.Sprintf("branchkind(%d)", uint8(k))
}

// MemPattern classifies the address stream of a static load or store.
type MemPattern uint8

const (
	// MemStride walks an array with a fixed stride inside a region.
	MemStride MemPattern = iota
	// MemRandom touches uniformly random lines inside a region
	// (hash tables, pointer chasing): the cache-hostile case.
	MemRandom
	// MemStack re-touches a tiny hot region (spills, locals): near-perfect
	// locality.
	MemStack
)

// String names the memory pattern.
func (p MemPattern) String() string {
	switch p {
	case MemStride:
		return "stride"
	case MemRandom:
		return "random"
	case MemStack:
		return "stack"
	}
	return fmt.Sprintf("mempattern(%d)", uint8(p))
}

// StaticInst is one static instruction in a synthetic program: the unit the
// basic-block dictionary stores. Dynamic instances are minted from it by a
// Stream (correct path) or synthesized directly by fetch (wrong path).
type StaticInst struct {
	PC    uint64
	Index int // dense index within the program, assigned at build time
	Class isa.Class
	Dest  isa.Reg
	Src1  isa.Reg
	Src2  isa.Reg

	// Control flow.
	Target uint64     // static target (conditional/jump/call); 0 for returns
	Kind   BranchKind // outcome pattern for conditional branches
	// TakenProb is the taken probability for biased/random kinds.
	TakenProb float64
	// Period is the iteration count for loop-kind branches.
	Period uint32

	// Memory behaviour.
	Pattern MemPattern
	Region  uint64 // region size in bytes the address stream stays within
	Stride  uint32 // stride in bytes for MemStride
	MemBase uint64 // region base offset within the thread's address space
}

// Block is a basic block: a straight-line run of instructions; only the last
// may be control flow.
type Block struct {
	Insts []StaticInst
}

// Start returns the address of the block's first instruction.
func (b *Block) Start() uint64 { return b.Insts[0].PC }

// Program is a complete synthetic benchmark binary: its blocks, its
// instruction dictionary, and the function entry points used for calls.
// It is immutable after construction and safe for concurrent streams.
type Program struct {
	Name   string
	Blocks []*Block
	// Entries are indexes into Blocks of callable function bodies.
	Entries []int

	byPC   map[uint64]*StaticInst
	minPC  uint64
	maxPC  uint64
	nInsts int

	// Successor links by dense instruction index, resolved once at build
	// time so the correct-path stream follows indices instead of
	// re-looking PCs up in the dictionary on every dynamic instruction.
	// -1 marks a successor address outside the program (the stream then
	// reports escape exactly as a failed dictionary lookup would).
	insts     []*StaticInst // dense by StaticInst.Index
	fallIdx   []int32       // index of the instruction at PC + InstrBytes
	targetIdx []int32       // index of the instruction at Target
}

// finalize builds the dictionary index; called once by the builder.
func (p *Program) finalize() {
	p.byPC = make(map[uint64]*StaticInst)
	first := true
	for _, b := range p.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			in.Index = p.nInsts
			p.byPC[in.PC] = in
			if first || in.PC < p.minPC {
				p.minPC = in.PC
			}
			if first || in.PC > p.maxPC {
				p.maxPC = in.PC
			}
			first = false
			p.nInsts++
			p.insts = append(p.insts, in)
		}
	}
	idxAt := func(pc uint64) int32 {
		if in, ok := p.byPC[pc]; ok {
			return int32(in.Index)
		}
		return -1
	}
	p.fallIdx = make([]int32, p.nInsts)
	p.targetIdx = make([]int32, p.nInsts)
	for i, in := range p.insts {
		p.fallIdx[i] = idxAt(in.PC + isa.InstrBytes)
		p.targetIdx[i] = -1
		if in.Class.IsControl() && in.Class != isa.Return {
			p.targetIdx[i] = idxAt(in.Target)
		}
	}
}

// StaticAt returns the static instruction at pc, if any. Fetch uses this as
// the paper's "basic block dictionary" to follow wrong paths: the dictionary
// holds "information of all static instructions" (paper §4).
func (p *Program) StaticAt(pc uint64) (*StaticInst, bool) {
	in, ok := p.byPC[pc]
	return in, ok
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return p.nInsts }

// PCBounds returns the lowest and highest instruction addresses.
func (p *Program) PCBounds() (lo, hi uint64) { return p.minPC, p.maxPC }

// BlockAt returns the basic block starting at pc, if any.
func (p *Program) BlockAt(pc uint64) (*Block, bool) {
	// Blocks are laid out in ascending address order; binary search.
	i := sort.Search(len(p.Blocks), func(i int) bool {
		return p.Blocks[i].Start() >= pc
	})
	if i < len(p.Blocks) && p.Blocks[i].Start() == pc {
		return p.Blocks[i], true
	}
	return nil, false
}

// Validate checks structural invariants: contiguous 4-byte layout inside
// blocks, control flow only at block ends, all static targets resolving to
// block starts. The builder's tests and testing/quick properties use it.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("trace: program %q has no blocks", p.Name)
	}
	starts := make(map[uint64]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("trace: program %q has an empty block", p.Name)
		}
		starts[b.Start()] = true
	}
	for bi, b := range p.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if i > 0 && in.PC != b.Insts[i-1].PC+isa.InstrBytes {
				return fmt.Errorf("trace: block %d not contiguous at %#x", bi, in.PC)
			}
			if in.Class.IsControl() && i != len(b.Insts)-1 {
				return fmt.Errorf("trace: control instruction %#x not at block end", in.PC)
			}
			if in.Class.IsControl() && in.Class != isa.Return && !starts[in.Target] {
				return fmt.Errorf("trace: %#x targets %#x which is not a block start", in.PC, in.Target)
			}
		}
	}
	return nil
}
