package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hdsmt/internal/isa"
)

// Trace files let cmd/tracegen materialize a stream once and replay it, the
// way the paper collects SPEC traces offline and replays them in SMTSIM.
// The format is a small header followed by varint-packed records.

// fileMagic identifies hdSMT trace files (version embedded).
const fileMagic = "HDSMTTR1"

// Writer encodes dynamic instructions to a trace file.
type Writer struct {
	w     *bufio.Writer
	buf   [binary.MaxVarintLen64]byte
	count uint64
	err   error
}

// NewWriter writes a trace-file header for benchmark name and returns the
// record writer.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	tw := &Writer{w: bw}
	tw.putUvarint(uint64(len(name)))
	if tw.err == nil {
		_, tw.err = bw.WriteString(name)
	}
	if tw.err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", tw.err)
	}
	return tw, nil
}

func (tw *Writer) putUvarint(v uint64) {
	if tw.err != nil {
		return
	}
	n := binary.PutUvarint(tw.buf[:], v)
	_, tw.err = tw.w.Write(tw.buf[:n])
}

// Write appends one instruction record.
func (tw *Writer) Write(in *isa.Instruction) error {
	var flags uint64
	if in.Taken {
		flags |= 1
	}
	if in.WrongPath {
		flags |= 2
	}
	tw.putUvarint(in.PC)
	tw.putUvarint(uint64(in.Class))
	tw.putUvarint(uint64(in.Dest))
	tw.putUvarint(uint64(in.Src1))
	tw.putUvarint(uint64(in.Src2))
	tw.putUvarint(flags)
	tw.putUvarint(in.Target)
	tw.putUvarint(in.EffAddr)
	tw.putUvarint(uint64(in.MemSize))
	if tw.err == nil {
		tw.count++
	}
	return tw.err
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// FileReader decodes a trace file produced by Writer. It implements Reader.
type FileReader struct {
	r    *bufio.Reader
	name string
	seq  uint64
}

// NewFileReader validates the header and returns a record reader.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &FileReader{r: br, name: string(name)}, nil
}

// Name returns the benchmark name recorded in the header.
func (fr *FileReader) Name() string { return fr.name }

// Next decodes the next record; ok is false at a clean end of file.
func (fr *FileReader) Next() (isa.Instruction, bool) {
	var in isa.Instruction
	pc, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return in, false // io.EOF at a record boundary: clean end
	}
	fields := [8]uint64{}
	for i := range fields {
		v, err := binary.ReadUvarint(fr.r)
		if err != nil {
			return in, false // truncated record: stop
		}
		fields[i] = v
	}
	in.PC = pc
	in.Class = isa.Class(fields[0])
	in.Dest = isa.Reg(fields[1])
	in.Src1 = isa.Reg(fields[2])
	in.Src2 = isa.Reg(fields[3])
	in.Taken = fields[4]&1 != 0
	in.WrongPath = fields[4]&2 != 0
	in.Target = fields[5]
	in.EffAddr = fields[6]
	in.MemSize = uint8(fields[7])
	in.Seq = fr.seq
	fr.seq++
	return in, true
}
