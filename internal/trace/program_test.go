package trace

import (
	"testing"
	"testing/quick"

	"hdsmt/internal/isa"
)

// testParams returns a small valid GenParams for tests.
func testParams(seed uint64) GenParams {
	return GenParams{
		Name:      "test",
		Seed:      seed,
		NumBlocks: 40,
		NumFuncs:  4,
		BlockMin:  3,
		BlockMax:  10,
		CodeBase:  0x120000,

		LoadFrac:  0.25,
		StoreFrac: 0.10,
		MulFrac:   0.03,
		DivFrac:   0.005,
		FPFrac:    0.02,

		DepWindow: 8,

		JumpFrac:        0.08,
		CallFrac:        0.05,
		LoopFrac:        0.45,
		BiasedFrac:      0.35,
		LoopPeriodMin:   4,
		LoopPeriodMax:   64,
		BiasProb:        0.92,
		RandomTakenProb: 0.5,

		WorkingSet: 1 << 16,
		StrideFrac: 0.6,
		StackFrac:  0.2,
		StrideMin:  8,
		StrideMax:  64,
	}
}

func mustBuild(t testing.TB, g GenParams) *Program {
	t.Helper()
	p, err := BuildProgram(g)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	return p
}

func TestBuildProgramValid(t *testing.T) {
	p := mustBuild(t, testParams(1))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 {
		t.Fatal("empty program")
	}
	if len(p.Blocks) != 44 {
		t.Errorf("got %d blocks, want 44", len(p.Blocks))
	}
	if len(p.Entries) != 4 {
		t.Errorf("got %d entries, want 4", len(p.Entries))
	}
}

func TestBuildProgramDeterministic(t *testing.T) {
	a := mustBuild(t, testParams(5))
	b := mustBuild(t, testParams(5))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Blocks {
		for j := range a.Blocks[i].Insts {
			if a.Blocks[i].Insts[j] != b.Blocks[i].Insts[j] {
				t.Fatalf("block %d inst %d differs", i, j)
			}
		}
	}
}

func TestBuildProgramSeedsDiffer(t *testing.T) {
	a := mustBuild(t, testParams(1))
	b := mustBuild(t, testParams(2))
	diff := false
	for i := range a.Blocks {
		if i >= len(b.Blocks) {
			diff = true
			break
		}
		for j := range a.Blocks[i].Insts {
			if j < len(b.Blocks[i].Insts) && a.Blocks[i].Insts[j] != b.Blocks[i].Insts[j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds built identical programs")
	}
}

func TestStaticAt(t *testing.T) {
	p := mustBuild(t, testParams(3))
	for _, b := range p.Blocks {
		for i := range b.Insts {
			got, ok := p.StaticAt(b.Insts[i].PC)
			if !ok || got.PC != b.Insts[i].PC {
				t.Fatalf("StaticAt(%#x) failed", b.Insts[i].PC)
			}
		}
	}
	lo, hi := p.PCBounds()
	if _, ok := p.StaticAt(lo - isa.InstrBytes); ok {
		t.Error("found instruction below program")
	}
	if _, ok := p.StaticAt(hi + isa.InstrBytes); ok {
		t.Error("found instruction above program")
	}
	if lo >= hi {
		t.Error("bounds inverted")
	}
}

func TestBlockAt(t *testing.T) {
	p := mustBuild(t, testParams(3))
	for _, b := range p.Blocks {
		got, ok := p.BlockAt(b.Start())
		if !ok || got != b {
			t.Fatalf("BlockAt(%#x) failed", b.Start())
		}
	}
	if _, ok := p.BlockAt(p.Blocks[0].Start() + isa.InstrBytes); ok {
		t.Error("BlockAt matched a mid-block address")
	}
}

func TestControlOnlyAtBlockEnd(t *testing.T) {
	p := mustBuild(t, testParams(4))
	for _, b := range p.Blocks {
		for i, in := range b.Insts {
			if in.Class.IsControl() && i != len(b.Insts)-1 {
				t.Fatalf("control %v at position %d of %d", in.Class, i, len(b.Insts))
			}
		}
	}
}

func TestFunctionBlocksEndWithReturn(t *testing.T) {
	p := mustBuild(t, testParams(4))
	for _, e := range p.Entries {
		b := p.Blocks[e]
		last := b.Insts[len(b.Insts)-1]
		if last.Class != isa.Return {
			t.Errorf("entry block %d ends with %v, want return", e, last.Class)
		}
	}
}

func TestStoresHaveNoDest(t *testing.T) {
	p := mustBuild(t, testParams(6))
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if in.Class == isa.Store && in.Dest != isa.RegNone {
				t.Fatalf("store at %#x has dest %v", in.PC, in.Dest)
			}
			if in.Class == isa.Load && in.Dest == isa.RegNone {
				t.Fatalf("load at %#x has no dest", in.PC)
			}
		}
	}
}

func TestMemInstHaveRegions(t *testing.T) {
	p := mustBuild(t, testParams(7))
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if in.Class.IsMem() {
				if in.Region == 0 {
					t.Fatalf("mem inst at %#x has zero region", in.PC)
				}
				if in.Pattern == MemStride && in.Stride == 0 {
					t.Fatalf("stride inst at %#x has zero stride", in.PC)
				}
			}
		}
	}
}

func TestGenParamsValidation(t *testing.T) {
	bad := []func(*GenParams){
		func(g *GenParams) { g.NumBlocks = 0 },
		func(g *GenParams) { g.BlockMin = 0 },
		func(g *GenParams) { g.BlockMax = g.BlockMin - 1 },
		func(g *GenParams) { g.DepWindow = 0 },
		func(g *GenParams) { g.WorkingSet = 0 },
		func(g *GenParams) { g.LoopPeriodMin = 1 },
		func(g *GenParams) { g.StrideMin = 0 },
		func(g *GenParams) { g.LoadFrac = 0.9; g.StoreFrac = 0.9 },
		func(g *GenParams) { g.JumpFrac = 0.6; g.CallFrac = 0.6 },
		func(g *GenParams) { g.LoopFrac = 0.6; g.BiasedFrac = 0.6 },
	}
	for i, mutate := range bad {
		g := testParams(1)
		mutate(&g)
		if _, err := BuildProgram(g); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// Property: programs built from random (valid) parameter variations always
// validate and index correctly.
func TestBuildProgramProperty(t *testing.T) {
	f := func(seed uint64, nb, bl uint8) bool {
		g := testParams(seed)
		g.NumBlocks = 5 + int(nb%50)
		g.BlockMin = 1 + int(bl%5)
		g.BlockMax = g.BlockMin + 8
		p, err := BuildProgram(g)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		// Index assignment is dense and ordered.
		want := 0
		for _, b := range p.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Index != want {
					return false
				}
				want++
			}
		}
		return want == p.Len()
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBranchKindString(t *testing.T) {
	if BranchBiased.String() != "biased" || BranchLoop.String() != "loop" || BranchRandom.String() != "random" {
		t.Error("branch kind names wrong")
	}
	if BranchKind(9).String() == "" {
		t.Error("unknown branch kind string empty")
	}
}

func TestMemPatternString(t *testing.T) {
	if MemStride.String() != "stride" || MemRandom.String() != "random" || MemStack.String() != "stack" {
		t.Error("mem pattern names wrong")
	}
	if MemPattern(9).String() == "" {
		t.Error("unknown mem pattern string empty")
	}
}
