package trace

import (
	"hdsmt/internal/isa"
)

// Reader is a source of correct-path dynamic instructions in program order.
type Reader interface {
	// Next returns the next dynamic instruction. ok is false when the
	// source is exhausted (streams over a Program never exhaust; file
	// readers do).
	Next() (isa.Instruction, bool)
}

// maxCallDepth bounds the stream's simulated call stack; deeper calls simply
// drop the oldest frame, like a RAS would.
const maxCallDepth = 64

// Stream walks a Program resolving each dynamic instruction's branch outcome
// and effective address. Outcomes are pure functions of
// (seed, static site, execution count), so a Stream is fully deterministic
// and two Streams with equal seeds yield identical sequences.
type Stream struct {
	prog *Program
	seed uint64
	// base is the thread's data address-space base. Different threads run
	// in disjoint address spaces (distinct programs on an SMT), which the
	// shared caches see as conflicting reference streams.
	base uint64

	cur       int32 // dense index of the next instruction; -1 = escaped
	seq       uint64
	counts    []uint64 // per-static-instruction execution counts
	callStack []frame
	stackBase uint64
}

// frame is one simulated call-stack entry: the return address and, when it
// is inside the program, its pre-resolved instruction index (-1 outside).
type frame struct {
	pc   uint64
	next int32
}

// NewStream returns a deterministic dynamic-instruction source over prog.
// seed individualizes branch outcomes and address streams; base offsets all
// data addresses (give each thread a distinct base).
func NewStream(prog *Program, seed, base uint64) *Stream {
	return &Stream{
		prog:      prog,
		seed:      seed,
		base:      base,
		cur:       0, // Blocks[0].Insts[0] has dense index 0
		counts:    make([]uint64, prog.Len()),
		stackBase: base + 0x7fff0000,
	}
}

// Program returns the program this stream walks.
func (s *Stream) Program() *Program { return s.prog }

// Seq returns the number of instructions generated so far.
func (s *Stream) Seq() uint64 { return s.seq }

// Next generates the next correct-path instruction. A Stream never runs
// out.
func (s *Stream) Next() (isa.Instruction, bool) {
	var in isa.Instruction
	s.NextInto(&in)
	return in, true
}

// NextInto generates the next correct-path instruction directly into dst,
// sparing the caller a ~100-byte struct copy on the simulator's hottest
// producer path. The walk follows the successor indices finalize resolved
// — no per-instruction dictionary lookup.
func (s *Stream) NextInto(dst *isa.Instruction) {
	if s.cur < 0 {
		// Control flow can only reach addresses inside the program (the
		// builder closes the CFG); reaching here means corrupted state.
		panic("trace: stream escaped the program")
	}
	st := s.prog.insts[s.cur]
	count := s.counts[st.Index]
	s.counts[st.Index]++

	MaterializeInto(dst, st, s.seed, s.base, count)
	dst.Seq = s.seq
	s.seq++

	next := s.prog.fallIdx[s.cur]
	// Resolve stack-dependent control flow.
	switch st.Class {
	case isa.Call:
		if len(s.callStack) == maxCallDepth {
			copy(s.callStack, s.callStack[1:])
			s.callStack = s.callStack[:maxCallDepth-1]
		}
		s.callStack = append(s.callStack, frame{pc: dst.FallThrough(), next: next})
		next = s.prog.targetIdx[s.cur]
	case isa.Return:
		if n := len(s.callStack); n > 0 {
			f := s.callStack[n-1]
			s.callStack = s.callStack[:n-1]
			dst.Target = f.pc
			next = f.next
		} else {
			// Underflow (stream started inside a function or deep calls
			// were dropped): restart the main body.
			dst.Target = s.prog.Blocks[0].Start()
			next = 0
		}
	default:
		if dst.Taken {
			next = s.prog.targetIdx[s.cur]
		}
	}
	s.cur = next
}

// ControlFunc observes a control-flow instruction the stream advances
// past: its class, PC, resolved target (0 for a not-taken branch) and
// direction. Advance calls it so a simulator can keep branch structures
// warm through a skip without materializing the stream.
type ControlFunc func(class isa.Class, pc, target uint64, taken bool)

// Advance skips n instructions: execution counts, the call stack and
// control flow advance exactly as n Next calls would, but no instruction
// is materialized — no effective addresses, no register fields, no struct
// writes. Memory instructions skip their address hash entirely, so this
// runs several times faster than Next. It is the unwarmed fast-forward
// path of sampled execution; a Stream that Advances past a region yields
// the identical sequence afterwards. When ctl is non-nil it receives
// every control-flow instruction in order.
func (s *Stream) Advance(n uint64, ctl ControlFunc) {
	for ; n > 0; n-- {
		if s.cur < 0 {
			panic("trace: stream escaped the program")
		}
		st := s.prog.insts[s.cur]
		count := s.counts[st.Index]
		s.counts[st.Index]++
		s.seq++

		next := s.prog.fallIdx[s.cur]
		switch st.Class {
		case isa.Branch:
			var taken bool
			if st.Kind == BranchLoop {
				taken = count%uint64(st.Period) != uint64(st.Period-1)
			} else {
				taken = Mix3Float(s.seed, st.PC, count) < st.TakenProb
			}
			var target uint64
			if taken {
				next = s.prog.targetIdx[s.cur]
				target = st.Target
			}
			if ctl != nil {
				ctl(isa.Branch, st.PC, target, taken)
			}
		case isa.Jump:
			next = s.prog.targetIdx[s.cur]
			if ctl != nil {
				ctl(isa.Jump, st.PC, st.Target, true)
			}
		case isa.Call:
			if len(s.callStack) == maxCallDepth {
				copy(s.callStack, s.callStack[1:])
				s.callStack = s.callStack[:maxCallDepth-1]
			}
			s.callStack = append(s.callStack, frame{pc: st.PC + isa.InstrBytes, next: next})
			next = s.prog.targetIdx[s.cur]
			if ctl != nil {
				ctl(isa.Call, st.PC, st.Target, true)
			}
		case isa.Return:
			target := s.prog.Blocks[0].Start()
			if n := len(s.callStack); n > 0 {
				f := s.callStack[n-1]
				s.callStack = s.callStack[:n-1]
				target = f.pc
				next = f.next
			} else {
				next = 0
			}
			if ctl != nil {
				ctl(isa.Return, st.PC, target, true)
			}
		}
		s.cur = next
	}
}

// Materialize mints a dynamic instance of st: it resolves the branch
// direction and effective address for the count-th execution of the static
// instruction. The fetch engine reuses it to synthesize wrong-path
// instructions (return targets excepted: those need the stream's call
// stack, so wrong-path returns get target 0 and resolve as mispredictions).
func Materialize(st *StaticInst, seed, base, count uint64) isa.Instruction {
	var in isa.Instruction
	MaterializeInto(&in, st, seed, base, count)
	return in
}

// MaterializeInto is Materialize writing into caller-provided (possibly
// recycled) storage: every field is assigned or explicitly cleared, with
// no intermediate struct copy — this runs once per fetched instruction.
func MaterializeInto(in *isa.Instruction, st *StaticInst, seed, base, count uint64) {
	in.PC = st.PC
	in.Class = st.Class
	in.Dest = st.Dest
	in.Src1 = st.Src1
	in.Src2 = st.Src2
	in.Target = 0
	in.Taken = false
	in.MemSize = 0
	in.EffAddr = 0
	in.Seq = 0
	in.WrongPath = false
	switch st.Class {
	case isa.Branch:
		in.Target = st.Target
		switch st.Kind {
		case BranchLoop:
			in.Taken = count%uint64(st.Period) != uint64(st.Period-1)
		default: // biased or random
			in.Taken = Mix3Float(seed, st.PC, count) < st.TakenProb
		}
	case isa.Jump, isa.Call:
		in.Taken = true
		in.Target = st.Target
	case isa.Return:
		in.Taken = true
		// Target filled by the stream from its call stack.
	case isa.Load, isa.Store:
		in.MemSize = 8
		in.EffAddr = memAddr(st, seed, base, count)
	}
}

// memAddr computes the effective address of the count-th execution of a
// static memory instruction.
func memAddr(st *StaticInst, seed, base, count uint64) uint64 {
	var off uint64
	switch st.Pattern {
	case MemStride:
		off = (uint64(st.Stride) * count) % st.Region
	case MemStack:
		off = Mix3(seed, st.PC, count) % stackRegionBytes
	default: // MemRandom
		off = Mix3(seed, st.PC, count) % st.Region
	}
	addr := base + st.MemBase + off
	return addr &^ 7 // 8-byte aligned accesses
}
