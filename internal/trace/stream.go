package trace

import (
	"hdsmt/internal/isa"
)

// Reader is a source of correct-path dynamic instructions in program order.
type Reader interface {
	// Next returns the next dynamic instruction. ok is false when the
	// source is exhausted (streams over a Program never exhaust; file
	// readers do).
	Next() (isa.Instruction, bool)
}

// maxCallDepth bounds the stream's simulated call stack; deeper calls simply
// drop the oldest frame, like a RAS would.
const maxCallDepth = 64

// Stream walks a Program resolving each dynamic instruction's branch outcome
// and effective address. Outcomes are pure functions of
// (seed, static site, execution count), so a Stream is fully deterministic
// and two Streams with equal seeds yield identical sequences.
type Stream struct {
	prog *Program
	seed uint64
	// base is the thread's data address-space base. Different threads run
	// in disjoint address spaces (distinct programs on an SMT), which the
	// shared caches see as conflicting reference streams.
	base uint64

	pc        uint64
	seq       uint64
	counts    []uint64 // per-static-instruction execution counts
	callStack []uint64
	stackBase uint64
}

// NewStream returns a deterministic dynamic-instruction source over prog.
// seed individualizes branch outcomes and address streams; base offsets all
// data addresses (give each thread a distinct base).
func NewStream(prog *Program, seed, base uint64) *Stream {
	return &Stream{
		prog:      prog,
		seed:      seed,
		base:      base,
		pc:        prog.Blocks[0].Start(),
		counts:    make([]uint64, prog.Len()),
		stackBase: base + 0x7fff0000,
	}
}

// Program returns the program this stream walks.
func (s *Stream) Program() *Program { return s.prog }

// Seq returns the number of instructions generated so far.
func (s *Stream) Seq() uint64 { return s.seq }

// Next generates the next correct-path instruction. A Stream never runs out.
func (s *Stream) Next() (isa.Instruction, bool) {
	st, ok := s.prog.StaticAt(s.pc)
	if !ok {
		// Control flow can only reach addresses inside the program (the
		// builder closes the CFG); reaching here means corrupted state.
		panic("trace: stream escaped the program")
	}
	count := s.counts[st.Index]
	s.counts[st.Index]++

	in := Materialize(st, s.seed, s.base, count)
	in.Seq = s.seq
	s.seq++

	// Resolve stack-dependent control flow.
	switch st.Class {
	case isa.Call:
		if len(s.callStack) == maxCallDepth {
			copy(s.callStack, s.callStack[1:])
			s.callStack = s.callStack[:maxCallDepth-1]
		}
		s.callStack = append(s.callStack, in.FallThrough())
	case isa.Return:
		if n := len(s.callStack); n > 0 {
			in.Target = s.callStack[n-1]
			s.callStack = s.callStack[:n-1]
		} else {
			// Underflow (stream started inside a function or deep calls
			// were dropped): restart the main body.
			in.Target = s.prog.Blocks[0].Start()
		}
	}

	s.pc = in.NextPC()
	return in, true
}

// Materialize mints a dynamic instance of st: it resolves the branch
// direction and effective address for the count-th execution of the static
// instruction. The fetch engine reuses it to synthesize wrong-path
// instructions (return targets excepted: those need the stream's call
// stack, so wrong-path returns get target 0 and resolve as mispredictions).
func Materialize(st *StaticInst, seed, base, count uint64) isa.Instruction {
	in := isa.Instruction{
		PC:    st.PC,
		Class: st.Class,
		Dest:  st.Dest,
		Src1:  st.Src1,
		Src2:  st.Src2,
	}
	switch st.Class {
	case isa.Branch:
		in.Target = st.Target
		switch st.Kind {
		case BranchLoop:
			in.Taken = count%uint64(st.Period) != uint64(st.Period-1)
		default: // biased or random
			in.Taken = MixFloat(seed, st.PC, count) < st.TakenProb
		}
	case isa.Jump, isa.Call:
		in.Taken = true
		in.Target = st.Target
	case isa.Return:
		in.Taken = true
		// Target filled by the stream from its call stack.
	case isa.Load, isa.Store:
		in.MemSize = 8
		in.EffAddr = memAddr(st, seed, base, count)
	}
	return in
}

// memAddr computes the effective address of the count-th execution of a
// static memory instruction.
func memAddr(st *StaticInst, seed, base, count uint64) uint64 {
	var off uint64
	switch st.Pattern {
	case MemStride:
		off = (uint64(st.Stride) * count) % st.Region
	case MemStack:
		off = Mix(seed, st.PC, count) % stackRegionBytes
	default: // MemRandom
		off = Mix(seed, st.PC, count) % st.Region
	}
	addr := base + st.MemBase + off
	return addr &^ 7 // 8-byte aligned accesses
}
