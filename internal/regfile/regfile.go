// Package regfile models the physical register file that all pipelines of
// an hdSMT processor share (paper §2: "Besides the fetch engine, all the
// pipelines share the memory subsystem — including L1 caches — and the
// register file"). The file holds the paper's 256 rename registers; the
// architectural state lives in a conceptually separate architectural file,
// so a physical register is occupied only while its value is in flight.
//
// Registers are reference-counted: the owner (the producing instruction)
// releases the register at commit or squash, and each consumer holds a
// reader reference from rename to register read. A register returns to the
// free list only when both the owner has released it and all readers have
// dropped their references — the R10000-style discipline that makes eager
// commit-time release safe.
package regfile

import "fmt"

// None marks "no physical register": the operand reads the architectural
// file (always ready) or the instruction has no destination.
const None = -1

type state struct {
	ready   bool
	live    bool // allocated and not yet released by its owner
	readers int32
}

// File is a pool of physical rename registers.
type File struct {
	regs  []state
	free  []int32 // free-list stack
	stats Stats
}

// Stats aggregates allocation activity.
type Stats struct {
	Allocs     uint64
	AllocFails uint64 // rename stalls due to an empty free list
}

// New constructs a file with n physical registers.
func New(n int) *File {
	if n <= 0 {
		panic(fmt.Sprintf("regfile: size %d must be positive", n))
	}
	f := &File{regs: make([]state, n), free: make([]int32, n)}
	for i := range f.free {
		f.free[i] = int32(n - 1 - i) // pop order: 0, 1, 2, ...
	}
	return f
}

// Size returns the total number of physical registers.
func (f *File) Size() int { return len(f.regs) }

// FreeCount returns the number of registers on the free list.
func (f *File) FreeCount() int { return len(f.free) }

// Stats returns accumulated statistics.
func (f *File) Stats() Stats { return f.stats }

// Reset returns every register to the free list.
func (f *File) Reset() {
	n := len(f.regs)
	for i := range f.regs {
		f.regs[i] = state{}
	}
	f.free = f.free[:0]
	for i := n - 1; i >= 0; i-- {
		f.free = append(f.free, int32(i))
	}
	f.stats = Stats{}
}

// Alloc takes a register from the free list, not ready, owner-held.
// ok is false when the file is exhausted (the caller must stall rename).
func (f *File) Alloc() (p int, ok bool) {
	f.stats.Allocs++
	n := len(f.free)
	if n == 0 {
		f.stats.Allocs--
		f.stats.AllocFails++
		return None, false
	}
	r := f.free[n-1]
	f.free = f.free[:n-1]
	f.regs[r] = state{live: true}
	return int(r), true
}

// SetReady marks p's value as produced (writeback).
func (f *File) SetReady(p int) {
	f.check(p)
	f.regs[p].ready = true
}

// Ready reports whether p's value has been produced. None is always ready
// (architectural source).
func (f *File) Ready(p int) bool {
	if p == None {
		return true
	}
	f.check(p)
	return f.regs[p].ready
}

// AddReader registers a pending consumer of p (called at rename). Reading
// None is free.
func (f *File) AddReader(p int) {
	if p == None {
		return
	}
	f.check(p)
	f.regs[p].readers++
}

// DropReader removes a pending consumer (called when the consumer reads the
// register at issue, or when the consumer is squashed).
func (f *File) DropReader(p int) {
	if p == None {
		return
	}
	f.check(p)
	if f.regs[p].readers == 0 {
		panic(fmt.Sprintf("regfile: reader underflow on p%d", p))
	}
	f.regs[p].readers--
	f.maybeFree(p)
}

// Release relinquishes ownership of p (at commit, when the value moves to
// the architectural file, or at squash). The register is recycled once all
// readers have drained.
func (f *File) Release(p int) {
	if p == None {
		return
	}
	f.check(p)
	if !f.regs[p].live {
		panic(fmt.Sprintf("regfile: double release of p%d", p))
	}
	f.regs[p].live = false
	f.maybeFree(p)
}

func (f *File) maybeFree(p int) {
	if !f.regs[p].live && f.regs[p].readers == 0 {
		f.regs[p] = state{}
		f.free = append(f.free, int32(p))
	}
}

// check stays small enough to inline into the per-uop hot path; the
// panic formatting lives in badReg so it does not count against the
// inlining budget.
func (f *File) check(p int) {
	if uint(p) >= uint(len(f.regs)) {
		f.badReg(p)
	}
}

func (f *File) badReg(p int) {
	panic(fmt.Sprintf("regfile: register p%d out of range [0,%d)", p, len(f.regs)))
}

// InUse returns the number of registers not on the free list (live or
// draining readers).
func (f *File) InUse() int { return len(f.regs) - len(f.free) }
