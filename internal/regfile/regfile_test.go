package regfile

import (
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestAllocExhaustion(t *testing.T) {
	f := New(3)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		p, ok := f.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[p] {
			t.Fatalf("duplicate register p%d", p)
		}
		seen[p] = true
	}
	if _, ok := f.Alloc(); ok {
		t.Error("alloc from empty free list must fail")
	}
	st := f.Stats()
	if st.Allocs != 3 || st.AllocFails != 1 {
		t.Errorf("stats = %+v", st)
	}
	if f.FreeCount() != 0 || f.InUse() != 3 {
		t.Errorf("free=%d inuse=%d", f.FreeCount(), f.InUse())
	}
}

func TestReadiness(t *testing.T) {
	f := New(4)
	p, _ := f.Alloc()
	if f.Ready(p) {
		t.Error("fresh register must not be ready")
	}
	f.SetReady(p)
	if !f.Ready(p) {
		t.Error("SetReady did not take")
	}
	if !f.Ready(None) {
		t.Error("None (architectural source) is always ready")
	}
}

func TestReleaseRecycles(t *testing.T) {
	f := New(1)
	p, _ := f.Alloc()
	f.Release(p)
	if f.FreeCount() != 1 {
		t.Error("release with no readers must free immediately")
	}
	q, ok := f.Alloc()
	if !ok || q != p {
		t.Errorf("recycled alloc = p%d, %v", q, ok)
	}
	if f.Ready(q) {
		t.Error("recycled register must start not-ready")
	}
}

func TestReadersDelayFree(t *testing.T) {
	f := New(1)
	p, _ := f.Alloc()
	f.AddReader(p)
	f.AddReader(p)
	f.Release(p)
	if f.FreeCount() != 0 {
		t.Error("register with readers must not free")
	}
	f.DropReader(p)
	if f.FreeCount() != 0 {
		t.Error("register with one reader left must not free")
	}
	f.DropReader(p)
	if f.FreeCount() != 1 {
		t.Error("register must free when last reader drops")
	}
}

func TestReaderBeforeRelease(t *testing.T) {
	f := New(2)
	p, _ := f.Alloc()
	f.AddReader(p)
	f.DropReader(p)
	if f.FreeCount() != 1 {
		t.Error("live register must stay allocated after readers drain")
	}
	f.Release(p)
	if f.FreeCount() != 2 {
		t.Error("release after reader drain must free")
	}
}

func TestNoneIsNoop(t *testing.T) {
	f := New(2)
	f.AddReader(None)
	f.DropReader(None)
	f.Release(None)
	if f.FreeCount() != 2 {
		t.Error("None operations must not touch the pool")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := []func(f *File){
		func(f *File) { f.SetReady(99) },
		func(f *File) { f.Ready(99) },
		func(f *File) { f.AddReader(-2) },
		func(f *File) {
			p, _ := f.Alloc()
			f.DropReader(p) // underflow
		},
		func(f *File) {
			p, _ := f.Alloc()
			f.Release(p)
			f.Release(p) // double release
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn(New(4))
		}()
	}
}

func TestReset(t *testing.T) {
	f := New(4)
	p, _ := f.Alloc()
	f.AddReader(p)
	f.Reset()
	if f.FreeCount() != 4 || f.InUse() != 0 {
		t.Error("reset incomplete")
	}
	if f.Stats() != (Stats{}) {
		t.Error("stats survived reset")
	}
	// All four registers allocatable again.
	for i := 0; i < 4; i++ {
		if _, ok := f.Alloc(); !ok {
			t.Fatal("alloc after reset failed")
		}
	}
}

// Property: under any interleaving of alloc/release/reader ops, the free
// count plus in-use count equals the pool size, and no register is ever
// double-allocated.
func TestConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
	}
	f := func(ops []op) bool {
		const n = 8
		file := New(n)
		live := map[int]bool{}   // owner-held
		readers := map[int]int{} // outstanding reader refs
		var held []int           // registers we may act on
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // alloc
				p, ok := file.Alloc()
				if ok {
					if live[p] || readers[p] > 0 {
						return false // double allocation
					}
					live[p] = true
					held = append(held, p)
				}
			case 1: // release an owned register
				for _, p := range held {
					if live[p] {
						file.Release(p)
						live[p] = false
						break
					}
				}
			case 2: // add reader to an owned register
				for _, p := range held {
					if live[p] {
						file.AddReader(p)
						readers[p]++
						break
					}
				}
			case 3: // drop one reader
				for _, p := range held {
					if readers[p] > 0 {
						file.DropReader(p)
						readers[p]--
						break
					}
				}
			}
			if file.FreeCount()+file.InUse() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
