package pareto

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// cappedObjs builds test objectives with explicit gain caps, the
// prerequisite of the Monte-Carlo estimator's fixed sampling box.
func cappedObjs(n int) []Objective {
	base := []Objective{
		{Key: "a", Sense: Maximize, Ref: 0, Cap: 4},
		{Key: "b", Sense: Minimize, Ref: 10, Cap: 10},
		{Key: "c", Sense: Maximize, Ref: 0, Cap: 2},
		{Key: "d", Sense: Minimize, Ref: 8, Cap: 8},
		{Key: "e", Sense: Maximize, Ref: 0, Cap: 3},
	}
	return base[:n]
}

// randomFront draws raw vectors whose gains fall inside the caps.
func randomFront(rng *rand.Rand, objs []Objective, n int) []Vector {
	out := make([]Vector, n)
	for i := range out {
		v := make(Vector, len(objs))
		for d, o := range objs {
			gain := rng.Float64() * o.Cap
			if o.Sense == Minimize {
				v[d] = o.Ref - gain
			} else {
				v[d] = o.Ref + gain
			}
		}
		out[i] = v
	}
	return out
}

// TestMonteCarloVsExact2D3D is the satellite convergence test: on 2D and
// 3D fronts — where the exact sweep algorithms are available as the oracle
// — the Monte-Carlo estimate lands within a few percent at the default
// sample budget, and tightens as the budget grows.
func TestMonteCarloVsExact2D3D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range []int{2, 3} {
		objs := cappedObjs(dims)
		for trial := 0; trial < 5; trial++ {
			front := randomFront(rng, objs, 12)
			exact := HypervolumeOf(objs, front)
			if exact <= 0 {
				t.Fatalf("%dD trial %d: degenerate exact hypervolume %v", dims, trial, exact)
			}
			coarse := HypervolumeMC(objs, front, 1<<12)
			fine := HypervolumeMC(objs, front, 1<<17)
			if rel := math.Abs(fine-exact) / exact; rel > 0.03 {
				t.Errorf("%dD trial %d: MC(2^17) = %v vs exact %v (rel err %.3f > 3%%)", dims, trial, fine, exact, rel)
			}
			if math.Abs(fine-exact) > math.Abs(coarse-exact)+0.05*exact {
				// Convergence, with slack for lucky coarse draws: the fine
				// estimate must not be meaningfully worse than the coarse one.
				t.Errorf("%dD trial %d: MC did not converge (coarse err %v, fine err %v)",
					dims, trial, math.Abs(coarse-exact), math.Abs(fine-exact))
			}
		}
	}
}

// TestMonteCarloDeterministic pins the fixed-seed contract: the estimate
// is a pure function of (objectives, vectors, samples).
func TestMonteCarloDeterministic(t *testing.T) {
	objs := cappedObjs(4)
	front := randomFront(rand.New(rand.NewSource(5)), objs, 8)
	a := HypervolumeMC(objs, front, 1<<14)
	b := HypervolumeMC(objs, front, 1<<14)
	if a != b {
		t.Errorf("two identical MC calls differ: %v vs %v", a, b)
	}
	if c, d := HypervolumeOf(objs, front), HypervolumeMC(objs, front, DefaultMCSamples); c != d {
		t.Errorf("HypervolumeOf (4D) = %v, want the default-budget MC estimate %v", c, d)
	}
}

// TestMonteCarlo4DOracle checks the estimator against cases whose 4D
// hypervolume is known in closed form: a single point dominates exactly
// the box of its gains, and nested points add nothing.
func TestMonteCarlo4DOracle(t *testing.T) {
	objs := cappedObjs(4)
	// Gains (2, 5, 1, 4) → volume 40 of a 4×10×2×8 = 640 box.
	point := Vector{2, 5, 1, 4}
	want := 40.0
	got := HypervolumeMC(objs, []Vector{point}, 1<<17)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("single-point 4D MC = %v, want %v ± 5%%", got, want)
	}
	// A dominated second point changes nothing.
	withDominated := HypervolumeMC(objs, []Vector{point, {1, 6, 0.5, 5}}, 1<<17)
	if withDominated != got {
		t.Errorf("dominated point changed the estimate: %v vs %v", withDominated, got)
	}
}

// TestMonteCarloMonotoneUnderAdds pins the property the power benchmark's
// trajectory assertions rely on: with the fixed sampling box, adding
// points never decreases the estimate.
func TestMonteCarloMonotoneUnderAdds(t *testing.T) {
	objs := cappedObjs(4)
	rng := rand.New(rand.NewSource(23))
	var front []Vector
	last := 0.0
	for i := 0; i < 40; i++ {
		front = append(front, randomFront(rng, objs, 1)[0])
		hv := HypervolumeMC(objs, front, 1<<13)
		if hv < last {
			t.Fatalf("MC hypervolume fell from %v to %v at point %d", last, hv, i)
		}
		last = hv
	}
}

// TestMonteCarloNeedsCaps pins the refusal: an uncapped objective has no
// sampling box, and silently improvising one would break determinism.
func TestMonteCarloNeedsCaps(t *testing.T) {
	objs := cappedObjs(4)
	objs[2].Cap = 0
	defer func() {
		if recover() == nil {
			t.Error("MC hypervolume over an uncapped objective must panic")
		}
	}()
	HypervolumeMC(objs, []Vector{{1, 5, 1, 4}}, 1<<10)
}

// TestRegistryObjectivesHaveCaps guards the built-ins: every registered
// metric must be usable in a many-objective run, which needs its gain cap.
func TestRegistryObjectivesHaveCaps(t *testing.T) {
	for _, key := range ObjectiveNames() {
		o, err := ByName(key)
		if err != nil {
			t.Fatal(err)
		}
		if o.Cap <= 0 {
			t.Errorf("objective %q has no gain cap; Monte-Carlo hypervolume would refuse it", key)
		}
		// The cap must bound the gains reachable under the reference —
		// sanity: a minimized objective's gain is at most Ref (values are
		// non-negative), and the cap must not be smaller than that bound
		// promises. (For maximized objectives the cap is the a-priori bound
		// itself; nothing to cross-check.)
		if o.Sense == Minimize && o.Cap < o.Ref {
			t.Errorf("objective %q: cap %v below its own reference %v undercounts fronts near zero", key, o.Cap, o.Ref)
		}
	}
}

func ExampleHypervolumeMC() {
	objs := []Objective{
		{Key: "ipc", Sense: Maximize, Ref: 0, Cap: 4},
		{Key: "area", Sense: Minimize, Ref: 10, Cap: 10},
	}
	front := []Vector{{2, 4}, {3, 6}}
	fmt.Printf("exact %.1f\n", HypervolumeOf(objs, front))
	// Output: exact 16.0
}
