// Package pareto is the multi-objective layer of the design-space search:
// named objectives with configurable optimization senses, dominance over
// raw objective vectors, a deduplicating non-dominated archive with
// incremental filtering and crowding-distance pruning to a bounded size,
// and a hypervolume indicator against a fixed reference point — exact
// through three objectives, a deterministic-seed Monte-Carlo estimate
// beyond.
//
// Objectives are resolved from the metric registry (internal/metrics):
// the registry is the single source of a metric's sense, reference point
// and gain cap, so a newly registered metric is immediately addressable
// as a search objective. The package is otherwise ignorant of what a
// design point is: callers identify points by an opaque content key and
// hand in raw objective values; everything here is pure arithmetic, so a
// fixed proposal order reproduces archives — and their JSON renderings —
// byte for byte.
package pareto

import (
	"fmt"
	"strings"

	"hdsmt/internal/metrics"
)

// Sense is an objective's optimization direction.
type Sense int

// The two senses. Maximize is the zero value: an Objective literal without
// an explicit sense maximizes, matching the common case (IPC, fairness).
const (
	Maximize Sense = iota
	Minimize
)

// String renders the sense ("max"/"min").
func (s Sense) String() string {
	if s == Minimize {
		return "min"
	}
	return "max"
}

// Objective is one axis of the search's objective space.
type Objective struct {
	// Key names the objective — a metric key from the registry ("ipc",
	// "area", "fairness", "energy", ...).
	Key string `json:"key"`
	// Sense is the optimization direction.
	Sense Sense `json:"sense"`
	// Ref is the hypervolume reference coordinate: the worst value a point
	// may take and still contribute volume. For a maximized objective any
	// value at or below Ref contributes nothing; for a minimized one, any
	// value at or above it.
	Ref float64 `json:"ref"`
	// Cap bounds the achievable gain over Ref (metrics.Metric.GainCap):
	// the Monte-Carlo hypervolume estimator samples the fixed box
	// Π[0, Cap], which keeps its estimate deterministic and monotone over
	// a growing archive. Zero means unknown — exact hypervolume still
	// works, the Monte-Carlo path refuses.
	Cap float64 `json:"cap,omitempty"`
}

// ByName resolves an objective from the metric registry.
func ByName(key string) (Objective, error) {
	m, ok := metrics.Lookup(key)
	if !ok {
		return Objective{}, fmt.Errorf("pareto: unknown objective %q (known metrics: %s)",
			key, strings.Join(metrics.Keys(), ", "))
	}
	sense := Maximize
	if m.Sense == metrics.Minimize {
		sense = Minimize
	}
	return Objective{Key: m.Key, Sense: sense, Ref: m.Ref, Cap: m.GainCap}, nil
}

// ObjectiveNames lists the addressable objective keys — the metric
// registry's keys, in registration order.
func ObjectiveNames() []string { return metrics.Keys() }

// Parse resolves a comma-separated objective list ("ipc,area,fairness" or
// "ipc,area,fairness,energy"). Between two and len(ObjectiveNames())
// distinct objectives are accepted: one objective is a scalar search (the
// driver's default per-area path covers it). Beyond three objectives the
// hypervolume indicator switches to the deterministic Monte-Carlo
// estimator.
func Parse(csv string) ([]Objective, error) {
	var out []Objective
	seen := map[string]bool{}
	for _, part := range strings.Split(csv, ",") {
		key := strings.TrimSpace(part)
		if key == "" {
			return nil, fmt.Errorf("pareto: empty objective in %q", csv)
		}
		if seen[key] {
			return nil, fmt.Errorf("pareto: duplicate objective %q", key)
		}
		seen[key] = true
		o, err := ByName(key)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	if max := len(ObjectiveNames()); len(out) < 2 || len(out) > max {
		return nil, fmt.Errorf("pareto: %d objectives given, want 2 to %d of: %s (scalar search handles 1)",
			len(out), max, strings.Join(metrics.Keys(), ", "))
	}
	return out, nil
}

// Keys returns the objective keys in order.
func Keys(objs []Objective) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Key
	}
	return out
}

// Vector is one point's objective values, in the objective list's order.
// Whether a Vector holds raw values or gains (see Gain) is contextual;
// Archive and the GainDominates helper work on gains.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Gain converts raw objective values to maximization-oriented gains over
// the reference point: a maximized objective maps to value−Ref, a
// minimized one to Ref−value. In gain coordinates every objective is
// maximized and the reference point is the origin, so dominance is a plain
// component comparison and hypervolume is the volume of the union of
// axis-aligned boxes [0, gain].
func Gain(objs []Objective, raw Vector) Vector {
	if len(raw) != len(objs) {
		panic(fmt.Sprintf("pareto: vector has %d values, objective list has %d", len(raw), len(objs)))
	}
	out := make(Vector, len(raw))
	for i, o := range objs {
		if o.Sense == Minimize {
			out[i] = o.Ref - raw[i]
		} else {
			out[i] = raw[i] - o.Ref
		}
	}
	return out
}

// GainObjectives returns n anonymous maximized objectives with the
// reference at the origin — the objective list matching vectors that are
// already gains (pareto.Gain output). Strategies that only ever see gain
// vectors archive under these.
func GainObjectives(n int) []Objective {
	out := make([]Objective, n)
	for i := range out {
		out[i] = Objective{Key: fmt.Sprintf("g%d", i), Sense: Maximize}
	}
	return out
}

// Dominates reports whether raw vector a Pareto-dominates raw vector b
// under the objective senses: at least as good on every objective and
// strictly better on at least one.
func Dominates(objs []Objective, a, b Vector) bool {
	return GainDominates(Gain(objs, a), Gain(objs, b))
}

// GainDominates is Dominates on maximization-oriented gain vectors (see
// Gain): a ≥ b component-wise with at least one strict improvement.
func GainDominates(a, b Vector) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: comparing vectors of %d and %d objectives", len(a), len(b)))
	}
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}
