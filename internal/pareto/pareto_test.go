package pareto

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testObjs is the canonical (ipc max, area min) pair with a small area
// reference so hypervolume numbers stay readable.
func testObjs() []Objective {
	return []Objective{
		{Key: "ipc", Sense: Maximize, Ref: 0},
		{Key: "area", Sense: Minimize, Ref: 10},
	}
}

func TestParse(t *testing.T) {
	objs, err := Parse("ipc, area,fairness")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 || objs[0].Key != "ipc" || objs[1].Key != "area" || objs[2].Key != "fairness" {
		t.Errorf("Parse = %+v", objs)
	}
	if objs[1].Sense != Minimize || objs[0].Sense != Maximize {
		t.Errorf("senses = %v/%v, want min area, max ipc", objs[1].Sense, objs[0].Sense)
	}
	// Four-objective lists are accepted since the Monte-Carlo hypervolume
	// estimator landed; the energy objective resolves from the registry.
	objs4, err := Parse("ipc,area,fairness,energy")
	if err != nil {
		t.Fatalf("4-objective parse: %v", err)
	}
	if len(objs4) != 4 || objs4[3].Key != "energy" || objs4[3].Sense != Minimize || objs4[3].Cap <= 0 {
		t.Errorf("Parse 4-objective = %+v", objs4)
	}
	for _, bad := range []string{"", "ipc", "ipc,ipc", "ipc,nope"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Unknown objectives fail fast and name the known metrics, so a typo'd
	// CLI flag reports the menu rather than producing a zero-valued front.
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "ipc") || !strings.Contains(err.Error(), "energy") {
		t.Errorf("ByName(nope) error %v must list the known metrics", err)
	}
	for _, key := range ObjectiveNames() {
		if _, err := ByName(key); err != nil {
			t.Errorf("ByName(%q): %v", key, err)
		}
	}
}

func TestDominance(t *testing.T) {
	objs := testObjs()
	a := Vector{2.0, 4.0} // ipc 2, area 4
	b := Vector{1.5, 5.0} // worse on both (area minimized)
	c := Vector{2.5, 6.0} // better ipc, worse area: incomparable with a
	if !Dominates(objs, a, b) {
		t.Error("a must dominate b")
	}
	if Dominates(objs, b, a) {
		t.Error("b cannot dominate a")
	}
	if Dominates(objs, a, c) || Dominates(objs, c, a) {
		t.Error("a and c are incomparable")
	}
	if Dominates(objs, a, a) {
		t.Error("a vector cannot dominate itself (no strict improvement)")
	}
	// Equal on one objective, better on the other: still dominates.
	if !Dominates(objs, Vector{2.0, 3.0}, a) {
		t.Error("equal ipc with smaller area must dominate")
	}
}

func TestGainOrientation(t *testing.T) {
	objs := testObjs()
	g := Gain(objs, Vector{2.0, 4.0})
	if g[0] != 2.0 || g[1] != 6.0 {
		t.Errorf("gains = %v, want [2 6]", g)
	}
}

func TestArchiveFiltering(t *testing.T) {
	a := NewArchive(testObjs(), 0)
	if !a.Add(Entry{Key: "x", Name: "X", Vector: Vector{1.0, 5.0}}) {
		t.Fatal("first point must enter")
	}
	if a.Add(Entry{Key: "x", Name: "X", Vector: Vector{1.0, 5.0}}) {
		t.Error("duplicate key must be rejected")
	}
	if a.Add(Entry{Key: "dom", Vector: Vector{0.5, 6.0}}) {
		t.Error("dominated point must be rejected")
	}
	// A dominating point evicts x.
	if !a.Add(Entry{Key: "y", Vector: Vector{1.2, 4.0}}) {
		t.Fatal("dominating point must enter")
	}
	if a.Len() != 1 || a.Members()[0].Key != "y" {
		t.Errorf("archive = %+v, want just y", a.Members())
	}
	// An incomparable point coexists.
	if !a.Add(Entry{Key: "z", Vector: Vector{0.8, 2.0}}) {
		t.Fatal("incomparable point must enter")
	}
	if a.Len() != 2 {
		t.Errorf("len = %d, want 2", a.Len())
	}
	// Every pair of members is mutually non-dominated.
	ms := a.Members()
	for i := range ms {
		for j := range ms {
			if i != j && Dominates(a.Objectives(), ms[i].Vector, ms[j].Vector) {
				t.Errorf("member %s dominates member %s", ms[i].Key, ms[j].Key)
			}
		}
	}
}

// TestArchiveShuffledInsertionDeterminism is the satellite determinism
// test: the same point set inserted in any order yields the same members,
// the same canonical order, and the same hypervolume.
func TestArchiveShuffledInsertionDeterminism(t *testing.T) {
	objs := testObjs()
	var pool []Entry
	for i := 0; i < 40; i++ {
		// A deterministic scatter with dominated and non-dominated points.
		ipc := 0.5 + 0.1*float64(i%13) + 0.01*float64(i)
		area := 9.5 - 0.2*float64(i%7) - 0.03*float64(i%11)
		pool = append(pool, Entry{Key: fmt.Sprintf("k%02d", i), Vector: Vector{ipc, area}})
	}
	render := func(order []int) string {
		a := NewArchive(objs, 0)
		for _, i := range order {
			a.Add(pool[i])
		}
		b, err := json.Marshal(struct {
			Members []Entry
			HV      float64
		}{a.Members(), a.Hypervolume()})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := make([]int, len(pool))
	for i := range base {
		base[i] = i
	}
	want := render(base)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		order := append([]int(nil), base...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if got := render(order); got != want {
			t.Fatalf("shuffled insertion changed the archive:\n%s\nvs\n%s", got, want)
		}
	}
}

func TestArchiveCrowdingPruning(t *testing.T) {
	// A 4-capacity archive fed a 9-point front: boundary points must
	// survive (infinite crowding distance), the densest interior point goes.
	a := NewArchive(testObjs(), 4)
	for i := 0; i < 9; i++ {
		// A strictly trading-off front: higher ipc, higher area.
		a.Add(Entry{Key: fmt.Sprintf("p%d", i), Vector: Vector{1 + float64(i), 1 + float64(i)}})
	}
	if a.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", a.Len())
	}
	keys := map[string]bool{}
	for _, m := range a.Members() {
		keys[m.Key] = true
	}
	if !keys["p0"] || !keys["p8"] {
		t.Errorf("boundary points pruned: %v", keys)
	}
}

func TestHypervolume2D(t *testing.T) {
	objs := testObjs()
	// Two boxes in gain space: (2, 6) and (3, 4); union = 2*6 + (3-2)*4 = 16.
	got := HypervolumeOf(objs, []Vector{{2, 4}, {3, 6}})
	if math.Abs(got-16) > 1e-12 {
		t.Errorf("hv = %v, want 16", got)
	}
	// A dominated point adds nothing; a point outside the reference adds
	// nothing.
	got = HypervolumeOf(objs, []Vector{{2, 4}, {3, 6}, {1, 5}, {0.5, 12}})
	if math.Abs(got-16) > 1e-12 {
		t.Errorf("hv with dominated/outside points = %v, want 16", got)
	}
	if hv := HypervolumeOf(objs, nil); hv != 0 {
		t.Errorf("empty hv = %v", hv)
	}
}

func TestHypervolume3D(t *testing.T) {
	objs := []Objective{
		{Key: "ipc", Sense: Maximize},
		{Key: "fairness", Sense: Maximize},
		{Key: "area", Sense: Minimize, Ref: 10},
	}
	// Gain boxes (2,2,2) and (1,1,4): union = 8 + (4-2)*1*1 = 10.
	got := HypervolumeOf(objs, []Vector{{2, 2, 8}, {1, 1, 6}})
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("hv3 = %v, want 10", got)
	}
	// Identical slabs collapse.
	got = HypervolumeOf(objs, []Vector{{2, 2, 8}, {2, 2, 8}})
	if math.Abs(got-8) > 1e-12 {
		t.Errorf("hv3 duplicate = %v, want 8", got)
	}
}

// TestHypervolumeMonotoneUnderAdds pins the property the CI smoke step
// asserts on real runs: without capacity pruning, archive hypervolume never
// decreases as points are added.
func TestHypervolumeMonotoneUnderAdds(t *testing.T) {
	objs := testObjs()
	a := NewArchive(objs, 0)
	rng := rand.New(rand.NewSource(3))
	last := 0.0
	for i := 0; i < 200; i++ {
		a.Add(Entry{Key: fmt.Sprintf("r%d", i), Vector: Vector{rng.Float64() * 3, 1 + rng.Float64()*8}})
		hv := a.Hypervolume()
		if hv < last {
			t.Fatalf("hypervolume fell from %v to %v at add %d", last, hv, i)
		}
		last = hv
	}
}

func TestCrowdingDistances(t *testing.T) {
	gains := []Vector{{0, 4}, {1, 3}, {2, 2}, {4, 0}}
	d := CrowdingDistances(gains)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Errorf("boundary distances = %v, want +Inf", d)
	}
	if d[1] >= d[2] {
		// p1's neighbors span (0..2, 2..4) = 0.5+0.5; p2's span (1..4,
		// 0..3) = 0.75+0.75: p2 is lonelier.
		t.Errorf("crowding order wrong: %v", d)
	}
	if len(CrowdingDistances(nil)) != 0 {
		t.Error("empty input must yield empty distances")
	}
}
