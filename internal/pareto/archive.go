package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one archive member: an opaque content key (the deduplication
// identity — e.g. the search candidate's SHA-256 key), a display name, and
// the point's raw objective vector. Payload carries arbitrary caller data
// along with the member — it plays no part in dominance or ordering, and
// it is dropped with the entry on eviction, so callers need no side table
// that would outlive pruned members.
type Entry struct {
	Key     string
	Name    string
	Vector  Vector // raw objective values, in the archive's objective order
	Payload any
}

// Archive is a bounded set of mutually non-dominated points. Add filters
// incrementally: a dominated or duplicate proposal is rejected, an accepted
// one evicts every member it dominates, and when the archive outgrows its
// capacity the member with the smallest crowding distance is pruned — the
// NSGA-II diversity rule, keeping the front's spread while bounding memory.
//
// Membership and order are deterministic functions of the proposal
// sequence; Members additionally returns a canonical order independent of
// insertion history, so two searches that discover the same front in
// different orders render identical JSON.
type Archive struct {
	objs    []Objective
	cap     int
	entries []Entry
	gains   []Vector // entries[i]'s gain vector, maintained in lockstep
}

// DefaultArchiveCap bounds archives whose callers give no capacity: large
// enough that budgeted searches never prune (a prune can shrink the
// dominated region, making the hypervolume trajectory non-monotone), small
// enough to stay cheap on unbounded exhaustive runs.
const DefaultArchiveCap = 64

// NewArchive builds an empty archive over objs. capacity <= 0 means
// DefaultArchiveCap.
func NewArchive(objs []Objective, capacity int) *Archive {
	if len(objs) == 0 {
		panic("pareto: archive needs at least one objective")
	}
	if capacity <= 0 {
		capacity = DefaultArchiveCap
	}
	return &Archive{objs: objs, cap: capacity}
}

// Objectives returns the archive's objective list.
func (a *Archive) Objectives() []Objective { return a.objs }

// Len returns the member count.
func (a *Archive) Len() int { return len(a.entries) }

// Add proposes e. It returns true when the archive changed: e was
// non-dominated, not already present, and survived capacity pruning.
func (a *Archive) Add(e Entry) bool {
	if len(e.Vector) != len(a.objs) {
		panic(fmt.Sprintf("pareto: entry has %d objectives, archive has %d", len(e.Vector), len(a.objs)))
	}
	g := Gain(a.objs, e.Vector)
	for i, m := range a.entries {
		if m.Key == e.Key {
			return false // already archived (revisits are free)
		}
		if !GainDominates(g, a.gains[i]) && !GainDominates(a.gains[i], g) {
			continue
		}
		if GainDominates(a.gains[i], g) {
			return false // dominated by a member
		}
	}
	// Non-dominated: evict every member e dominates, then insert.
	keep := a.entries[:0]
	keepG := a.gains[:0]
	for i, m := range a.entries {
		if GainDominates(g, a.gains[i]) {
			continue
		}
		keep = append(keep, m)
		keepG = append(keepG, a.gains[i])
	}
	a.entries = append(keep, e)
	a.gains = append(keepG, g)
	if len(a.entries) > a.cap {
		a.prune()
	}
	// e itself may have been the pruned one; report whether it survived.
	for _, m := range a.entries {
		if m.Key == e.Key {
			return true
		}
	}
	return false
}

// prune drops the member with the smallest crowding distance (deterministic
// tie-break: the lexicographically largest key loses, so older keys are
// never silently displaced by equal-crowding newcomers in a way that
// depends on map order — there are no maps here, but the rule keeps the
// choice explicit).
func (a *Archive) prune() {
	dist := CrowdingDistances(a.gains)
	worst := 0
	for i := 1; i < len(a.entries); i++ {
		if dist[i] < dist[worst] ||
			(dist[i] == dist[worst] && a.entries[i].Key > a.entries[worst].Key) {
			worst = i
		}
	}
	a.entries = append(a.entries[:worst], a.entries[worst+1:]...)
	a.gains = append(a.gains[:worst], a.gains[worst+1:]...)
}

// Members returns the archive in canonical order: descending first-gain,
// then descending later gains, then key — independent of insertion order.
func (a *Archive) Members() []Entry {
	out := make([]Entry, len(a.entries))
	idx := make([]int, len(a.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		gx, gy := a.gains[idx[x]], a.gains[idx[y]]
		for k := range gx {
			if gx[k] != gy[k] {
				return gx[k] > gy[k]
			}
		}
		return a.entries[idx[x]].Key < a.entries[idx[y]].Key
	})
	for i, j := range idx {
		out[i] = a.entries[j]
	}
	return out
}

// Hypervolume returns the volume of objective space dominated by the
// archive between its members and the objectives' reference point — the
// standard front-quality indicator: larger is better, and it grows
// monotonically as long as no capacity prune fires.
func (a *Archive) Hypervolume() float64 {
	return HypervolumeOf(a.objs, a.vectors())
}

func (a *Archive) vectors() []Vector {
	out := make([]Vector, len(a.entries))
	for i := range a.entries {
		out[i] = a.entries[i].Vector
	}
	return out
}

// CrowdingDistances returns the NSGA-II crowding distance of each gain
// vector: for every objective the set is sorted, boundary points get +Inf,
// and interior points accumulate their neighbors' normalized gap. Larger
// means lonelier — the points pruning should keep.
func CrowdingDistances(gains []Vector) []float64 {
	n := len(gains)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	dims := len(gains[0])
	idx := make([]int, n)
	for d := 0; d < dims; d++ {
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return gains[idx[x]][d] < gains[idx[y]][d] })
		lo, hi := gains[idx[0]][d], gains[idx[n-1]][d]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if span := hi - lo; span > 0 {
			for i := 1; i < n-1; i++ {
				dist[idx[i]] += (gains[idx[i+1]][d] - gains[idx[i-1]][d]) / span
			}
		}
	}
	return dist
}
