package pareto

import (
	"fmt"
	"sort"
)

// HypervolumeOf measures the volume of objective space dominated by the
// raw vectors with respect to the objectives' reference point: the volume
// of the union of axis-aligned boxes spanned by the reference point and
// each vector, in gain coordinates (see Gain). Vectors that fail to
// strictly improve on the reference in every objective contribute nothing.
// Exact algorithms are implemented for 1, 2 and 3 objectives — the spans
// Parse accepts; more objectives panic (the CLI cannot construct them).
func HypervolumeOf(objs []Objective, vectors []Vector) float64 {
	var pts []Vector
next:
	for _, v := range vectors {
		g := Gain(objs, v)
		for _, x := range g {
			if x <= 0 {
				continue next
			}
		}
		pts = append(pts, g)
	}
	if len(pts) == 0 {
		return 0
	}
	switch len(objs) {
	case 1:
		best := 0.0
		for _, p := range pts {
			if p[0] > best {
				best = p[0]
			}
		}
		return best
	case 2:
		return hv2(pts)
	case 3:
		return hv3(pts)
	}
	panic(fmt.Sprintf("pareto: exact hypervolume implemented for <= 3 objectives, got %d", len(objs)))
}

// hv2 is the 2D sweep: sort by the first gain descending and accumulate
// each point's rectangle beyond the running second-gain maximum.
func hv2(pts []Vector) float64 {
	sorted := make([]Vector, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] > sorted[j][0]
		}
		return sorted[i][1] > sorted[j][1]
	})
	hv, yMax := 0.0, 0.0
	for _, p := range sorted {
		if p[1] > yMax {
			hv += p[0] * (p[1] - yMax)
			yMax = p[1]
		}
	}
	return hv
}

// hv3 slices along the third gain: points sorted descending, each slab
// between consecutive distinct levels contributes its height times the 2D
// hypervolume of every point at or above the slab's top.
func hv3(pts []Vector) float64 {
	sorted := make([]Vector, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i][2] > sorted[j][2] })
	hv := 0.0
	var prefix []Vector
	for i := 0; i < len(sorted); {
		z := sorted[i][2]
		for i < len(sorted) && sorted[i][2] == z {
			prefix = append(prefix, sorted[i])
			i++
		}
		lower := 0.0
		if i < len(sorted) {
			lower = sorted[i][2]
		}
		hv += hv2(prefix) * (z - lower)
	}
	return hv
}
