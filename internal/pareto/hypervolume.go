package pareto

import (
	"fmt"
	"math/rand"
	"sort"
)

// Monte-Carlo defaults: the sample count balances estimator noise
// (relative error ~1/sqrt(f·N) for a front filling fraction f of the
// sampling box) against the per-call cost, and the seed is a fixed
// constant — the estimate is a deterministic function of the objective
// list and the vectors, which the byte-identical benchmark reports and
// the monotone-trajectory assertions both rely on.
const (
	DefaultMCSamples = 1 << 16
	defaultMCSeed    = int64(0x1e3779b97f4a7c15)
)

// HypervolumeOf measures the volume of objective space dominated by the
// raw vectors with respect to the objectives' reference point: the volume
// of the union of axis-aligned boxes spanned by the reference point and
// each vector, in gain coordinates (see Gain). Vectors that fail to
// strictly improve on the reference in every objective contribute nothing.
// Exact sweep algorithms serve 1, 2 and 3 objectives; beyond three the
// deterministic Monte-Carlo estimator takes over (HypervolumeMC with the
// default sample count — the exact result for the same vectors truncated
// to 3 objectives is its test oracle).
func HypervolumeOf(objs []Objective, vectors []Vector) float64 {
	pts := positiveGains(objs, vectors)
	if len(pts) == 0 {
		return 0
	}
	switch len(objs) {
	case 1:
		best := 0.0
		for _, p := range pts {
			if p[0] > best {
				best = p[0]
			}
		}
		return best
	case 2:
		return hv2(pts)
	case 3:
		return hv3(pts)
	}
	return hvMC(objs, pts, DefaultMCSamples)
}

// positiveGains converts raw vectors to gain space, dropping points that
// fail to strictly improve on the reference in some objective (they
// dominate no volume).
func positiveGains(objs []Objective, vectors []Vector) []Vector {
	var pts []Vector
next:
	for _, v := range vectors {
		g := Gain(objs, v)
		for _, x := range g {
			if x <= 0 {
				continue next
			}
		}
		pts = append(pts, g)
	}
	return pts
}

// HypervolumeMC estimates the hypervolume by uniform sampling of the
// fixed gain box Π[0, Cap] defined by the objectives' gain caps: the
// dominated fraction of the samples times the box volume. The sample
// sequence depends only on the objective count and the sample budget —
// never on the vectors — so the estimate is monotone over a growing
// archive (every sample a smaller front dominated stays dominated) and
// identical across processes. Works for any dimension; the exact 2D/3D
// algorithms are its oracle in the tests.
func HypervolumeMC(objs []Objective, vectors []Vector, samples int) float64 {
	pts := positiveGains(objs, vectors)
	if len(pts) == 0 {
		return 0
	}
	return hvMC(objs, pts, samples)
}

// hvMC runs the estimate on already-filtered gain vectors.
func hvMC(objs []Objective, pts []Vector, samples int) float64 {
	if samples <= 0 {
		samples = DefaultMCSamples
	}
	boxVol := 1.0
	for _, o := range objs {
		if o.Cap <= 0 {
			panic(fmt.Sprintf("pareto: objective %q has no gain cap; Monte-Carlo hypervolume needs a bounded box (register the metric with GainCap)", o.Key))
		}
		boxVol *= o.Cap
	}
	rng := rand.New(rand.NewSource(defaultMCSeed))
	u := make([]float64, len(objs))
	dominated := 0
	for s := 0; s < samples; s++ {
		for d, o := range objs {
			u[d] = rng.Float64() * o.Cap
		}
		for _, p := range pts {
			inside := true
			for d := range u {
				if u[d] > p[d] {
					inside = false
					break
				}
			}
			if inside {
				dominated++
				break
			}
		}
	}
	return boxVol * float64(dominated) / float64(samples)
}

// hv2 is the 2D sweep: sort by the first gain descending and accumulate
// each point's rectangle beyond the running second-gain maximum.
func hv2(pts []Vector) float64 {
	sorted := make([]Vector, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] > sorted[j][0]
		}
		return sorted[i][1] > sorted[j][1]
	})
	hv, yMax := 0.0, 0.0
	for _, p := range sorted {
		if p[1] > yMax {
			hv += p[0] * (p[1] - yMax)
			yMax = p[1]
		}
	}
	return hv
}

// hv3 slices along the third gain: points sorted descending, each slab
// between consecutive distinct levels contributes its height times the 2D
// hypervolume of every point at or above the slab's top.
func hv3(pts []Vector) float64 {
	sorted := make([]Vector, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i][2] > sorted[j][2] })
	hv := 0.0
	var prefix []Vector
	for i := 0; i < len(sorted); {
		z := sorted[i][2]
		for i < len(sorted) && sorted[i][2] == z {
			prefix = append(prefix, sorted[i])
			i++
		}
		lower := 0.0
		if i < len(sorted) {
			lower = sorted[i][2]
		}
		hv += hv2(prefix) * (z - lower)
	}
	return hv
}
