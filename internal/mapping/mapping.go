// Package mapping implements thread-to-pipeline mapping for hdSMT
// processors: the paper's profile-guided heuristic (§2.1) and the
// exhaustive enumeration behind the BEST/WORST oracle measurements (§5).
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"hdsmt/internal/config"
)

// Mapping assigns each thread (by index) a pipeline index.
type Mapping []int

// String renders a mapping compactly, e.g. "[0 0 1 2]".
func (m Mapping) String() string {
	parts := make([]string, len(m))
	for i, p := range m {
		parts[i] = fmt.Sprint(p)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Clone returns a copy.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	copy(out, m)
	return out
}

// Validate checks that m maps each of n threads to an existing pipeline
// without exceeding any pipeline's hardware contexts.
func Validate(cfg config.Microarch, m Mapping) error {
	used := make([]int, len(cfg.Pipelines))
	for i, p := range m {
		if p < 0 || p >= len(cfg.Pipelines) {
			return fmt.Errorf("mapping: thread %d to pipeline %d of %d", i, p, len(cfg.Pipelines))
		}
		used[p]++
		if used[p] > cfg.Pipelines[p].Contexts {
			return fmt.Errorf("mapping: pipeline %d (%s) holds %d contexts, assigned %d",
				p, cfg.Pipelines[p].Name, cfg.Pipelines[p].Contexts, used[p])
		}
	}
	return nil
}

// Heuristic implements the paper's §2.1 profile-based policy. misses[i] is
// thread i's profiled data-cache miss count. The algorithm, verbatim from
// the paper:
//
//  1. Arrange all active threads by the number of data cache misses in a
//     list T (fewest misses first).
//  2. Arrange all pipelines by their width in a list P (widest first).
//  3. Map the first thread in T to the first pipeline in P.
//  4. If this is the first assignment, and there are more available
//     hardware contexts than active threads, then remove the top of P.
//  5. Remove the top of T.
//  6. If all the hardware contexts of the pipeline at the top of P are
//     busy, then remove the top of P.
//  7. If T is not empty, continue at step 3.
//
// Step 4 gives the best-behaved thread a private wide pipeline whenever
// the machine has contexts to spare.
func Heuristic(cfg config.Microarch, misses []uint64) (Mapping, error) {
	n := len(misses)
	if n == 0 {
		return nil, fmt.Errorf("mapping: no threads")
	}
	if cfg.TotalContexts() < n {
		return nil, fmt.Errorf("mapping: %s has %d contexts for %d threads",
			cfg.Name, cfg.TotalContexts(), n)
	}

	// List T: thread indexes by ascending miss count (stable on index).
	T := make([]int, n)
	for i := range T {
		T[i] = i
	}
	sort.SliceStable(T, func(a, b int) bool { return misses[T[a]] < misses[T[b]] })

	// List P: pipeline indexes by descending width. Microarch pipelines
	// are already widest-first; keep explicit indexes for clarity.
	P := make([]int, len(cfg.Pipelines))
	for i := range P {
		P[i] = i
	}

	out := make(Mapping, n)
	used := make([]int, len(cfg.Pipelines))
	first := true
	for len(T) > 0 {
		if len(P) == 0 {
			return nil, fmt.Errorf("mapping: ran out of pipelines (internal error)")
		}
		thr, pipe := T[0], P[0]
		out[thr] = pipe // step 3
		used[pipe]++
		// Step 4. Never retire the last pipeline: the rule is meant to
		// give the cleanest thread a private wide pipeline, which is
		// moot (and would strand threads) on a single-pipeline machine.
		if first && cfg.TotalContexts() > n && len(P) > 1 {
			P = P[1:]
		}
		first = false
		T = T[1:] // step 5
		if len(P) > 0 && used[P[0]] >= cfg.Pipelines[P[0]].Contexts {
			P = P[1:] // step 6
		}
	}
	if err := Validate(cfg, out); err != nil {
		return nil, fmt.Errorf("mapping: heuristic produced invalid mapping: %w", err)
	}
	return out, nil
}

// Enumerate returns every capacity-feasible mapping of n threads onto cfg,
// deduplicated across interchangeable pipelines (two pipelines of the same
// model are identical hardware, so swapping their thread sets yields the
// same machine). The result is deterministic.
func Enumerate(cfg config.Microarch, n int) []Mapping {
	if n == 0 || cfg.TotalContexts() < n {
		return nil
	}
	var (
		out  []Mapping
		seen = map[string]bool{}
		cur  = make(Mapping, n)
		used = make([]int, len(cfg.Pipelines))
	)
	var rec func(thread int)
	rec = func(thread int) {
		if thread == n {
			sig := canonical(cfg, cur)
			if !seen[sig] {
				seen[sig] = true
				out = append(out, cur.Clone())
			}
			return
		}
		for p := range cfg.Pipelines {
			if used[p] >= cfg.Pipelines[p].Contexts {
				continue
			}
			used[p]++
			cur[thread] = p
			rec(thread + 1)
			used[p]--
		}
	}
	rec(0)
	return out
}

// canonical builds a signature invariant under permutation of same-model
// pipelines: per model, the sorted list of per-pipeline thread sets.
func canonical(cfg config.Microarch, m Mapping) string {
	perPipe := make([][]int, len(cfg.Pipelines))
	for t, p := range m {
		perPipe[p] = append(perPipe[p], t)
	}
	groups := map[string][]string{}
	for p, threads := range perPipe {
		model := cfg.Pipelines[p].Name
		var b strings.Builder
		for _, t := range threads { // threads appended in ascending order
			fmt.Fprintf(&b, "%d,", t)
		}
		groups[model] = append(groups[model], b.String())
	}
	models := make([]string, 0, len(groups))
	for m := range groups {
		models = append(models, m)
	}
	sort.Strings(models)
	var sig strings.Builder
	for _, model := range models {
		sets := groups[model]
		sort.Strings(sets)
		sig.WriteString(model)
		sig.WriteByte('{')
		sig.WriteString(strings.Join(sets, "|"))
		sig.WriteByte('}')
	}
	return sig.String()
}
