package mapping

import (
	"fmt"
	"sort"

	"hdsmt/internal/config"
)

// WidthFit is an improved heuristic developed in this reproduction (an
// extension beyond the paper). The §2.1 policy has two measurable
// weaknesses (see EXPERIMENTS.md): step 4 dedicates the widest pipeline to
// the cleanest thread even when that strands capacity, and the "adjacent
// threads behave similarly" assumption pairs an ILP thread with a MEM
// thread whenever the sorted miss list crosses the class boundary.
//
// WidthFit instead assigns threads in ascending-miss order to the pipeline
// with the most *effective width per thread* remaining: a thread joins
// pipeline p only when width(p)/(assigned(p)+1) beats every alternative.
// Clean threads therefore spread across wide pipelines before any pipeline
// doubles up, and heavy missers fall to the narrow pipelines last — without
// ever wasting a wide pipeline that could serve two threads better than a
// narrow one serves one.
func WidthFit(cfg config.Microarch, misses []uint64) (Mapping, error) {
	n := len(misses)
	if n == 0 {
		return nil, fmt.Errorf("mapping: no threads")
	}
	if cfg.TotalContexts() < n {
		return nil, fmt.Errorf("mapping: %s has %d contexts for %d threads",
			cfg.Name, cfg.TotalContexts(), n)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return misses[order[a]] < misses[order[b]] })

	out := make(Mapping, n)
	used := make([]int, len(cfg.Pipelines))
	for _, thr := range order {
		best, bestScore := -1, -1.0
		for p := range cfg.Pipelines {
			if used[p] >= cfg.Pipelines[p].Contexts {
				continue
			}
			score := float64(cfg.Pipelines[p].Width) / float64(used[p]+1)
			// Ties break toward the wider pipeline (earlier index, since
			// Microarch pipelines are ordered widest first).
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("mapping: no free context (internal error)")
		}
		out[thr] = best
		used[best]++
	}
	if err := Validate(cfg, out); err != nil {
		return nil, fmt.Errorf("mapping: widthfit produced invalid mapping: %w", err)
	}
	return out, nil
}
