package mapping

import (
	"testing"
	"testing/quick"

	"hdsmt/internal/config"
)

func TestValidate(t *testing.T) {
	cfg := config.MustParse("2M4+2M2") // contexts 2,2,1,1
	if err := Validate(cfg, Mapping{0, 0, 1, 2, 3}); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	if err := Validate(cfg, Mapping{2, 2}); err == nil {
		t.Error("M2 context overflow accepted")
	}
	if err := Validate(cfg, Mapping{4}); err == nil {
		t.Error("out-of-range pipeline accepted")
	}
	if err := Validate(cfg, Mapping{-1}); err == nil {
		t.Error("negative pipeline accepted")
	}
}

func TestHeuristicOrdersByMissesAndWidth(t *testing.T) {
	// 2M4+2M2, 4 threads, 6 contexts: contexts > threads, so step 4
	// retires the first M4 after the cleanest thread lands on it.
	cfg := config.MustParse("2M4+2M2")
	misses := []uint64{500, 10, 90000, 2000} // ascending: t1, t0, t3, t2
	m, err := Heuristic(cfg, misses)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cfg, m); err != nil {
		t.Fatal(err)
	}
	// t1 (fewest misses) gets pipeline 0 (widest), privately (step 4).
	if m[1] != 0 {
		t.Errorf("cleanest thread on pipeline %d, want 0", m[1])
	}
	// t0 next: pipeline 1 (second M4); t3 also pipeline 1 (2 contexts);
	// t2 (mcf-like) is pushed to the narrow M2 (pipeline 2).
	if m[0] != 1 || m[3] != 1 {
		t.Errorf("middle threads = %d,%d, want both on pipeline 1", m[0], m[3])
	}
	if m[2] != 2 {
		t.Errorf("dirtiest thread on pipeline %d, want the first M2 (2)", m[2])
	}
}

func TestHeuristicNoSpareContexts(t *testing.T) {
	// 3M4 with 6 threads: contexts == threads, step 4 does not fire; the
	// widest pipeline takes two threads.
	cfg := config.MustParse("3M4")
	misses := []uint64{1, 2, 3, 4, 5, 6}
	m, err := Heuristic(cfg, misses)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cfg, m); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, p := range m {
		counts[p]++
	}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("distribution = %v, want 2 per pipeline", counts)
	}
	// Adjacent threads in miss order share pipelines (paper: "adjacent
	// applications in the list T ... could share a single pipeline").
	if m[0] != m[1] || m[2] != m[3] || m[4] != m[5] {
		t.Errorf("mapping = %v: adjacent threads must share", m)
	}
}

func TestHeuristicMonolithic(t *testing.T) {
	cfg := config.MustParse("M8")
	m, err := Heuristic(cfg, []uint64{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 0 || m[1] != 0 {
		t.Errorf("monolithic mapping = %v", m)
	}
}

func TestHeuristicErrors(t *testing.T) {
	if _, err := Heuristic(config.MustParse("M8"), nil); err == nil {
		t.Error("no threads must fail")
	}
	// M2 alone holds one context.
	cfg := config.NewMicroarch(config.M2)
	if _, err := Heuristic(cfg, []uint64{1, 2}); err == nil {
		t.Error("more threads than contexts must fail")
	}
}

func TestHeuristicDeterministicOnTies(t *testing.T) {
	cfg := config.MustParse("2M4+2M2")
	a, err := Heuristic(cfg, []uint64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Heuristic(cfg, []uint64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tied misses produced nondeterministic mapping")
		}
	}
}

func TestEnumerateSmall(t *testing.T) {
	// 2 threads on 2M4+2M2: pipelines (M4a M4b M2a M2b). Distinct
	// placements up to same-model symmetry:
	//   both on one M4; split across the M4s; one per M2... enumerate and
	//   sanity check count and validity.
	cfg := config.MustParse("2M4+2M2")
	ms := Enumerate(cfg, 2)
	if len(ms) == 0 {
		t.Fatal("no mappings")
	}
	for _, m := range ms {
		if err := Validate(cfg, m); err != nil {
			t.Errorf("invalid enumerated mapping %v: %v", m, err)
		}
	}
	// Symmetry dedup: {t0,t1 on M4a} and {t0,t1 on M4b} are one mapping.
	// Raw assignments: both-same-M4 (2) → 1; t0,t1 on different M4s (2
	// ordered) → 1; one on M4, one on M2 (2×2×2=8 ordered) → 2 (which
	// thread rides the M4); both on M2s (2 ordered) → 1; total 5.
	if len(ms) != 5 {
		for _, m := range ms {
			t.Logf("mapping %v", m)
		}
		t.Errorf("enumerated %d mappings, want 5", len(ms))
	}
}

func TestEnumerateMonolithic(t *testing.T) {
	ms := Enumerate(config.MustParse("M8"), 3)
	if len(ms) != 1 {
		t.Errorf("monolithic enumeration = %d mappings, want 1", len(ms))
	}
}

func TestEnumerateCapacityEdge(t *testing.T) {
	if ms := Enumerate(config.MustParse("M8"), 5); ms != nil {
		t.Error("5 threads on 4 contexts must enumerate to nil")
	}
	if ms := Enumerate(config.MustParse("M8"), 0); ms != nil {
		t.Error("0 threads must enumerate to nil")
	}
}

func TestEnumerateIncludesHeuristic(t *testing.T) {
	// The heuristic's result must appear in the enumeration (up to
	// symmetry), for every evaluated multipipeline config and size.
	for _, name := range []string{"3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"} {
		cfg := config.MustParse(name)
		for _, n := range []int{2, 4} {
			misses := make([]uint64, n)
			for i := range misses {
				misses[i] = uint64(i * 100)
			}
			hm, err := Heuristic(cfg, misses)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, n, err)
			}
			sig := canonical(cfg, hm)
			found := false
			for _, m := range Enumerate(cfg, n) {
				if canonical(cfg, m) == sig {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s/%d: heuristic mapping %v not in enumeration", name, n, hm)
			}
		}
	}
}

func TestEnumerateSixThreads(t *testing.T) {
	cfg := config.MustParse("1M6+2M4+2M2")
	ms := Enumerate(cfg, 6)
	if len(ms) == 0 {
		t.Fatal("no mappings for 6 threads")
	}
	for _, m := range ms {
		if err := Validate(cfg, m); err != nil {
			t.Fatalf("invalid mapping: %v", err)
		}
	}
	t.Logf("1M6+2M4+2M2 with 6 threads: %d distinct mappings", len(ms))
}

// Property: every enumerated mapping validates, and enumeration is
// duplicate-free under the canonical signature.
func TestEnumerateProperty(t *testing.T) {
	configs := []string{"3M4", "2M4+2M2", "3M4+2M2"}
	f := func(pick, rawN uint8) bool {
		cfg := config.MustParse(configs[int(pick)%len(configs)])
		n := 1 + int(rawN)%4
		seen := map[string]bool{}
		for _, m := range Enumerate(cfg, n) {
			if Validate(cfg, m) != nil {
				return false
			}
			sig := canonical(cfg, m)
			if seen[sig] {
				return false
			}
			seen[sig] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMappingString(t *testing.T) {
	if got := (Mapping{0, 2, 1}).String(); got != "[0 2 1]" {
		t.Errorf("got %q", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Mapping{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("clone aliases original")
	}
}
