package mapping

import (
	"testing"
	"testing/quick"

	"hdsmt/internal/config"
)

func TestWidthFitSpreadsBeforeSharing(t *testing.T) {
	// 4 threads on 2M4+2M2: effective width per thread prefers M4(4),
	// M4(4), then M2(2) and M2(2) over doubling an M4 (4/2=2 ties with
	// M2/1=2; the tie breaks toward the wider pipeline... both score 2,
	// wider wins → second M4 doubles up). Verify no pipeline doubles while
	// an equally-good empty one remains, and the dirtiest thread lands
	// last.
	cfg := config.MustParse("2M4+2M2")
	misses := []uint64{10, 20, 30, 90000}
	m, err := WidthFit(cfg, misses)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cfg, m); err != nil {
		t.Fatal(err)
	}
	// Cleanest two threads take the two M4s.
	if m[0] == m[1] {
		t.Errorf("mapping %v: cleanest threads should spread across the M4s", m)
	}
	if cfg.Pipelines[m[0]].Width != 4 || cfg.Pipelines[m[1]].Width != 4 {
		t.Errorf("mapping %v: cleanest threads should get the wide pipelines", m)
	}
}

func TestWidthFitNeverStrandsCapacity(t *testing.T) {
	// Unlike §2.1's step 4, WidthFit keeps using a wide pipeline when its
	// per-thread width still beats the alternatives: 6 ILP threads on
	// 1M6+2M4+2M2 must fill the M6 with two threads (6/2=3 > 2/1=2).
	cfg := config.MustParse("1M6+2M4+2M2")
	misses := []uint64{1, 2, 3, 4, 5, 6}
	m, err := WidthFit(cfg, misses)
	if err != nil {
		t.Fatal(err)
	}
	onM6 := 0
	for _, p := range m {
		if cfg.Pipelines[p].Name == "M6" {
			onM6++
		}
	}
	if onM6 != 2 {
		t.Errorf("mapping %v: M6 holds %d threads, want 2", m, onM6)
	}
	// No thread on an M2 while... with 6 threads on (2,2,2,1,1) contexts,
	// filling M6+2×M4 covers all 6; the M2s must stay empty.
	for _, p := range m {
		if cfg.Pipelines[p].Name == "M2" {
			t.Errorf("mapping %v: thread stranded on an M2", m)
		}
	}
}

func TestWidthFitErrors(t *testing.T) {
	if _, err := WidthFit(config.MustParse("M8"), nil); err == nil {
		t.Error("no threads must fail")
	}
	cfg := config.NewMicroarch(config.M2)
	if _, err := WidthFit(cfg, []uint64{1, 2}); err == nil {
		t.Error("overflow must fail")
	}
}

// Property: WidthFit always yields a valid mapping and never leaves a
// pipeline pair where moving one thread from a doubled pipeline to an empty
// one would raise its per-thread width (local optimality of the greedy).
func TestWidthFitProperty(t *testing.T) {
	configs := []string{"3M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"}
	f := func(pick uint8, rawMisses []uint16) bool {
		cfg := config.MustParse(configs[int(pick)%len(configs)])
		n := len(rawMisses)
		if n == 0 || n > cfg.TotalContexts() {
			return true
		}
		misses := make([]uint64, n)
		for i, r := range rawMisses {
			misses[i] = uint64(r)
		}
		m, err := WidthFit(cfg, misses)
		if err != nil {
			return false
		}
		return Validate(cfg, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWidthFitDeterministic(t *testing.T) {
	cfg := config.MustParse("1M6+2M4+2M2")
	a, _ := WidthFit(cfg, []uint64{5, 5, 5, 5})
	b, _ := WidthFit(cfg, []uint64{5, 5, 5, 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
}
