// Package tshist keeps a short in-memory history of the telemetry
// registry so the serving daemon can answer rate and latency questions
// that a single /metrics scrape cannot: throughput over the last minute,
// p95 latency per job kind over the last five, and — built on those —
// multi-window SLO burn rates.
//
// A Sampler snapshots the registry on a fixed interval into a bounded
// ring of points. Windowed statistics are deltas between the newest
// point and the newest point at least the window's span older, so they
// need no per-observation storage: counters difference, histograms
// difference bucket-by-bucket (the bounds are fixed at registration,
// which is what makes the subtraction valid). Quantiles come from the
// delta histogram by linear interpolation within the bucket containing
// the rank — the same estimate Prometheus's histogram_quantile makes.
//
// Everything here is wall-clock by construction and therefore lives only
// behind /metrics, /metrics/history and /readyz — never in BENCH
// artifacts.
package tshist

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"hdsmt/internal/telemetry"
)

const (
	// DefaultInterval is the sampling period when the owner does not
	// choose: fine enough that a 1m window holds ~12 points.
	DefaultInterval = 5 * time.Second
	// DefaultCapacity bounds the ring: 512 points at 5s is ~42 minutes,
	// comfortably covering the longest (30m) window.
	DefaultCapacity = 512

	// SchemaVersion names the /metrics/history JSON layout so scripts can
	// refuse payloads they do not understand.
	SchemaVersion = "hdsmt-metrics-history/v1"
)

// Windows are the fixed lookback horizons history and SLO burn rates are
// computed over, shortest first. The names are the JSON keys.
var Windows = []struct {
	Name string
	Span time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"30m", 30 * time.Minute},
}

// Config sizes a Sampler.
type Config struct {
	// Interval between snapshots (<= 0 means DefaultInterval).
	Interval time.Duration
	// Capacity of the snapshot ring (<= 0 means DefaultCapacity).
	Capacity int
	// SLOs to evaluate each sample.
	SLOs []SLO
}

// point is one registry snapshot, flattened for delta arithmetic.
type point struct {
	at     time.Time
	vals   map[string]float64 // counters, keyed name+"\x00"+labelValue
	hists  map[string]telemetry.HistogramSnapshot
	gauges map[string]float64 // unlabeled plain gauges, keyed by name
}

func seriesKey(name, labelValue string) string { return name + "\x00" + labelValue }

// Sampler snapshots a registry into a bounded ring and serves windowed
// history and SLO status from it. Safe for concurrent use.
type Sampler struct {
	reg      *telemetry.Registry
	interval time.Duration
	capacity int
	slos     []SLO
	burn     *telemetry.GaugeVec
	breach   *telemetry.GaugeVec

	mu    sync.Mutex
	ring  []point
	head  int
	count int
}

// New builds a sampler over reg. The SLO burn-rate and breach gauges are
// registered immediately (value 0) so dashboards see the series before
// the first sample.
func New(reg *telemetry.Registry, cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	s := &Sampler{
		reg:      reg,
		interval: cfg.Interval,
		capacity: cfg.Capacity,
		slos:     append([]SLO(nil), cfg.SLOs...),
	}
	if reg != nil {
		s.burn = reg.GaugeVec(telemetry.MetricSLOBurnRate,
			"SLO error-budget burn rate per evaluation window (1 = burning exactly the budget)", "slo")
		s.breach = reg.GaugeVec(telemetry.MetricSLOBreach,
			"SLO alert level: 0 ok or no data, 1 warn, 2 page", "slo")
		for _, slo := range s.slos {
			for _, w := range Windows {
				s.burn.With(slo.Name + ":" + w.Name).Set(0)
			}
			s.breach.With(slo.Name).Set(0)
		}
	}
	return s
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Sample takes one snapshot now, appends it to the ring, and republishes
// the SLO gauges. The registry snapshot runs outside the sampler lock —
// gauge functions may themselves take locks.
func (s *Sampler) Sample() {
	s.push(capture(s.reg))
}

// push appends one point and republishes the SLO gauges; tests feed
// synthetic points through it to exercise window arithmetic with
// controlled clocks.
func (s *Sampler) push(p point) {
	s.mu.Lock()
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, p)
		s.count++
	} else {
		s.ring[s.head] = p
		s.head = (s.head + 1) % s.capacity
	}
	h := s.historyLocked()
	s.mu.Unlock()
	s.publish(h)
}

// Run samples on the configured interval until ctx is done. The first
// sample is immediate so history exists as soon as the daemon is up.
func (s *Sampler) Run(ctx context.Context) {
	s.Sample()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// capture flattens one registry snapshot.
func capture(reg *telemetry.Registry) point {
	p := point{
		at:     time.Now(),
		vals:   map[string]float64{},
		hists:  map[string]telemetry.HistogramSnapshot{},
		gauges: map[string]float64{},
	}
	if reg == nil {
		return p
	}
	for _, smp := range reg.Snapshot() {
		switch {
		case smp.Hist != nil:
			p.hists[seriesKey(smp.Name, smp.LabelValue)] = *smp.Hist
		case smp.Type == "counter":
			p.vals[seriesKey(smp.Name, smp.LabelValue)] = smp.Value
		case smp.Type == "gauge" && smp.Label == "" && smp.Pairs == nil:
			p.gauges[smp.Name] = smp.Value
		}
	}
	return p
}

// History is the /metrics/history payload: current gauges, windowed
// rates and quantiles per job kind, and SLO status.
type History struct {
	Schema          string                 `json:"schema"`
	IntervalSeconds float64                `json:"interval_seconds"`
	Samples         int                    `json:"samples"`
	Gauges          map[string]float64     `json:"gauges"`
	Windows         map[string]WindowStats `json:"windows"`
	SLOs            []SLOStatus            `json:"slos"`
}

// WindowStats are the delta statistics of one lookback window. Seconds
// is the span actually covered — shorter than the nominal window while
// the ring is still filling.
type WindowStats struct {
	Seconds      float64              `json:"seconds"`
	Requests     float64              `json:"requests"`
	ServerErrors float64              `json:"server_errors"`
	Availability float64              `json:"availability"` // non-5xx ratio; 1 with no traffic
	Kinds        map[string]KindStats `json:"kinds"`
}

// KindStats are one job kind's throughput and latency quantiles over a
// window, from the hdsmt_server_job_seconds{kind} histogram delta.
type KindStats struct {
	Count uint64  `json:"count"`
	Rate  float64 `json:"rate"` // jobs per second
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// History computes the current windowed view. Always non-nil maps, so
// the JSON shape is stable even before the first sample.
func (s *Sampler) History() History {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.historyLocked()
}

func (s *Sampler) historyLocked() History {
	h := History{
		Schema:          SchemaVersion,
		IntervalSeconds: s.interval.Seconds(),
		Samples:         s.count,
		Gauges:          map[string]float64{},
		Windows:         map[string]WindowStats{},
		SLOs:            []SLOStatus{},
	}
	if s.count == 0 {
		for _, w := range Windows {
			h.Windows[w.Name] = WindowStats{Kinds: map[string]KindStats{}}
		}
		for _, slo := range s.slos {
			h.SLOs = append(h.SLOs, noDataStatus(slo))
		}
		return h
	}
	latest := s.at(s.count - 1)
	for name, v := range latest.gauges {
		h.Gauges[name] = v
	}
	wins := map[string]WindowStats{}
	for _, w := range Windows {
		base := s.baseline(latest.at, w.Span)
		wins[w.Name] = windowStats(latest, base)
	}
	h.Windows = wins
	for _, slo := range s.slos {
		h.SLOs = append(h.SLOs, evaluate(slo, latest, func(span time.Duration) point {
			return s.baseline(latest.at, span)
		}))
	}
	return h
}

// at returns the i-th retained point, oldest first.
func (s *Sampler) at(i int) point { return s.ring[(s.head+i)%len(s.ring)] }

// baseline returns the newest retained point at least span older than
// now — or the oldest point if the ring is younger than the window, so a
// freshly started daemon reports over whatever span it has.
func (s *Sampler) baseline(now time.Time, span time.Duration) point {
	best := s.at(0)
	for i := s.count - 1; i >= 1; i-- {
		p := s.at(i)
		if now.Sub(p.at) >= span {
			return p
		}
	}
	return best
}

func windowStats(latest, base point) WindowStats {
	ws := WindowStats{
		Seconds:      latest.at.Sub(base.at).Seconds(),
		Availability: 1,
		Kinds:        map[string]KindStats{},
	}
	reqs, errs := responseDeltas(latest, base)
	ws.Requests, ws.ServerErrors = reqs, errs
	if reqs > 0 {
		ws.Availability = 1 - errs/reqs
	}
	prefix := seriesKey(telemetry.MetricServerJobSeconds, "")
	kinds := make([]string, 0, 4)
	for key := range latest.hists {
		if strings.HasPrefix(key, prefix) {
			kinds = append(kinds, key[len(prefix):])
		}
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		d := histDelta(latest, base, seriesKey(telemetry.MetricServerJobSeconds, kind))
		ks := KindStats{Count: d.total()}
		if ws.Seconds > 0 {
			ks.Rate = float64(ks.Count) / ws.Seconds
		}
		ks.P50 = d.quantile(0.50)
		ks.P95 = d.quantile(0.95)
		ks.P99 = d.quantile(0.99)
		ws.Kinds[kind] = ks
	}
	return ws
}

// responseDeltas returns (total, 5xx) HTTP responses between base and
// latest, summed over status classes.
func responseDeltas(latest, base point) (reqs, errs float64) {
	prefix := seriesKey(telemetry.MetricServerHTTPResponses, "")
	for key, v := range latest.vals {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		d := v - base.vals[key] // missing in base -> 0, counters only grow
		if d < 0 {
			d = 0
		}
		reqs += d
		if key[len(prefix):] == "5xx" {
			errs += d
		}
	}
	return reqs, errs
}

// deltaHist is the difference of two cumulative histogram snapshots of
// the same bucket layout.
type deltaHist struct {
	bounds []float64
	cum    []uint64 // cumulative counts, len(bounds)+1 (+Inf last)
}

func histDelta(latest, base point, key string) deltaHist {
	cur, ok := latest.hists[key]
	if !ok {
		return deltaHist{}
	}
	d := deltaHist{bounds: cur.Bounds, cum: make([]uint64, len(cur.Buckets))}
	prev, hasPrev := base.hists[key]
	for i, c := range cur.Buckets {
		var p uint64
		if hasPrev && i < len(prev.Buckets) {
			p = prev.Buckets[i]
		}
		if c > p {
			d.cum[i] = c - p
		}
	}
	return d
}

func (d deltaHist) total() uint64 {
	if len(d.cum) == 0 {
		return 0
	}
	return d.cum[len(d.cum)-1]
}

// quantile estimates the q-th quantile (0..1) of the delta by linear
// interpolation within the bucket containing the rank — the same
// estimate histogram_quantile makes. Observations in the +Inf bucket
// clamp to the highest finite bound. Returns 0 when the window is empty.
func (d deltaHist) quantile(q float64) float64 {
	total := d.total()
	if total == 0 || len(d.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	for i, cum := range d.cum {
		if float64(cum) < rank {
			continue
		}
		if i == len(d.bounds) { // +Inf bucket
			return d.bounds[len(d.bounds)-1]
		}
		lower := 0.0
		var below uint64
		if i > 0 {
			lower = d.bounds[i-1]
			below = d.cum[i-1]
		}
		inBucket := cum - below
		if inBucket == 0 {
			return d.bounds[i]
		}
		return lower + (d.bounds[i]-lower)*(rank-float64(below))/float64(inBucket)
	}
	return d.bounds[len(d.bounds)-1]
}

// countAtOrBelow returns how many delta observations fell at or below
// threshold, using the first bucket bound >= threshold (the histogram
// cannot resolve finer than its buckets; the result is the conservative
// bucketed count SLO evaluation documents).
func (d deltaHist) countAtOrBelow(threshold float64) uint64 {
	if len(d.cum) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(d.bounds, threshold)
	if i >= len(d.cum) {
		i = len(d.cum) - 1
	}
	return d.cum[i]
}
