package tshist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hdsmt/internal/telemetry"
)

// SLO declares one service-level objective evaluated against the
// sampler's windowed history. Two shapes exist:
//
//   - availability: Threshold 0. Good events are non-5xx HTTP responses;
//     the objective is the good ratio (0.999 = "three nines").
//   - latency: Threshold > 0 and Kind names a job kind. Good events are
//     jobs of that kind completing within Threshold seconds; the
//     objective is the good ratio (0.95 = "p95 under the threshold").
//
// Burn rate is the classic SRE quantity: the bad fraction over a window
// divided by the budget (1 - objective). Burn 1 spends the error budget
// exactly at its sustainable pace; burn 14.4 spends a 30-day budget in
// two days.
type SLO struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind,omitempty"`
	Objective float64 `json:"objective"`
	Threshold float64 `json:"threshold_seconds,omitempty"`
}

// Alerting thresholds, per the multi-window multi-burn-rate recipe: a
// page needs both the 5m and 1m windows burning fast (sustained AND
// still happening); a warn needs 30m and 5m burning moderately.
const (
	PageBurn = 14.4
	WarnBurn = 6.0
)

// AvailabilitySLO declares the service-wide non-5xx objective.
func AvailabilitySLO(objective float64) SLO {
	return SLO{Name: "availability", Objective: objective}
}

// LatencySLO declares that 95% of jobs of kind complete within
// threshold seconds.
func LatencySLO(kind string, threshold float64) SLO {
	return SLO{
		Name:      "latency-" + kind,
		Kind:      kind,
		Objective: 0.95,
		Threshold: threshold,
	}
}

// ParseLatencyTargets parses the -slo-latency flag form
// "kind=seconds[,kind=seconds...]" into LatencySLO declarations,
// deterministically ordered by kind.
func ParseLatencyTargets(spec string) ([]SLO, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	targets := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("tshist: bad latency target %q (want kind=seconds)", part)
		}
		sec, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || sec <= 0 {
			return nil, fmt.Errorf("tshist: bad latency target %q: seconds must be a positive number", part)
		}
		targets[kv[0]] = sec
	}
	kinds := make([]string, 0, len(targets))
	for k := range targets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	slos := make([]SLO, 0, len(kinds))
	for _, k := range kinds {
		slos = append(slos, LatencySLO(k, targets[k]))
	}
	return slos, nil
}

// BurnWindow is one window's burn-rate evaluation.
type BurnWindow struct {
	Events      float64 `json:"events"`
	BadFraction float64 `json:"bad_fraction"`
	Burn        float64 `json:"burn"`
}

// SLOStatus is one SLO's current evaluation across all windows.
// Status is "ok", "warn", "page", or "no-data" (no events in the 5m
// window — a silent service burns nothing). Breach is true for warn and
// page: the bit the acceptance test watches flip.
type SLOStatus struct {
	SLO
	Windows map[string]BurnWindow `json:"windows"`
	Status  string                `json:"status"`
	Breach  bool                  `json:"breach"`
}

func noDataStatus(slo SLO) SLOStatus {
	st := SLOStatus{SLO: slo, Windows: map[string]BurnWindow{}, Status: "no-data"}
	for _, w := range Windows {
		st.Windows[w.Name] = BurnWindow{}
	}
	return st
}

// evaluate computes one SLO's burn across all windows. baseline maps a
// window span to its delta base point (the sampler's ring lookup).
func evaluate(slo SLO, latest point, baseline func(time.Duration) point) SLOStatus {
	st := SLOStatus{SLO: slo, Windows: map[string]BurnWindow{}}
	budget := 1 - slo.Objective
	for _, w := range Windows {
		base := baseline(w.Span)
		events, bad := slo.eventCounts(latest, base)
		bw := BurnWindow{Events: events}
		if events > 0 {
			bw.BadFraction = bad / events
			if budget > 0 {
				bw.Burn = bw.BadFraction / budget
			}
		}
		st.Windows[w.Name] = bw
	}
	switch {
	case st.Windows["5m"].Events == 0:
		st.Status = "no-data"
	case st.Windows["5m"].Burn >= PageBurn && st.Windows["1m"].Burn >= PageBurn:
		st.Status, st.Breach = "page", true
	case st.Windows["30m"].Burn >= WarnBurn && st.Windows["5m"].Burn >= WarnBurn:
		st.Status, st.Breach = "warn", true
	default:
		st.Status = "ok"
	}
	return st
}

// eventCounts returns (total, bad) events between base and latest for
// this SLO's shape.
func (slo SLO) eventCounts(latest, base point) (events, bad float64) {
	if slo.Threshold <= 0 {
		reqs, errs := responseDeltas(latest, base)
		return reqs, errs
	}
	d := histDelta(latest, base, seriesKey(telemetry.MetricServerJobSeconds, slo.Kind))
	total := d.total()
	good := d.countAtOrBelow(slo.Threshold)
	return float64(total), float64(total - good)
}

// publish republishes the SLO gauges from a freshly computed history:
// hdsmt_slo_burn_rate{slo="name:window"} and
// hdsmt_slo_breach{slo="name"} (0 ok/no-data, 1 warn, 2 page). Plain
// gauges set here — not gauge functions — so scraping /metrics never
// re-enters the sampler.
func (s *Sampler) publish(h History) {
	if s.burn == nil {
		return
	}
	for _, st := range h.SLOs {
		for _, w := range Windows {
			s.burn.With(st.Name + ":" + w.Name).Set(st.Windows[w.Name].Burn)
		}
		level := 0.0
		switch st.Status {
		case "warn":
			level = 1
		case "page":
			level = 2
		}
		s.breach.With(st.Name).Set(level)
	}
}
