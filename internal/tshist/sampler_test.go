package tshist

import (
	"math"
	"testing"
	"time"

	"hdsmt/internal/telemetry"
)

// syntheticPoint builds a point with the given HTTP response counters
// and one sweep-kind latency histogram whose cumulative buckets are
// given (+Inf last, aligned with bounds+1).
func syntheticPoint(at time.Time, responses map[string]float64, bounds []float64, cum []uint64) point {
	p := point{at: at, vals: map[string]float64{}, hists: map[string]telemetry.HistogramSnapshot{}, gauges: map[string]float64{}}
	for class, v := range responses {
		p.vals[seriesKey(telemetry.MetricServerHTTPResponses, class)] = v
	}
	if bounds != nil {
		var count uint64
		if len(cum) > 0 {
			count = cum[len(cum)-1]
		}
		p.hists[seriesKey(telemetry.MetricServerJobSeconds, "sweep")] = telemetry.HistogramSnapshot{
			Bounds: bounds, Buckets: cum, Count: count,
		}
	}
	return p
}

func TestBaselinePicksNewestOldEnoughPoint(t *testing.T) {
	s := New(nil, Config{Interval: 10 * time.Second, Capacity: 16})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ { // points at t0, t0+10s, ..., t0+90s
		s.push(point{at: t0.Add(time.Duration(i) * 10 * time.Second)})
	}
	latest := s.at(s.count - 1) // t0+90s
	base := s.baseline(latest.at, time.Minute)
	if got := latest.at.Sub(base.at); got != time.Minute {
		t.Fatalf("1m baseline span = %v, want exactly 60s (the newest point >= 60s old)", got)
	}
	// A window longer than the ring's history falls back to the oldest point.
	base = s.baseline(latest.at, 30*time.Minute)
	if got := latest.at.Sub(base.at); got != 90*time.Second {
		t.Fatalf("30m baseline span = %v, want full retained span 90s", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 observations: 50 in (0, 0.1], 40 in (0.1, 0.2], 10 in +Inf.
	d := deltaHist{bounds: []float64{0.1, 0.2}, cum: []uint64{50, 90, 100}}
	if got := d.quantile(0.5); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.1 (rank 50 lands exactly on the first bound)", got)
	}
	// rank 95 is 45/40 of the way through the second bucket: 0.1 + 0.1*45/40... rank 95 > 90,
	// so it falls in the +Inf bucket and clamps to the highest finite bound.
	if got := d.quantile(0.95); got != 0.2 {
		t.Fatalf("p95 = %v, want clamp to 0.2 (+Inf bucket)", got)
	}
	// rank 80 in second bucket: 0.1 + 0.1*(80-50)/40 = 0.175.
	if got := d.quantile(0.8); math.Abs(got-0.175) > 1e-9 {
		t.Fatalf("p80 = %v, want 0.175 (linear interpolation)", got)
	}
	if got := (deltaHist{}).quantile(0.95); got != 0 {
		t.Fatalf("empty delta quantile = %v, want 0", got)
	}
}

func TestWindowStatsRatesAndKinds(t *testing.T) {
	s := New(nil, Config{Interval: 10 * time.Second, Capacity: 16})
	bounds := []float64{0.1, 0.5}
	t0 := time.Unix(2000, 0)
	s.push(syntheticPoint(t0, map[string]float64{"2xx": 100}, bounds, []uint64{10, 10, 10}))
	s.push(syntheticPoint(t0.Add(time.Minute), map[string]float64{"2xx": 160}, bounds, []uint64{40, 40, 40}))
	h := s.History()
	w := h.Windows["1m"]
	if w.Seconds != 60 {
		t.Fatalf("window covered %vs, want 60", w.Seconds)
	}
	if w.Requests != 60 || w.Availability != 1 {
		t.Fatalf("requests=%v availability=%v, want 60 and 1", w.Requests, w.Availability)
	}
	ks, ok := w.Kinds["sweep"]
	if !ok {
		t.Fatalf("window has no sweep kind: %+v", w.Kinds)
	}
	if ks.Count != 30 || math.Abs(ks.Rate-0.5) > 1e-9 {
		t.Fatalf("sweep count=%d rate=%v, want 30 jobs at 0.5/s", ks.Count, ks.Rate)
	}
}

func TestAvailabilitySLOPagesUnderErrorBurst(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(reg, Config{Interval: 10 * time.Second, Capacity: 64, SLOs: []SLO{AvailabilitySLO(0.999)}})
	t0 := time.Unix(3000, 0)
	// 10 minutes of clean traffic, then a burst where 10% of responses 5xx:
	// bad fraction 0.1 / budget 0.001 = burn 100 in every recent window.
	for i := 0; i <= 60; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Second)
		resp := map[string]float64{"2xx": float64(100 * i)}
		if i > 30 {
			resp["2xx"] = 100*30 + 90*float64(i-30)
			resp["5xx"] = 10 * float64(i-30)
		}
		s.push(syntheticPoint(at, resp, nil, nil))
	}
	h := s.History()
	if len(h.SLOs) != 1 {
		t.Fatalf("got %d SLO statuses, want 1", len(h.SLOs))
	}
	st := h.SLOs[0]
	if st.Status != "page" || !st.Breach {
		t.Fatalf("status=%q breach=%v, want page/true; windows=%+v", st.Status, st.Breach, st.Windows)
	}
	if b := st.Windows["1m"].Burn; math.Abs(b-100) > 1 {
		t.Fatalf("1m burn = %v, want ~100", b)
	}
	// The gauges must have flipped too.
	var burn1m, breach float64
	for _, smp := range reg.Snapshot() {
		switch {
		case smp.Name == telemetry.MetricSLOBurnRate && smp.LabelValue == "availability:1m":
			burn1m = smp.Value
		case smp.Name == telemetry.MetricSLOBreach && smp.LabelValue == "availability":
			breach = smp.Value
		}
	}
	if math.Abs(burn1m-100) > 1 || breach != 2 {
		t.Fatalf("gauges burn1m=%v breach=%v, want ~100 and 2 (page)", burn1m, breach)
	}
}

func TestLatencySLOCountsSlowJobsAsBad(t *testing.T) {
	s := New(nil, Config{Interval: 10 * time.Second, Capacity: 64, SLOs: []SLO{LatencySLO("sweep", 0.1)}})
	bounds := []float64{0.1, 0.5}
	t0 := time.Unix(4000, 0)
	// Every job lands in the (0.1, 0.5] bucket: 100% bad against a 0.1s
	// target, burn = 1.0/0.05 = 20 -> page.
	for i := 0; i <= 40; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Second)
		n := uint64(10 * i)
		s.push(syntheticPoint(at, nil, bounds, []uint64{0, n, n}))
	}
	st := s.History().SLOs[0]
	if st.Status != "page" || !st.Breach {
		t.Fatalf("status=%q breach=%v, want page/true; windows=%+v", st.Status, st.Breach, st.Windows)
	}
	if bf := st.Windows["5m"].BadFraction; math.Abs(bf-1) > 1e-9 {
		t.Fatalf("5m bad fraction = %v, want 1.0", bf)
	}
}

func TestSLONoDataAndEmptyHistoryShape(t *testing.T) {
	s := New(nil, Config{SLOs: []SLO{AvailabilitySLO(0.999)}})
	h := s.History()
	if h.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", h.Schema, SchemaVersion)
	}
	if h.Samples != 0 || len(h.Windows) != len(Windows) {
		t.Fatalf("empty history: samples=%d windows=%d, want 0 and %d", h.Samples, len(h.Windows), len(Windows))
	}
	if st := h.SLOs[0]; st.Status != "no-data" || st.Breach {
		t.Fatalf("empty history SLO status = %q breach=%v, want no-data/false", st.Status, st.Breach)
	}
}

func TestParseLatencyTargets(t *testing.T) {
	slos, err := ParseLatencyTargets("sweep=0.25, search=1.5")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(slos) != 2 || slos[0].Kind != "search" || slos[1].Kind != "sweep" {
		t.Fatalf("got %+v, want search then sweep (sorted)", slos)
	}
	if slos[1].Threshold != 0.25 || slos[1].Objective != 0.95 {
		t.Fatalf("sweep SLO = %+v, want threshold 0.25 objective 0.95", slos[1])
	}
	if got, err := ParseLatencyTargets(""); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"sweep", "sweep=", "sweep=-1", "=0.5", "sweep=abc"} {
		if _, err := ParseLatencyTargets(bad); err == nil {
			t.Fatalf("ParseLatencyTargets(%q) accepted, want error", bad)
		}
	}
}

func TestSamplerCapturesLiveRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("hdsmt_engine_queue_depth", "x").Set(7)
	hv := reg.HistogramVec(telemetry.MetricServerJobSeconds, "x", "kind", nil)
	hv.With("sweep").Observe(0.01)
	cv := reg.CounterVec(telemetry.MetricServerHTTPResponses, "x", "class")
	cv.With("2xx").Add(5)
	s := New(reg, Config{Interval: time.Second, Capacity: 8})
	s.Sample()
	h := s.History()
	if h.Samples != 1 {
		t.Fatalf("samples = %d, want 1", h.Samples)
	}
	if h.Gauges["hdsmt_engine_queue_depth"] != 7 {
		t.Fatalf("gauges = %+v, want queue depth 7", h.Gauges)
	}
	// One point means every window covers 0 seconds but the kind is visible.
	if _, ok := h.Windows["1m"].Kinds["sweep"]; !ok {
		t.Fatalf("1m window kinds = %+v, want sweep present", h.Windows["1m"].Kinds)
	}
}
