package cache

import (
	"math/rand"
	"testing"
)

// scanTLB is the original O(entries) TLB implementation, kept as the
// behavioural reference for the O(1) indexed implementation: same hit and
// same victim on every access.
type scanTLB struct {
	entries   []way
	pageShift uint
	stamp     uint64
}

func (t *scanTLB) access(addr uint64) bool {
	t.stamp++
	page := addr >> t.pageShift
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.tag == page {
			e.lru = t.stamp
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.entries[victim] = way{tag: page, valid: true, lru: t.stamp}
	return false
}

// TestTLBMatchesScanReference drives the indexed TLB and the scan
// reference with identical random streams — mixes of hot pages, cold
// sweeps and phase changes — and requires the hit/miss sequence to match
// exactly. Identical hits with identical replacement imply identical
// resident sets, so this pins full behavioural equivalence.
func TestTLBMatchesScanReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const entries = 48
		fast := NewTLB(entries, DefaultPageBytes)
		ref := &scanTLB{entries: make([]way, entries), pageShift: fast.pageShift}
		for n := 0; n < 50_000; n++ {
			var addr uint64
			switch rng.Intn(3) {
			case 0: // hot set, mostly hits
				addr = uint64(rng.Intn(entries/2)) << fast.pageShift
			case 1: // warm set around capacity, churn
				addr = uint64(rng.Intn(entries*2)) << fast.pageShift
			default: // cold sweep
				addr = uint64(rng.Intn(1 << 20)) * 64
			}
			if got, want := fast.Access(addr), ref.access(addr); got != want {
				t.Fatalf("seed %d access %d addr %#x: hit=%v, reference=%v", seed, n, addr, got, want)
			}
		}
		if fast.stats.Accesses != 50_000 {
			t.Fatalf("accesses = %d", fast.stats.Accesses)
		}
	}
}
