package cache

import "fmt"

// TLB is a fully associative translation lookaside buffer with true-LRU
// replacement (paper Table 1: 48-entry I-TLB, 128-entry D-TLB, 300-cycle
// miss penalty).
type TLB struct {
	entries   []way
	pageShift uint
	stamp     uint64
	stats     Stats
}

// DefaultPageBytes is the page size used for translations.
const DefaultPageBytes = 8192

// NewTLB builds a TLB with the given number of entries and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("cache: TLB entries %d must be positive", entries))
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("cache: page size %d must be a positive power of two", pageBytes))
	}
	t := &TLB{entries: make([]way, entries)}
	for ps := pageBytes; ps > 1; ps >>= 1 {
		t.pageShift++
	}
	return t
}

// Stats returns a copy of the accumulated statistics.
func (t *TLB) Stats() Stats { return t.stats }

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = way{}
	}
	t.stamp = 0
	t.stats = Stats{}
}

// Access translates addr, reporting whether the page was resident and
// allocating the entry on a miss.
func (t *TLB) Access(addr uint64) (hit bool) {
	t.stats.Accesses++
	t.stamp++
	page := addr >> t.pageShift
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.tag == page {
			e.lru = t.stamp
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.stats.Misses++
	t.entries[victim] = way{tag: page, valid: true, lru: t.stamp}
	return false
}

// Probe reports residency without modifying state.
func (t *TLB) Probe(addr uint64) bool {
	page := addr >> t.pageShift
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].tag == page {
			return true
		}
	}
	return false
}
