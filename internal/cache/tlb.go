package cache

import (
	"fmt"
	"math/bits"
)

// TLB is a fully associative translation lookaside buffer with true-LRU
// replacement (paper Table 1: 48-entry I-TLB, 128-entry D-TLB, 300-cycle
// miss penalty).
//
// Lookup is O(1): a page→entry index plus an intrusive MRU⇄LRU list
// replace the naive scan of every entry on every access (the TLB is
// consulted by each fetch, load and store, so the scan dominated the
// simulator's memory-access cost). Replacement picks exactly the victim
// the scan-based reference picked: while the TLB is filling, the
// highest-index invalid entry; once full, the least recently used entry
// (stamps are unique, so LRU order is total and the list tail is the
// unique minimum-stamp entry).
type TLB struct {
	entries    []way
	prev, next []int32 // intrusive LRU list links
	head, tail int32   // most / least recently used; -1 when empty
	fillNext   int32   // next invalid entry to allocate, descending
	pageShift  uint
	stamp      uint64
	stats      Stats

	// Open-addressing page index (linear probing, backward-shift
	// deletion): resident page -> entry index. At most len(entries) keys
	// live in a 4x-sized power-of-two table, so probes are short and the
	// lookup — one per fetch, load and store — stays allocation- and
	// indirection-free (a Go map's hashing dominated this path).
	keys      []uint64
	vals      []int32 // -1 = empty slot
	imask     uint32
	hashShift uint
}

// DefaultPageBytes is the page size used for translations.
const DefaultPageBytes = 8192

// NewTLB builds a TLB with the given number of entries and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("cache: TLB entries %d must be positive", entries))
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("cache: page size %d must be a positive power of two", pageBytes))
	}
	t := &TLB{
		entries: make([]way, entries),
		prev:    make([]int32, entries),
		next:    make([]int32, entries),
	}
	for ps := pageBytes; ps > 1; ps >>= 1 {
		t.pageShift++
	}
	t.reset()
	return t
}

// Stats returns a copy of the accumulated statistics.
func (t *TLB) Stats() Stats { return t.stats }

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = way{}
	}
	t.stamp = 0
	t.stats = Stats{}
	t.reset()
}

func (t *TLB) reset() {
	size := 4
	for size < 4*len(t.entries) {
		size <<= 1
	}
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.imask = uint32(size - 1)
	t.hashShift = 64 - uint(bits.TrailingZeros(uint(size)))
	t.head, t.tail = -1, -1
	t.fillNext = int32(len(t.entries)) - 1
}

// hashPage spreads page numbers over the index table (Fibonacci hashing).
func (t *TLB) hashPage(page uint64) uint32 {
	return uint32((page * 0x9e3779b97f4a7c15) >> t.hashShift)
}

// lookup returns the entry index holding page, or -1.
func (t *TLB) lookup(page uint64) int32 {
	i := t.hashPage(page)
	for {
		v := t.vals[i]
		if v < 0 {
			return -1
		}
		if t.keys[i] == page {
			return v
		}
		i = (i + 1) & t.imask
	}
}

// insert adds page -> e; the caller guarantees page is absent and the
// table has room (it holds at most len(entries) keys in 4x slots).
func (t *TLB) insert(page uint64, e int32) {
	i := t.hashPage(page)
	for t.vals[i] >= 0 {
		i = (i + 1) & t.imask
	}
	t.keys[i] = page
	t.vals[i] = e
}

// remove deletes page from the index using backward-shift deletion, which
// keeps probe chains contiguous without tombstones.
func (t *TLB) remove(page uint64) {
	i := t.hashPage(page)
	for {
		if t.vals[i] < 0 {
			return // not present (cannot happen for resident pages)
		}
		if t.keys[i] == page {
			break
		}
		i = (i + 1) & t.imask
	}
	j := i
	for {
		j = (j + 1) & t.imask
		if t.vals[j] < 0 {
			break
		}
		h := t.hashPage(t.keys[j])
		// Shift j back into i unless j's natural position lies cyclically
		// after i (then the chain from h to j does not pass through i).
		if (j-h)&t.imask >= (j-i)&t.imask {
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.vals[i] = -1
}

// pushHead links entry i (not currently in the list) at the MRU end.
func (t *TLB) pushHead(i int32) {
	t.prev[i] = -1
	t.next[i] = t.head
	if t.head != -1 {
		t.prev[t.head] = i
	}
	t.head = i
	if t.tail == -1 {
		t.tail = i
	}
}

// moveToHead relinks an in-list entry at the MRU end.
func (t *TLB) moveToHead(i int32) {
	if t.head == i {
		return
	}
	if t.prev[i] != -1 {
		t.next[t.prev[i]] = t.next[i]
	}
	if t.next[i] != -1 {
		t.prev[t.next[i]] = t.prev[i]
	}
	if t.tail == i {
		t.tail = t.prev[i]
	}
	t.pushHead(i)
}

// Access translates addr, reporting whether the page was resident and
// allocating the entry on a miss.
func (t *TLB) Access(addr uint64) (hit bool) {
	t.stats.Accesses++
	t.stamp++
	page := addr >> t.pageShift
	if i := t.lookup(page); i >= 0 {
		t.entries[i].lru = t.stamp
		t.moveToHead(i)
		return true
	}
	t.stats.Misses++
	var victim int32
	if t.fillNext >= 0 {
		victim = t.fillNext
		t.fillNext--
		t.pushHead(victim)
	} else {
		victim = t.tail
		t.remove(t.entries[victim].tag)
		t.moveToHead(victim)
	}
	t.entries[victim] = way{tag: page, valid: true, lru: t.stamp}
	t.insert(page, victim)
	return false
}

// Probe reports residency without modifying state.
func (t *TLB) Probe(addr uint64) bool {
	return t.lookup(addr>>t.pageShift) >= 0
}
