// Package cache models the memory subsystem the paper's configurations
// share across all pipelines: banked set-associative L1 instruction and data
// caches, a unified L2, instruction/data TLBs and main memory (paper
// Table 1). Latencies are cycle counts returned to the timing model; the
// caches themselves are stateful so that the reference streams of co-running
// threads genuinely interfere, which is what the MEM workloads stress.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	Banks     int // simultaneous accesses per cycle (one per bank)
}

// check validates the geometry.
func (c *Config) check() error {
	switch {
	case c.SizeBytes <= 0, c.LineBytes <= 0, c.Assoc <= 0, c.Banks <= 0:
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, *c)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("cache %s: bank count %d not a power of two", c.Name, c.Banks)
	}
	return nil
}

// way is one cache line's bookkeeping.
type way struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a banked set-associative cache with true-LRU replacement.
// It models tags only (trace-driven timing simulation needs no data).
type Cache struct {
	cfg       Config
	sets      [][]way
	setMask   uint64
	bankMask  uint64
	lineShift uint
	stamp     uint64

	// Bank accounting: the cycle each bank last served, and how many
	// accesses it has served that cycle (1 per bank per cycle).
	bankCycle []uint64
	bankUsed  []int

	stats Stats
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses      uint64
	Misses        uint64
	BankConflicts uint64
}

// MissRate returns misses per access, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// New constructs a cache; it panics on invalid geometry (configurations are
// compile-time constants in this simulator, so a bad one is a programming
// error, not an input error).
func New(cfg Config) *Cache {
	if err := cfg.check(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]way, nsets),
		setMask:   uint64(nsets - 1),
		bankMask:  uint64(cfg.Banks - 1),
		bankCycle: make([]uint64, cfg.Banks),
		bankUsed:  make([]int, cfg.Banks),
	}
	// One backing array for all sets: thousands of tiny per-set
	// allocations would otherwise dominate processor construction.
	backing := make([]way, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	for i := range c.bankCycle {
		c.bankCycle[i] = 0
		c.bankUsed[i] = 0
	}
	c.stamp = 0
	c.stats = Stats{}
}

// split returns the set index and tag of addr. The full line address is used
// as the tag, which is simpler than masking and equally correct.
func (c *Cache) split(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.lineShift
	return line & c.setMask, line
}

// Access looks up addr at the given cycle, allocating on miss, and reports
// whether it hit plus any extra delay cycles from bank contention. Banks are
// selected by line address; a bank serves one access per cycle, and a second
// access in the same cycle is delayed by one cycle (the paper's 8-banked
// caches make this rare).
func (c *Cache) Access(addr uint64, cycle uint64) (hit bool, extraDelay int) {
	c.stats.Accesses++
	c.stamp++

	line := addr >> c.lineShift
	bank := line & c.bankMask
	if c.bankCycle[bank] == cycle {
		c.bankUsed[bank]++
		extraDelay = c.bankUsed[bank] - 1
		if extraDelay > 0 {
			c.stats.BankConflicts++
		}
	} else {
		c.bankCycle[bank] = cycle
		c.bankUsed[bank] = 1
	}

	set, tag := c.split(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.stamp
			return true, extraDelay
		}
	}
	c.stats.Misses++
	// Allocate: victim = invalid way, else least recently used.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = way{tag: tag, valid: true, lru: c.stamp}
	return false, extraDelay
}

// Probe looks up addr without modifying cache state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.split(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}
