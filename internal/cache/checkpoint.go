package cache

import (
	"encoding/binary"
	"fmt"
)

// Checkpoint states for the sampled-simulation functional warmer: caches
// and TLBs snapshot their full tag/LRU/index state into plain structs that
// restore bit-identically and round-trip through a deterministic
// little-endian binary encoding. Snapshots are deep copies.

// CacheState is a bit-exact snapshot of a Cache. Ways holds the sets
// flattened in set-major order.
type CacheState struct {
	Ways      []way
	Assoc     int
	Stamp     uint64
	BankCycle []uint64
	BankUsed  []int
	Stats     Stats
}

// Snapshot captures the cache's tags, LRU stamps, bank accounting, and
// statistics.
func (c *Cache) Snapshot() *CacheState {
	s := &CacheState{
		Ways:      make([]way, 0, len(c.sets)*c.cfg.Assoc),
		Assoc:     c.cfg.Assoc,
		Stamp:     c.stamp,
		BankCycle: append([]uint64(nil), c.bankCycle...),
		BankUsed:  append([]int(nil), c.bankUsed...),
		Stats:     c.stats,
	}
	for _, set := range c.sets {
		s.Ways = append(s.Ways, set...)
	}
	return s
}

// Restore overwrites the cache with a previously taken snapshot; geometry
// must match.
func (c *Cache) Restore(s *CacheState) {
	if s.Assoc != c.cfg.Assoc || len(s.Ways) != len(c.sets)*c.cfg.Assoc ||
		len(s.BankCycle) != len(c.bankCycle) || len(s.BankUsed) != len(c.bankUsed) {
		panic(fmt.Sprintf("cache %s: snapshot geometry mismatch", c.cfg.Name))
	}
	for i, set := range c.sets {
		copy(set, s.Ways[i*c.cfg.Assoc:(i+1)*c.cfg.Assoc])
	}
	c.stamp = s.Stamp
	copy(c.bankCycle, s.BankCycle)
	copy(c.bankUsed, s.BankUsed)
	c.stats = s.Stats
}

// appendWay / decodeWay are the shared 17-byte way encoding.
func appendWay(dst []byte, w way) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, w.tag)
	dst = binary.LittleEndian.AppendUint64(dst, w.lru)
	v := byte(0)
	if w.valid {
		v = 1
	}
	return append(dst, v)
}

func decodeWay(src []byte) (way, []byte) {
	w := way{
		tag:   binary.LittleEndian.Uint64(src),
		lru:   binary.LittleEndian.Uint64(src[8:]),
		valid: src[16] != 0,
	}
	return w, src[17:]
}

const wayBytes = 17

func appendStats(dst []byte, s Stats) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.Accesses)
	dst = binary.LittleEndian.AppendUint64(dst, s.Misses)
	return binary.LittleEndian.AppendUint64(dst, s.BankConflicts)
}

func decodeStats(src []byte) (Stats, []byte) {
	s := Stats{
		Accesses:      binary.LittleEndian.Uint64(src),
		Misses:        binary.LittleEndian.Uint64(src[8:]),
		BankConflicts: binary.LittleEndian.Uint64(src[16:]),
	}
	return s, src[24:]
}

// MarshalBinary encodes the state deterministically (fixed-width
// little-endian, fields in declaration order).
func (s *CacheState) MarshalBinary() ([]byte, error) {
	dst := make([]byte, 0, 16+len(s.Ways)*wayBytes+12*len(s.BankCycle)+40)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Ways)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Assoc))
	for _, w := range s.Ways {
		dst = appendWay(dst, w)
	}
	dst = binary.LittleEndian.AppendUint64(dst, s.Stamp)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.BankCycle)))
	for i := range s.BankCycle {
		dst = binary.LittleEndian.AppendUint64(dst, s.BankCycle[i])
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.BankUsed[i]))
	}
	return appendStats(dst, s.Stats), nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (s *CacheState) UnmarshalBinary(src []byte) error {
	if len(src) < 8 {
		return fmt.Errorf("cache: cache state truncated (%d bytes)", len(src))
	}
	n := int(binary.LittleEndian.Uint32(src))
	s.Assoc = int(binary.LittleEndian.Uint32(src[4:]))
	src = src[8:]
	if len(src) < n*wayBytes+12 {
		return fmt.Errorf("cache: cache state truncated for %d ways", n)
	}
	s.Ways = make([]way, n)
	for i := range s.Ways {
		s.Ways[i], src = decodeWay(src)
	}
	s.Stamp = binary.LittleEndian.Uint64(src)
	banks := int(binary.LittleEndian.Uint32(src[8:]))
	src = src[12:]
	if len(src) != banks*16+24 {
		return fmt.Errorf("cache: cache state has %d bytes for %d banks", len(src), banks)
	}
	s.BankCycle = make([]uint64, banks)
	s.BankUsed = make([]int, banks)
	for i := 0; i < banks; i++ {
		s.BankCycle[i] = binary.LittleEndian.Uint64(src)
		s.BankUsed[i] = int(binary.LittleEndian.Uint64(src[8:]))
		src = src[16:]
	}
	s.Stats, _ = decodeStats(src)
	return nil
}

// TLBState is a bit-exact snapshot of a TLB, including the intrusive LRU
// list and the open-addressing page index, so a restore reproduces the
// exact victim sequence and probe chains of the original.
type TLBState struct {
	Entries    []way
	Prev, Next []int32
	Head, Tail int32
	FillNext   int32
	Stamp      uint64
	Keys       []uint64
	Vals       []int32
	Stats      Stats
}

// Snapshot captures the TLB's full state.
func (t *TLB) Snapshot() *TLBState {
	return &TLBState{
		Entries:  append([]way(nil), t.entries...),
		Prev:     append([]int32(nil), t.prev...),
		Next:     append([]int32(nil), t.next...),
		Head:     t.head,
		Tail:     t.tail,
		FillNext: t.fillNext,
		Stamp:    t.stamp,
		Keys:     append([]uint64(nil), t.keys...),
		Vals:     append([]int32(nil), t.vals...),
		Stats:    t.stats,
	}
}

// Restore overwrites the TLB with a previously taken snapshot; geometry
// must match.
func (t *TLB) Restore(s *TLBState) {
	if len(s.Entries) != len(t.entries) || len(s.Keys) != len(t.keys) {
		panic("cache: TLB snapshot geometry mismatch")
	}
	copy(t.entries, s.Entries)
	copy(t.prev, s.Prev)
	copy(t.next, s.Next)
	t.head, t.tail = s.Head, s.Tail
	t.fillNext = s.FillNext
	t.stamp = s.Stamp
	copy(t.keys, s.Keys)
	copy(t.vals, s.Vals)
	t.stats = s.Stats
}

// MarshalBinary encodes the state deterministically.
func (s *TLBState) MarshalBinary() ([]byte, error) {
	dst := make([]byte, 0, 8+len(s.Entries)*(wayBytes+8)+len(s.Keys)*12+64)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Entries)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Keys)))
	for _, w := range s.Entries {
		dst = appendWay(dst, w)
	}
	for i := range s.Prev {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Prev[i]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Next[i]))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Head))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Tail))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.FillNext))
	dst = binary.LittleEndian.AppendUint64(dst, s.Stamp)
	for i := range s.Keys {
		dst = binary.LittleEndian.AppendUint64(dst, s.Keys[i])
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Vals[i]))
	}
	return appendStats(dst, s.Stats), nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (s *TLBState) UnmarshalBinary(src []byte) error {
	if len(src) < 8 {
		return fmt.Errorf("cache: TLB state truncated (%d bytes)", len(src))
	}
	n := int(binary.LittleEndian.Uint32(src))
	slots := int(binary.LittleEndian.Uint32(src[4:]))
	src = src[8:]
	if len(src) != n*(wayBytes+8)+20+slots*12+24 {
		return fmt.Errorf("cache: TLB state has %d bytes for %d entries / %d slots", len(src), n, slots)
	}
	s.Entries = make([]way, n)
	for i := range s.Entries {
		s.Entries[i], src = decodeWay(src)
	}
	s.Prev = make([]int32, n)
	s.Next = make([]int32, n)
	for i := 0; i < n; i++ {
		s.Prev[i] = int32(binary.LittleEndian.Uint32(src))
		s.Next[i] = int32(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
	}
	s.Head = int32(binary.LittleEndian.Uint32(src))
	s.Tail = int32(binary.LittleEndian.Uint32(src[4:]))
	s.FillNext = int32(binary.LittleEndian.Uint32(src[8:]))
	s.Stamp = binary.LittleEndian.Uint64(src[12:])
	src = src[20:]
	s.Keys = make([]uint64, slots)
	s.Vals = make([]int32, slots)
	for i := 0; i < slots; i++ {
		s.Keys[i] = binary.LittleEndian.Uint64(src)
		s.Vals[i] = int32(binary.LittleEndian.Uint32(src[8:]))
		src = src[12:]
	}
	s.Stats, _ = decodeStats(src)
	return nil
}

// HierarchyState is a bit-exact snapshot of a Hierarchy: every cache level
// plus both TLBs. It is the memory-side half of a sampling interval
// checkpoint.
type HierarchyState struct {
	L1I, L1D, L2 *CacheState
	ITLB, DTLB   *TLBState
}

// Snapshot captures the full hierarchy.
func (h *Hierarchy) Snapshot() *HierarchyState {
	return &HierarchyState{
		L1I:  h.L1I.Snapshot(),
		L1D:  h.L1D.Snapshot(),
		L2:   h.L2.Snapshot(),
		ITLB: h.ITLB.Snapshot(),
		DTLB: h.DTLB.Snapshot(),
	}
}

// Restore overwrites the hierarchy with a previously taken snapshot.
func (h *Hierarchy) Restore(s *HierarchyState) {
	h.L1I.Restore(s.L1I)
	h.L1D.Restore(s.L1D)
	h.L2.Restore(s.L2)
	h.ITLB.Restore(s.ITLB)
	h.DTLB.Restore(s.DTLB)
}

// MarshalBinary encodes each component with a length prefix.
func (s *HierarchyState) MarshalBinary() ([]byte, error) {
	var dst []byte
	for _, m := range []interface{ MarshalBinary() ([]byte, error) }{s.L1I, s.L1D, s.L2, s.ITLB, s.DTLB} {
		b, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
		dst = append(dst, b...)
	}
	return dst, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (s *HierarchyState) UnmarshalBinary(src []byte) error {
	s.L1I, s.L1D, s.L2 = &CacheState{}, &CacheState{}, &CacheState{}
	s.ITLB, s.DTLB = &TLBState{}, &TLBState{}
	for _, u := range []interface{ UnmarshalBinary([]byte) error }{s.L1I, s.L1D, s.L2, s.ITLB, s.DTLB} {
		if len(src) < 4 {
			return fmt.Errorf("cache: hierarchy state truncated")
		}
		n := int(binary.LittleEndian.Uint32(src))
		src = src[4:]
		if len(src) < n {
			return fmt.Errorf("cache: hierarchy state component truncated")
		}
		if err := u.UnmarshalBinary(src[:n]); err != nil {
			return err
		}
		src = src[n:]
	}
	if len(src) != 0 {
		return fmt.Errorf("cache: hierarchy state has %d trailing bytes", len(src))
	}
	return nil
}
