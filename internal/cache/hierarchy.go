package cache

// Params carries the latency constants of paper Table 1.
type Params struct {
	L1HitLatency  int // L1 latency: 3 cycles
	L1MissPenalty int // additional cycles for an L1 miss that hits L2: 22
	L2Latency     int // L2 array access time (used by FLUSH's miss detector): 12
	MemLatency    int // additional cycles for an L2 miss: 250
	TLBMissCycles int // penalty added on a TLB miss: 300
	PageBytes     int
}

// DefaultParams returns the paper's Table 1 latencies.
func DefaultParams() Params {
	return Params{
		L1HitLatency:  3,
		L1MissPenalty: 22,
		L2Latency:     12,
		MemLatency:    250,
		TLBMissCycles: 300,
		PageBytes:     DefaultPageBytes,
	}
}

// DefaultL1I, DefaultL1D and DefaultL2 return the paper's cache geometries.
func DefaultL1I() Config {
	return Config{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, Banks: 8}
}

// DefaultL1D returns the 64KB 2-way 8-banked data cache configuration.
func DefaultL1D() Config {
	return Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, Banks: 8}
}

// DefaultL2 returns the 512KB 2-way 8-banked unified L2 configuration.
func DefaultL2() Config {
	return Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 2, Banks: 8}
}

// TLB geometries from Table 1.
const (
	DefaultITLBEntries = 48
	DefaultDTLBEntries = 128
)

// Hierarchy is the shared memory subsystem: split L1s, unified L2, TLBs.
// In both monolithic SMT and hdSMT all threads and all pipelines share it
// (paper §2: "all the pipelines share the memory subsystem — including L1
// caches").
type Hierarchy struct {
	Params Params
	L1I    *Cache
	L1D    *Cache
	L2     *Cache
	ITLB   *TLB
	DTLB   *TLB
}

// NewHierarchy assembles the default paper configuration.
func NewHierarchy() *Hierarchy {
	return NewHierarchyWith(DefaultParams(), DefaultL1I(), DefaultL1D(), DefaultL2())
}

// NewHierarchyWith assembles a hierarchy from explicit configurations.
func NewHierarchyWith(p Params, l1i, l1d, l2 Config) *Hierarchy {
	return &Hierarchy{
		Params: p,
		L1I:    New(l1i),
		L1D:    New(l1d),
		L2:     New(l2),
		ITLB:   NewTLB(DefaultITLBEntries, p.PageBytes),
		DTLB:   NewTLB(DefaultDTLBEntries, p.PageBytes),
	}
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
}

// Result describes the outcome of a data access.
type Result struct {
	Latency int  // total cycles until the value is available
	L1Miss  bool // missed in the L1
	L2Miss  bool // missed in the L2 (went to memory)
	TLBMiss bool
}

// Load performs a data-cache load at the given cycle and returns its timing.
func (h *Hierarchy) Load(addr uint64, cycle uint64) Result {
	return h.dataAccess(addr, cycle)
}

// Store performs a data-cache store. The paper's model (like SMTSIM) retires
// stores through the same banked L1; a store's latency does not stall the
// thread but the line allocation affects later loads, so state is updated
// identically.
func (h *Hierarchy) Store(addr uint64, cycle uint64) Result {
	return h.dataAccess(addr, cycle)
}

func (h *Hierarchy) dataAccess(addr uint64, cycle uint64) Result {
	var r Result
	r.Latency = h.Params.L1HitLatency
	if !h.DTLB.Access(addr) {
		r.TLBMiss = true
		r.Latency += h.Params.TLBMissCycles
	}
	hit, delay := h.L1D.Access(addr, cycle)
	r.Latency += delay
	if hit {
		return r
	}
	r.L1Miss = true
	r.Latency += h.Params.L1MissPenalty
	l2hit, _ := h.L2.Access(addr, cycle)
	if !l2hit {
		r.L2Miss = true
		r.Latency += h.Params.MemLatency
	}
	return r
}

// Fetch performs an instruction-cache access for the line containing addr
// and returns its timing.
func (h *Hierarchy) Fetch(addr uint64, cycle uint64) Result {
	var r Result
	r.Latency = h.Params.L1HitLatency
	if !h.ITLB.Access(addr) {
		r.TLBMiss = true
		r.Latency += h.Params.TLBMissCycles
	}
	hit, delay := h.L1I.Access(addr, cycle)
	r.Latency += delay
	if hit {
		return r
	}
	r.L1Miss = true
	r.Latency += h.Params.L1MissPenalty
	l2hit, _ := h.L2.Access(addr, cycle)
	if !l2hit {
		r.L2Miss = true
		r.Latency += h.Params.MemLatency
	}
	return r
}

// L2DetectLatency returns the cycle count beyond which a load has evidently
// missed in the L2. The FLUSH fetch policy (Tullsen & Brown, used by the
// baseline) "predicts an L2 miss every time a load spends more cycles in the
// cache hierarchy than needed to access the L2 cache".
func (h *Hierarchy) L2DetectLatency() int {
	return h.Params.L1HitLatency + h.Params.L1MissPenalty + h.Params.L2Latency
}
