package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, Banks: 4}
}

func TestConfigValidation(t *testing.T) {
	good := smallConfig()
	if err := good.check(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Assoc: 2, Banks: 1},
		{Name: "line", SizeBytes: 1024, LineBytes: 48, Assoc: 2, Banks: 1},
		{Name: "div", SizeBytes: 1000, LineBytes: 64, Assoc: 2, Banks: 1},
		{Name: "sets", SizeBytes: 64 * 2 * 3, LineBytes: 64, Assoc: 2, Banks: 1},
		{Name: "banks", SizeBytes: 1024, LineBytes: 64, Assoc: 2, Banks: 3},
	}
	for _, cfg := range bad {
		if err := cfg.check(); err == nil {
			t.Errorf("config %s should be rejected", cfg.Name)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid geometry")
		}
	}()
	New(Config{Name: "bad"})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(smallConfig())
	if hit, _ := c.Access(0x1000, 0); hit {
		t.Error("cold access must miss")
	}
	if hit, _ := c.Access(0x1000, 1); !hit {
		t.Error("second access must hit")
	}
	if hit, _ := c.Access(0x1008, 2); !hit {
		t.Error("same-line access must hit")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 1KB, 64B lines, 2-way: 8 sets. Three lines mapping to set 0:
	// addresses 0, 8*64=512... set index = (addr/64) % 8.
	c := New(smallConfig())
	a, b, x := uint64(0), uint64(512), uint64(1024)
	c.Access(a, 0) // miss, insert
	c.Access(b, 1) // miss, insert
	c.Access(a, 2) // hit: a is now MRU
	c.Access(x, 3) // miss: must evict b (LRU)
	if !c.Probe(a) {
		t.Error("a should survive")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted")
	}
	if !c.Probe(x) {
		t.Error("x should be resident")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New(smallConfig())
	c.Access(0, 0)
	before := c.Stats()
	if c.Probe(4096) {
		t.Error("probe of absent line reported hit")
	}
	if got := c.Stats(); got != before {
		t.Error("Probe changed statistics")
	}
}

func TestBankConflicts(t *testing.T) {
	c := New(smallConfig()) // 4 banks
	// Two different lines in the same bank, same cycle:
	// bank = line & 3; lines 0 and 4 share bank 0.
	c.Access(0, 10)
	_, delay := c.Access(4*64, 10)
	if delay != 1 {
		t.Errorf("same-bank same-cycle delay = %d, want 1", delay)
	}
	// Different bank same cycle: no delay.
	_, delay = c.Access(1*64, 10)
	if delay != 0 {
		t.Errorf("different-bank delay = %d, want 0", delay)
	}
	// Same bank next cycle: no delay.
	_, delay = c.Access(8*64, 11)
	if delay != 0 {
		t.Errorf("next-cycle delay = %d, want 0", delay)
	}
	if c.Stats().BankConflicts != 1 {
		t.Errorf("conflicts = %d, want 1", c.Stats().BankConflicts)
	}
}

func TestCacheReset(t *testing.T) {
	c := New(smallConfig())
	c.Access(0, 0)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
	if c.Probe(0) {
		t.Error("contents not cleared")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate must be 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

// Property: a working set that fits in the cache has no capacity misses
// after the first pass, regardless of base address.
func TestResidentWorkingSetProperty(t *testing.T) {
	f := func(rawBase uint32) bool {
		c := New(Config{Name: "p", SizeBytes: 8192, LineBytes: 64, Assoc: 2, Banks: 1})
		base := uint64(rawBase) << 6 // line aligned
		// 32 lines = 2KB working set in an 8KB cache.
		for pass := 0; pass < 3; pass++ {
			for i := uint64(0); i < 32; i++ {
				c.Access(base+i*64, uint64(pass*32)+i)
			}
		}
		return c.Stats().Misses == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: miss count never exceeds access count, and Probe agrees with a
// repeat Access hit.
func TestCacheInvariants(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(smallConfig())
		for i, a := range addrs {
			c.Access(uint64(a), uint64(i))
			if !c.Probe(uint64(a)) {
				return false // just-accessed line must be resident
			}
		}
		st := c.Stats()
		return st.Misses <= st.Accesses && st.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(4, 8192)
	if tlb.Access(0) {
		t.Error("cold TLB access must miss")
	}
	if !tlb.Access(4095) {
		t.Error("same-page access must hit")
	}
	if tlb.Access(8192) {
		t.Error("next page must miss")
	}
	st := tlb.Stats()
	if st.Accesses != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(2, 8192)
	p := func(n uint64) uint64 { return n * 8192 }
	tlb.Access(p(0))
	tlb.Access(p(1))
	tlb.Access(p(0)) // page 0 MRU
	tlb.Access(p(2)) // evict page 1
	if !tlb.Probe(p(0)) {
		t.Error("page 0 should survive")
	}
	if tlb.Probe(p(1)) {
		t.Error("page 1 should be evicted")
	}
	if !tlb.Probe(p(2)) {
		t.Error("page 2 should be resident")
	}
}

func TestTLBReset(t *testing.T) {
	tlb := NewTLB(4, 8192)
	tlb.Access(0)
	tlb.Reset()
	if tlb.Stats() != (Stats{}) || tlb.Probe(0) {
		t.Error("reset incomplete")
	}
}

func TestTLBPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTLB(0, 8192) },
		func() { NewTLB(4, 1000) },
		func() { NewTLB(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHierarchyLoadLatencies(t *testing.T) {
	h := NewHierarchy()
	p := h.Params

	// Cold access: TLB miss + L1 miss + L2 miss.
	r := h.Load(0x100000, 0)
	want := p.L1HitLatency + p.TLBMissCycles + p.L1MissPenalty + p.MemLatency
	if r.Latency != want || !r.L1Miss || !r.L2Miss || !r.TLBMiss {
		t.Errorf("cold load = %+v, want latency %d", r, want)
	}

	// Warm access: everything hits.
	r = h.Load(0x100000, 1)
	if r.Latency != p.L1HitLatency || r.L1Miss || r.L2Miss || r.TLBMiss {
		t.Errorf("warm load = %+v", r)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	h := NewHierarchy()
	p := h.Params
	addr := uint64(0x200000)
	h.Load(addr, 0) // warm L2 + TLB
	// Evict addr from the 64KB 2-way L1D by touching two conflicting lines.
	// Sets = 64KB/(64*2) = 512; conflict stride = 512*64 = 32KB.
	h.Load(addr+32<<10, 1)
	h.Load(addr+64<<10, 2)
	r := h.Load(addr, 3)
	want := p.L1HitLatency + p.L1MissPenalty
	if r.Latency != want || !r.L1Miss || r.L2Miss {
		t.Errorf("L2-hit load = %+v, want latency %d", r, want)
	}
}

func TestHierarchyFetch(t *testing.T) {
	h := NewHierarchy()
	r := h.Fetch(0x1000, 0)
	if !r.L1Miss || !r.L2Miss || !r.TLBMiss {
		t.Errorf("cold fetch = %+v", r)
	}
	r = h.Fetch(0x1000, 1)
	if r.Latency != h.Params.L1HitLatency {
		t.Errorf("warm fetch latency = %d", r.Latency)
	}
	if h.L1D.Stats().Accesses != 0 {
		t.Error("fetch must not touch the data cache")
	}
}

func TestHierarchyStoreUpdatesState(t *testing.T) {
	h := NewHierarchy()
	h.Store(0x5000, 0)
	r := h.Load(0x5000, 1)
	if r.L1Miss {
		t.Error("load after store to same line must hit")
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy()
	h.Load(0x1000, 0)
	h.Fetch(0x2000, 0)
	h.Reset()
	if h.L1D.Stats().Accesses != 0 || h.L1I.Stats().Accesses != 0 ||
		h.L2.Stats().Accesses != 0 || h.DTLB.Stats().Accesses != 0 {
		t.Error("reset incomplete")
	}
}

func TestL2DetectLatency(t *testing.T) {
	h := NewHierarchy()
	want := 3 + 22 + 12
	if got := h.L2DetectLatency(); got != want {
		t.Errorf("L2DetectLatency = %d, want %d", got, want)
	}
	// An L2 hit resolves within the detection window; an L2 miss does not.
	p := h.Params
	l2hit := p.L1HitLatency + p.L1MissPenalty
	l2miss := l2hit + p.MemLatency
	if l2hit > h.L2DetectLatency() {
		t.Error("L2 hits must resolve within the detection latency")
	}
	if l2miss <= h.L2DetectLatency() {
		t.Error("L2 misses must exceed the detection latency")
	}
}

func TestDefaultGeometries(t *testing.T) {
	// Table 1 geometries.
	for _, tc := range []struct {
		cfg  Config
		size int
	}{
		{DefaultL1I(), 64 << 10},
		{DefaultL1D(), 64 << 10},
		{DefaultL2(), 512 << 10},
	} {
		if tc.cfg.SizeBytes != tc.size || tc.cfg.Assoc != 2 || tc.cfg.Banks != 8 {
			t.Errorf("%s geometry %+v does not match Table 1", tc.cfg.Name, tc.cfg)
		}
	}
	p := DefaultParams()
	if p.L1HitLatency != 3 || p.L1MissPenalty != 22 || p.L2Latency != 12 ||
		p.MemLatency != 250 || p.TLBMissCycles != 300 {
		t.Errorf("params %+v do not match Table 1", p)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(DefaultL1D())
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, uint64(i))
	}
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := NewHierarchy()
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i)*8%(1<<20), uint64(i))
	}
}
