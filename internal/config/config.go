// Package config defines the pipeline models of paper Fig. 2(a) and the
// microarchitecture descriptors of the evaluation (Fig. 3): the monolithic
// SMT baseline M8, homogeneous clusterings such as 3M4, and heterogeneous
// hdSMT configurations such as 2M4+2M2, written exactly as the paper writes
// them.
package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Model is one pipeline model (paper Fig. 2a): the resource budget of a
// single back-end pipeline.
type Model struct {
	Name     string
	Contexts int // hardware contexts (threads resident)
	Width    int // max instructions per cycle through the pipeline
	// ThreadsPerCycle is the max threads that may contribute instructions
	// in one cycle (the ".8" and ".2" of ICOUNT-style policies).
	ThreadsPerCycle int
	IQ              int // integer issue queue entries
	FQ              int // floating-point issue queue entries
	LQ              int // load/store queue entries
	IntUnits        int
	FPUnits         int
	LdStUnits       int
	// FetchBuf is the decoupling buffer between the shared fetch engine
	// and this pipeline (paper §4: 32 entries for M6/M4, 16 for M2; the
	// monolithic M8 has none).
	FetchBuf int
}

// The four pipeline models of Fig. 2(a).
var (
	M8 = Model{Name: "M8", Contexts: 4, Width: 8, ThreadsPerCycle: 2,
		IQ: 64, FQ: 64, LQ: 64, IntUnits: 6, FPUnits: 3, LdStUnits: 4, FetchBuf: 0}
	M6 = Model{Name: "M6", Contexts: 2, Width: 6, ThreadsPerCycle: 2,
		IQ: 32, FQ: 32, LQ: 32, IntUnits: 4, FPUnits: 2, LdStUnits: 2, FetchBuf: 32}
	M4 = Model{Name: "M4", Contexts: 2, Width: 4, ThreadsPerCycle: 2,
		IQ: 32, FQ: 32, LQ: 32, IntUnits: 3, FPUnits: 2, LdStUnits: 2, FetchBuf: 32}
	M2 = Model{Name: "M2", Contexts: 1, Width: 2, ThreadsPerCycle: 1,
		IQ: 16, FQ: 16, LQ: 16, IntUnits: 1, FPUnits: 1, LdStUnits: 1, FetchBuf: 16}
)

// Models lists the four models, widest first.
func Models() []Model { return []Model{M8, M6, M4, M2} }

// ModelByName resolves "M8".."M2".
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("config: unknown pipeline model %q", name)
}

// SimParams carries the configuration-independent constants of Table 1 plus
// global front-end limits ("all simulations are limited to 8 instructions
// fetchable per cycle, from a maximum of 2 threads").
type SimParams struct {
	FetchWidth      int // 8
	FetchMaxThreads int // 2
	ROBPerThread    int // 256 entries, replicated per thread
	RenameRegs      int // 256 shared rename registers
	PipelineDepth   int // 8 stages
	// RegAccessLatency is 1 for the monolithic SMT and 2 for hdSMT
	// configurations (paper §4: multipipeline register-file sharing
	// doubles register read/write time).
	RegAccessLatency int
}

// DefaultSimParams returns Table 1's constants for a monolithic processor;
// NewMicroarch adjusts RegAccessLatency for multipipeline configurations.
func DefaultSimParams() SimParams {
	return SimParams{
		FetchWidth:       8,
		FetchMaxThreads:  2,
		ROBPerThread:     256,
		RenameRegs:       256,
		PipelineDepth:    8,
		RegAccessLatency: 1,
	}
}

// Microarch is a complete processor configuration: a set of pipelines plus
// global parameters.
type Microarch struct {
	Name      string
	Pipelines []Model
	// Monolithic marks the single-pipeline M8 baseline, which uses the
	// FLUSH fetch policy and 1-cycle register access.
	Monolithic bool
	Params     SimParams
}

// NewMicroarch assembles a microarchitecture from pipeline models, ordering
// pipelines widest first (the mapping policy's list P). The canonical
// textual name (e.g. "2M4+2M2") is derived from the models.
func NewMicroarch(models ...Model) Microarch {
	if len(models) == 0 {
		panic("config: microarchitecture needs at least one pipeline")
	}
	ps := make([]Model, len(models))
	copy(ps, models)
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Width > ps[j].Width })

	m := Microarch{
		Pipelines: ps,
		// Monolithic is detected by width, not name: a structure-scaled M8
		// (ScaleModel renames it "M8q150") is still the single-pipeline
		// baseline — FLUSH policy, 1-cycle register file, thread
		// stretching, no multipipeline area overheads. Width 8 uniquely
		// identifies M8 among the models.
		Monolithic: len(ps) == 1 && ps[0].Width == M8.Width,
		Params:     DefaultSimParams(),
	}
	if !m.Monolithic {
		m.Params.RegAccessLatency = 2
	}
	m.Name = canonicalName(ps)
	return m
}

// canonicalName renders "M8", "3M4", "2M4+2M2", "1M6+2M4+2M2". The
// single-pipeline baseline (scaled or not — same width test as the
// Monolithic flag) keeps its bare model name, no count prefix.
func canonicalName(ps []Model) string {
	if len(ps) == 1 && ps[0].Width == M8.Width {
		return ps[0].Name
	}
	var parts []string
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].Name == ps[i].Name {
			j++
		}
		parts = append(parts, fmt.Sprintf("%d%s", j-i, ps[i].Name))
		i = j
	}
	return strings.Join(parts, "+")
}

// Parse builds a Microarch from the paper's notation: "M8", "3M4",
// "2M4+2M2", "1M6+2M4+2M2". A bare model name means one pipeline of it.
// ScaleModel suffixes round-trip too ("2M4q75f50"), so a machine reported
// by the design-space search can be re-simulated from its name.
func Parse(name string) (Microarch, error) {
	var models []Model
	for _, part := range strings.Split(name, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Microarch{}, fmt.Errorf("config: empty component in %q", name)
		}
		count := 1
		rest := part
		if i := strings.IndexByte(part, 'M'); i > 0 {
			n, err := strconv.Atoi(part[:i])
			if err != nil || n <= 0 {
				return Microarch{}, fmt.Errorf("config: bad pipeline count in %q", part)
			}
			count = n
			rest = part[i:]
		}
		model, err := ModelByName(rest)
		if err != nil {
			model, err = parseScaled(rest)
		}
		if err != nil {
			return Microarch{}, fmt.Errorf("config: in %q: %w", name, err)
		}
		for k := 0; k < count; k++ {
			models = append(models, model)
		}
	}
	return NewMicroarch(models...), nil
}

// parseScaled resolves a ScaleModel name ("M4q75f50": base model plus
// optional q<percent> and f<percent> suffixes, in that order). Rebuilding
// through ScaleModel guarantees the parsed model is exactly the one the
// name was derived from.
func parseScaled(name string) (Model, error) {
	for _, base := range Models() {
		suffix, ok := strings.CutPrefix(name, base.Name)
		if !ok || suffix == "" {
			continue
		}
		qPct, fPct := 100, 100
		if rest, ok := strings.CutPrefix(suffix, "q"); ok {
			digits := rest
			if i := strings.IndexByte(rest, 'f'); i >= 0 {
				digits = rest[:i]
			}
			n, err := strconv.Atoi(digits)
			if err != nil {
				continue
			}
			qPct = n
			suffix = rest[len(digits):]
		}
		if rest, ok := strings.CutPrefix(suffix, "f"); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				continue
			}
			fPct = n
			suffix = ""
		}
		if suffix != "" { // trailing garbage neither branch consumed
			continue
		}
		m, err := ScaleModel(base, qPct, fPct)
		if err != nil {
			return Model{}, err
		}
		if m.Name != name {
			// The name does not canonically encode these scales (e.g.
			// "M4q100", or an f-suffix on the bufferless M8).
			return Model{}, fmt.Errorf("config: non-canonical scaled model name %q (canonical: %q)", name, m.Name)
		}
		return m, nil
	}
	return Model{}, fmt.Errorf("config: unknown pipeline model %q", name)
}

// MustParse is Parse for static configuration strings; it panics on error.
func MustParse(name string) Microarch {
	m, err := Parse(name)
	if err != nil {
		panic(err)
	}
	return m
}

// ScaleModel returns a variant of m with its issue/load queues scaled to
// queuePct percent (IQ, FQ, LQ) and its decoupling buffer scaled to
// fetchBufPct percent. Scaled structures keep at least one entry; a model
// with no decoupling buffer (the monolithic M8) keeps none. The variant is
// renamed ("M4q75f50") so scaled pipelines are distinguishable in canonical
// configuration names and never collide with the calibrated base models.
// The area model prices the resized structures by entry count (see
// area.PipelineArea).
func ScaleModel(m Model, queuePct, fetchBufPct int) (Model, error) {
	if queuePct <= 0 || fetchBufPct <= 0 {
		return Model{}, fmt.Errorf("config: scale percentages must be positive, got q%d f%d", queuePct, fetchBufPct)
	}
	out := m
	scale := func(n, pct int) int {
		if n == 0 {
			return 0
		}
		if v := n * pct / 100; v > 0 {
			return v
		}
		return 1
	}
	if queuePct != 100 {
		out.IQ = scale(m.IQ, queuePct)
		out.FQ = scale(m.FQ, queuePct)
		out.LQ = scale(m.LQ, queuePct)
		out.Name += fmt.Sprintf("q%d", queuePct)
	}
	if fetchBufPct != 100 && m.FetchBuf > 0 {
		out.FetchBuf = scale(m.FetchBuf, fetchBufPct)
		out.Name += fmt.Sprintf("f%d", fetchBufPct)
	}
	return out, nil
}

// TotalContexts returns the number of hardware contexts across pipelines.
func (m Microarch) TotalContexts() int {
	total := 0
	for _, p := range m.Pipelines {
		total += p.Contexts
	}
	return total
}

// TotalWidth returns the summed pipeline widths (global decode bandwidth
// potential; paper §2 notes this may exceed the fetch width).
func (m Microarch) TotalWidth() int {
	total := 0
	for _, p := range m.Pipelines {
		total += p.Width
	}
	return total
}

// ForThreads returns a copy of m able to hold n threads. The paper's special
// case (§3): the M8 baseline is assumed to accept 6 threads with no extra
// area, so the monolithic configuration stretches its context count.
// Multipipeline configurations are returned unchanged; callers must check
// TotalContexts themselves.
func (m Microarch) ForThreads(n int) Microarch {
	if m.Monolithic && n > m.Pipelines[0].Contexts {
		out := m
		out.Pipelines = []Model{m.Pipelines[0]}
		out.Pipelines[0].Contexts = n
		return out
	}
	return m
}

// String returns the canonical configuration name.
func (m Microarch) String() string { return m.Name }

// EvaluatedMicroarchs returns the six configurations of the paper's
// evaluation (Fig. 3), in the paper's order.
func EvaluatedMicroarchs() []Microarch {
	names := []string{"M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"}
	out := make([]Microarch, len(names))
	for i, n := range names {
		out[i] = MustParse(n)
	}
	return out
}
