package config

import (
	"testing"
	"testing/quick"
)

// TestTable1Defaults pins the simulation constants to paper Table 1 /
// section 4 ("Fig. 2a" resources are pinned in TestFig2aModels).
func TestTable1Defaults(t *testing.T) {
	p := DefaultSimParams()
	if p.FetchWidth != 8 || p.FetchMaxThreads != 2 {
		t.Errorf("fetch limits %+v, want 8 from 2 threads", p)
	}
	if p.ROBPerThread != 256 {
		t.Errorf("ROB = %d, want 256", p.ROBPerThread)
	}
	if p.RenameRegs != 256 {
		t.Errorf("rename regs = %d, want 256", p.RenameRegs)
	}
	if p.PipelineDepth != 8 {
		t.Errorf("depth = %d, want 8", p.PipelineDepth)
	}
	if p.RegAccessLatency != 1 {
		t.Errorf("monolithic RF latency = %d, want 1", p.RegAccessLatency)
	}
}

// TestFig2aModels pins the four pipeline models to paper Fig. 2(a).
func TestFig2aModels(t *testing.T) {
	cases := []struct {
		m                             Model
		ctx, width, tpc, q, iu, fu, l int
	}{
		{M8, 4, 8, 2, 64, 6, 3, 4},
		{M6, 2, 6, 2, 32, 4, 2, 2},
		{M4, 2, 4, 2, 32, 3, 2, 2},
		{M2, 1, 2, 1, 16, 1, 1, 1},
	}
	for _, c := range cases {
		if c.m.Contexts != c.ctx || c.m.Width != c.width || c.m.ThreadsPerCycle != c.tpc {
			t.Errorf("%s shape = %+v", c.m.Name, c.m)
		}
		if c.m.IQ != c.q || c.m.FQ != c.q || c.m.LQ != c.q {
			t.Errorf("%s queues = %d/%d/%d, want %d", c.m.Name, c.m.IQ, c.m.FQ, c.m.LQ, c.q)
		}
		if c.m.IntUnits != c.iu || c.m.FPUnits != c.fu || c.m.LdStUnits != c.l {
			t.Errorf("%s units = %d/%d/%d", c.m.Name, c.m.IntUnits, c.m.FPUnits, c.m.LdStUnits)
		}
	}
	// Decoupling buffers (paper §4).
	if M6.FetchBuf != 32 || M4.FetchBuf != 32 || M2.FetchBuf != 16 || M8.FetchBuf != 0 {
		t.Error("fetch buffer sizes do not match §4")
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"M8", "M6", "M4", "M2"} {
		m, err := ModelByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ModelByName(%s) = %v, %v", name, m.Name, err)
		}
	}
	if _, err := ModelByName("M3"); err == nil {
		t.Error("M3 should not resolve")
	}
}

func TestParseCanonicalNames(t *testing.T) {
	for _, name := range []string{"M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"} {
		m, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("Parse(%s).Name = %s", name, m.Name)
		}
	}
}

func TestParsePipelineCounts(t *testing.T) {
	m := MustParse("2M4+2M2")
	if len(m.Pipelines) != 4 {
		t.Fatalf("pipelines = %d", len(m.Pipelines))
	}
	if m.Pipelines[0].Name != "M4" || m.Pipelines[1].Name != "M4" ||
		m.Pipelines[2].Name != "M2" || m.Pipelines[3].Name != "M2" {
		t.Errorf("pipeline order wrong: %v", m.Pipelines)
	}
}

func TestParseSortsWidestFirst(t *testing.T) {
	m := MustParse("2M2+1M6+2M4")
	if m.Name != "1M6+2M4+2M2" {
		t.Errorf("canonical name = %s", m.Name)
	}
	for i := 1; i < len(m.Pipelines); i++ {
		if m.Pipelines[i].Width > m.Pipelines[i-1].Width {
			t.Error("pipelines not sorted widest first")
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "M9", "0M4", "-1M4", "xM4", "2M4++2M2", "M4+"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("bogus")
}

func TestMonolithicDetection(t *testing.T) {
	if !MustParse("M8").Monolithic {
		t.Error("M8 is the monolithic baseline")
	}
	for _, name := range []string{"3M4", "2M4+2M2", "1M6+2M4+2M2"} {
		if MustParse(name).Monolithic {
			t.Errorf("%s must not be monolithic", name)
		}
	}
}

// TestRegAccessLatency checks the §4 rule: 1 cycle monolithic, 2 hdSMT.
func TestRegAccessLatency(t *testing.T) {
	if MustParse("M8").Params.RegAccessLatency != 1 {
		t.Error("monolithic RF latency must be 1")
	}
	if MustParse("2M4+2M2").Params.RegAccessLatency != 2 {
		t.Error("hdSMT RF latency must be 2")
	}
}

func TestTotalContexts(t *testing.T) {
	cases := map[string]int{
		"M8":          4,
		"3M4":         6,
		"4M4":         8,
		"2M4+2M2":     6,
		"3M4+2M2":     8,
		"1M6+2M4+2M2": 8,
	}
	for name, want := range cases {
		if got := MustParse(name).TotalContexts(); got != want {
			t.Errorf("%s contexts = %d, want %d", name, got, want)
		}
	}
}

func TestTotalWidth(t *testing.T) {
	if got := MustParse("2M4+2M2").TotalWidth(); got != 12 {
		t.Errorf("2M4+2M2 width = %d, want 12", got)
	}
	if got := MustParse("M8").TotalWidth(); got != 8 {
		t.Errorf("M8 width = %d, want 8", got)
	}
}

// TestForThreads checks the paper's §3 exception: M8 stretches to 6 threads
// with no area change; multipipeline configs are unchanged.
func TestForThreads(t *testing.T) {
	m8 := MustParse("M8").ForThreads(6)
	if m8.Pipelines[0].Contexts != 6 {
		t.Errorf("M8.ForThreads(6) contexts = %d", m8.Pipelines[0].Contexts)
	}
	if MustParse("M8").ForThreads(2).Pipelines[0].Contexts != 4 {
		t.Error("ForThreads must not shrink contexts")
	}
	h := MustParse("2M4+2M2").ForThreads(6)
	if h.TotalContexts() != 6 {
		t.Error("multipipeline config must be unchanged")
	}
}

func TestEvaluatedMicroarchs(t *testing.T) {
	ms := EvaluatedMicroarchs()
	want := []string{"M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"}
	if len(ms) != len(want) {
		t.Fatalf("count = %d", len(ms))
	}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Errorf("position %d = %s, want %s", i, m.Name, want[i])
		}
	}
}

func TestNewMicroarchPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMicroarch()
}

// Property: Parse(canonicalName(x)) round-trips for random multisets of
// models.
func TestParseRoundTripProperty(t *testing.T) {
	all := []Model{M6, M4, M2} // M8 only appears alone in the paper
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 6 {
			picks = picks[:6]
		}
		models := make([]Model, len(picks))
		for i, p := range picks {
			models[i] = all[int(p)%len(all)]
		}
		m := NewMicroarch(models...)
		back, err := Parse(m.Name)
		return err == nil && back.Name == m.Name && len(back.Pipelines) == len(m.Pipelines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScaleModel(t *testing.T) {
	s, err := ScaleModel(M4, 75, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "M4q75f50" {
		t.Errorf("name = %q", s.Name)
	}
	if s.IQ != 24 || s.FQ != 24 || s.LQ != 24 || s.FetchBuf != 16 {
		t.Errorf("scaled sizes = IQ %d FQ %d LQ %d FB %d", s.IQ, s.FQ, s.LQ, s.FetchBuf)
	}
	// Untouched axes carry over.
	if s.Width != M4.Width || s.Contexts != M4.Contexts || s.IntUnits != M4.IntUnits {
		t.Errorf("non-queue fields changed: %+v", s)
	}

	// 100% on both axes is the identity, name included.
	id, err := ScaleModel(M2, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if id != M2 {
		t.Errorf("identity scale changed the model: %+v", id)
	}

	// The monolithic M8 has no decoupling buffer to scale.
	m8, err := ScaleModel(M8, 150, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m8.FetchBuf != 0 {
		t.Errorf("M8 fetch buffer = %d, want 0", m8.FetchBuf)
	}
	if m8.Name != "M8q150" {
		t.Errorf("name = %q", m8.Name)
	}
	if m8.IQ != 96 {
		t.Errorf("IQ = %d, want 96", m8.IQ)
	}
	// A scaled M8 is still the monolithic baseline: renaming must not
	// flip it to a multipipeline machine (FLUSH policy, 1-cycle register
	// file, thread stretching all key off Monolithic).
	scaledMono := NewMicroarch(m8)
	if !scaledMono.Monolithic {
		t.Error("scaled M8 lost its monolithic status")
	}
	if scaledMono.Params.RegAccessLatency != 1 {
		t.Errorf("scaled M8 register access latency = %d, want 1", scaledMono.Params.RegAccessLatency)
	}

	// Structures never scale to zero entries.
	tiny, err := ScaleModel(M2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.IQ < 1 || tiny.FQ < 1 || tiny.LQ < 1 || tiny.FetchBuf < 1 {
		t.Errorf("scaled to zero: %+v", tiny)
	}

	if _, err := ScaleModel(M4, 0, 100); err == nil {
		t.Error("queuePct 0 must fail")
	}
	if _, err := ScaleModel(M4, 100, -5); err == nil {
		t.Error("negative fetchBufPct must fail")
	}
}

// Scaled models participate in canonical configuration naming without
// colliding with their base model.
func TestScaledModelCanonicalName(t *testing.T) {
	s, err := ScaleModel(M4, 150, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewMicroarch(s, s, M2)
	if cfg.Name != "2M4q150+1M2" {
		t.Errorf("name = %q", cfg.Name)
	}
	if cfg.Monolithic {
		t.Error("multipipeline marked monolithic")
	}
}

// TestParseScaledRoundTrip: search results name scaled machines
// ("2M4q75f50"); Parse must rebuild exactly the machine the name came
// from, so a reported optimum can be re-simulated.
func TestParseScaledRoundTrip(t *testing.T) {
	s4, err := ScaleModel(M4, 75, 50)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ScaleModel(M2, 125, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewMicroarch(s4, s4, s2)
	back, err := Parse(cfg.Name)
	if err != nil {
		t.Fatalf("Parse(%q): %v", cfg.Name, err)
	}
	if back.Name != cfg.Name {
		t.Errorf("round trip %q -> %q", cfg.Name, back.Name)
	}
	if len(back.Pipelines) != 3 || back.Pipelines[0].IQ != s4.IQ || back.Pipelines[2].IQ != s2.IQ {
		t.Errorf("scaled sizes lost in round trip: %+v", back.Pipelines)
	}

	// Scaled monolithic baseline round-trips too.
	m8, err := ScaleModel(M8, 150, 100)
	if err != nil {
		t.Fatal(err)
	}
	mono := NewMicroarch(m8)
	back, err = Parse(mono.Name)
	if err != nil {
		t.Fatalf("Parse(%q): %v", mono.Name, err)
	}
	if !back.Monolithic || back.Pipelines[0].IQ != m8.IQ {
		t.Errorf("scaled M8 round trip lost monolithic/sizing: %+v", back)
	}

	// Non-canonical and garbage spellings are rejected.
	for _, bad := range []string{"M4q100", "M4q", "M4qx", "M4q75z", "M8f50", "M5q75"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
