package config

import (
	"testing"
)

func TestDefaultEnergyModelValid(t *testing.T) {
	if err := DefaultEnergyModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultEnergyModel()
	bad.L2PJ = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero coefficient must fail validation")
	}
}

// TestEnergyMonotoneInQueueSize is the satellite monotonicity test at the
// model level: scaling a structure up never makes an access cheaper. The
// per-access energies are linear in entry count, so this pins both the
// coefficients' signs and the scaling rule.
func TestEnergyMonotoneInQueueSize(t *testing.T) {
	em := DefaultEnergyModel()
	for _, base := range Models() {
		prev := -1.0
		prevW := -1.0
		prevB := -1.0
		for _, pct := range []int{50, 75, 100, 125, 150} {
			m, err := ScaleModel(base, pct, pct)
			if err != nil {
				t.Fatal(err)
			}
			for kind := 0; kind < 3; kind++ {
				if e := em.QueueReadEnergy(m.QueueEntries(kind)); e <= 0 {
					t.Fatalf("%s kind %d: non-positive access energy %v", m.Name, kind, e)
				}
			}
			read := em.QueueReadEnergy(m.IQ)
			write := em.QueueWriteEnergy(m.IQ)
			buf := em.FetchBufEnergy(m.FetchBuf)
			if read < prev || write < prevW || buf < prevB {
				t.Errorf("%s at %d%%: access energy decreased (read %v<%v, write %v<%v, buf %v<%v)",
					base.Name, pct, read, prev, write, prevW, buf, prevB)
			}
			prev, prevW, prevB = read, write, buf
		}
	}
}

// TestQueueEntriesKindOrder pins the kind-index convention shared with the
// core's activity counters (isa.IQ=0, FQ=1, LQ=2; config cannot import isa,
// so the agreement lives in this test).
func TestQueueEntriesKindOrder(t *testing.T) {
	m := M6
	if m.QueueEntries(0) != m.IQ || m.QueueEntries(1) != m.FQ || m.QueueEntries(2) != m.LQ {
		t.Errorf("QueueEntries order diverges from IQ/FQ/LQ: %d/%d/%d",
			m.QueueEntries(0), m.QueueEntries(1), m.QueueEntries(2))
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range kind must panic")
		}
	}()
	m.QueueEntries(3)
}

func TestLeakageScalesWithAreaAndTime(t *testing.T) {
	em := DefaultEnergyModel()
	if a, b := em.LeakageEnergy(100, 1_000), em.LeakageEnergy(200, 1_000); b <= a {
		t.Errorf("leakage not monotone in area: %v vs %v", a, b)
	}
	if a, b := em.LeakageEnergy(100, 1_000), em.LeakageEnergy(100, 2_000); b <= a {
		t.Errorf("leakage not monotone in cycles: %v vs %v", a, b)
	}
}
