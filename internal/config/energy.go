package config

import "fmt"

// Activity-based energy model (0.18 µm, matching the area model's node):
// each microarchitectural structure costs a fixed dynamic energy per
// access, with the CAM-like structures (issue queues, decoupling buffers)
// scaled linearly by their entry count — a wakeup broadcast or an
// insert-with-select touches every entry, so a queue resized by
// ScaleModel is priced by its actual size, never cheaper per access when
// grown. Static power is modeled as area-proportional leakage per cycle;
// the area itself comes from the caller (package area prices structures,
// and config cannot import it), keeping the model a pure table.
//
// Calibration: absolute per-access energies at 0.18 µm land in the
// 50-500 pJ range for core structures and single-digit nJ for large array
// reads (Wattch-class numbers). The constants below are chosen in that
// range so a monolithic M8 machine comes out at a few tens of nJ per
// committed instruction — the right order of magnitude for a 0.18 µm
// out-of-order SMT (an Alpha 21264-class core dissipates ~70 nJ/instr) —
// while the *relative* costs (wide structures pay per entry; leakage pays
// per mm²) are what the complexity-effectiveness comparisons consume, as
// with the calibrated area model.

// EnergyModel is the per-access dynamic energy table plus the leakage
// coefficient. All values are picojoules.
type EnergyModel struct {
	// FetchPJ is charged per instruction through the shared fetch engine;
	// ICachePJ per I-cache line probe; BranchPJ per predictor/BTB lookup.
	FetchPJ  float64 `json:"fetch_pj"`
	ICachePJ float64 `json:"icache_pj"`
	BranchPJ float64 `json:"branch_pj"`
	// DecodePJ is charged per uop through decode; RenameReadPJ per source
	// rename-map lookup, RenameWritePJ per destination allocation.
	DecodePJ      float64 `json:"decode_pj"`
	RenameReadPJ  float64 `json:"rename_read_pj"`
	RenameWritePJ float64 `json:"rename_write_pj"`
	// FetchBufPJPerEntry scales a decoupling-buffer write by the buffer's
	// entry count; QueueWritePJPerEntry and QueueReadPJPerEntry scale
	// issue-queue inserts and issue-selects by the queue's entry count
	// (CAM broadcast: every entry is touched).
	FetchBufPJPerEntry   float64 `json:"fetch_buf_pj_per_entry"`
	QueueWritePJPerEntry float64 `json:"queue_write_pj_per_entry"`
	QueueReadPJPerEntry  float64 `json:"queue_read_pj_per_entry"`
	// RegReadPJ/RegWritePJ are charged per physical-register access (the
	// register file is shared and identically sized everywhere, like the
	// caches, so a fixed per-access cost suffices).
	RegReadPJ  float64 `json:"reg_read_pj"`
	RegWritePJ float64 `json:"reg_write_pj"`
	// Functional-unit energies per started operation, by unit kind.
	FUIntPJ  float64 `json:"fu_int_pj"`
	FUFPPJ   float64 `json:"fu_fp_pj"`
	FULdStPJ float64 `json:"fu_ldst_pj"`
	// Data-side cache energies per access.
	DCachePJ float64 `json:"dcache_pj"`
	L2PJ     float64 `json:"l2_pj"`
	// LeakagePJPerMM2Cycle is the static energy burned per mm² of die area
	// per cycle — bigger machines pay it whether or not they switch.
	LeakagePJPerMM2Cycle float64 `json:"leakage_pj_per_mm2_cycle"`
}

// DefaultEnergyModel returns the calibrated table.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		FetchPJ:              120,
		ICachePJ:             450,
		BranchPJ:             80,
		DecodePJ:             150,
		RenameReadPJ:         60,
		RenameWritePJ:        90,
		FetchBufPJPerEntry:   4,
		QueueWritePJPerEntry: 8,
		QueueReadPJPerEntry:  12,
		RegReadPJ:            110,
		RegWritePJ:           140,
		FUIntPJ:              250,
		FUFPPJ:               600,
		FULdStPJ:             300,
		DCachePJ:             500,
		L2PJ:                 2200,
		LeakagePJPerMM2Cycle: 55,
	}
}

// Validate rejects non-positive coefficients: a zero or negative energy
// would make a structure free (or profitable) to exercise, silently
// corrupting every energy-derived metric.
func (m EnergyModel) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"FetchPJ", m.FetchPJ}, {"ICachePJ", m.ICachePJ}, {"BranchPJ", m.BranchPJ},
		{"DecodePJ", m.DecodePJ}, {"RenameReadPJ", m.RenameReadPJ}, {"RenameWritePJ", m.RenameWritePJ},
		{"FetchBufPJPerEntry", m.FetchBufPJPerEntry},
		{"QueueWritePJPerEntry", m.QueueWritePJPerEntry}, {"QueueReadPJPerEntry", m.QueueReadPJPerEntry},
		{"RegReadPJ", m.RegReadPJ}, {"RegWritePJ", m.RegWritePJ},
		{"FUIntPJ", m.FUIntPJ}, {"FUFPPJ", m.FUFPPJ}, {"FULdStPJ", m.FULdStPJ},
		{"DCachePJ", m.DCachePJ}, {"L2PJ", m.L2PJ},
		{"LeakagePJPerMM2Cycle", m.LeakagePJPerMM2Cycle},
	} {
		if c.v <= 0 {
			return fmt.Errorf("config: energy coefficient %s = %v must be positive", c.name, c.v)
		}
	}
	return nil
}

// QueueWriteEnergy returns the dynamic energy of one insert into a queue
// of the given entry count. Strictly monotone in entries: a bigger queue
// never costs less per access (the energy-model test pins this).
func (m EnergyModel) QueueWriteEnergy(entries int) float64 {
	return m.QueueWritePJPerEntry * float64(entries)
}

// QueueReadEnergy returns the dynamic energy of one issue-select from a
// queue of the given entry count (monotone like QueueWriteEnergy).
func (m EnergyModel) QueueReadEnergy(entries int) float64 {
	return m.QueueReadPJPerEntry * float64(entries)
}

// FetchBufEnergy returns the dynamic energy of one write into a
// decoupling buffer of the given entry count.
func (m EnergyModel) FetchBufEnergy(entries int) float64 {
	return m.FetchBufPJPerEntry * float64(entries)
}

// LeakageEnergy returns the static energy of running a machine of the
// given area for the given cycle count.
func (m EnergyModel) LeakageEnergy(areaMM2 float64, cycles uint64) float64 {
	return m.LeakagePJPerMM2Cycle * areaMM2 * float64(cycles)
}

// QueueEntries returns the entry count of a pipeline model's queue by kind
// index (the isa.IQ/FQ/LQ order the core's activity counters use; config
// cannot import isa, so the convention is pinned here and asserted by the
// energy tests).
func (m Model) QueueEntries(kind int) int {
	switch kind {
	case 0:
		return m.IQ
	case 1:
		return m.FQ
	case 2:
		return m.LQ
	}
	panic(fmt.Sprintf("config: queue kind %d out of range", kind))
}
