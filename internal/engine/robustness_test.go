package engine_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/faultinject"
)

// TestJournalReplayHealsTruncatedLine pins the crash-recovery contract of
// the checkpoint journal: a process killed mid-append leaves a torn final
// line; the replay must restore every complete entry, count the torn one
// in telemetry, and re-run (then re-append) the lost job.
func TestJournalReplayHealsTruncatedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var executed atomic.Uint64

	// First life: run three jobs, journaling all of them.
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunBatch(context.Background(), testBatch(3)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// The crash: truncate the file mid-way through the final line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(b), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	torn := strings.Join(lines[:2], "") + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: replay heals — two entries restored, one torn line
	// counted, and only the lost job re-executes.
	executed.Store(0)
	e2, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.Stats()
	if st.Restored != 2 {
		t.Errorf("Restored = %d, want 2", st.Restored)
	}
	if st.JournalTruncated != 1 {
		t.Errorf("JournalTruncated = %d, want 1", st.JournalTruncated)
	}
	if _, err := e2.RunBatch(context.Background(), testBatch(3)); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("re-run executed %d simulations, want 1 (the torn entry only)", got)
	}

	// Third life: the re-append healed the file — nothing torn, nothing
	// to execute.
	e3, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if st := e3.Stats(); st.JournalTruncated != 0 || st.Restored != 3 {
		t.Errorf("after heal: Restored = %d JournalTruncated = %d, want 3/0", st.Restored, st.JournalTruncated)
	}
}

// TestRunnerPanicFailsOneJobOnly: a panicking simulation must fail its
// own job with a descriptive error — counted in Stats — while the worker
// survives to execute subsequent jobs.
func TestRunnerPanicFailsOneJobOnly(t *testing.T) {
	var executed atomic.Uint64
	runner := func(ctx context.Context, req engine.Request) (core.Results, error) {
		if req.Budget == 1_001 { // the second of testBatch's requests
			panic("injected core bug")
		}
		return fakeRunner(&executed)(ctx, req)
	}
	e, err := engine.New(runner, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	tickets := make([]*engine.Ticket, 3)
	for i, req := range testBatch(3) {
		if tickets[i], err = e.Submit(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	var failures int
	for i, tk := range tickets {
		_, err := tk.Wait(context.Background())
		if i == 1 {
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Errorf("panicking job error = %v, want a runner-panic error", err)
			}
			failures++
			continue
		}
		if err != nil {
			t.Errorf("job %d failed: %v (panic must not poison other jobs)", i, err)
		}
	}
	st := e.Stats()
	if st.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", st.Panics)
	}
	if st.Errors != 1 {
		t.Errorf("Stats.Errors = %d, want 1", st.Errors)
	}
	if executed.Load() != 2 {
		t.Errorf("executed %d jobs after the panic, want 2", executed.Load())
	}
}

// TestFaultInjectionStoreAndJournal: with error faults armed on every
// I/O point, a sweep still completes — store-load faults degrade to
// misses, store-save and journal-append faults degrade to best-effort —
// and nothing crashes.
func TestFaultInjectionStoreAndJournal(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	dir := t.TempDir()
	faultinject.Enable(99, map[string]faultinject.Fault{
		faultinject.PointStoreLoad:     {Err: 0.5},
		faultinject.PointStoreSave:     {Err: 0.5},
		faultinject.PointJournalAppend: {Err: 0.5},
	})

	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{
		Workers:     4,
		CacheDir:    filepath.Join(dir, "cache"),
		JournalPath: filepath.Join(dir, "journal.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := testBatch(40)
	results, err := e.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("sweep under injected I/O faults failed: %v", err)
	}
	for i, res := range results {
		if res.Cycles != reqs[i].Budget {
			t.Fatalf("result %d corrupted under fault injection: %+v", i, res)
		}
	}
	e.Close()

	hit := false
	for _, p := range []string{faultinject.PointStoreSave, faultinject.PointJournalAppend} {
		if faultinject.CountsFor(p).Errs > 0 {
			hit = true
		}
	}
	if !hit {
		t.Error("no I/O fault ever triggered — the chaos run tested nothing")
	}

	// A second engine over the same (partially written) cache and journal
	// still serves every result correctly with faults still armed.
	e2, err := engine.New(fakeRunner(&executed), engine.Options{
		Workers:     4,
		CacheDir:    filepath.Join(dir, "cache"),
		JournalPath: filepath.Join(dir, "journal.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	results, err = e2.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("re-run under injected I/O faults failed: %v", err)
	}
	for i, res := range results {
		if res.Cycles != reqs[i].Budget {
			t.Fatalf("re-run result %d corrupted: %+v", i, res)
		}
	}
}

// TestFaultInjectionSimulatePanic: an injected simulate panic is contained
// exactly like an organic one.
func TestFaultInjectionSimulatePanic(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	faultinject.Enable(7, map[string]faultinject.Fault{
		faultinject.PointSimulate: {Panic: 1},
	})
	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tk, err := e.Submit(context.Background(), testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Wait = %v, want a runner-panic error", err)
	}
	if st := e.Stats(); st.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", st.Panics)
	}

	// Disarm and the same engine executes normally.
	faultinject.Disable()
	tk, err = e.Submit(context.Background(), testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("post-disarm job failed: %v", err)
	}
}

// TestFaultInjectionSimulateError: injected simulate errors fail jobs
// recognizably (errors.Is(ErrInjected)) without crashing the engine.
func TestFaultInjectionSimulateError(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	faultinject.Enable(7, map[string]faultinject.Fault{
		faultinject.PointSimulate: {Err: 1},
	})
	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tk, err := e.Submit(context.Background(), testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	_, werr := tk.Wait(context.Background())
	if !errors.Is(werr, faultinject.ErrInjected) {
		t.Fatalf("Wait = %v, want ErrInjected", werr)
	}
	if executed.Load() != 0 {
		t.Errorf("runner ran %d times under err=1 injection, want 0", executed.Load())
	}
}
