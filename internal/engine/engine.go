// Package engine is the batch-simulation engine behind every sweep in this
// repository: a bounded worker pool that executes content-addressed
// simulation jobs asynchronously, memoizes their results in a sharded
// in-memory store (optionally backed by disk), and journals completions to
// a JSONL checkpoint so an interrupted sweep resumes without redoing
// finished work.
//
// The paper's evaluation (BEST/HEUR/WORST oracles over every mapping ×
// microarchitecture × workload) is embarrassingly parallel and heavily
// redundant — the same (config, workload, mapping, budget) cell recurs
// across figures, ablations and explorations. The engine exploits both
// properties: fan-out is bounded by a fixed worker pool, and redundancy is
// eliminated by a single content-addressed store that every caller shares.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hdsmt/internal/core"
	"hdsmt/internal/faultinject"
	"hdsmt/internal/obslog"
	"hdsmt/internal/telemetry"
)

// Runner executes one simulation request. It must be deterministic: the
// engine serves repeated requests from cache, so a nondeterministic runner
// would make results depend on cache state.
type Runner func(ctx context.Context, req Request) (core.Results, error)

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrently executing simulations; 0 means
	// GOMAXPROCS.
	Workers int
	// Shards is the number of memoization-store shards (lock striping for
	// the in-memory cache and in-flight index); 0 picks a default.
	Shards int
	// QueueDepth bounds the pending-task queue; a full queue applies
	// backpressure to Submit. 0 means a generous default.
	QueueDepth int
	// CacheDir, when non-empty, enables the on-disk memoization store:
	// one JSON file per completed job, content-addressed by request key,
	// shared across processes.
	CacheDir string
	// JournalPath, when non-empty, enables the JSONL checkpoint journal:
	// every completed job appends one line, and a new engine pointed at
	// the same path preloads all completed results, resuming the sweep.
	JournalPath string
	// Telemetry, when non-nil, is the metrics registry the engine
	// registers its instruments in (hit/miss/executed counters, queue- and
	// shard-depth gauges, the job-latency histogram, per-worker busy
	// time). Nil means a private registry: the counters still back Stats,
	// they are just not exported anywhere. Counters carry only
	// deterministic counts; wall-clock quantities (latency, busy time)
	// exist solely as telemetry series, never in results.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records per-job lifecycle spans — queue wait,
	// store lookup, simulate, journal append, plus memo-hit/coalesce
	// instants — for Chrome trace_event export. Nil (the default) records
	// nothing and costs one pointer comparison per site.
	Tracer *telemetry.Tracer
	// Log receives the engine's structured records (corrupt store
	// entries, journal healing, runner panics), each carrying the
	// request/correlation ID of the submission that scheduled the task.
	// Nil means the process-default logger.
	Log *obslog.Logger
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return 8
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 1024
}

// Stats counts engine activity since construction. A warm re-run of a
// sweep shows Hits advancing while Executed stays put — the memoization
// guarantee the tests pin down.
type Stats struct {
	// Submitted counts Submit calls.
	Submitted uint64
	// Hits counts submissions served from the in-memory store (including
	// results preloaded from the journal).
	Hits uint64
	// DiskHits counts executions avoided by the on-disk store.
	DiskHits uint64
	// Coalesced counts submissions attached to an identical in-flight job.
	Coalesced uint64
	// Executed counts simulations actually run.
	Executed uint64
	// Errors counts failed executions.
	Errors uint64
	// Restored counts journal entries preloaded at construction.
	Restored uint64
	// CorruptStore counts on-disk store entries that were corrupt or
	// unreadable: each is logged and re-run as a miss (the rewrite heals
	// the entry) instead of being silently swallowed.
	CorruptStore uint64
	// Panics counts runner panics recovered by the worker: each fails its
	// one job (counted under Errors too) instead of taking the process
	// down.
	Panics uint64
	// JournalTruncated counts journal lines skipped at load because they
	// would not parse — a crash-truncated final line or corruption. The
	// replay heals the file as affected jobs re-run and re-append.
	JournalTruncated uint64
}

// task is one scheduled execution of a request. Coalesced submissions
// share the task and wait on its done channel.
type task struct {
	req  Request
	key  string
	done chan struct{}
	res  core.Results
	err  error
	// engineDone unblocks waiters if the engine closes before the task
	// ever executes (a Submit can race Close and enqueue into a queue no
	// worker will drain again). Nil for pre-resolved cache-hit tickets.
	engineDone <-chan struct{}
	// waiters holds every submitter's context, guarded by the shard
	// mutex. The task is skipped only when all of them are canceled, so
	// one caller canceling its sweep cannot poison a coalesced job that
	// another caller still wants.
	waiters []context.Context
	// created stamps the enqueue time for the job-latency histogram and
	// the queue-wait trace span. Telemetry only — never part of results.
	created time.Time
	// origin is the correlation (request) ID of the submission that
	// created the task, captured from the submit context so engine log
	// lines tie back to the HTTP request that caused the work. Logging
	// only — never part of the cache key or results.
	origin string
	// jt/pspan are the request-scoped span buffer and parent span bound to
	// the submit context (telemetry.WithSpan): the engine records its
	// queue-wait/store-lookup/simulate/journal-append spans there so
	// GET /jobs/{id}/trace serves a stitched tree. Telemetry only — never
	// part of the cache key or results.
	jt    *telemetry.JobTrace
	pspan string
}

func (t *task) resolve(res core.Results, err error) {
	t.res, t.err = res, err
	close(t.done)
}

// shard owns a segment of the memoization store and its in-flight index
// (lock striping, so concurrent submissions rarely contend). Requests
// route to shards by key hash, so two submissions of the same job always
// meet in the same shard and coalesce. Execution itself uses one shared
// bounded queue: any free worker takes the next task, whatever its shard.
type shard struct {
	mu       sync.Mutex
	memo     map[string]core.Results
	inflight map[string]*task
}

// Engine is the sharded batch-simulation engine. Create one with New;
// Close it when done.
type Engine struct {
	runner  Runner
	opts    Options
	shards  []*shard
	queue   chan *task
	store   *diskStore
	journal *journal

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	closed atomic.Bool

	tel    *instruments
	tracer *telemetry.Tracer
	log    *obslog.Logger
}

// New builds an engine executing requests with runner under opts. If a
// journal path is given and the file exists, previously completed results
// are preloaded into the in-memory store (the resume path).
func New(runner Runner, opts Options) (*Engine, error) {
	if runner == nil {
		return nil, fmt.Errorf("engine: nil runner")
	}
	e := &Engine{runner: runner, opts: opts, tracer: opts.Tracer, log: opts.Log}
	if e.log == nil {
		e.log = obslog.Default()
	}
	e.log = e.log.With(obslog.F("component", "engine"))
	e.ctx, e.cancel = context.WithCancel(context.Background())
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e.tel = newInstruments(reg)

	if opts.CacheDir != "" {
		st, err := newDiskStore(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		e.store = st
	}

	e.queue = make(chan *task, opts.queueDepth())
	e.shards = make([]*shard, opts.shards())
	for i := range e.shards {
		e.shards[i] = &shard{
			memo:     map[string]core.Results{},
			inflight: map[string]*task{},
		}
	}

	if opts.JournalPath != "" {
		j, entries, torn, err := openJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		e.journal = j
		for _, ent := range entries {
			sh := e.shardFor(ent.Key)
			sh.memo[ent.Key] = ent.Result
			e.tel.restored.Inc()
		}
		if torn > 0 {
			e.tel.journalTorn.Add(float64(torn))
			e.log.Warn("journal lines skipped; affected jobs re-run",
				obslog.F("journal", opts.JournalPath), obslog.F("skipped", torn))
		}
	}
	e.registerGauges(reg)
	e.tracer.Register(reg)

	e.tracer.SetThreadName(0, "submit")
	for w := 0; w < opts.workers(); w++ {
		if e.tracer.Enabled() {
			e.tracer.SetThreadName(w+1, fmt.Sprintf("worker-%d", w))
		}
		e.wg.Add(1)
		go e.work(w)
	}
	return e, nil
}

// Close stops the workers and waits for in-flight simulations to settle.
// Pending queued tasks resolve with a cancellation error.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.cancel()
	e.wg.Wait()
	// Drain the queue so no waiter blocks forever on an unprocessed task.
	for {
		select {
		case t := <-e.queue:
			e.finish(e.shardFor(t.key), t, core.Results{}, context.Canceled)
			continue
		default:
		}
		break
	}
	if e.journal != nil {
		e.journal.Close()
	}
}

// Accepting reports whether the engine still takes submissions — false
// once Close has begun. Readiness probes use it to flip /readyz before
// in-flight work finishes draining.
func (e *Engine) Accepting() bool { return !e.closed.Load() }

// Stats returns a snapshot of the engine's counters. The counters are the
// telemetry series themselves (exact for any realistic count), so Stats
// and a /metrics scrape can never disagree.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:        uint64(e.tel.submitted.Value()),
		Hits:             uint64(e.tel.memoHits.Value()),
		DiskHits:         uint64(e.tel.diskHits.Value()),
		Coalesced:        uint64(e.tel.coalesced.Value()),
		Executed:         uint64(e.tel.executed.Value()),
		Errors:           uint64(e.tel.errors.Value()),
		Restored:         uint64(e.tel.restored.Value()),
		CorruptStore:     uint64(e.tel.storeCorrupt.Value()),
		Panics:           uint64(e.tel.panics.Value()),
		JournalTruncated: uint64(e.tel.journalTorn.Value()),
	}
}

func (e *Engine) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// Ticket is a handle on a submitted job. Wait blocks until the job
// resolves (possibly instantly, on a cache hit) or ctx is done.
type Ticket struct {
	t *task
	// hit marks a submission served from the in-memory store at submit
	// time, letting callers attribute cache savings to their own
	// submissions without diffing the engine's global counters (which
	// concurrent callers would corrupt).
	hit bool
}

// CacheHit reports whether this submission resolved instantly from the
// in-memory memoization store.
func (tk *Ticket) CacheHit() bool { return tk.hit }

// Wait returns the job's result.
func (tk *Ticket) Wait(ctx context.Context) (core.Results, error) {
	select {
	case <-tk.t.done:
		return tk.t.res, tk.t.err
	default:
	}
	select {
	case <-tk.t.done:
		return tk.t.res, tk.t.err
	case <-ctx.Done():
		return core.Results{}, ctx.Err()
	case <-tk.t.engineDone:
		// The engine closed under the task; it may still have resolved
		// (the Close drain) a moment ago.
		select {
		case <-tk.t.done:
			return tk.t.res, tk.t.err
		default:
			return core.Results{}, fmt.Errorf("engine: closed before %s completed", tk.t.req)
		}
	}
}

// Submit schedules req and returns a ticket for its result. A memoized
// result resolves the ticket immediately; a request identical to one
// already queued or running shares its execution. Submit blocks only when
// the task queue is full (bounded backpressure) and returns
// ctx's error if ctx is done first.
func (e *Engine) Submit(ctx context.Context, req Request) (*Ticket, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("engine: submit on closed engine")
	}
	e.tel.submitted.Inc()
	key := req.Key()
	sh := e.shardFor(key)

	jt, pspan := telemetry.SpanFrom(ctx)
	sh.mu.Lock()
	if res, ok := sh.memo[key]; ok {
		sh.mu.Unlock()
		e.tel.memoHits.Inc()
		if e.tracer.Enabled() {
			e.tracer.Instant(0, "memo-hit", "engine", traceArgs(req, key))
		}
		if jt != nil {
			jt.Mark(pspan, "memo-hit", "engine", traceArgs(req, key))
		}
		t := &task{done: make(chan struct{})}
		t.resolve(res, nil)
		return &Ticket{t: t, hit: true}, nil
	}
	if t, ok := sh.inflight[key]; ok {
		t.waiters = append(t.waiters, ctx)
		sh.mu.Unlock()
		e.tel.coalesced.Inc()
		if e.tracer.Enabled() {
			e.tracer.Instant(0, "coalesce", "engine", traceArgs(req, key))
		}
		// The execution spans land in the creator's trace; this submitter's
		// trace records that its work was coalesced onto it.
		if jt != nil {
			jt.Mark(pspan, "coalesce", "engine", traceArgs(req, key))
		}
		return &Ticket{t: t}, nil
	}
	t := &task{
		req:        req,
		key:        key,
		done:       make(chan struct{}),
		engineDone: e.ctx.Done(),
		waiters:    []context.Context{ctx},
		created:    time.Now(),
		origin:     obslog.RequestID(ctx),
		jt:         jt,
		pspan:      pspan,
	}
	sh.inflight[key] = t
	sh.mu.Unlock()

	select {
	case e.queue <- t:
		return &Ticket{t: t}, nil
	case <-ctx.Done():
		e.abandon(sh, t)
		return nil, ctx.Err()
	case <-e.ctx.Done():
		e.abandon(sh, t)
		return nil, fmt.Errorf("engine: closed while submitting")
	}
}

// abandon handles a task whose enqueue failed after it was published to
// the in-flight index. A coalesced waiter may have attached meanwhile; if
// any is still live, the enqueue is completed on its behalf — blocking if
// the queue is full, since a worker frees a slot within one task — so a
// live waiter is never handed another caller's cancellation. Only a task
// nobody wants (or an engine shutting down) is withdrawn and resolved
// canceled; the inflight delete and the liveness decision share one lock
// hold, so a new waiter either attaches before (and keeps the task alive)
// or finds no entry and starts a fresh task.
func (e *Engine) abandon(sh *shard, t *task) {
	if e.withdrawIfUnwanted(sh, t) {
		return
	}
	select {
	case e.queue <- t:
	case <-e.ctx.Done():
		e.finish(sh, t, core.Results{}, context.Canceled)
	}
}

// withdrawIfUnwanted resolves a not-yet-executed task with a cancellation
// when every waiter's context is already canceled, reporting whether it
// did. The liveness decision and the in-flight withdrawal share one lock
// hold — the invariant that makes coalescing onto a dying task safe: a
// live waiter either attaches before the withdrawal (and is seen here,
// keeping the task alive) or finds no in-flight entry and starts fresh.
func (e *Engine) withdrawIfUnwanted(sh *shard, t *task) bool {
	sh.mu.Lock()
	for _, ctx := range t.waiters {
		if ctx.Err() == nil {
			sh.mu.Unlock()
			return false
		}
	}
	delete(sh.inflight, t.key)
	sh.mu.Unlock()
	t.resolve(core.Results{}, context.Canceled)
	return true
}

// RunBatch submits every request and waits for all of them, returning
// results in input order — deterministic regardless of worker count or
// scheduling. The first error encountered (in input order) is returned.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) ([]core.Results, error) {
	tickets := make([]*Ticket, len(reqs))
	var firstErr error
	for i, req := range reqs {
		tk, err := e.Submit(ctx, req)
		if err != nil {
			firstErr = fmt.Errorf("engine: submitting %s: %w", req, err)
			break
		}
		tickets[i] = tk
	}
	out := make([]core.Results, len(reqs))
	for i, tk := range tickets {
		if tk == nil {
			continue
		}
		res, err := tk.Wait(ctx)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: %s: %w", reqs[i], err)
		}
		out[i] = res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// work is one worker's loop on the shared queue. w is the worker index,
// used for the busy-time counter and as the trace track (tid w+1; tid 0
// is the submit side).
func (e *Engine) work(w int) {
	defer e.wg.Done()
	busy := e.tel.workerBusy.With(fmt.Sprintf("%d", w))
	for {
		select {
		case t := <-e.queue:
			start := time.Now()
			e.execute(e.shardFor(t.key), t, w)
			busy.Add(time.Since(start).Seconds())
		case <-e.ctx.Done():
			return
		}
	}
}

// traceArgs labels a job's trace events; called only when tracing is on.
func traceArgs(req Request, key string) map[string]string {
	return map[string]string{
		"config":   req.Cfg.Name,
		"workload": req.Workload.Name,
		"key":      key[:12],
	}
}

// execute runs one task: disk store first, then the runner; successes are
// stored, journaled and handed to every waiter. The simulation itself runs
// under the engine's context — a submitter's cancellation skips the task
// only when every coalesced waiter has canceled.
func (e *Engine) execute(sh *shard, t *task, w int) {
	if e.withdrawIfUnwanted(sh, t) {
		return
	}
	tid := w + 1
	if e.tracer.Enabled() {
		e.tracer.Complete(tid, "queue-wait", "engine", t.created, time.Now(), nil)
	}
	t.jt.Add(t.pspan, "queue-wait", "engine", t.created, time.Now(), nil)
	if e.store != nil {
		sp := e.tracer.Begin(tid, "store-lookup", "engine")
		lookupStart := time.Now()
		res, ok, err := e.store.load(t.key)
		sp.End()
		t.jt.Add(t.pspan, "store-lookup", "engine", lookupStart, time.Now(), nil)
		switch {
		case err != nil:
			// A corrupt or unreadable entry is a counted, logged event —
			// not a silent miss. The job re-runs and the rewrite below
			// heals the entry.
			e.tel.storeCorrupt.Inc()
			e.log.Warn("corrupt store entry; re-running",
				obslog.F("req", t.req), obslog.F("key", t.key[:12]),
				obslog.F("request_id", t.origin), obslog.Err(err))
		case ok:
			e.tel.diskHits.Inc()
			if e.journal != nil {
				// A cache-served job still completes this sweep's cell;
				// journal it so the checkpoint stays self-contained even
				// if the cache directory later disappears.
				jsp := e.tracer.Begin(tid, "journal-append", "engine")
				jstart := time.Now()
				_ = e.journal.append(t.key, res)
				jsp.End()
				t.jt.Add(t.pspan, "journal-append", "engine", jstart, time.Now(), nil)
			}
			e.finish(sh, t, res, nil)
			e.tel.jobSeconds.Observe(time.Since(t.created).Seconds())
			return
		}
	}

	sp := e.tracer.Begin(tid, "simulate", "engine")
	simStart := time.Now()
	res, err := e.simulate(t)
	if e.tracer.Enabled() {
		sp.EndWith(traceArgs(t.req, t.key))
	}
	if t.jt != nil {
		t.jt.Add(t.pspan, "simulate", "engine", simStart, time.Now(), traceArgs(t.req, t.key))
	}
	e.tel.executed.Inc()
	if err != nil {
		e.tel.errors.Inc()
		e.finish(sh, t, core.Results{}, err)
		return
	}
	if e.store != nil {
		// Best effort: a failed disk write degrades to memory-only caching.
		_ = e.store.save(t.key, res)
	}
	if e.journal != nil {
		jsp := e.tracer.Begin(tid, "journal-append", "engine")
		jstart := time.Now()
		_ = e.journal.append(t.key, res)
		jsp.End()
		t.jt.Add(t.pspan, "journal-append", "engine", jstart, time.Now(), nil)
	}
	e.finish(sh, t, res, nil)
	e.tel.jobSeconds.Observe(time.Since(t.created).Seconds())
}

// simulate invokes the runner on one task with panic containment: a
// panicking simulation (a core bug on a pathological configuration, or an
// injected chaos fault) fails that one job — counted, logged, reported to
// its waiters — instead of unwinding the worker and killing the process.
func (e *Engine) simulate(t *task) (res core.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.tel.panics.Inc()
			e.log.Error("runner panicked; job failed, worker recovered",
				obslog.F("req", t.req), obslog.F("request_id", t.origin),
				obslog.F("panic", fmt.Sprint(r)))
			err = fmt.Errorf("engine: runner panic on %s: %v", t.req, r)
		}
	}()
	if err := faultinject.Hit(faultinject.PointSimulate); err != nil {
		return core.Results{}, err
	}
	return e.runner(e.ctx, t.req)
}

// finish publishes a task's outcome: successful results enter the memo
// store, the in-flight entry is cleared, and waiters are released.
func (e *Engine) finish(sh *shard, t *task, res core.Results, err error) {
	sh.mu.Lock()
	if err == nil {
		sh.memo[t.key] = res
	}
	delete(sh.inflight, t.key)
	sh.mu.Unlock()
	t.resolve(res, err)
}
