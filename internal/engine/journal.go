package engine

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"time"

	"hdsmt/internal/core"
	"hdsmt/internal/faultinject"
	"hdsmt/internal/jsonl"
	"hdsmt/internal/retry"
)

// The checkpoint journal is an append-only JSONL file: one line per
// completed job, {"key": <request key>, "result": <core.Results>}. A sweep
// killed mid-flight loses at most the simulations that had not yet
// completed; pointing a new engine at the same path preloads every
// journaled result, so the re-run only executes the remainder. A torn
// final line (the process died mid-write) is counted, skipped and healed
// on load (see internal/jsonl).

type journalEntry struct {
	Key    string       `json:"key"`
	Result core.Results `json:"result"`
}

type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (creating if needed) the journal at path and returns
// it along with every well-formed entry already present. torn counts the
// lines skipped because they would not parse — a crash-truncated final
// line, or corruption — so the caller can surface the heal in telemetry
// instead of swallowing it.
func openJournal(path string) (*journal, []journalEntry, int, error) {
	var entries []journalEntry
	f, torn, err := jsonl.OpenHealed(path, func(line []byte) error {
		var ent journalEntry
		if err := json.Unmarshal(line, &ent); err != nil {
			return err // torn or corrupt line: the job simply re-runs
		}
		entries = append(entries, ent)
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return &journal{f: f}, entries, torn, nil
}

// append journals one completed job. Each entry is written in a single
// Write call so concurrent completions never interleave bytes; transient
// write failures are retried with backoff before the append degrades to
// best-effort.
func (j *journal) append(key string, res core.Results) error {
	b, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	return retry.Do(context.Background(), ioRetryPolicy, func() error {
		if err := faultinject.Hit(faultinject.PointJournalAppend); err != nil {
			return err
		}
		_, werr := j.f.Write(b)
		return werr
	})
}

// ioRetryPolicy is the shared schedule for the engine's disk I/O: three
// quick tries absorb transient failures (EINTR, a slow NFS mount, an
// injected fault) without stalling a worker for long.
var ioRetryPolicy = retry.Policy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
