package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"hdsmt/internal/core"
)

// The checkpoint journal is an append-only JSONL file: one line per
// completed job, {"key": <request key>, "result": <core.Results>}. A sweep
// killed mid-flight loses at most the simulations that had not yet
// completed; pointing a new engine at the same path preloads every
// journaled result, so the re-run only executes the remainder. A torn
// final line (the process died mid-write) is skipped on load.

type journalEntry struct {
	Key    string       `json:"key"`
	Result core.Results `json:"result"`
}

type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (creating if needed) the journal at path and returns
// it along with every well-formed entry already present.
func openJournal(path string) (*journal, []journalEntry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: opening journal: %w", err)
	}
	var entries []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ent journalEntry
		if err := json.Unmarshal(line, &ent); err != nil {
			continue // torn or corrupt line: the job simply re-runs
		}
		entries = append(entries, ent)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("engine: reading journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("engine: seeking journal: %w", err)
	}
	return &journal{f: f}, entries, nil
}

// append journals one completed job. Each entry is written in a single
// Write call so concurrent completions never interleave bytes.
func (j *journal) append(key string, res core.Results) error {
	b, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(b)
	return err
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
