package engine

import (
	"strconv"

	"hdsmt/internal/telemetry"
)

// instruments is the engine's telemetry: one series per Stats counter plus
// the latency histogram and per-worker busy time. Always non-nil — with no
// registry configured they land in a private registry, still backing
// Stats() — so the hot path never branches on "is telemetry on".
type instruments struct {
	submitted    *telemetry.Counter
	memoHits     *telemetry.Counter
	diskHits     *telemetry.Counter
	coalesced    *telemetry.Counter
	executed     *telemetry.Counter
	errors       *telemetry.Counter
	restored     *telemetry.Counter
	storeCorrupt *telemetry.Counter
	panics       *telemetry.Counter
	journalTorn  *telemetry.Counter
	workerBusy   *telemetry.CounterVec
	jobSeconds   *telemetry.Histogram
}

func newInstruments(reg *telemetry.Registry) *instruments {
	return &instruments{
		submitted:    reg.Counter(telemetry.MetricEngineSubmitted, "Submit calls"),
		memoHits:     reg.Counter(telemetry.MetricEngineMemoHits, "submissions served from the in-memory memo store"),
		diskHits:     reg.Counter(telemetry.MetricEngineDiskHits, "executions avoided by the on-disk store"),
		coalesced:    reg.Counter(telemetry.MetricEngineCoalesced, "submissions attached to an identical in-flight job"),
		executed:     reg.Counter(telemetry.MetricEngineExecuted, "simulations actually run"),
		errors:       reg.Counter(telemetry.MetricEngineErrors, "failed executions"),
		restored:     reg.Counter(telemetry.MetricEngineRestored, "journal entries preloaded at construction"),
		storeCorrupt: reg.Counter(telemetry.MetricEngineStoreCorrupt, "corrupt or unreadable on-disk store entries re-run as misses"),
		panics:       reg.Counter(telemetry.MetricEnginePanics, "runner panics recovered by workers (each fails one job, not the process)"),
		journalTorn:  reg.Counter(telemetry.MetricEngineJournalTorn, "truncated or corrupt journal lines skipped at load"),
		workerBusy:   reg.CounterVec(telemetry.MetricEngineWorkerBusy, "time each worker spent executing tasks", "worker"),
		jobSeconds:   reg.Histogram(telemetry.MetricEngineJobSeconds, "job latency from enqueue to completion (queue wait + execution)", nil),
	}
}

// registerGauges exposes the engine's live state as sampled gauges: the
// shared-queue depth, each shard's queued-or-running job count, and the
// in-memory cache hit ratio. Sampled at scrape time, so they cost nothing
// between scrapes; re-registration replaces the sampler, so the gauges
// track the most recently built engine when several share one registry.
func (e *Engine) registerGauges(reg *telemetry.Registry) {
	reg.GaugeFunc(telemetry.MetricEngineQueueDepth,
		"tasks waiting in the shared execution queue",
		func() float64 { return float64(len(e.queue)) })
	reg.GaugeFunc(telemetry.MetricEngineCacheRatio,
		"in-memory memo hits over submissions since construction",
		func() float64 {
			sub := e.tel.submitted.Value()
			if sub == 0 {
				return 0
			}
			return e.tel.memoHits.Value() / sub
		})
	for i, sh := range e.shards {
		sh := sh
		reg.GaugeFuncWith(telemetry.MetricEngineShardDepth,
			"jobs owned by the shard (queued or running)", "shard", strconv.Itoa(i),
			func() float64 {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				return float64(len(sh.inflight))
			})
	}
}
