package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// Request describes one processor simulation: a microarchitecture, a
// workload, a thread-to-pipeline mapping and an instruction budget. It is
// the engine's unit of work and of memoization — two Requests with the
// same content are the same job.
type Request struct {
	// Cfg is the full microarchitecture, parameters included, so variants
	// that share a name but differ in parameters (ablation sweeps mutate
	// RegAccessLatency and FetchBuf) key differently.
	Cfg config.Microarch `json:"cfg"`
	// Workload names the benchmark mix. Benchmarks are identified by name;
	// their traces are deterministic functions of the name and seed, so the
	// name list fully identifies the inputs.
	Workload workload.Workload `json:"workload"`
	// Mapping assigns each thread a pipeline.
	Mapping mapping.Mapping `json:"mapping"`
	// Budget is the measured instructions per thread (the stopping rule).
	Budget uint64 `json:"budget"`
	// Warmup is the unmeasured per-thread instruction count run first.
	Warmup uint64 `json:"warmup"`
	// Policy optionally overrides the fetch policy by name (as reported by
	// fetch.Policy.Name); "" means the configuration's default.
	Policy string `json:"policy,omitempty"`
	// Remap, when nonzero, re-evaluates the §2.1 heuristic mapping every
	// Remap cycles on observed per-thread miss counts, migrating threads
	// when the ranking changes (the paper's §7 dynamic-mapping proposal).
	// 0 keeps the static mapping. omitempty keeps static requests' keys —
	// and therefore every existing disk cache and journal — unchanged.
	Remap uint64 `json:"remap,omitempty"`
	// SamplePeriod/SampleDetail/SampleWarm, when SamplePeriod is nonzero,
	// select sampled execution (core.RunSampled) with these parameters.
	// Every sampling parameter participates in the key: a sampled estimate
	// and a full run of the same design point — or two sampled runs at
	// different operating points — are different jobs and memoize
	// separately. omitempty keeps exact requests' keys, and therefore every
	// existing disk cache and journal, unchanged.
	SamplePeriod uint64 `json:"sample_period,omitempty"`
	SampleDetail uint64 `json:"sample_detail,omitempty"`
	SampleWarm   uint64 `json:"sample_warm,omitempty"`
}

// Sample returns the request's sampling parameters in core's terms; the
// zero value (Enabled() == false) selects exact execution.
func (r Request) Sample() core.SampleParams {
	return core.SampleParams{Period: r.SamplePeriod, Detail: r.SampleDetail, Warm: r.SampleWarm}
}

// Key returns the request's content-addressed identity: a hex SHA-256 of
// the canonical JSON encoding. Struct fields marshal in declaration order,
// so equal requests produce equal keys across processes — the property the
// on-disk store and the checkpoint journal rely on.
func (r Request) Key() string {
	b, err := json.Marshal(r)
	if err != nil {
		// Request is plain data (strings, ints, slices); Marshal cannot
		// fail on it. Guard anyway so a future field cannot corrupt keys
		// silently.
		panic(fmt.Sprintf("engine: marshaling request key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// String describes the request compactly for logs and errors.
func (r Request) String() string {
	s := fmt.Sprintf("%s/%s map=%v budget=%d", r.Cfg.Name, r.Workload.Name, r.Mapping, r.Budget)
	if r.Policy != "" {
		s += " policy=" + r.Policy
	}
	if r.Remap != 0 {
		s += fmt.Sprintf(" remap=%d", r.Remap)
	}
	if r.SamplePeriod != 0 {
		s += fmt.Sprintf(" sampled=%d/%d+%d", r.SamplePeriod, r.SampleDetail, r.SampleWarm)
	}
	return s
}
