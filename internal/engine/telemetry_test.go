package engine_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"hdsmt/internal/engine"
	"hdsmt/internal/telemetry"
)

// TestCorruptStoreEntryRecovers is the regression test for silent
// cache-miss on a torn disk-store write: a truncated entry must be
// counted, the job re-run, and the entry healed by the rewrite.
func TestCorruptStoreEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	var executed atomic.Uint64
	req := testRequest(1)

	// Populate the store, then truncate the entry mid-JSON.
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := e.RunBatch(context.Background(), []engine.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	path := filepath.Join(dir, req.Key()+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh engine (empty memo) hits the torn entry, re-runs, heals.
	e2, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	gotRes, err := e2.RunBatch(context.Background(), []engine.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Errorf("result after corruption = %+v, want %+v", gotRes, wantRes)
	}
	if executed.Load() != 2 {
		t.Errorf("executed %d simulations, want 2 (corrupt entry must re-run)", executed.Load())
	}
	st := e2.Stats()
	if st.CorruptStore != 1 {
		t.Errorf("CorruptStore = %d, want 1", st.CorruptStore)
	}
	if st.DiskHits != 0 {
		t.Errorf("DiskHits = %d, want 0 (corrupt entry is not a hit)", st.DiskHits)
	}

	// The rewrite healed the entry: a third engine serves it from disk.
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(healed) {
		t.Fatal("store entry not healed to valid JSON")
	}
	e3, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if _, err := e3.RunBatch(context.Background(), []engine.Request{req}); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 2 {
		t.Errorf("healed entry re-ran the simulation (executed = %d)", executed.Load())
	}
	if e3.Stats().DiskHits != 1 {
		t.Errorf("healed entry DiskHits = %d, want 1", e3.Stats().DiskHits)
	}
}

// TestEngineTelemetry checks the registry-backed counters agree with
// Stats, the Prometheus exposition carries the engine families, and the
// trace covers every job the engine handled.
func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{
		Workers: 4, Telemetry: reg, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	reqs := testBatch(8)
	ctx := context.Background()
	if _, err := e.RunBatch(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunBatch(ctx, reqs); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	checks := map[string]uint64{
		telemetry.MetricEngineSubmitted: st.Submitted,
		telemetry.MetricEngineMemoHits:  st.Hits,
		telemetry.MetricEngineExecuted:  st.Executed,
		telemetry.MetricEngineErrors:    st.Errors,
	}
	for name, want := range checks {
		if got := reg.Total(name); got != float64(want) {
			t.Errorf("%s = %v, want %d (must agree with Stats)", name, got, want)
		}
	}
	if st.Executed != 8 || st.Hits != 8 {
		t.Errorf("stats = %+v, want 8 executed and 8 memo hits", st)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		telemetry.MetricEngineCacheRatio + " 0.5",
		telemetry.MetricEngineShardDepth + `{shard="0"} 0`,
		telemetry.MetricEngineQueueDepth + " 0",
		telemetry.MetricEngineJobSeconds + "_count 8",
		telemetry.MetricEngineWorkerBusy + `{worker="`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Trace coverage: one simulate span per execution, one memo-hit
	// instant per warm submission.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	var tb strings.Builder
	if err := tr.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(tb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, ev := range doc.TraceEvents {
		count[ev.Name+"/"+ev.Ph]++
	}
	if count["simulate/X"] != 8 {
		t.Errorf("simulate spans = %d, want 8", count["simulate/X"])
	}
	if count["memo-hit/i"] != 8 {
		t.Errorf("memo-hit instants = %d, want 8", count["memo-hit/i"])
	}
	if count["queue-wait/X"] != 8 {
		t.Errorf("queue-wait spans = %d, want 8", count["queue-wait/X"])
	}
	if count["thread_name/M"] != 5 {
		t.Errorf("thread_name metadata = %d, want 5 (submit + 4 workers)", count["thread_name/M"])
	}
}
