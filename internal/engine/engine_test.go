package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/mapping"
	"hdsmt/internal/workload"
)

// fakeRunner returns a deterministic runner that derives a result from
// the request and counts executions.
func fakeRunner(executed *atomic.Uint64) engine.Runner {
	return func(_ context.Context, req engine.Request) (core.Results, error) {
		executed.Add(1)
		return core.Results{
			Config: req.Cfg.Name,
			Cycles: req.Budget,
			IPC:    float64(req.Budget) / 100,
		}, nil
	}
}

// testRequest builds the i-th of a family of distinct requests.
func testRequest(i int) engine.Request {
	return engine.Request{
		Cfg:      config.MustParse("M8"),
		Workload: workload.MustByName("2W1"),
		Mapping:  mapping.Mapping{0, 0},
		Budget:   uint64(1_000 + i),
		Warmup:   100,
	}
}

func testBatch(n int) []engine.Request {
	reqs := make([]engine.Request, n)
	for i := range reqs {
		reqs[i] = testRequest(i)
	}
	return reqs
}

func TestRequestKey(t *testing.T) {
	a, b := testRequest(1), testRequest(1)
	if a.Key() != b.Key() {
		t.Error("identical requests must share a key")
	}
	variants := []engine.Request{testRequest(2)}
	pol := testRequest(1)
	pol.Policy = "FLUSH"
	variants = append(variants, pol)
	warm := testRequest(1)
	warm.Warmup = 200
	variants = append(variants, warm)
	mapped := testRequest(1)
	mapped.Mapping = mapping.Mapping{0, 1}
	variants = append(variants, mapped)
	params := testRequest(1)
	params.Cfg.Params.RegAccessLatency = 3
	variants = append(variants, params)
	fb := testRequest(1)
	fb.Cfg.Pipelines = append([]config.Model(nil), fb.Cfg.Pipelines...)
	fb.Cfg.Pipelines[0].FetchBuf = 99
	variants = append(variants, fb)
	seen := map[string]bool{a.Key(): true}
	for i, v := range variants {
		if seen[v.Key()] {
			t.Errorf("variant %d does not change the key", i)
		}
		seen[v.Key()] = true
	}
}

// TestSampledRequestKeys pins the sampling-parameter keying: a sampled and
// a full run of the same genotype are distinct jobs, every sampling
// parameter participates in the key, and exact requests' keys — and
// therefore every existing disk cache and journal — are untouched by the
// new fields.
func TestSampledRequestKeys(t *testing.T) {
	full := testRequest(1)
	sampled := testRequest(1)
	sampled.SamplePeriod, sampled.SampleDetail, sampled.SampleWarm = 50_000, 2_000, 1_000

	if full.Key() == sampled.Key() {
		t.Fatal("sampled and full runs of the same genotype share a key")
	}
	seen := map[string]bool{full.Key(): true, sampled.Key(): true}
	for _, mut := range []func(*engine.Request){
		func(r *engine.Request) { r.SamplePeriod = 60_000 },
		func(r *engine.Request) { r.SampleDetail = 1_000 },
		func(r *engine.Request) { r.SampleWarm = 500 },
	} {
		v := sampled
		mut(&v)
		if seen[v.Key()] {
			t.Errorf("sampling-parameter change %+v does not change the key", v.Sample())
		}
		seen[v.Key()] = true
	}

	// Exact requests must serialize without the sampling fields, so their
	// keys predate the fields' existence.
	b, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("sample")) {
		t.Errorf("exact request encoding mentions sampling: %s", b)
	}

	// And the engine must treat the two as separate jobs: both execute.
	var executed atomic.Uint64
	eng, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.RunBatch(context.Background(), []engine.Request{full, sampled, full, sampled}); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 2 {
		t.Errorf("executed %d simulations, want 2 (sampled and full memoized separately, repeats served from cache)", got)
	}
}

func TestMemoization(t *testing.T) {
	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	reqs := testBatch(10)
	first, err := e.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 10 {
		t.Fatalf("cold run executed %d, want 10", got)
	}
	second, err := e.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 10 {
		t.Errorf("warm re-run executed %d new simulations, want 0", got-10)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("warm results differ from cold results")
	}
	st := e.Stats()
	if st.Hits != 10 {
		t.Errorf("hits = %d, want 10", st.Hits)
	}
	if st.Executed != 10 {
		t.Errorf("executed = %d, want 10", st.Executed)
	}
}

func TestCoalescing(t *testing.T) {
	var executed atomic.Uint64
	gate := make(chan struct{})
	runner := func(_ context.Context, req engine.Request) (core.Results, error) {
		executed.Add(1)
		<-gate
		return core.Results{IPC: 1}, nil
	}
	e, err := engine.New(runner, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 8
	var wg sync.WaitGroup
	results := make([]core.Results, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		tk, err := e.Submit(context.Background(), testRequest(0))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tk.Wait(context.Background())
		}(i)
	}
	close(gate)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].IPC != 1 {
			t.Errorf("waiter %d got %+v", i, results[i])
		}
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("identical in-flight submissions executed %d times, want 1", got)
	}
	if st := e.Stats(); st.Coalesced != n-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
}

// TestDeterministicAcrossWorkers pins the engine's ordering guarantee:
// batch results are in input order and bit-identical regardless of the
// worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	reqs := testBatch(16)
	var blobs [][]byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		var executed atomic.Uint64
		e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		results, err := e.RunBatch(context.Background(), reqs)
		e.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Cycles != reqs[i].Budget {
				t.Fatalf("workers=%d: result %d out of order", workers, i)
			}
		}
		b, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Errorf("worker count %d produced different JSON", i)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	runner := func(_ context.Context, req engine.Request) (core.Results, error) {
		if req.Budget == 1_003 {
			return core.Results{}, fmt.Errorf("boom")
		}
		return core.Results{IPC: 1}, nil
	}
	e, err := engine.New(runner, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RunBatch(context.Background(), testBatch(6)); err == nil {
		t.Fatal("batch with failing job must error")
	}
	if st := e.Stats(); st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
	// Failures are not memoized: a retry re-executes.
	tk, err := e.Submit(context.Background(), testRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err == nil {
		t.Error("retry of failing job must fail again (not serve a cached zero)")
	}
}

func TestJournalResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	reqs := testBatch(8)

	// Reference run, no journal.
	var refExec atomic.Uint64
	ref, err := engine.New(fakeRunner(&refExec), engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunBatch(context.Background(), reqs)
	ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the "killed" sweep completes only the first half.
	var exec1 atomic.Uint64
	e1, err := engine.New(fakeRunner(&exec1), engine.Options{Workers: 2, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.RunBatch(context.Background(), reqs[:4]); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Simulate a torn final line from the kill.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: resume. The journaled half must not re-execute.
	var exec2 atomic.Uint64
	e2, err := engine.New(fakeRunner(&exec2), engine.Options{Workers: 2, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if st := e2.Stats(); st.Restored != 4 {
		t.Fatalf("restored = %d, want 4", st.Restored)
	}
	got, err := e2.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if exec2.Load() != 4 {
		t.Errorf("resume executed %d, want only the 4 missing jobs", exec2.Load())
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Error("resumed results differ from uninterrupted run")
	}
}

func TestDiskStoreSharing(t *testing.T) {
	dir := t.TempDir()
	reqs := testBatch(5)

	var exec1 atomic.Uint64
	e1, err := engine.New(fakeRunner(&exec1), engine.Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e1.RunBatch(context.Background(), reqs)
	e1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if exec1.Load() != 5 {
		t.Fatalf("cold run executed %d", exec1.Load())
	}

	// A second engine (fresh memory) over the same directory — as a new
	// process would be — serves everything from disk.
	var exec2 atomic.Uint64
	e2, err := engine.New(fakeRunner(&exec2), engine.Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if exec2.Load() != 0 {
		t.Errorf("disk-warm run executed %d simulations, want 0", exec2.Load())
	}
	if st := e2.Stats(); st.DiskHits != 5 {
		t.Errorf("disk hits = %d, want 5", st.DiskHits)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("disk results differ")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Submit(context.Background(), testRequest(0)); err == nil {
		t.Error("submit on closed engine must fail")
	}
}

func TestCanceledContext(t *testing.T) {
	var executed atomic.Uint64
	e, err := engine.New(fakeRunner(&executed), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err := e.Submit(ctx, testRequest(0))
	if err == nil {
		if _, werr := tk.Wait(context.Background()); werr == nil {
			t.Error("canceled submission must not produce a result")
		}
	}
}
