package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"hdsmt/internal/core"
	"hdsmt/internal/faultinject"
	"hdsmt/internal/retry"
)

// diskStore is the on-disk half of the memoization store: one JSON file
// per completed job, named by the request's content-addressed key. Unlike
// the journal (which checkpoints one sweep), the store is a shared,
// unbounded cache: any process pointed at the same directory reuses any
// simulation ever run there.
type diskStore struct {
	dir string
}

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: creating cache dir: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

func (s *diskStore) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// load fetches a cached result; ok reports whether the key was present
// and well formed. Transient read failures are retried with backoff;
// a missing entry and a corrupt entry are permanent (more attempts
// cannot conjure or fix the bytes).
func (s *diskStore) load(key string) (res core.Results, ok bool, err error) {
	var b []byte
	err = retry.Do(context.Background(), ioRetryPolicy, func() error {
		if err := faultinject.Hit(faultinject.PointStoreLoad); err != nil {
			return err
		}
		var rerr error
		b, rerr = os.ReadFile(s.path(key))
		if rerr != nil && os.IsNotExist(rerr) {
			return retry.Permanent(rerr)
		}
		return rerr
	})
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return core.Results{}, false, nil
		}
		return core.Results{}, false, err
	}
	if err := json.Unmarshal(b, &res); err != nil {
		// A torn write from a killed process. Surface it: the caller counts
		// and logs the corruption, re-runs the job, and the rewrite heals
		// the entry.
		return core.Results{}, false, fmt.Errorf("decoding cached entry %s: %w", key, err)
	}
	return res, true, nil
}

// save persists a result atomically (temp file + rename) so concurrent
// readers never observe a partial entry. The whole write is retried on
// transient failure; a final failure degrades to memory-only caching.
func (s *diskStore) save(key string, res core.Results) error {
	b, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return retry.Do(context.Background(), ioRetryPolicy, func() error {
		if err := faultinject.Hit(faultinject.PointStoreSave); err != nil {
			return err
		}
		return s.writeAtomic(key, b)
	})
}

func (s *diskStore) writeAtomic(key string, b []byte) error {
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(key))
}
