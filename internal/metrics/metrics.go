// Package metrics provides the evaluation arithmetic of the paper's result
// section: harmonic means over workloads, performance per area, heuristic
// accuracy, and relative improvements.
package metrics

import (
	"fmt"
	"math"
)

// HMean returns the harmonic mean of xs, the paper's aggregation over
// workloads of the same type and size ("the harmonic mean of all workloads
// of a same type and size is shown"). It returns 0 for an empty slice and
// panics on non-positive values (IPC is always positive).
func HMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			panic(fmt.Sprintf("metrics: harmonic mean of non-positive value %v", x))
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// PerArea converts a performance figure to performance per mm².
func PerArea(ipc, areaMM2 float64) float64 {
	if areaMM2 <= 0 {
		panic(fmt.Sprintf("metrics: non-positive area %v", areaMM2))
	}
	return ipc / areaMM2
}

// Accuracy is the paper's mapping-policy accuracy: the heuristic result as
// a fraction of the oracle (BEST) result. 1.0 means the heuristic found an
// optimal mapping.
func Accuracy(heur, best float64) float64 {
	if best <= 0 {
		panic(fmt.Sprintf("metrics: non-positive oracle value %v", best))
	}
	return heur / best
}

// Improvement returns the relative improvement of a over b, as the fraction
// (a-b)/b the paper quotes (e.g. +0.13 for "a 13% improvement").
func Improvement(a, b float64) float64 {
	if b <= 0 {
		panic(fmt.Sprintf("metrics: non-positive base value %v", b))
	}
	return (a - b) / b
}

// GeoMean returns the geometric mean, used for aggregating relative
// improvements across workload groups.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: geometric mean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
