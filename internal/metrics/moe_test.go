package metrics

import "testing"

func TestMoEChannel(t *testing.T) {
	v := Values{"ipc": 2.5}
	if _, ok := MoEOf(v, "ipc"); ok {
		t.Error("exact value reports a margin")
	}
	SetMoE(v, "ipc", 0.1)
	if moe, ok := MoEOf(v, "ipc"); !ok || moe != 0.1 {
		t.Errorf("MoEOf = %v,%v after SetMoE(0.1)", moe, ok)
	}
	if got := RelMoE(v, "ipc"); got != 0.04 {
		t.Errorf("RelMoE = %v, want 0.04", got)
	}
	if RelMoE(v, "area") != 0 {
		t.Error("absent metric has nonzero relative margin")
	}

	// Non-positive margins record nothing: exact results stay byte-identical.
	w := Values{"ipc": 2.5}
	SetMoE(w, "ipc", 0)
	SetMoE(w, "ipc", -1)
	if len(w) != 1 {
		t.Errorf("zero/negative margins left companion entries: %v", w)
	}

	if !IsMoEKey("ipc.moe") || IsMoEKey("ipc") {
		t.Error("IsMoEKey misclassifies")
	}
	if BaseKey("ipc.moe") != "ipc" || BaseKey("energy") != "energy" {
		t.Error("BaseKey misresolves")
	}
	if MoEKey("energy") != "energy.moe" {
		t.Error("MoEKey misbuilds")
	}

	// Companion keys are not metrics: no registered key carries the suffix,
	// and Finalize must ignore companions rather than derive from them.
	for _, m := range All() {
		if IsMoEKey(m.Key) {
			t.Errorf("registry contains a companion key %q", m.Key)
		}
	}
	u := Values{"ipc": 2.0, "area": 100}
	SetMoE(u, "ipc", 0.2)
	Finalize(u)
	if _, ok := u["per_area.moe"]; ok {
		t.Error("Finalize invented a margin for a derived metric")
	}
	if u["per_area"] != 0.02 {
		t.Errorf("per_area = %v, want 0.02", u["per_area"])
	}
}

func TestMoEMarshalAdjacent(t *testing.T) {
	v := Values{"ipc": 2.5}
	SetMoE(v, "ipc", 0.125)
	b, err := v.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `{"ipc":2.5,"ipc.moe":0.125}`; got != want {
		t.Errorf("marshaled %s, want %s", got, want)
	}
}
