package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// The metric registry is the one place a metric is described: its key, its
// optimization sense, its units, how the multi-objective layer should box
// it, whether evaluating it needs per-benchmark alone-run baselines, and —
// for derived metrics — how to compute it from the base metrics. Every
// consumer (search scores, Pareto objectives, the CLI's -objectives flag,
// the server's job validation, report exporters) resolves metrics here, so
// registering a new metric is the whole job of adding one: no score struct,
// trajectory point, extractor switch or CLI table needs touching.

// Sense is a metric's optimization direction.
type Sense int

// The two senses. Maximize is the zero value, matching the common case
// (IPC, fairness).
const (
	Maximize Sense = iota
	Minimize
)

// String renders the sense ("max"/"min").
func (s Sense) String() string {
	if s == Minimize {
		return "min"
	}
	return "max"
}

// Metric describes one registered metric.
type Metric struct {
	// Key names the metric ("ipc", "area", "energy", ...). Keys are unique
	// across the registry and are the identity every layer passes around.
	Key string
	// Sense is the optimization direction.
	Sense Sense
	// Units is the human-readable unit ("instr/cycle", "mm²", "nJ/instr").
	Units string
	// Desc is a one-line description for listings.
	Desc string
	// Ref is the hypervolume reference coordinate: the worst value a point
	// may take and still contribute dominated volume. For a maximized
	// metric any value at or below Ref contributes nothing; for a
	// minimized one, any value at or above it.
	Ref float64
	// GainCap bounds the metric's achievable gain over Ref (see
	// pareto.Gain): no simulatable machine exceeds it. A fixed, a-priori
	// cap lets the Monte-Carlo hypervolume estimator sample one fixed box
	// for every archive state, which keeps the estimate deterministic and
	// monotone over a growing archive.
	GainCap float64
	// NeedsAloneRuns marks metrics whose evaluation requires per-benchmark
	// alone-run baseline simulations (fairness). The search driver prices
	// those in only when such a metric is among the run's objectives.
	NeedsAloneRuns bool
	// Derive, when non-nil, computes the metric from already-present base
	// values instead of being measured directly. Derived metrics are
	// materialized by Finalize after the base metrics land.
	Derive func(Values) float64
}

// Values holds one evaluated point's metric values by key. It marshals
// deterministically (keys sorted), so results embedding it reproduce byte
// for byte.
type Values map[string]float64

// Clone returns an independent copy of v.
func (v Values) Clone() Values {
	out := make(Values, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// MarshalJSON renders the map with sorted keys — plain map marshaling is
// already sorted in encoding/json, but the contract is load-bearing here
// (byte-identical benchmark reports), so it is pinned explicitly.
func (v Values) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		x := v[k]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// Match encoding/json's float64 behaviour: fail loudly instead
			// of emitting a bare NaN/Inf token that corrupts the document.
			return nil, fmt.Errorf("metrics: value %q = %v is not a finite number", k, x)
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// registry is the ordered metric list; order is registration order, which
// for the built-ins below doubles as presentation order. byKey indexes it.
var (
	registry []Metric
	byKey    = map[string]int{}
)

// Register adds a metric to the registry. Duplicate keys and derived
// metrics whose key is empty panic: registration happens at init time, and
// a malformed metric is a programming error, not an input error.
func Register(m Metric) {
	if m.Key == "" {
		panic("metrics: registering a metric with no key")
	}
	if _, dup := byKey[m.Key]; dup {
		panic(fmt.Sprintf("metrics: metric %q registered twice", m.Key))
	}
	byKey[m.Key] = len(registry)
	registry = append(registry, m)
}

// Lookup resolves a metric by key.
func Lookup(key string) (Metric, bool) {
	i, ok := byKey[key]
	if !ok {
		return Metric{}, false
	}
	return registry[i], true
}

// All returns the registered metrics in registration order.
func All() []Metric {
	out := make([]Metric, len(registry))
	copy(out, registry)
	return out
}

// Keys lists the registered metric keys in registration order.
func Keys() []string {
	out := make([]string, len(registry))
	for i, m := range registry {
		out[i] = m.Key
	}
	return out
}

// Finalize materializes every registered derived metric whose base inputs
// are present, in registration order (so a derived metric may build on an
// earlier one). Already-present values are never overwritten, and a Derive
// returning NaN or an infinity records nothing — the metric is simply
// absent, as for a base metric that was not measured.
func Finalize(v Values) {
	for _, m := range registry {
		if m.Derive == nil {
			continue
		}
		if _, ok := v[m.Key]; ok {
			continue
		}
		x := m.Derive(v)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		v[m.Key] = x
	}
}

// ratio divides a by b, signalling "absent" (NaN, dropped by Finalize)
// when either input is missing or the denominator is not positive.
func ratio(v Values, a, b string) float64 {
	x, okA := v[a]
	y, okB := v[b]
	if !okA || !okB || y <= 0 {
		return math.NaN()
	}
	return x / y
}

// The built-in metrics of the hdSMT evaluation.
//
// Reference points and gain caps: area's reference must sit above any
// machine the search space can decode (the largest evaluated
// configurations are well under 200 mm²; 500 leaves headroom for enriched
// sizings) and its gain is then at most the reference itself, since area
// is positive. IPC is bounded by the 8-wide shared fetch engine. Fairness
// is a harmonic mean of relative speedups, which alone-run warm-up scaling
// keeps near or below 1; 4 is a generous bound. Energy per instruction for
// these machines lands in the tens of nJ (see config.DefaultEnergyModel);
// 500 nJ bounds any decodable machine, and the ED/ED² references follow
// from the energy and IPC bounds.
func init() {
	Register(Metric{
		Key: "ipc", Sense: Maximize, Units: "instr/cycle",
		Desc: "harmonic-mean throughput over the workload set",
		Ref:  0, GainCap: 8,
	})
	Register(Metric{
		Key: "area", Sense: Minimize, Units: "mm²",
		Desc: "total die area of the machine (0.18 µm model)",
		Ref:  500, GainCap: 500,
	})
	Register(Metric{
		Key: "fairness", Sense: Maximize, Units: "hmean speedup",
		Desc: "mean harmonic fairness vs per-benchmark alone runs",
		Ref:  0, GainCap: 4,
		NeedsAloneRuns: true,
	})
	Register(Metric{
		Key: "energy", Sense: Minimize, Units: "nJ/instr",
		Desc: "mean energy per committed instruction (activity + leakage)",
		Ref:  500, GainCap: 500,
	})
	Register(Metric{
		Key: "per_area", Sense: Maximize, Units: "IPC/mm²",
		Desc: "throughput per unit area, the paper's scalar objective",
		Ref:  0, GainCap: 1,
		Derive: func(v Values) float64 { return ratio(v, "ipc", "area") },
	})
	Register(Metric{
		Key: "ed", Sense: Minimize, Units: "nJ·cycle/instr²",
		Desc: "energy-delay product per instruction (EPI/IPC)",
		Ref:  2000, GainCap: 2000,
		Derive: func(v Values) float64 { return ratio(v, "energy", "ipc") },
	})
	Register(Metric{
		Key: "ed2", Sense: Minimize, Units: "nJ·cycle²/instr³",
		Desc: "energy-delay-squared per instruction (EPI/IPC²)",
		Ref:  8000, GainCap: 8000,
		Derive: func(v Values) float64 { return ratio(v, "ed", "ipc") },
	})
}
