package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHMean(t *testing.T) {
	if HMean(nil) != 0 {
		t.Error("empty hmean must be 0")
	}
	if got := HMean([]float64{4}); got != 4 {
		t.Errorf("singleton hmean = %v", got)
	}
	// hmean(1,2,4) = 3/(1+0.5+0.25) = 12/7.
	if got := HMean([]float64{1, 2, 4}); math.Abs(got-12.0/7.0) > 1e-12 {
		t.Errorf("hmean = %v", got)
	}
}

func TestHMeanPanicsOnNonPositive(t *testing.T) {
	for _, bad := range [][]float64{{0}, {-1}, {1, math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HMean(%v) should panic", bad)
				}
			}()
			HMean(bad)
		}()
	}
}

func TestHMeanLeqArithmeticMean(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		sum := 0.0
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			sum += xs[i]
		}
		am := sum / float64(len(xs))
		return HMean(xs) <= am+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHMeanDominatedBySlowest(t *testing.T) {
	// The harmonic mean of a fast and a very slow workload is pulled
	// toward the slow one — the reason the paper uses it.
	got := HMean([]float64{4, 0.1})
	if got > 0.25 {
		t.Errorf("hmean(4, 0.1) = %v, expected < 0.25", got)
	}
}

func TestPerArea(t *testing.T) {
	if PerArea(3.4, 170) != 0.02 {
		t.Errorf("PerArea = %v", PerArea(3.4, 170))
	}
	defer func() {
		if recover() == nil {
			t.Error("zero area should panic")
		}
	}()
	PerArea(1, 0)
}

func TestAccuracy(t *testing.T) {
	if Accuracy(0.92, 1.0) != 0.92 {
		t.Error("accuracy wrong")
	}
	if Accuracy(1.0, 1.0) != 1.0 {
		t.Error("perfect accuracy wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero best should panic")
		}
	}()
	Accuracy(1, 0)
}

func TestImprovement(t *testing.T) {
	if math.Abs(Improvement(1.13, 1.0)-0.13) > 1e-12 {
		t.Errorf("improvement = %v", Improvement(1.13, 1.0))
	}
	if Improvement(0.5, 1.0) != -0.5 {
		t.Error("negative improvement wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero base should panic")
		}
	}()
	Improvement(1, 0)
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}
