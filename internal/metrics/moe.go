package metrics

import "strings"

// The margin-of-error channel: sampled simulations produce estimates with
// a 95% confidence interval, and the interval travels with the estimate
// through every layer that passes Values around — search scores, Pareto
// candidates, report exporters — without any of those layers growing a
// second map. A metric's margin is stored under the companion key
// "<key>.moe". The suffixed keys are invalid metric keys by convention
// (the registry never registers them), Finalize ignores them, and Values'
// sorted marshaling keeps each margin textually adjacent to its metric in
// every report.

// moeSuffix marks a companion margin-of-error entry.
const moeSuffix = ".moe"

// MoEKey returns the companion key carrying the 95% margin of error for
// the metric named key.
func MoEKey(key string) string { return key + moeSuffix }

// IsMoEKey reports whether key names a margin-of-error companion entry
// rather than a metric value. Layers that enumerate Values as metrics
// (objective extraction, metric listings) skip these.
func IsMoEKey(key string) bool { return strings.HasSuffix(key, moeSuffix) }

// BaseKey returns the metric key a companion entry belongs to; for a
// non-companion key it returns the key unchanged.
func BaseKey(key string) string { return strings.TrimSuffix(key, moeSuffix) }

// SetMoE records the 95% margin of error for the metric named key.
// Non-positive margins record nothing: an exact measurement has no
// companion entry at all, so exact results marshal byte-identically to
// those produced before the channel existed.
func SetMoE(v Values, key string, moe float64) {
	if moe > 0 {
		v[MoEKey(key)] = moe
	}
}

// MoEOf returns the recorded 95% margin of error for the metric named key.
// ok is false when the value is exact (no companion entry).
func MoEOf(v Values, key string) (moe float64, ok bool) {
	moe, ok = v[MoEKey(key)]
	return moe, ok
}

// RelMoE returns the margin as a fraction of the metric's value, or 0 for
// exact values and degenerate (non-positive) estimates — the conservative
// reading a comparison policy wants.
func RelMoE(v Values, key string) float64 {
	moe, ok := MoEOf(v, key)
	if !ok {
		return 0
	}
	x := v[key]
	if x <= 0 {
		return 0
	}
	return moe / x
}
