package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	keys := Keys()
	want := []string{"ipc", "area", "fairness", "energy", "per_area", "ed", "ed2"}
	if len(keys) < len(want) {
		t.Fatalf("registry has %d metrics, want at least %d", len(keys), len(want))
	}
	for i, k := range want {
		if keys[i] != k {
			t.Errorf("registry[%d] = %q, want %q", i, keys[i], k)
		}
	}
	for _, k := range want {
		m, ok := Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q) missing", k)
		}
		if m.Units == "" || m.Desc == "" {
			t.Errorf("%q: units/desc empty", k)
		}
		if m.GainCap <= 0 {
			t.Errorf("%q: no gain cap", k)
		}
	}
	if ipc, _ := Lookup("ipc"); ipc.Sense != Maximize {
		t.Error("ipc must maximize")
	}
	if en, _ := Lookup("energy"); en.Sense != Minimize || en.Ref <= 0 {
		t.Error("energy must minimize with a positive reference")
	}
	if fair, _ := Lookup("fairness"); !fair.NeedsAloneRuns {
		t.Error("fairness must declare its alone-run requirement")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown key resolved")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register(Metric{Key: "ipc"})
}

func TestFinalizeDerivesInOrder(t *testing.T) {
	v := Values{"ipc": 2, "area": 50, "energy": 20}
	Finalize(v)
	if got, want := v["per_area"], 0.04; math.Abs(got-want) > 1e-12 {
		t.Errorf("per_area = %v, want %v", got, want)
	}
	if got, want := v["ed"], 10.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ed = %v, want %v", got, want)
	}
	// ed2 builds on ed — registration order lets it.
	if got, want := v["ed2"], 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ed2 = %v, want %v", got, want)
	}
}

func TestFinalizeSkipsUnderivable(t *testing.T) {
	v := Values{"ipc": 2} // no area, no energy
	Finalize(v)
	for _, key := range []string{"per_area", "ed", "ed2"} {
		if _, ok := v[key]; ok {
			t.Errorf("%q derived without its inputs", key)
		}
	}
	// Present values are never overwritten.
	v2 := Values{"ipc": 2, "area": 50, "per_area": 99}
	Finalize(v2)
	if v2["per_area"] != 99 {
		t.Errorf("Finalize overwrote per_area: %v", v2["per_area"])
	}
}

func TestValuesJSONDeterministic(t *testing.T) {
	v := Values{"zeta": 1.5, "alpha": 2, "mid": 0.25}
	b1, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"alpha":2,"mid":0.25,"zeta":1.5}`; string(b1) != want {
		t.Errorf("Values JSON = %s, want %s", b1, want)
	}
	var back Values
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back["zeta"] != 1.5 || back["alpha"] != 2 {
		t.Errorf("round trip lost values: %v", back)
	}
}
