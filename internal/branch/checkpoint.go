package branch

import (
	"encoding/binary"
	"fmt"
)

// Checkpoint states for the sampled-simulation functional warmer: each
// predictor structure can snapshot its full microarchitectural state into a
// plain struct, restore it bit-identically, and round-trip through a
// deterministic little-endian binary encoding. Snapshots are deep copies —
// mutating the structure afterwards never aliases into a taken state.

// PredictorState is a bit-exact snapshot of a Predictor.
type PredictorState struct {
	Weights [numPerceptrons][historyLen + 1]int8
	Local   [localTableSize]uint16
	Global  []uint32
	Stats   PredStats
}

// Snapshot captures the predictor's tables, histories, and statistics.
func (p *Predictor) Snapshot() *PredictorState {
	s := &PredictorState{
		Weights: p.weights,
		Local:   p.local,
		Global:  append([]uint32(nil), p.global...),
		Stats:   p.stats,
	}
	return s
}

// Restore overwrites the predictor with a previously taken snapshot. The
// snapshot must come from a predictor serving the same thread count.
func (p *Predictor) Restore(s *PredictorState) {
	if len(s.Global) != len(p.global) {
		panic(fmt.Sprintf("branch: predictor snapshot for %d threads restored into %d", len(s.Global), len(p.global)))
	}
	p.weights = s.Weights
	p.local = s.Local
	copy(p.global, s.Global)
	p.stats = s.Stats
}

// MarshalBinary encodes the state deterministically (fixed-width
// little-endian, fields in declaration order).
func (s *PredictorState) MarshalBinary() ([]byte, error) {
	dst := make([]byte, 0, len(s.Weights)*(historyLen+1)+2*len(s.Local)+4*len(s.Global)+32)
	for i := range s.Weights {
		for _, w := range s.Weights[i] {
			dst = append(dst, byte(w))
		}
	}
	for _, h := range s.Local {
		dst = binary.LittleEndian.AppendUint16(dst, h)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Global)))
	for _, g := range s.Global {
		dst = binary.LittleEndian.AppendUint32(dst, g)
	}
	dst = binary.LittleEndian.AppendUint64(dst, s.Stats.Lookups)
	dst = binary.LittleEndian.AppendUint64(dst, s.Stats.Mispredicts)
	return dst, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (s *PredictorState) UnmarshalBinary(src []byte) error {
	fixed := len(s.Weights)*(historyLen+1) + 2*len(s.Local) + 4
	if len(src) < fixed {
		return fmt.Errorf("branch: predictor state truncated (%d bytes)", len(src))
	}
	for i := range s.Weights {
		for j := range s.Weights[i] {
			s.Weights[i][j] = int8(src[0])
			src = src[1:]
		}
	}
	for i := range s.Local {
		s.Local[i] = binary.LittleEndian.Uint16(src)
		src = src[2:]
	}
	n := int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	if len(src) != 4*n+16 {
		return fmt.Errorf("branch: predictor state has %d trailing bytes, want %d", len(src), 4*n+16)
	}
	s.Global = make([]uint32, n)
	for i := range s.Global {
		s.Global[i] = binary.LittleEndian.Uint32(src)
		src = src[4:]
	}
	s.Stats.Lookups = binary.LittleEndian.Uint64(src)
	s.Stats.Mispredicts = binary.LittleEndian.Uint64(src[8:])
	return nil
}

// BTBState is a bit-exact snapshot of a BTB. Entries holds the sets
// flattened in set-major order.
type BTBState struct {
	Entries []btbEntry
	Ways    int
	Stamp   uint64
	Stats   BTBStats
}

// Snapshot captures the BTB's contents, LRU stamps, and statistics.
func (b *BTB) Snapshot() *BTBState {
	ways := 0
	if len(b.sets) > 0 {
		ways = len(b.sets[0])
	}
	s := &BTBState{Entries: make([]btbEntry, 0, len(b.sets)*ways), Ways: ways, Stamp: b.stamp, Stats: b.stats}
	for _, set := range b.sets {
		s.Entries = append(s.Entries, set...)
	}
	return s
}

// Restore overwrites the BTB with a previously taken snapshot; geometry
// must match.
func (b *BTB) Restore(s *BTBState) {
	ways := 0
	if len(b.sets) > 0 {
		ways = len(b.sets[0])
	}
	if s.Ways != ways || len(s.Entries) != len(b.sets)*ways {
		panic("branch: BTB snapshot geometry mismatch")
	}
	for i, set := range b.sets {
		copy(set, s.Entries[i*ways:(i+1)*ways])
	}
	b.stamp = s.Stamp
	b.stats = s.Stats
}

// MarshalBinary encodes the state deterministically.
func (s *BTBState) MarshalBinary() ([]byte, error) {
	dst := make([]byte, 0, 8+len(s.Entries)*25+32)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Entries)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Ways))
	for _, e := range s.Entries {
		dst = binary.LittleEndian.AppendUint64(dst, e.tag)
		dst = binary.LittleEndian.AppendUint64(dst, e.target)
		dst = binary.LittleEndian.AppendUint64(dst, e.lru)
		v := byte(0)
		if e.valid {
			v = 1
		}
		dst = append(dst, v)
	}
	dst = binary.LittleEndian.AppendUint64(dst, s.Stamp)
	dst = binary.LittleEndian.AppendUint64(dst, s.Stats.Lookups)
	dst = binary.LittleEndian.AppendUint64(dst, s.Stats.Hits)
	return dst, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (s *BTBState) UnmarshalBinary(src []byte) error {
	if len(src) < 8 {
		return fmt.Errorf("branch: BTB state truncated (%d bytes)", len(src))
	}
	n := int(binary.LittleEndian.Uint32(src))
	s.Ways = int(binary.LittleEndian.Uint32(src[4:]))
	src = src[8:]
	if len(src) != n*25+24 {
		return fmt.Errorf("branch: BTB state has %d bytes for %d entries", len(src), n)
	}
	s.Entries = make([]btbEntry, n)
	for i := range s.Entries {
		e := &s.Entries[i]
		e.tag = binary.LittleEndian.Uint64(src)
		e.target = binary.LittleEndian.Uint64(src[8:])
		e.lru = binary.LittleEndian.Uint64(src[16:])
		e.valid = src[24] != 0
		src = src[25:]
	}
	s.Stamp = binary.LittleEndian.Uint64(src)
	s.Stats.Lookups = binary.LittleEndian.Uint64(src[8:])
	s.Stats.Hits = binary.LittleEndian.Uint64(src[16:])
	return nil
}

// RASState is a bit-exact snapshot of a RAS.
type RASState struct {
	Stack []uint64
	Top   int
	Next  int
}

// Snapshot captures the stack contents and cursor positions.
func (r *RAS) Snapshot() *RASState {
	return &RASState{Stack: append([]uint64(nil), r.stack...), Top: r.top, Next: r.next}
}

// Restore overwrites the RAS with a previously taken snapshot; capacity
// must match.
func (r *RAS) Restore(s *RASState) {
	if len(s.Stack) != len(r.stack) {
		panic("branch: RAS snapshot capacity mismatch")
	}
	copy(r.stack, s.Stack)
	r.top = s.Top
	r.next = s.Next
}

// MarshalBinary encodes the state deterministically.
func (s *RASState) MarshalBinary() ([]byte, error) {
	dst := make([]byte, 0, 4+8*len(s.Stack)+16)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Stack)))
	for _, a := range s.Stack {
		dst = binary.LittleEndian.AppendUint64(dst, a)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Top))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Next))
	return dst, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (s *RASState) UnmarshalBinary(src []byte) error {
	if len(src) < 4 {
		return fmt.Errorf("branch: RAS state truncated (%d bytes)", len(src))
	}
	n := int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	if len(src) != 8*n+16 {
		return fmt.Errorf("branch: RAS state has %d bytes for %d entries", len(src), n)
	}
	s.Stack = make([]uint64, n)
	for i := range s.Stack {
		s.Stack[i] = binary.LittleEndian.Uint64(src)
		src = src[8:]
	}
	s.Top = int(binary.LittleEndian.Uint64(src))
	s.Next = int(binary.LittleEndian.Uint64(src[8:]))
	return nil
}
