package branch

import (
	"testing"
	"testing/quick"

	"hdsmt/internal/trace"
)

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := NewPredictor(1)
	const pc = 0x1000
	for i := 0; i < 64; i++ {
		p.Resolve(0, pc, true)
	}
	if !p.Predict(0, pc) {
		t.Error("predictor failed to learn an always-taken branch")
	}
}

func TestPredictorLearnsAlwaysNotTaken(t *testing.T) {
	p := NewPredictor(1)
	const pc = 0x2000
	for i := 0; i < 64; i++ {
		p.Resolve(0, pc, false)
	}
	if p.Predict(0, pc) {
		t.Error("predictor failed to learn an always-not-taken branch")
	}
}

func TestPredictorLearnsLoopPattern(t *testing.T) {
	// Period-8 loop: taken 7 times, not-taken once. A local-history
	// perceptron should learn this nearly perfectly after warm-up.
	p := NewPredictor(1)
	const pc = 0x3000
	outcome := func(i int) bool { return i%8 != 7 }
	for i := 0; i < 512; i++ { // warm-up
		p.Resolve(0, pc, outcome(i))
	}
	correct := 0
	const probe = 512
	for i := 512; i < 512+probe; i++ {
		if p.Predict(0, pc) == outcome(i) {
			correct++
		}
		p.Resolve(0, pc, outcome(i))
	}
	if acc := float64(correct) / probe; acc < 0.95 {
		t.Errorf("loop pattern accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestPredictorRandomBranchNearChance(t *testing.T) {
	p := NewPredictor(1)
	rng := trace.NewRand(17)
	const pc = 0x4000
	correct, total := 0, 20000
	for i := 0; i < total; i++ {
		taken := rng.Bool(0.5)
		if p.Predict(0, pc) == taken {
			correct++
		}
		p.Resolve(0, pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.60 {
		t.Errorf("random branch accuracy = %.3f: predictor is cheating", acc)
	}
	if acc < 0.40 {
		t.Errorf("random branch accuracy = %.3f: predictor is anti-learning", acc)
	}
}

func TestPredictorBiasedBranch(t *testing.T) {
	p := NewPredictor(1)
	rng := trace.NewRand(23)
	const pc = 0x5000
	correct, total := 0, 20000
	for i := 0; i < total; i++ {
		taken := rng.Bool(0.95)
		if p.Predict(0, pc) == taken {
			correct++
		}
		p.Resolve(0, pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.90 {
		t.Errorf("biased branch accuracy = %.3f, want >= 0.90", acc)
	}
}

func TestPredictorPerThreadHistory(t *testing.T) {
	p := NewPredictor(2)
	// The same PC behaves oppositely in two threads: per-thread global
	// history plus shared tables should still handle strong per-thread
	// patterns of *different PCs*; here we check state isolation exists
	// at all (global registers are distinct).
	for i := 0; i < 128; i++ {
		p.Resolve(0, 0x100, true)
		p.Resolve(1, 0x200, false)
	}
	if p.global[0] == p.global[1] {
		t.Error("per-thread global histories should diverge")
	}
}

func TestPredictorResolveReportsCorrectness(t *testing.T) {
	p := NewPredictor(1)
	const pc = 0x6000
	for i := 0; i < 64; i++ {
		p.Resolve(0, pc, true)
	}
	if !p.Resolve(0, pc, true) {
		t.Error("trained branch should resolve correct")
	}
	st := p.Stats()
	if st.Lookups != 65 {
		t.Errorf("lookups = %d", st.Lookups)
	}
	if st.Accuracy() <= 0 || st.Accuracy() > 1 {
		t.Errorf("accuracy = %v", st.Accuracy())
	}
}

func TestPredictorReset(t *testing.T) {
	p := NewPredictor(1)
	for i := 0; i < 64; i++ {
		p.Resolve(0, 0x100, true)
	}
	p.Reset()
	if p.Stats() != (PredStats{}) {
		t.Error("stats not cleared")
	}
	if p.global[0] != 0 {
		t.Error("history not cleared")
	}
}

func TestPredictorPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPredictor(0)
}

func TestPredStatsAccuracyEmpty(t *testing.T) {
	var s PredStats
	if s.Accuracy() != 1 {
		t.Error("empty accuracy must be 1")
	}
}

func TestClampAdd(t *testing.T) {
	if clampAdd(127, 1) != 127 {
		t.Error("must clamp at max")
	}
	if clampAdd(-128, -1) != -128 {
		t.Error("must clamp at min")
	}
	if clampAdd(10, -3) != 7 {
		t.Error("plain addition broken")
	}
}

// Property: Predict never modifies state (idempotent and stats-free).
func TestPredictPure(t *testing.T) {
	p := NewPredictor(1)
	rng := trace.NewRand(5)
	for i := 0; i < 500; i++ {
		p.Resolve(0, uint64(rng.Intn(1<<14))<<2, rng.Bool(0.7))
	}
	f := func(pc uint64) bool {
		before := p.Stats()
		a := p.Predict(0, pc)
		b := p.Predict(0, pc)
		return a == b && p.Stats() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTBMissThenHit(t *testing.T) {
	b := NewBTB()
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("cold BTB lookup must miss")
	}
	b.Update(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x, %v", tgt, ok)
	}
	st := b.Stats()
	if st.Lookups != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBTBUpdateOverwrites(t *testing.T) {
	b := NewBTB()
	b.Update(0x1000, 0x2000)
	b.Update(0x1000, 0x3000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x3000 {
		t.Errorf("lookup = %#x, want 0x3000", tgt)
	}
}

func TestBTBLRUWithinSet(t *testing.T) {
	b := NewBTB()
	// 64 sets; PCs with identical (pc>>2)&63 collide. Stride = 64*4 = 256.
	pcs := []uint64{0, 256, 512, 768, 1024} // 5 PCs into a 4-way set
	for _, pc := range pcs[:4] {
		b.Update(pc, pc+4)
	}
	b.Lookup(pcs[0]) // refresh pc 0
	b.Update(pcs[4], pcs[4]+4)
	if _, ok := b.Lookup(pcs[0]); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := b.Lookup(pcs[1]); ok {
		t.Error("LRU entry should have been evicted")
	}
}

func TestBTBReset(t *testing.T) {
	b := NewBTB()
	b.Update(0x1000, 0x2000)
	b.Reset()
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("contents survived reset")
	}
	b.Reset()
	if st := b.Stats(); st.Lookups != 0 {
		t.Error("stats survived reset")
	}
}

func TestBTBHitRateEmpty(t *testing.T) {
	var s BTBStats
	if s.HitRate() != 1 {
		t.Error("empty hit rate must be 1")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS()
	r.Push(0x100)
	r.Push(0x200)
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Errorf("pop = %#x, %v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Errorf("pop = %#x, %v", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty pop must fail")
	}
}

func TestRASWrapAround(t *testing.T) {
	r := NewRAS()
	for i := 0; i < rasEntries+10; i++ {
		r.Push(uint64(i))
	}
	if r.Depth() != rasEntries {
		t.Errorf("depth = %d, want %d", r.Depth(), rasEntries)
	}
	// The newest entries should pop in LIFO order.
	for i := rasEntries + 9; i >= 10; i-- {
		a, ok := r.Pop()
		if !ok || a != uint64(i) {
			t.Fatalf("pop = %#x,%v want %#x", a, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("stack should be empty: oldest 10 were overwritten")
	}
}

func TestRASReset(t *testing.T) {
	r := NewRAS()
	r.Push(1)
	r.Reset()
	if r.Depth() != 0 {
		t.Error("depth after reset")
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop after reset")
	}
}

// Property: RAS is LIFO for any push/pop sequence that fits in capacity.
func TestRASLIFOProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > rasEntries {
			vals = vals[:rasEntries]
		}
		r := NewRAS()
		for _, v := range vals {
			r.Push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			v, ok := r.Pop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPredictResolve(b *testing.B) {
	p := NewPredictor(1)
	rng := trace.NewRand(3)
	for i := 0; i < b.N; i++ {
		pc := uint64(rng.Intn(4096)) << 2
		p.Predict(0, pc)
		p.Resolve(0, pc, rng.Bool(0.6))
	}
}

func BenchmarkBTB(b *testing.B) {
	btb := NewBTB()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%1024) << 2
		if _, ok := btb.Lookup(pc); !ok {
			btb.Update(pc, pc+8)
		}
	}
}
