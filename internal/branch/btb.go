package branch

// BTB is the branch target buffer: 256 entries, 4-way set associative
// (paper Table 1), true LRU within a set. It caches the targets of taken
// control instructions so fetch can redirect without decoding.
type BTB struct {
	sets  [][]btbEntry
	mask  uint64
	stamp uint64
	stats BTBStats
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

// BTBStats counts target lookups.
type BTBStats struct {
	Lookups uint64
	Hits    uint64
}

// HitRate returns hits per lookup (1.0 when unused).
func (s BTBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Default geometry from Table 1.
const (
	btbEntries = 256
	btbWays    = 4
)

// NewBTB builds the Table 1 BTB.
func NewBTB() *BTB {
	nsets := btbEntries / btbWays
	b := &BTB{sets: make([][]btbEntry, nsets), mask: uint64(nsets - 1)}
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, btbWays)
	}
	return b
}

// Stats returns accumulated statistics.
func (b *BTB) Stats() BTBStats { return b.stats }

// Reset clears contents and statistics.
func (b *BTB) Reset() {
	for i := range b.sets {
		for j := range b.sets[i] {
			b.sets[i][j] = btbEntry{}
		}
	}
	b.stamp = 0
	b.stats = BTBStats{}
}

func (b *BTB) set(pc uint64) []btbEntry { return b.sets[(pc>>2)&b.mask] }

// Lookup returns the cached target for the control instruction at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.stats.Lookups++
	b.stamp++
	for i := range b.set(pc) {
		e := &b.set(pc)[i]
		if e.valid && e.tag == pc {
			e.lru = b.stamp
			b.stats.Hits++
			return e.target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	b.stamp++
	set := b.set(pc)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == pc {
			e.target = target
			e.lru = b.stamp
			return
		}
		if !set[victim].valid {
			continue
		}
		if !e.valid || e.lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, lru: b.stamp}
}

// RAS is a per-thread return address stack: 256 entries (Table 1), circular,
// so deep call chains overwrite the oldest entries rather than failing.
type RAS struct {
	stack []uint64
	top   int // number of live entries, capped at len(stack)
	next  int // circular write position
}

// rasEntries is the Table 1 capacity.
const rasEntries = 256

// NewRAS builds a 256-entry return address stack.
func NewRAS() *RAS { return &RAS{stack: make([]uint64, rasEntries)} }

// Reset empties the stack.
func (r *RAS) Reset() { r.top, r.next = 0, 0 }

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.top }

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.next] = addr
	r.next = (r.next + 1) % len(r.stack)
	if r.top < len(r.stack) {
		r.top++
	}
}

// Pop predicts the target of a return. ok is false on an empty stack.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.top == 0 {
		return 0, false
	}
	r.next = (r.next - 1 + len(r.stack)) % len(r.stack)
	r.top--
	return r.stack[r.next], true
}
