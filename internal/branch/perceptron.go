// Package branch implements the front-end prediction structures of paper
// Table 1: a perceptron direction predictor ("perceptron (4K local, 256
// perceps)"), a 256-entry 4-way branch target buffer, and a 256-entry
// per-thread return address stack.
package branch

// Perceptron predictor (Jiménez & Lin) with local + global history:
// a 4K-entry local history table and 256 perceptrons. Each prediction dots
// the selected perceptron's weights with the branch's local history and the
// thread's global history; training occurs at branch resolution (the
// simulator trains non-speculatively, a common simplification that only
// costs accuracy around in-flight history, not determinism).

const (
	localTableSize = 4096 // "4K local"
	numPerceptrons = 256  // "256 perceps"
	localHistBits  = 10
	globalHistBits = 12
	weightMax      = 127
	weightMin      = -128
)

// historyLen is the total number of weights per perceptron (plus bias).
const historyLen = localHistBits + globalHistBits

// trainingThreshold is Jiménez's theta = floor(1.93*h + 14).
const trainingThreshold = int32((193*historyLen + 1400) / 100)

// Predictor is the shared direction predictor. Tables are shared across
// threads (as in a real SMT fetch engine); global history is per thread.
type Predictor struct {
	weights [numPerceptrons][historyLen + 1]int8 // [.][0] is the bias
	local   [localTableSize]uint16               // per-branch local histories
	global  []uint32                             // per-thread global histories

	stats PredStats
}

// PredStats counts conditional-branch prediction outcomes.
type PredStats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Accuracy returns correct predictions per lookup (1.0 when unused).
func (s PredStats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Lookups)
}

// NewPredictor builds a predictor serving the given number of hardware
// threads.
func NewPredictor(threads int) *Predictor {
	if threads <= 0 {
		panic("branch: predictor needs at least one thread")
	}
	return &Predictor{global: make([]uint32, threads)}
}

// Stats returns accumulated statistics.
func (p *Predictor) Stats() PredStats { return p.stats }

// Reset clears all state.
func (p *Predictor) Reset() {
	for i := range p.weights {
		p.weights[i] = [historyLen + 1]int8{}
	}
	for i := range p.local {
		p.local[i] = 0
	}
	for i := range p.global {
		p.global[i] = 0
	}
	p.stats = PredStats{}
}

func localIndex(pc uint64) int {
	return int((pc >> 2) & (localTableSize - 1))
}

func perceptronIndex(pc uint64) int {
	return int(((pc >> 2) ^ (pc >> 10)) & (numPerceptrons - 1))
}

// output computes the perceptron dot product for pc under thread tid's
// history.
func (p *Predictor) output(tid int, pc uint64) int32 {
	w := &p.weights[perceptronIndex(pc)]
	sum := int32(w[0]) // bias
	lh := uint32(p.local[localIndex(pc)])
	gh := p.global[tid]
	// Branchless accumulation: a history bit of 1 adds the weight, 0
	// subtracts it ((w ^ m) - m negates w when m is -1). History bits are
	// near-random, so data-dependent host branches here mispredict
	// constantly; this loop runs twice per simulated conditional.
	for i := 0; i < localHistBits; i++ {
		m := int32(lh>>i&1) - 1
		sum += (int32(w[1+i]) ^ m) - m
	}
	for i := 0; i < globalHistBits; i++ {
		m := int32(gh>>i&1) - 1
		sum += (int32(w[1+localHistBits+i]) ^ m) - m
	}
	return sum
}

// Predict returns the predicted direction of the conditional branch at pc
// for thread tid. It does not modify any state.
func (p *Predictor) Predict(tid int, pc uint64) bool {
	return p.output(tid, pc) >= 0
}

// Resolve trains the predictor with the actual outcome of the conditional
// branch at pc and advances histories, scoring correctness against the
// predictor's own current output. Call once per resolved conditional.
func (p *Predictor) Resolve(tid int, pc uint64, taken bool) (correct bool) {
	return p.ResolveWith(tid, pc, taken, p.Predict(tid, pc))
}

// ResolveWith trains like Resolve but scores correctness against an
// externally recorded prediction — the one fetch actually acted on, which
// may differ from the current output when intervening branches trained the
// same perceptron between fetch and resolve.
func (p *Predictor) ResolveWith(tid int, pc uint64, taken, predicted bool) (correct bool) {
	sum := p.output(tid, pc)
	correct = predicted == taken
	p.stats.Lookups++
	if !correct {
		p.stats.Mispredicts++
	}

	// Perceptron training rule: train when the perceptron's own output
	// disagrees with the outcome or lacks confidence.
	if (sum >= 0) != taken || abs32(sum) <= trainingThreshold {
		w := &p.weights[perceptronIndex(pc)]
		t := int8(-1)
		if taken {
			t = 1
		}
		w[0] = clampAdd(w[0], t)
		lh := uint32(p.local[localIndex(pc)])
		gh := p.global[tid]
		for i := 0; i < localHistBits; i++ {
			x := int8(-1)
			if lh&(1<<i) != 0 {
				x = 1
			}
			w[1+i] = clampAdd(w[1+i], t*x)
		}
		for i := 0; i < globalHistBits; i++ {
			x := int8(-1)
			if gh&(1<<i) != 0 {
				x = 1
			}
			w[1+localHistBits+i] = clampAdd(w[1+localHistBits+i], t*x)
		}
	}

	// Advance histories.
	bit := uint32(0)
	if taken {
		bit = 1
	}
	li := localIndex(pc)
	p.local[li] = (p.local[li]<<1 | uint16(bit)) & (1<<localHistBits - 1)
	p.global[tid] = (p.global[tid]<<1 | bit) & (1<<globalHistBits - 1)
	return correct
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clampAdd(w, d int8) int8 {
	v := int16(w) + int16(d)
	if v > weightMax {
		return weightMax
	}
	if v < weightMin {
		return weightMin
	}
	return int8(v)
}
