package queue

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

func TestPushPopFIFO(t *testing.T) {
	d := New[int](4)
	for i := 1; i <= 4; i++ {
		if !d.PushTail(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if d.PushTail(5) {
		t.Error("push into full deque must fail")
	}
	for i := 1; i <= 4; i++ {
		v, ok := d.PopHead()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.PopHead(); ok {
		t.Error("pop from empty must fail")
	}
}

func TestPopTailLIFO(t *testing.T) {
	d := New[int](4)
	d.PushTail(1)
	d.PushTail(2)
	d.PushTail(3)
	if v, ok := d.PopTail(); !ok || v != 3 {
		t.Errorf("PopTail = %d,%v", v, ok)
	}
	if v, ok := d.PopTail(); !ok || v != 2 {
		t.Errorf("PopTail = %d,%v", v, ok)
	}
	if v, ok := d.PopHead(); !ok || v != 1 {
		t.Errorf("PopHead = %d,%v", v, ok)
	}
	if _, ok := d.PopTail(); ok {
		t.Error("PopTail from empty must fail")
	}
}

func TestHeadTailPeek(t *testing.T) {
	d := New[string](3)
	if _, ok := d.Head(); ok {
		t.Error("Head of empty")
	}
	if _, ok := d.Tail(); ok {
		t.Error("Tail of empty")
	}
	d.PushTail("a")
	d.PushTail("b")
	if v, _ := d.Head(); v != "a" {
		t.Errorf("Head = %q", v)
	}
	if v, _ := d.Tail(); v != "b" {
		t.Errorf("Tail = %q", v)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestWrapAround(t *testing.T) {
	d := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !d.PushTail(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := d.PopHead()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %d", round, v)
			}
		}
	}
}

func TestAtAndSetAt(t *testing.T) {
	d := New[int](4)
	d.PushTail(10)
	d.PushTail(20)
	d.PopHead() // shift head so indices wrap
	d.PushTail(30)
	d.PushTail(40)
	want := []int{20, 30, 40}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	d.SetAt(1, 99)
	if d.At(1) != 99 {
		t.Error("SetAt failed")
	}
	for _, f := range []func(){
		func() { d.At(-1) }, func() { d.At(3) },
		func() { d.SetAt(-1, 0) }, func() { d.SetAt(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access should panic")
				}
			}()
			f()
		}()
	}
}

func TestClear(t *testing.T) {
	d := New[int](4)
	d.PushTail(1)
	d.PushTail(2)
	d.Clear()
	if !d.Empty() || d.Len() != 0 || d.Space() != 4 {
		t.Error("Clear incomplete")
	}
	if !d.PushTail(7) {
		t.Error("push after clear failed")
	}
	if v, _ := d.Head(); v != 7 {
		t.Error("head after clear wrong")
	}
}

func TestDoIteration(t *testing.T) {
	d := New[int](5)
	for i := 0; i < 5; i++ {
		d.PushTail(i * 2)
	}
	var got []int
	d.Do(func(i, x int) bool {
		got = append(got, x)
		return true
	})
	for i, v := range got {
		if v != i*2 {
			t.Errorf("Do order wrong at %d: %d", i, v)
		}
	}
	count := 0
	d.Do(func(i, x int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

// Property: a deque behaves identically to a reference slice implementation
// under a random operation sequence.
func TestDequeModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Val  int
	}
	f := func(ops []op) bool {
		d := New[int](8)
		var model []int
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // PushTail
				ok := d.PushTail(o.Val)
				if ok != (len(model) < 8) {
					return false
				}
				if ok {
					model = append(model, o.Val)
				}
			case 1: // PopHead
				v, ok := d.PopHead()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // PopTail
				v, ok := d.PopTail()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			case 3: // Len/At consistency
				if d.Len() != len(model) {
					return false
				}
				for i, w := range model {
					if d.At(i) != w {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int](64)
	for i := 0; i < b.N; i++ {
		d.PushTail(i)
		if d.Full() {
			for !d.Empty() {
				d.PopHead()
			}
		}
	}
}
