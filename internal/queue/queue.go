// Package queue provides the bounded ring-buffer deque used throughout the
// simulator for hardware FIFOs: per-pipeline fetch decoupling buffers,
// per-thread reorder buffers, and completion lists. A deque (rather than a
// plain FIFO) is needed because reorder buffers push and commit at the head
// end but squash from the tail end.
package queue

import "fmt"

// Deque is a fixed-capacity double-ended queue backed by a ring buffer.
// The zero value is unusable; construct with New.
type Deque[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of live elements
}

// New returns an empty deque with the given fixed capacity.
func New[T any](capacity int) *Deque[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: capacity %d must be positive", capacity))
	}
	return &Deque[T]{buf: make([]T, capacity)}
}

// Len returns the number of buffered elements.
func (d *Deque[T]) Len() int { return d.n }

// Cap returns the fixed capacity.
func (d *Deque[T]) Cap() int { return len(d.buf) }

// Full reports whether no space remains.
func (d *Deque[T]) Full() bool { return d.n == len(d.buf) }

// Empty reports whether no elements are buffered.
func (d *Deque[T]) Empty() bool { return d.n == 0 }

// Space returns the number of free slots.
func (d *Deque[T]) Space() int { return len(d.buf) - d.n }

// idx wraps a logical offset in [0, 2·cap) onto the ring. A conditional
// subtract replaces the integer division of a modulo: deque operations run
// on every simulated cycle (ROB, fetch buffers), where the division was
// measurable.
func (d *Deque[T]) idx(i int) int {
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	return i
}

// PushTail appends x at the tail (youngest end); it reports false when full.
func (d *Deque[T]) PushTail(x T) bool {
	if d.Full() {
		return false
	}
	d.buf[d.idx(d.head+d.n)] = x
	d.n++
	return true
}

// PopHead removes and returns the oldest element.
func (d *Deque[T]) PopHead() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	x := d.buf[d.head]
	d.buf[d.head] = zero // release references for GC
	d.head = d.idx(d.head + 1)
	d.n--
	return x, true
}

// PopTail removes and returns the youngest element (used for squash).
func (d *Deque[T]) PopTail() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	i := d.idx(d.head + d.n - 1)
	x := d.buf[i]
	d.buf[i] = zero
	d.n--
	return x, true
}

// Head returns the oldest element without removing it.
func (d *Deque[T]) Head() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// Tail returns the youngest element without removing it.
func (d *Deque[T]) Tail() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	return d.buf[d.idx(d.head+d.n-1)], true
}

// At returns the element at logical position i, where 0 is the oldest.
// It panics when i is out of range, matching slice semantics.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("queue: index %d out of range [0,%d)", i, d.n))
	}
	return d.buf[d.idx(d.head+i)]
}

// SetAt replaces the element at logical position i (0 = oldest).
func (d *Deque[T]) SetAt(i int, x T) {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("queue: index %d out of range [0,%d)", i, d.n))
	}
	d.buf[d.idx(d.head+i)] = x
}

// Clear removes all elements.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.n; i++ {
		d.buf[d.idx(d.head+i)] = zero
	}
	d.head, d.n = 0, 0
}

// Do calls fn on each element from oldest to youngest, stopping early if fn
// returns false.
func (d *Deque[T]) Do(fn func(i int, x T) bool) {
	for i := 0; i < d.n; i++ {
		if !fn(i, d.buf[d.idx(d.head+i)]) {
			return
		}
	}
}
