// Package retry implements capped exponential backoff with jitter for
// transient failures: engine store I/O, journal appends and HTTP clients
// all share one Do helper instead of hand-rolled sleep loops.
//
// The policy is deliberately small: attempts, base/cap delay, a jitter
// fraction and a seed. Jitter is drawn from a seeded source so tests (and
// chaos runs) replay identical schedules; none of the timing ever reaches
// a BENCH artifact, so determinism of results is unaffected either way.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy configures Do. The zero value is usable: 4 attempts, 10ms base
// delay doubling to a 1s cap, 50% jitter.
type Policy struct {
	// Attempts bounds total tries, including the first; 0 means 4.
	Attempts int
	// BaseDelay is the wait after the first failure; it doubles per
	// attempt. 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means 1s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized (0..1): a delay d
	// becomes d*(1-Jitter) + rand*d*Jitter. Negative means no jitter;
	// 0 means the 0.5 default.
	Jitter float64
	// Seed drives the jitter source; a fixed seed replays the identical
	// backoff schedule. 0 means a fixed default seed (1).
	Seed int64
	// Sleep, when non-nil, replaces the context-aware sleep between
	// attempts — a test hook for capturing the schedule without waiting
	// it out.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) attempts() int {
	if p.Attempts > 0 {
		return p.Attempts
	}
	return 4
}

func (p Policy) base() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 10 * time.Millisecond
}

func (p Policy) cap() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return time.Second
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	case p.Jitter > 1:
		return 1
	}
	return p.Jitter
}

func (p Policy) seed() int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return 1
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns err unchanged
// (nil stays nil). Use it for failures more attempts cannot fix: a
// missing file, a 4xx response, a corrupt entry.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Delayer is implemented by errors that carry their own retry delay —
// e.g. an HTTP 429 with a Retry-After header. Do waits exactly that long
// instead of the backoff schedule: the server's hint wins, uncapped, so
// an honest client never comes back early.
type Delayer interface {
	RetryDelay() time.Duration
}

// After wraps err with an explicit retry delay, for surfacing server
// backpressure hints (Retry-After) through Do.
func After(err error, d time.Duration) error {
	return &delayedError{err: err, delay: d}
}

type delayedError struct {
	err   error
	delay time.Duration
}

func (e *delayedError) Error() string             { return e.err.Error() }
func (e *delayedError) Unwrap() error             { return e.err }
func (e *delayedError) RetryDelay() time.Duration { return e.delay }

// Do runs op until it succeeds, returns a Permanent error, exhausts the
// policy's attempts, or ctx is done. The final failure is returned
// wrapped with the attempt count (Permanent failures come back
// unwrapped, as handed to Permanent).
func Do(ctx context.Context, p Policy, op func() error) error {
	attempts := p.attempts()
	rng := rand.New(rand.NewSource(p.seed()))
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	delay := p.base()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("retry: %w (after %d attempts: %v)", cerr, attempt-1, err)
			}
			return cerr
		}
		err = op()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= attempts {
			return fmt.Errorf("retry: %d attempts: %w", attempts, err)
		}
		wait := delay
		if j := p.jitter(); j > 0 {
			wait = time.Duration(float64(wait) * (1 - j + j*rng.Float64()))
		}
		var delayer Delayer
		if errors.As(err, &delayer) {
			// The failing side told us when to come back; believe it.
			wait = delayer.RetryDelay()
		}
		if serr := sleep(ctx, wait); serr != nil {
			return fmt.Errorf("retry: %w (after %d attempts: %v)", serr, attempt, err)
		}
		if delay = delay * 2; delay > p.cap() {
			delay = p.cap()
		}
	}
}

// sleepCtx waits d or until ctx is done, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
