package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordSleeps returns a Sleep hook appending every delay to dst without
// actually waiting.
func recordSleeps(dst *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*dst = append(*dst, d)
		return nil
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Sleep: recordSleeps(&sleeps)}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if len(sleeps) != 2 {
		t.Errorf("slept %d times, want 2", len(sleeps))
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	base := errors.New("always fails")
	err := Do(context.Background(), Policy{Attempts: 3, Sleep: recordSleeps(&sleeps)}, func() error {
		calls++
		return base
	})
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v, want wrapped %v", err, base)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if len(sleeps) != 2 {
		t.Errorf("slept %d times, want 2 (no sleep after the final attempt)", len(sleeps))
	}
}

func TestDoBackoffDoublesAndCaps(t *testing.T) {
	var sleeps []time.Duration
	p := Policy{
		Attempts:  6,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  40 * time.Millisecond,
		Jitter:    -1, // deterministic: raw schedule
		Sleep:     recordSleeps(&sleeps),
	}
	_ = Do(context.Background(), p, func() error { return errors.New("x") })
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		w *= time.Millisecond
		if sleeps[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, sleeps[i], w)
		}
	}
}

func TestDoJitterIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var sleeps []time.Duration
		p := Policy{Attempts: 5, BaseDelay: 100 * time.Millisecond, Jitter: 0.5,
			Seed: seed, Sleep: recordSleeps(&sleeps)}
		_ = Do(context.Background(), p, func() error { return errors.New("x") })
		return sleeps
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed, different schedule at %d: %v vs %v", i, a[i], b[i])
		}
		// Jitter 0.5 keeps every delay within [d/2, d).
		base := 100 * time.Millisecond << i
		if a[i] < base/2 || a[i] >= base {
			t.Errorf("sleep %d = %v outside jitter window [%v, %v)", i, a[i], base/2, base)
		}
	}
	if c := run(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced an identical schedule")
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	base := errors.New("not found")
	err := Do(context.Background(), Policy{Attempts: 5, Sleep: recordSleeps(new([]time.Duration))}, func() error {
		calls++
		return Permanent(base)
	})
	if err != base {
		t.Fatalf("Do = %v, want the unwrapped permanent error", err)
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1", calls)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3, BaseDelay: time.Millisecond, Sleep: recordSleeps(&sleeps)}, func() error {
		calls++
		if calls == 1 {
			return After(fmt.Errorf("throttled"), 1234*time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 1 || sleeps[0] != 1234*time.Millisecond {
		t.Errorf("sleeps = %v, want exactly the hinted 1234ms", sleeps)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{Attempts: 10, BaseDelay: time.Hour}, func() error {
		calls++
		cancel() // cancel mid-backoff: the sleep must return promptly
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("op called %d times after cancel, want 1", calls)
	}
}
