package workload

import (
	"testing"

	"hdsmt/internal/bench"
)

func TestTableSizes(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("workloads = %d, want 22 (Tables 2-3)", len(all))
	}
	counts := map[int]int{}
	for _, w := range all {
		counts[w.Threads()]++
	}
	if counts[2] != 9 || counts[4] != 9 || counts[6] != 4 {
		t.Errorf("per-size counts = %v, want 9/9/4", counts)
	}
}

func TestTable2TwoThreaded(t *testing.T) {
	cases := map[string]struct {
		benchmarks []string
		typ        Type
	}{
		"2W1": {[]string{"eon", "gcc"}, ILP},
		"2W4": {[]string{"mcf", "twolf"}, MEM},
		"2W7": {[]string{"gzip", "twolf"}, MIX},
		"2W9": {[]string{"parser", "vpr"}, MIX},
	}
	for name, want := range cases {
		w := MustByName(name)
		if w.Type != want.typ {
			t.Errorf("%s type = %v", name, w.Type)
		}
		for i, b := range want.benchmarks {
			if w.Benchmarks[i] != b {
				t.Errorf("%s benchmarks = %v", name, w.Benchmarks)
			}
		}
	}
}

func TestTable3SixThreaded(t *testing.T) {
	w := MustByName("6W4")
	want := []string{"vpr", "mcf", "crafty", "perlbmk", "vortex", "twolf"}
	if len(w.Benchmarks) != 6 || w.Type != MIX {
		t.Fatalf("6W4 = %+v", w)
	}
	for i := range want {
		if w.Benchmarks[i] != want[i] {
			t.Errorf("6W4 benchmarks = %v", w.Benchmarks)
		}
	}
}

func TestNoSixThreadMEM(t *testing.T) {
	// Paper: "MEM workloads are only feasible for 2 and 4 threads."
	if got := Select(6, MEM); len(got) != 0 {
		t.Errorf("6-thread MEM workloads = %v", got)
	}
	if len(Select(2, MEM)) != 3 || len(Select(4, MEM)) != 2 {
		t.Error("2/4-thread MEM counts wrong")
	}
}

func TestSelectCoversTable(t *testing.T) {
	total := 0
	for _, n := range ThreadCounts() {
		for _, ty := range Types() {
			total += len(Select(n, ty))
		}
	}
	if total != 22 {
		t.Errorf("Select covers %d workloads, want 22", total)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("9W9"); err == nil {
		t.Error("unknown workload should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic")
		}
	}()
	MustByName("9W9")
}

func TestAllBenchmarksResolve(t *testing.T) {
	for _, w := range All() {
		bs, err := w.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(bs) != w.Threads() {
			t.Errorf("%s resolved %d of %d", w.Name, len(bs), w.Threads())
		}
	}
}

func TestNoDuplicateBenchmarksWithinWorkload(t *testing.T) {
	for _, w := range All() {
		seen := map[string]bool{}
		for _, b := range w.Benchmarks {
			if seen[b] {
				t.Errorf("%s repeats %s", w.Name, b)
			}
			seen[b] = true
		}
	}
}

func TestWorkloadClassesMatchBenchmarkClasses(t *testing.T) {
	// ILP workloads contain only ILP benchmarks; MEM only MEM; MIX both.
	for _, w := range All() {
		bs, err := w.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		hasILP, hasMEM := false, false
		for _, b := range bs {
			if b.Class == bench.ILP {
				hasILP = true
			} else {
				hasMEM = true
			}
		}
		switch w.Type {
		case ILP:
			if hasMEM {
				t.Errorf("%s is ILP but contains a MEM benchmark", w.Name)
			}
		case MEM:
			if hasILP {
				t.Errorf("%s is MEM but contains an ILP benchmark", w.Name)
			}
		case MIX:
			if !hasILP || !hasMEM {
				t.Errorf("%s is MIX but is not mixed", w.Name)
			}
		}
	}
}

func TestTypeString(t *testing.T) {
	if ILP.String() != "ILP" || MEM.String() != "MEM" || MIX.String() != "MIX" {
		t.Error("type names wrong")
	}
	if Type(9).String() == "" {
		t.Error("unknown type empty")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Error("All must return a copy")
	}
}
