// Package workload defines the multiprogrammed workloads of paper Tables 2
// and 3: nine 2-thread, nine 4-thread and four 6-thread mixes of SPECint2000
// benchmarks, classified ILP (high instruction-level parallelism), MEM (bad
// memory behaviour) or MIX.
package workload

import (
	"fmt"

	"hdsmt/internal/bench"
)

// Type is the paper's workload taxonomy.
type Type uint8

// Workload classes (Tables 2-3: I = ILP, M = MEM, X = MIX).
const (
	ILP Type = iota
	MEM
	MIX
)

// String returns the paper's class name.
func (t Type) String() string {
	switch t {
	case ILP:
		return "ILP"
	case MEM:
		return "MEM"
	case MIX:
		return "MIX"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Workload is one multiprogrammed mix.
type Workload struct {
	Name       string
	Benchmarks []string
	Type       Type
}

// Threads returns the number of threads in the workload.
func (w Workload) Threads() int { return len(w.Benchmarks) }

// table is Tables 2 and 3 verbatim.
var table = []Workload{
	// Table 2: two-threaded workloads.
	{"2W1", []string{"eon", "gcc"}, ILP},
	{"2W2", []string{"crafty", "bzip2"}, ILP},
	{"2W3", []string{"gap", "vortex"}, ILP},
	{"2W4", []string{"mcf", "twolf"}, MEM},
	{"2W5", []string{"vpr", "perlbmk"}, MEM},
	{"2W6", []string{"vpr", "twolf"}, MEM},
	{"2W7", []string{"gzip", "twolf"}, MIX},
	{"2W8", []string{"crafty", "perlbmk"}, MIX},
	{"2W9", []string{"parser", "vpr"}, MIX},
	// Table 2: four-threaded workloads.
	{"4W1", []string{"eon", "gcc", "gzip", "bzip2"}, ILP},
	{"4W2", []string{"crafty", "bzip2", "eon", "gzip"}, ILP},
	{"4W3", []string{"gap", "vortex", "parser", "crafty"}, ILP},
	{"4W4", []string{"mcf", "twolf", "vpr", "perlbmk"}, MEM},
	{"4W5", []string{"vpr", "perlbmk", "mcf", "twolf"}, MEM},
	{"4W6", []string{"gzip", "twolf", "bzip2", "mcf"}, MIX},
	{"4W7", []string{"crafty", "perlbmk", "mcf", "bzip2"}, MIX},
	{"4W8", []string{"parser", "vpr", "vortex", "twolf"}, MIX},
	{"4W9", []string{"vpr", "twolf", "gap", "vortex"}, MIX},
	// Table 3: six-threaded workloads.
	{"6W1", []string{"gzip", "gcc", "crafty", "eon", "gap", "bzip2"}, ILP},
	{"6W2", []string{"gcc", "crafty", "parser", "eon", "gap", "vortex"}, ILP},
	{"6W3", []string{"gzip", "vpr", "mcf", "eon", "perlbmk", "bzip2"}, MIX},
	{"6W4", []string{"vpr", "mcf", "crafty", "perlbmk", "vortex", "twolf"}, MIX},
}

// All returns every workload of Tables 2-3, in table order.
func All() []Workload {
	out := make([]Workload, len(table))
	copy(out, table)
	return out
}

// ByName resolves a workload identifier such as "4W6".
func ByName(name string) (Workload, error) {
	for _, w := range table {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// MustByName is ByName for static identifiers; it panics on error.
func MustByName(name string) Workload {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Select returns the workloads with the given thread count and type, in
// table order. The paper notes MEM workloads only exist for 2 and 4 threads
// ("due to the characteristics of SPECint2000").
func Select(threads int, t Type) []Workload {
	var out []Workload
	for _, w := range table {
		if w.Threads() == threads && w.Type == t {
			out = append(out, w)
		}
	}
	return out
}

// ThreadCounts returns the workload sizes evaluated (2, 4, 6).
func ThreadCounts() []int { return []int{2, 4, 6} }

// Types returns the three workload classes.
func Types() []Type { return []Type{ILP, MEM, MIX} }

// Resolve returns the bench.Benchmark records for the workload's programs.
func (w Workload) Resolve() ([]bench.Benchmark, error) {
	out := make([]bench.Benchmark, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", w.Name, err)
		}
		out[i] = b
	}
	return out, nil
}
