package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hdsmt/internal/engine"
	"hdsmt/internal/faultinject"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
)

// durableServer builds a server with a job journal (and any extra
// options) plus its own runner, registry and httptest listener.
func durableServer(t *testing.T, journal string, opts ...server.Option) (*httptest.Server, *server.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	r, err := sim.NewRunner(engine.Options{Workers: 4, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]server.Option{server.WithTelemetry(reg), server.WithJobJournal(journal)}, opts...)
	srv, err := server.New(r, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		r.Close()
	})
	return ts, srv, reg
}

func postStatus(t *testing.T, ts *httptest.Server, spec any, headers map[string]string) (int, server.Status, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st, resp.Header
}

// tinyRun is a job spec that settles in well under a second.
func tinyRun() server.JobSpec {
	return server.JobSpec{Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000}
}

// slowSweep is a job spec that reliably stays running long enough to be
// canceled, snapshotted or timed out underneath. One cell only — its
// exhaustive mapping oracle still fans out to many long simulations, but
// it does not monopolize the engine queue for the whole test. In-flight
// simulations cannot be interrupted mid-run, so under the race detector
// (~15x slowdown per simulated cycle) the budget is scaled down to keep
// the post-cancel engine drain from dominating the suite's wall clock.
func slowSweep() server.JobSpec {
	budget, warmup := uint64(400_000), uint64(50_000)
	if raceDetectorOn {
		budget, warmup = 50_000, 8_000
	}
	return server.JobSpec{
		Kind: "sweep", Configs: []string{"2M4+2M2"}, Workloads: []string{"4W6"},
		Budget: budget, Warmup: warmup,
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobJournalRelistsSettledAcrossRestart: a settled job survives a
// daemon restart — the new incarnation re-lists it, serves its result
// byte-for-byte from the journal, and keeps allocating fresh ids past it.
func TestJobJournalRelistsSettledAcrossRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "jobs.jsonl")
	ts1, srv1, _ := durableServer(t, journal)

	st := postJob(t, ts1, tinyRun())
	final := awaitJob(t, ts1, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	var want json.RawMessage
	if code := getJSON(t, ts1.URL+"/jobs/"+st.ID+"/result", &want); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	ts1.Close()
	srv1.Close()

	// Second life over the same journal.
	ts2, _, reg := durableServer(t, journal)
	var listed server.Status
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID, &listed); code != http.StatusOK {
		t.Fatalf("recovered job status = %d", code)
	}
	if listed.State != "done" || listed.Kind != "run" {
		t.Errorf("recovered job = %s/%s, want run/done", listed.Kind, listed.State)
	}
	var got json.RawMessage
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("recovered result = %d", code)
	}
	var a, b any
	if json.Unmarshal(want, &a) != nil || json.Unmarshal(got, &b) != nil {
		t.Fatal("unmarshaling results")
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("recovered result differs:\n got %s\nwant %s", bj, aj)
	}
	if reg.Total(telemetry.MetricServerRecovered) == 0 {
		t.Error("no recovered-jobs metric after replay")
	}

	// Fresh submissions continue the id sequence instead of colliding
	// with the recovered job.
	st2 := postJob(t, ts2, tinyRun())
	if st2.ID == st.ID {
		t.Errorf("restarted daemon reissued id %s", st.ID)
	}
	if awaitJob(t, ts2, st2.ID).State != "done" {
		t.Error("post-restart job failed")
	}

	// DELETE-eviction is durable: evict the recovered job, restart again,
	// and it must stay gone.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts3, _, _ := durableServer(t, journal)
	if code := getJSON(t, ts3.URL+"/jobs/"+st.ID, nil); code != http.StatusNotFound {
		t.Errorf("evicted job resurrected with status %d", code)
	}
	if code := getJSON(t, ts3.URL+"/jobs/"+st2.ID, nil); code != http.StatusOK {
		t.Errorf("non-evicted job lost (status %d)", code)
	}
}

// snapshotFile copies src (a live journal) to a fresh path, simulating
// the on-disk state a SIGKILL at this instant would leave behind.
func snapshotFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJobJournalInterruptsUnfinished: a daemon killed mid-sweep restarts
// knowing the job — it is re-listed in the terminal "interrupted" state,
// its result answers 409, cancel answers 409, and DELETE evicts it.
func TestJobJournalInterruptsUnfinished(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "jobs.jsonl")
	ts1, _, _ := durableServer(t, live)

	st := postJob(t, ts1, slowSweep())
	// The accept is journaled synchronously before the 202, so this
	// snapshot is the post-SIGKILL disk state with the job unfinished.
	snapshot := filepath.Join(dir, "jobs-crash.jsonl")
	snapshotFile(t, live, snapshot)

	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	ts2, _, reg := durableServer(t, snapshot)
	var rec server.Status
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID, &rec); code != http.StatusOK {
		t.Fatalf("crashed job not re-listed (status %d)", code)
	}
	if rec.State != "interrupted" {
		t.Fatalf("crashed job state = %q, want interrupted", rec.State)
	}
	if rec.Error == "" {
		t.Error("interrupted job has no explanatory error")
	}
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("result of interrupted job = %d, want 409", code)
	}
	resp, err := http.Post(ts2.URL+"/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of interrupted job = %d, want 409", resp.StatusCode)
	}
	if reg.Total(telemetry.MetricServerRecovered) == 0 {
		t.Error("interrupted recovery not counted")
	}
	req2, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/jobs/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("DELETE interrupted job = %d", resp2.StatusCode)
	}
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID, nil); code != http.StatusNotFound {
		t.Errorf("interrupted job still listed after eviction (%d)", code)
	}
}

// TestJobJournalResumesArchivedPareto: the resumable class — an
// archive-backed pareto job orphaned by a crash is relaunched from its
// checkpoint by the next incarnation and runs to completion.
func TestJobJournalResumesArchivedPareto(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "jobs.jsonl")
	archives := filepath.Join(dir, "archives")
	ts1, _, _ := durableServer(t, live, server.WithArchiveDir(archives))

	// The snapshot below must land while the job is still unsettled, or
	// the second life replays a finished job instead of resuming one; a
	// generous budget keeps the job running past the copy under
	// parallel-test scheduling noise.
	spec := server.JobSpec{
		Kind:         "pareto",
		SearchBudget: 40,
		Seed:         7,
		MaxPipes:     2,
		Workloads:    []string{"2W7"},
		Objectives:   []string{"ipc", "area"},
		Archive:      "crashfront",
		Budget:       5_000,
		Warmup:       2_000,
	}
	st := postJob(t, ts1, spec)
	snapshot := filepath.Join(dir, "jobs-crash.jsonl")
	snapshotFile(t, live, snapshot)
	// Let the first life finish so its archive checkpoint exists and the
	// listener shuts down cleanly; the second life still sees the job
	// unsettled in its snapshot.
	awaitJob(t, ts1, st.ID)

	ts2, _, reg := durableServer(t, snapshot, server.WithArchiveDir(archives))
	final := awaitJob(t, ts2, st.ID)
	if final.State != "done" {
		t.Fatalf("resumed pareto job = %s (%s), want done", final.State, final.Error)
	}
	var got struct {
		Front []json.RawMessage `json:"front"`
	}
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("resumed result = %d", code)
	}
	if len(got.Front) == 0 {
		t.Error("resumed pareto job produced an empty front")
	}
	resumed := false
	for _, s := range reg.Snapshot() {
		if s.Name == telemetry.MetricServerRecovered && s.LabelValue == "resumed" && s.Value > 0 {
			resumed = true
		}
	}
	if !resumed {
		t.Error("resume not counted in the recovery metric")
	}
}

// TestJobJournalHealsTornTail: the satellite contract for the job
// journal — a crash-truncated final line is skipped, counted in
// telemetry, healed on disk, and the job whose settle event it carried is
// accounted for as interrupted rather than lost.
func TestJobJournalHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.jsonl")
	ts1, srv1, _ := durableServer(t, journal)
	stA := postJob(t, ts1, tinyRun())
	awaitJob(t, ts1, stA.ID)
	stB := postJob(t, ts1, tinyRun())
	awaitJob(t, ts1, stB.ID)
	ts1.Close()
	srv1.Close()

	// Tear the final line (job B's settle event) mid-byte.
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimSuffix(b, []byte("\n"))
	cut := bytes.LastIndexByte(trimmed, '\n') + 1 + (len(trimmed)-bytes.LastIndexByte(trimmed, '\n'))/2
	if err := os.WriteFile(journal, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, _, _ := durableServer(t, journal)
	metrics := scrapeMetrics(t, ts2)
	if !strings.Contains(metrics, telemetry.MetricServerJournalTorn+" 1") {
		t.Errorf("torn line not counted; metrics:\n%s", grepMetrics(metrics, "journal"))
	}
	var a server.Status
	if code := getJSON(t, ts2.URL+"/jobs/"+stA.ID, &a); code != http.StatusOK || a.State != "done" {
		t.Errorf("job A = %d/%s, want 200/done", code, a.State)
	}
	var bb server.Status
	if code := getJSON(t, ts2.URL+"/jobs/"+stB.ID, &bb); code != http.StatusOK || bb.State != "interrupted" {
		t.Errorf("job B (torn settle) = %d/%q, want 200/interrupted", code, bb.State)
	}

	// Third life: the heal truncated the torn bytes, so nothing is torn
	// anymore and job B's interruption was itself journaled.
	ts3, _, _ := durableServer(t, journal)
	metrics = scrapeMetrics(t, ts3)
	if !strings.Contains(metrics, telemetry.MetricServerJournalTorn+" 0") {
		t.Errorf("journal not healed; metrics:\n%s", grepMetrics(metrics, "journal"))
	}
	var b3 server.Status
	if code := getJSON(t, ts3.URL+"/jobs/"+stB.ID, &b3); code != http.StatusOK || b3.State != "interrupted" {
		t.Errorf("job B third life = %d/%q, want 200/interrupted", code, b3.State)
	}
}

func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestAdmissionSaturationAndQueue: with one active slot and a one-deep
// queue, the third concurrent submission is rejected with 429 and a
// Retry-After hint; as jobs settle, the queued job launches.
func TestAdmissionSaturationAndQueue(t *testing.T) {
	ts, _, reg := durableServer(t, filepath.Join(t.TempDir(), "jobs.jsonl"),
		server.WithAdmission(server.AdmissionConfig{MaxActive: 1, MaxPending: 1}))

	code, running, _ := postStatus(t, ts, slowSweep(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	code, queued, _ := postStatus(t, ts, tinyRun(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("second submit (queued) = %d", code)
	}
	code, _, hdr := postStatus(t, ts, tinyRun(), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if reg.Total(telemetry.MetricServerRejected) == 0 {
		t.Error("rejection not counted")
	}

	// The queued job must still be pending (slot busy), then run to done
	// once the active job is canceled.
	var qs server.Status
	getJSON(t, ts.URL+"/jobs/"+queued.ID, &qs)
	if qs.State != "pending" {
		t.Errorf("queued job state = %q, want pending", qs.State)
	}
	resp, err := http.Post(ts.URL+"/jobs/"+running.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("cancel = %d, want 202", resp.StatusCode)
	}
	if st := awaitJob(t, ts, queued.ID); st.State != "done" {
		t.Errorf("queued job = %s (%s), want done after slot freed", st.State, st.Error)
	}
}

// TestAdmissionTenantQuota: quotas are per X-API-Key tenant — one tenant
// saturating its quota does not block another.
func TestAdmissionTenantQuota(t *testing.T) {
	ts, _, _ := durableServer(t, filepath.Join(t.TempDir(), "jobs.jsonl"),
		server.WithAdmission(server.AdmissionConfig{TenantQuota: 1}))

	alice := map[string]string{"X-API-Key": "alice"}
	bob := map[string]string{"X-API-Key": "bob"}

	code, aliceJob, _ := postStatus(t, ts, slowSweep(), alice)
	if code != http.StatusAccepted {
		t.Fatalf("alice's first job = %d", code)
	}
	if aliceJob.Tenant != "alice" {
		t.Errorf("tenant = %q, want alice", aliceJob.Tenant)
	}
	code, _, hdr := postStatus(t, ts, tinyRun(), alice)
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over quota = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After")
	}
	code, bobJob, _ := postStatus(t, ts, tinyRun(), bob)
	if code != http.StatusAccepted {
		t.Fatalf("bob blocked by alice's quota (%d)", code)
	}

	// Alice's quota frees once her job settles. Cancel before awaiting
	// bob: his tiny job sits behind the sweep's fan-out in the shared
	// engine queue until the cancellation abandons those tasks.
	resp, err := http.Post(ts.URL+"/jobs/"+aliceJob.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	awaitJob(t, ts, aliceJob.ID)
	if st := awaitJob(t, ts, bobJob.ID); st.State != "done" {
		t.Errorf("bob's job = %s (%s), want done", st.State, st.Error)
	}
	if code, st, _ := postStatus(t, ts, tinyRun(), alice); code != http.StatusAccepted {
		t.Errorf("alice after settle = %d, want 202", code)
	} else {
		awaitJob(t, ts, st.ID)
	}
}

// TestSubmitBodyCap: oversized job specs bounce with 413 before any
// decoding work.
func TestSubmitBodyCap(t *testing.T) {
	ts, _, _ := durableServer(t, filepath.Join(t.TempDir(), "jobs.jsonl"),
		server.WithMaxBodyBytes(256))
	big := map[string]any{"kind": "run", "config": strings.Repeat("x", 4096)}
	code, _, _ := postStatus(t, ts, big, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec = %d, want 413", code)
	}
	if code, st, _ := postStatus(t, ts, tinyRun(), nil); code != http.StatusAccepted {
		t.Errorf("small spec after cap = %d", code)
	} else {
		awaitJob(t, ts, st.ID)
	}
}

// TestHandlerStatusCodes is the table-driven contract for the result and
// cancel endpoints across job lifecycle states.
func TestHandlerStatusCodes(t *testing.T) {
	ts, _, _ := durableServer(t, filepath.Join(t.TempDir(), "jobs.jsonl"))

	doneJob := awaitJob(t, ts, postJob(t, ts, tinyRun()).ID)
	canceledSpec := postJob(t, ts, slowSweep())
	resp, err := http.Post(ts.URL+"/jobs/"+canceledSpec.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running = %d, want 202", resp.StatusCode)
	}
	canceledJob := awaitJob(t, ts, canceledSpec.ID)
	if canceledJob.State != "canceled" {
		t.Fatalf("canceled job state = %q", canceledJob.State)
	}

	for _, tc := range []struct {
		name   string
		method string
		path   string
		want   int
	}{
		{"result of unknown job", http.MethodGet, "/jobs/job-999999/result", http.StatusNotFound},
		{"cancel of unknown job", http.MethodPost, "/jobs/job-999999/cancel", http.StatusNotFound},
		{"result of done job", http.MethodGet, "/jobs/" + doneJob.ID + "/result", http.StatusOK},
		{"cancel of done job", http.MethodPost, "/jobs/" + doneJob.ID + "/cancel", http.StatusConflict},
		{"result of canceled job", http.MethodGet, "/jobs/" + canceledJob.ID + "/result", http.StatusConflict},
		{"cancel of canceled job", http.MethodPost, "/jobs/" + canceledJob.ID + "/cancel", http.StatusConflict},
		{"status of unknown job", http.MethodGet, "/jobs/job-999999", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestJobDeadline: a job past its deadline settles as failed — the work
// was not done — with the deadline named, and frees its admission slot.
func TestJobDeadline(t *testing.T) {
	ts, _, _ := durableServer(t, filepath.Join(t.TempDir(), "jobs.jsonl"),
		server.WithAdmission(server.AdmissionConfig{MaxActive: 1}))
	spec := slowSweep()
	spec.TimeoutSec = 0.15
	st := postJob(t, ts, spec)
	final := awaitJob(t, ts, st.ID)
	if final.State != "failed" {
		t.Fatalf("timed-out job state = %q (%s), want failed", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("error %q does not name the deadline", final.Error)
	}
	// The slot freed: a follow-up job runs immediately.
	if st2 := awaitJob(t, ts, postJob(t, ts, tinyRun()).ID); st2.State != "done" {
		t.Errorf("job after timeout = %s, want done", st2.State)
	}
}

// TestDrainRejectsAndWaits: Drain flips submissions to 503 + Retry-After
// and returns once accepted jobs settle.
func TestDrainRejectsAndWaits(t *testing.T) {
	ts, srv, _ := durableServer(t, filepath.Join(t.TempDir(), "jobs.jsonl"))
	st := postJob(t, ts, slowSweep())

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(t.Context()) }()

	// Drain must reject new work while waiting for the sweep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, hdr := postStatus(t, ts, tinyRun(), nil)
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Error("draining 503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never rejected while draining (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned with job still running: %v", err)
	default:
	}
	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never returned after last job settled")
	}
}

// TestChaosInjectedFaultsNeverCrash: with error faults armed on every
// I/O and simulation point, submissions keep getting honest answers —
// jobs settle (done or failed), the journal survives, and a restart over
// it accounts for every job.
func TestChaosInjectedFaultsNeverCrash(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.jsonl")
	faultinject.Enable(1234, map[string]faultinject.Fault{
		faultinject.PointStoreLoad:        {Err: 0.3},
		faultinject.PointStoreSave:        {Err: 0.3},
		faultinject.PointJournalAppend:    {Err: 0.3},
		faultinject.PointJobJournalAppend: {Err: 0.2},
		faultinject.PointSimulate:         {Err: 0.05},
	})

	ts1, srv1, _ := durableServer(t, journal)
	var ids []string
	for i := 0; i < 6; i++ {
		code, st, _ := postStatus(t, ts1, tinyRun(), nil)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d under faults = %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	settled := map[string]string{}
	for _, id := range ids {
		st := awaitJob(t, ts1, id)
		settled[id] = st.State
		if st.State != "done" && st.State != "failed" {
			t.Errorf("job %s under faults = %q, want done or failed", id, st.State)
		}
	}
	ts1.Close()
	srv1.Close()

	// Restart over the fault-scarred journal: every accepted job must be
	// accounted for — same settled state, or interrupted if its settle
	// event was lost to an injected journal fault.
	ts2, _, _ := durableServer(t, journal)
	var list []server.Status
	if code := getJSON(t, ts2.URL+"/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET /jobs after chaos restart = %d", code)
	}
	byID := map[string]server.Status{}
	for _, st := range list {
		byID[st.ID] = st
	}
	for _, id := range ids {
		st, ok := byID[id]
		if !ok {
			// Only acceptable if the accept event itself was lost to an
			// injected append fault — the client saw a 202, but a crashed
			// write is exactly what the fault simulates. It must have
			// been a journal-append error, not silent loss.
			if faultinject.CountsFor(faultinject.PointJobJournalAppend).Errs == 0 {
				t.Errorf("job %s vanished without any journal fault", id)
			}
			continue
		}
		if st.State != settled[id] && st.State != "interrupted" {
			t.Errorf("job %s = %q after restart, want %q or interrupted", id, st.State, settled[id])
		}
	}
	if code := getJSON(t, ts2.URL+"/healthz", nil); code != http.StatusOK {
		t.Error("daemon unhealthy after chaos restart")
	}
	if m := scrapeMetrics(t, ts2); !strings.Contains(m, "hdsmt_") {
		t.Error("metrics scrape broken after chaos restart")
	}
}
