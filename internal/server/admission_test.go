package server

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the token bucket deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func admissionWithClock(cfg AdmissionConfig) (*admission, *fakeClock) {
	c := newFakeClock()
	a := &admission{cfg: cfg, now: c.now, tenants: map[string]int{}}
	a.tokens = float64(cfg.burst())
	a.last = c.now()
	return a, c
}

func TestTokenBucketRateLimit(t *testing.T) {
	a, clock := admissionWithClock(AdmissionConfig{Rate: 2, Burst: 2})
	noop := func() {}

	// The bucket starts full: two immediate admits pass, the third is
	// rejected with a Retry-After that covers the refill.
	for i := 0; i < 2; i++ {
		if err := a.admit("t", 0, noop); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := a.admit("t", 0, noop)
	var ae *admissionError
	if !errors.As(err, &ae) || ae.reason != "rate" {
		t.Fatalf("admit over rate = %v, want rate rejection", err)
	}
	if ae.RetryDelay() <= 0 || ae.RetryDelay() > time.Second {
		t.Errorf("RetryDelay = %v, want (0, 1s] at 2 jobs/s", ae.RetryDelay())
	}
	if ae.retryAfterSeconds() < 1 {
		t.Errorf("Retry-After header value %d < 1", ae.retryAfterSeconds())
	}

	// Half a second refills one token at 2/s.
	clock.advance(500 * time.Millisecond)
	if err := a.admit("t", 0, noop); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	if err := a.admit("t", 0, noop); err == nil {
		t.Fatal("bucket should be empty again")
	}

	// A long idle period refills only to the burst cap.
	clock.advance(time.Hour)
	admitted := 0
	for a.admit("t", 0, noop) == nil {
		admitted++
	}
	if admitted != 2 {
		t.Errorf("admitted %d after long idle, want burst cap 2", admitted)
	}
}

func TestRejectedSubmissionConsumesNoToken(t *testing.T) {
	a, _ := admissionWithClock(AdmissionConfig{Rate: 1, Burst: 1, TenantQuota: 1})
	noop := func() {}
	if err := a.admit("t", 0, noop); err != nil {
		t.Fatal(err)
	}
	a.release("t") // settle; bucket still empty, quota free

	// Occupy the quota without a token problem, then a quota rejection
	// must not charge the (refilled) bucket.
	a2, clock := admissionWithClock(AdmissionConfig{Rate: 1, Burst: 1, TenantQuota: 1})
	if err := a2.admit("t", 0, noop); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Second) // refill
	var ae *admissionError
	if err := a2.admit("t", 0, noop); !errors.As(err, &ae) || ae.reason != "quota" {
		t.Fatalf("want quota rejection, got %v", err)
	}
	// The token survived the rejection: another tenant admits fine.
	if err := a2.admit("u", 0, noop); err != nil {
		t.Errorf("token was consumed by a rejected submission: %v", err)
	}
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	a, _ := admissionWithClock(AdmissionConfig{MaxActive: 1, MaxPending: 10})
	var order []string
	mk := func(name string) func() {
		return func() { order = append(order, name) }
	}

	if err := a.admit("t", 0, mk("first")); err != nil { // takes the slot
		t.Fatal(err)
	}
	for i, spec := range []struct {
		name string
		pri  int
	}{
		{"low-a", 0}, {"high", 5}, {"low-b", 0}, {"mid", 3},
	} {
		if err := a.admit("t", spec.pri, mk(spec.name)); err != nil {
			t.Fatalf("queueing %d: %v", i, err)
		}
	}
	if got := a.pendingLen(); got != 4 {
		t.Fatalf("pendingLen = %d, want 4", got)
	}
	// Drain: each release launches the next by priority, FIFO within.
	for i := 0; i < 5; i++ {
		a.release("t")
	}
	want := fmt.Sprint([]string{"first", "high", "mid", "low-a", "low-b"})
	if got := fmt.Sprint(order); got != want {
		t.Errorf("launch order %v, want %v", got, want)
	}
	if a.pendingLen() != 0 {
		t.Errorf("queue not drained: %d left", a.pendingLen())
	}
}

func TestQueueFullRejects(t *testing.T) {
	a, _ := admissionWithClock(AdmissionConfig{MaxActive: 1, MaxPending: 1})
	noop := func() {}
	if err := a.admit("t", 0, noop); err != nil {
		t.Fatal(err)
	}
	if err := a.admit("t", 0, noop); err != nil { // queued
		t.Fatal(err)
	}
	var ae *admissionError
	if err := a.admit("t", 0, noop); !errors.As(err, &ae) || ae.reason != "queue_full" {
		t.Fatalf("want queue_full, got %v", err)
	}

	// MaxPending <= 0 disables queuing entirely.
	b, _ := admissionWithClock(AdmissionConfig{MaxActive: 1})
	if err := b.admit("t", 0, noop); err != nil {
		t.Fatal(err)
	}
	if err := b.admit("t", 0, noop); !errors.As(err, &ae) || ae.reason != "queue_full" {
		t.Fatalf("want immediate queue_full with no queue, got %v", err)
	}
}
