package server_test

import (
	"context"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hdsmt/internal/server"
	"hdsmt/internal/version"
)

// TestHealthAndReadiness pins the probe contract: /healthz is pure
// liveness (always 200 while serving), /readyz is 200 once the journal
// is replayed and the engine accepts work, and flips to 503 the moment
// the server starts draining — before jobs finish, so load balancers
// stop routing first.
func TestHealthAndReadiness(t *testing.T) {
	dir := t.TempDir()
	ts, srv, _ := durableServer(t, filepath.Join(dir, "jobs.jsonl"))

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", code)
	}
	var ready struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Errorf("GET /readyz = %d, want 200", code)
	}
	if ready.Version != version.Version {
		t.Errorf("readyz version = %q, want %q", ready.Version, version.Version)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz while draining = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("GET /healthz while draining = %d, want 200 (liveness is not readiness)", code)
	}
}

// TestBuildInfoMetric requires the hdsmt_build_info gauge on /metrics,
// with version and goversion labels, value 1.
func TestBuildInfoMetric(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var line string
	for _, l := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(l, "hdsmt_build_info{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no hdsmt_build_info sample in /metrics:\n%s", body)
	}
	for _, want := range []string{`version="` + version.Version + `"`, `goversion="`, "} 1"} {
		if !strings.Contains(line, want) {
			t.Errorf("build_info line %q missing %q", line, want)
		}
	}
}

// TestRequestIDEcho pins the correlation contract at the HTTP edge: a
// client-supplied X-Request-ID is echoed back and bound to the job; an
// absent or unusable one is replaced with a server-minted ID.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := server.JobSpec{Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000}

	code, st, hdr := postStatus(t, ts, spec, map[string]string{"X-Request-ID": "corr-123"})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	if got := hdr.Get("X-Request-ID"); got != "corr-123" {
		t.Errorf("echoed X-Request-ID = %q, want corr-123", got)
	}
	if st.RequestID != "corr-123" {
		t.Errorf("job request_id = %q, want corr-123", st.RequestID)
	}

	// A header full of garbage (spaces, quotes) must not be reflected
	// back verbatim; the server mints a clean replacement.
	code, st, hdr = postStatus(t, ts, spec, map[string]string{"X-Request-ID": `bad id "quoted"`})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	minted := hdr.Get("X-Request-ID")
	if minted == "" || strings.ContainsAny(minted, " \"") {
		t.Errorf("sanitized X-Request-ID = %q, want a clean minted ID", minted)
	}
	if st.RequestID != minted {
		t.Errorf("job request_id %q != echoed header %q", st.RequestID, minted)
	}
}
