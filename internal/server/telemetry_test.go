package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hdsmt/internal/engine"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
)

// newMetricsServer wires one registry through both layers — the engine
// under the runner and the server's job instruments — the way cmd/hdsmtd
// does, so one /metrics scrape covers the whole stack.
func newMetricsServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	r, err := sim.NewRunner(engine.Options{Workers: 4, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(r, server.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return ts, reg
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsEndpoint drives one simulation job and one search job, then
// asserts the scrape carries all three layers' key families.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newMetricsServer(t)
	run := map[string]any{
		"kind": "run", "config": "M8", "workload": "2W1",
		"budget": 3_000, "warmup": 2_000,
	}
	if st := awaitJob(t, ts, postJob(t, ts, run).ID); st.State != "done" {
		t.Fatalf("run job state %s: %s", st.State, st.Error)
	}
	srch := map[string]any{
		"kind": "search", "strategy": "random", "search_budget": 2, "seed": 7,
		"workloads": []string{"2W7"}, "max_pipes": 2,
		"budget": 1_500, "warmup": 500,
	}
	if st := awaitJob(t, ts, postJob(t, ts, srch).ID); st.State != "done" {
		t.Fatalf("search job state %s: %s", st.State, st.Error)
	}

	out := scrape(t, ts)
	for _, want := range []string{
		telemetry.MetricEngineExecuted + " ",
		telemetry.MetricEngineCacheRatio + " ",
		telemetry.MetricEngineQueueDepth + " ",
		telemetry.MetricEngineShardDepth + `{shard="0"} `,
		telemetry.MetricEngineJobSeconds + "_count ",
		telemetry.MetricServerJobs + `{kind="run"} 1`,
		telemetry.MetricServerJobs + `{kind="search"} 1`,
		telemetry.MetricServerJobSeconds + `_bucket{kind="run",le="+Inf"} 1`,
		telemetry.MetricServerInflight + " 0",
		telemetry.MetricSearchEvaluations + `{strategy="random"} 2`,
		telemetry.MetricSearchSubmitted + `{strategy="random"} `,
		telemetry.MetricSearchBestAge + `{strategy="random"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Two scrapes of a quiet server render identically.
	if again := scrape(t, ts); again != out {
		t.Error("consecutive scrapes of an idle server differ")
	}
}

// TestConcurrentFrontPollers hammers GET /jobs/{id} from many goroutines
// while a pareto job is mutating its streamed front and hypervolume —
// run under -race in CI, this pins the status path's locking.
func TestConcurrentFrontPollers(t *testing.T) {
	ts, _ := newArchiveServer(t)
	st := postJob(t, ts, paretoSpec(7, 4, "polled"))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/jobs/" + st.ID)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	final := awaitJob(t, ts, st.ID)
	close(stop)
	wg.Wait()
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	if len(final.Front) == 0 {
		t.Error("settled status carries no front despite pollers")
	}
}
