//go:build race

package server_test

// raceDetectorOn mirrors the race build tag so timing-sensitive specs can
// scale their cycle budgets to the detector's ~15x slowdown.
const raceDetectorOn = true
