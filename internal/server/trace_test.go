package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdsmt/internal/client"
	"hdsmt/internal/engine"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
)

// newTracedServer builds a server whose engine has both a store and a
// checkpoint journal, so every span kind the engine can record —
// queue-wait, store-lookup, simulate, journal-append — actually appears
// in a settled job's trace.
func newTracedServer(t *testing.T) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	r, err := sim.NewRunner(engine.Options{
		Workers:     2,
		CacheDir:    dir + "/cache",
		JournalPath: dir + "/journal.jsonl",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(r)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return ts
}

// TestTraceparentRoundTrip pins the tracing acceptance criterion
// end-to-end through the client package: a job submitted under a
// client-minted trace context settles with a span tree rooted at the
// client's span, with the admission and execute server spans parented
// to the root and the engine's queue-wait, store-lookup, simulate and
// journal-append spans parented to execute.
func TestTraceparentRoundTrip(t *testing.T) {
	ts := newTracedServer(t)
	c := client.New(ts.URL)

	tc := telemetry.NewTraceContext()
	ctx := telemetry.WithTraceContext(context.Background(), tc)
	st, err := c.Submit(ctx, tinyRun())
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != tc.TraceID {
		t.Fatalf("accepted status trace_id = %q, want the client's %q", st.TraceID, tc.TraceID)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if _, err := c.Wait(wctx, st.ID); err != nil {
		t.Fatal(err)
	}

	tp, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tp.TraceID != tc.TraceID {
		t.Errorf("trace page trace_id = %q, want %q", tp.TraceID, tc.TraceID)
	}
	if tp.Root == nil {
		t.Fatal("trace page has no root span")
	}
	if tp.Root.SpanID != tc.SpanID {
		t.Errorf("root span id = %q, want the client's %q", tp.Root.SpanID, tc.SpanID)
	}

	// Flatten the tree into name → parent for structural assertions.
	parents := map[string]string{}
	ids := map[string]string{}
	var walk func(n *telemetry.SpanNode)
	walk = func(n *telemetry.SpanNode) {
		ids[n.Name] = n.SpanID
		parents[n.Name] = n.ParentID
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(tp.Root)

	for _, name := range []string{"admission", "execute", "queue-wait", "store-lookup", "simulate", "journal-append"} {
		if _, ok := parents[name]; !ok {
			t.Errorf("span %q missing from settled job's trace", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	for _, name := range []string{"admission", "execute"} {
		if parents[name] != tc.SpanID {
			t.Errorf("%s span parent = %q, want root %q", name, parents[name], tc.SpanID)
		}
	}
	for _, name := range []string{"queue-wait", "store-lookup", "simulate", "journal-append"} {
		if parents[name] != ids["execute"] {
			t.Errorf("%s span parent = %q, want execute span %q", name, parents[name], ids["execute"])
		}
	}
}

// TestTraceparentSanitization pins the header contract at the HTTP
// edge, mirroring TestRequestIDEcho: a well-formed traceparent is
// adopted (same trace-id echoed back, job rooted at the client's span),
// while malformed ones — wrong length, uppercase hex, zero IDs, the
// forbidden version ff — are replaced with a minted identity, never
// reflected or half-trusted.
func TestTraceparentSanitization(t *testing.T) {
	ts, _ := newTestServer(t)

	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	code, st, hdr := postStatus(t, ts, tinyRun(), map[string]string{"traceparent": valid})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	if got := hdr.Get("traceparent"); got != valid {
		t.Errorf("echoed traceparent = %q, want %q", got, valid)
	}
	if st.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("job trace_id = %q, want the client's", st.TraceID)
	}

	for _, bad := range []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span-id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",   // wrong separators
		"00-4bf92f3577b34da6a3ce929d0e0e4736xx-00f067aa0ba902b7-01", // wrong length
	} {
		code, st, hdr := postStatus(t, ts, tinyRun(), map[string]string{"traceparent": bad})
		if code != http.StatusAccepted {
			t.Fatalf("POST /jobs with traceparent %q = %d", bad, code)
		}
		minted := hdr.Get("traceparent")
		if minted == bad {
			t.Errorf("malformed traceparent %q reflected verbatim", bad)
		}
		mtc, ok := telemetry.ParseTraceparent(minted)
		if !ok {
			t.Errorf("minted traceparent %q for input %q is itself invalid", minted, bad)
			continue
		}
		if strings.Contains(bad, mtc.TraceID) {
			t.Errorf("minted trace-id %q reuses part of malformed input %q", mtc.TraceID, bad)
		}
		if st.TraceID != mtc.TraceID {
			t.Errorf("job trace_id %q != echoed header's %q", st.TraceID, mtc.TraceID)
		}
	}
}

// TestTraceEndpoint pins the /jobs/{id}/trace surface itself: 404 for
// unknown jobs, a JSON tree for settled ones, and Chrome trace_event
// JSON under ?format=chrome.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	if code := getJSON(t, ts.URL+"/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Errorf("GET /jobs/nope/trace = %d, want 404", code)
	}

	st := postJob(t, ts, tinyRun())
	awaitJob(t, ts, st.ID)

	var tp server.TracePage
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/trace", &tp); code != http.StatusOK {
		t.Fatalf("GET trace = %d", code)
	}
	if tp.ID != st.ID || tp.Root == nil || tp.Spans == 0 {
		t.Fatalf("trace page = %+v, want id %s with a non-empty tree", tp, st.ID)
	}
	// Children are ordered by start time: admission (accepted) cannot
	// start after execute (started).
	if len(tp.Root.Children) >= 2 && tp.Root.Children[0].Name != "admission" {
		t.Errorf("first root child = %q, want admission", tp.Root.Children[0].Name)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Errorf("chrome event %q has phase %q, want X or i", ev.Name, ev.Ph)
		}
	}
}
