//go:build !race

package server_test

const raceDetectorOn = false
