package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hdsmt/internal/engine"
	"hdsmt/internal/search"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
)

// postJobExpectError submits a spec and returns the HTTP status code,
// for submit-time validation tests.
func postJobExpectError(t *testing.T, ts *httptest.Server, spec any) int {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// newArchiveServer builds a test server with an archive directory, for the
// persistence and streaming satellites.
func newArchiveServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	r, err := sim.NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv, err := server.New(r, server.WithArchiveDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return ts, dir
}

// paretoSpec is a tiny 4-objective pareto job over the enriched metric
// set — energy included, so the job also proves the activity counters
// survive the server path.
func paretoSpec(seed int64, budget int, archive string) map[string]any {
	return map[string]any{
		"kind":          "pareto",
		"strategy":      "random",
		"search_budget": budget,
		"seed":          seed,
		"workloads":     []string{"2W7"},
		"max_pipes":     2,
		"budget":        1_500,
		"warmup":        500,
		"objectives":    []string{"ipc", "area", "fairness", "energy"},
		"archive":       archive,
	}
}

// TestParetoJobFrontStreaming is the satellite streaming test over HTTP:
// once a pareto job settles, GET /jobs/{id} carries the incumbent front
// and its hypervolume — the same payload a client polling mid-run watches
// grow. (Mid-run observation is inherently racy at test budgets; the
// settled status pins the plumbing.)
func TestParetoJobFrontStreaming(t *testing.T) {
	ts, _ := newArchiveServer(t)
	st := postJob(t, ts, paretoSpec(7, 4, ""))
	final := awaitJob(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	if len(final.Front) == 0 {
		t.Fatal("settled pareto status carries no front")
	}
	if final.Hypervolume <= 0 {
		t.Errorf("settled pareto status hypervolume = %v, want positive", final.Hypervolume)
	}
	for _, fp := range final.Front {
		for _, key := range []string{"ipc", "area", "fairness", "energy"} {
			if fp.Metric(key) <= 0 {
				t.Errorf("streamed front member %s: metric %q = %v, want positive", fp.Name(), key, fp.Metric(key))
			}
		}
	}
	// The final result's front and the streamed status front agree.
	var res search.Result
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &res); code != 200 {
		t.Fatalf("result fetch = %d", code)
	}
	if len(res.Front) != len(final.Front) {
		t.Errorf("status front has %d members, result front %d", len(final.Front), len(res.Front))
	}
}

// TestParetoJobArchiveResume is the satellite persistence test over HTTP:
// a pareto job named into the server's archive directory checkpoints its
// front; a second job with the same name restores it.
func TestParetoJobArchiveResume(t *testing.T) {
	ts, dir := newArchiveServer(t)
	first := awaitJob(t, ts, postJob(t, ts, paretoSpec(7, 4, "resume-me")).ID)
	if first.State != "done" {
		t.Fatalf("first job state %s: %s", first.State, first.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, "resume-me.json")); err != nil {
		t.Fatalf("archive file missing after first job: %v", err)
	}
	second := awaitJob(t, ts, postJob(t, ts, paretoSpec(99, 2, "resume-me")).ID)
	if second.State != "done" {
		t.Fatalf("second job state %s: %s", second.State, second.Error)
	}
	var res search.Result
	if code := getJSON(t, ts.URL+"/jobs/"+second.ID+"/result", &res); code != 200 {
		t.Fatalf("result fetch = %d", code)
	}
	if res.RestoredFront == 0 {
		t.Error("second job restored nothing from the named archive")
	}
}

// TestArchiveNameExclusive pins the clobber guard: while a pareto job
// holds an archive name, a second job naming the same archive is refused
// with 409 — two concurrent checkpointers would silently overwrite each
// other's front. The name frees up once the holder settles.
func TestArchiveNameExclusive(t *testing.T) {
	ts, _ := newArchiveServer(t)
	// A deliberately slow holder: a large budget over bigger simulations.
	slow := paretoSpec(7, 400, "contended")
	slow["budget"] = 20_000
	slow["warmup"] = 10_000
	slow["max_pipes"] = 3
	holder := postJob(t, ts, slow)
	if code := postJobExpectError(t, ts, paretoSpec(9, 2, "contended")); code != 409 {
		t.Errorf("concurrent archive claim: POST = %d, want 409", code)
	}
	// Cancel the holder; once it settles, the name is claimable again.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+holder.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	awaitJob(t, ts, holder.ID)
	retry := awaitJob(t, ts, postJob(t, ts, paretoSpec(9, 2, "contended")).ID)
	if retry.State != "done" {
		t.Errorf("post-release job state %s: %s", retry.State, retry.Error)
	}
}

// TestArchiveSpecValidation pins the submit-time guards: archive names on
// non-pareto jobs, path-escaping names, and archives on servers without a
// directory all 400.
func TestArchiveSpecValidation(t *testing.T) {
	ts, _ := newArchiveServer(t)
	for name, spec := range map[string]map[string]any{
		"search-kind": {"kind": "search", "strategy": "random", "search_budget": 2, "archive": "x"},
		"path-escape": paretoSpec(1, 2, "../evil"),
		"dot-prefix":  paretoSpec(1, 2, ".hidden"),
	} {
		if code := postJobExpectError(t, ts, spec); code != 400 {
			t.Errorf("%s: POST = %d, want 400", name, code)
		}
	}
	// A server without an archive directory refuses named archives.
	bare, _ := newTestServer(t)
	if code := postJobExpectError(t, bare, paretoSpec(1, 2, "x")); code != 400 {
		t.Errorf("archiveless server: POST = %d, want 400", code)
	}
	// Unknown objective names fail fast with the registry listing.
	badObj := paretoSpec(1, 2, "")
	badObj["objectives"] = []string{"ipc", "wattage"}
	if code := postJobExpectError(t, ts, badObj); code != 400 {
		t.Errorf("unknown objective: POST = %d, want 400", code)
	}
}
