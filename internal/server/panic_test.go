package server

import (
	"context"
	"strings"
	"testing"

	"hdsmt/internal/telemetry"
)

// TestRunJobContainsPanic pins the server-level guard: the engine already
// contains runner panics, so this exercises the outer net that catches
// bugs in the job orchestration itself (progress callbacks, result
// assembly). The job settles as failed and is counted; nothing escapes
// to crash the daemon.
func TestRunJobContainsPanic(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(nil, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	j, ctx, err := s.newJob(JobSpec{Kind: "run"}, "t", 1, "", telemetry.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	s.adm.adopt("t")
	s.runJob(ctx, j, func(context.Context, *job) (any, error) {
		panic("orchestration bug")
	})

	j.mu.Lock()
	state, msg := j.state, j.errmsg
	j.mu.Unlock()
	if state != "failed" {
		t.Errorf("panicked job state = %q, want failed", state)
	}
	if !strings.Contains(msg, "panic") || !strings.Contains(msg, "orchestration bug") {
		t.Errorf("error %q does not describe the panic", msg)
	}
	if reg.Total(telemetry.MetricServerJobPanics) != 1 {
		t.Errorf("panic counter = %v, want 1", reg.Total(telemetry.MetricServerJobPanics))
	}

	// The wrapper settled cleanly: a follow-up job on the same server
	// runs normally.
	j2, ctx2, err := s.newJob(JobSpec{Kind: "run"}, "t", 1, "", telemetry.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	s.adm.adopt("t")
	s.runJob(ctx2, j2, func(context.Context, *job) (any, error) {
		return map[string]int{"ok": 1}, nil
	})
	j2.mu.Lock()
	defer j2.mu.Unlock()
	if j2.state != "done" {
		t.Errorf("follow-up job state = %q, want done", j2.state)
	}
}
