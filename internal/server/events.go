package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hdsmt/internal/obslog"
)

// Event is one entry in a job's timeline: every lifecycle transition the
// server observes, stamped relative to the job's acceptance so the
// timeline is causally readable without correlating wall clocks. Events
// live in a bounded in-memory ring (queryable via GET /jobs/{id}/events,
// streamed live over SSE) and — for everything below progress frequency —
// in the durable job journal, so a restarted daemon serves the timeline
// of jobs it accepted in a previous life.
type Event struct {
	// Seq numbers events per job from 1, monotonically; it doubles as the
	// SSE event id, so Last-Event-ID resume is exact.
	Seq int64 `json:"seq"`
	// TMS is milliseconds since the job was accepted.
	TMS float64 `json:"t_ms"`
	// Type is the lifecycle transition; see the Event* constants.
	Type string `json:"type"`
	// Detail carries transition-specific context: the job kind on
	// accepted, done/total on progress, the terminal state on settled.
	Detail string `json:"detail,omitempty"`
	// Job names the originating job on the server-wide GET /events
	// firehose, where events from every job interleave; empty on per-job
	// streams, where it would be redundant.
	Job string `json:"job,omitempty"`
}

// Timeline event types, in rough lifecycle order.
const (
	EventAccepted    = "accepted"     // spec validated and registered
	EventQueued      = "queued"       // admission had no free slot; waiting
	EventAdmitted    = "admitted"     // admission granted an execution slot
	EventStarted     = "started"      // job body began executing
	EventProgress    = "progress"     // done/total advanced (ring only)
	EventFrontUpdate = "front-update" // pareto incumbent front changed (ring only)
	EventRetried     = "retried"      // relaunched after a daemon restart
	EventCanceled    = "canceled"     // cancellation requested
	EventSettled     = "settled"      // reached a terminal state (detail names it)
	EventEvicted     = "evicted"      // removed from the job table
	EventInterrupted = "interrupted"  // orphaned by a crash; not resumable
)

// terminalEvent reports whether typ ends a job's timeline: SSE streams
// close after delivering it.
func terminalEvent(typ string) bool {
	switch typ {
	case EventSettled, EventEvicted, EventInterrupted:
		return true
	}
	return false
}

// journaledEvent reports whether typ is durable: high-frequency progress
// and front-update events stay in the in-memory ring; everything else
// appends to the job journal so replayed jobs keep their timeline.
// Evicted is excluded because the journal's eviction record already
// erases the job from replay.
func journaledEvent(typ string) bool {
	switch typ {
	case EventProgress, EventFrontUpdate, EventEvicted:
		return false
	}
	return true
}

// timeline is one job's bounded event ring plus its live subscribers.
// Appends are cheap (ring push + one non-blocking notify per subscriber);
// subscribers pull events by sequence number, so a slow consumer lags
// without ever blocking the job.
type timeline struct {
	// neverClose marks the server-wide feed: jobs' terminal events pass
	// through it without ending the stream, because the feed outlives
	// every job.
	neverClose bool

	mu      sync.Mutex
	created time.Time
	buf     []Event // ring storage, len == cap once full
	cap     int
	start   int   // index of the oldest retained event
	count   int   // retained events
	seq     int64 // last assigned sequence number
	closed  bool  // a terminal event was appended
	subs    map[chan struct{}]struct{}
}

func newTimeline(created time.Time, capacity int) *timeline {
	if capacity <= 0 {
		capacity = defaultTimelineCap
	}
	return &timeline{created: created, cap: capacity, subs: map[chan struct{}]struct{}{}}
}

const defaultTimelineCap = 512

// append records one event now, assigning the next sequence number. job
// is empty on per-job timelines and names the origin on the feed.
func (tl *timeline) append(typ, detail, job string) Event {
	tl.mu.Lock()
	tl.seq++
	ev := Event{
		Seq:    tl.seq,
		TMS:    float64(time.Since(tl.created).Microseconds()) / 1e3,
		Type:   typ,
		Detail: detail,
		Job:    job,
	}
	tl.push(ev)
	tl.mu.Unlock()
	return ev
}

// restore re-inserts a journaled event at replay, preserving its original
// sequence number and relative timestamp.
func (tl *timeline) restore(ev Event) {
	tl.mu.Lock()
	if ev.Seq > tl.seq {
		tl.seq = ev.Seq
	}
	tl.push(ev)
	tl.mu.Unlock()
}

// push appends under tl.mu: ring insert, close-on-terminal, notify.
func (tl *timeline) push(ev Event) {
	if len(tl.buf) < tl.cap {
		tl.buf = append(tl.buf, ev)
		tl.count++
	} else {
		// Full: overwrite the oldest. The accepted→settled spine stays
		// readable as long as cap exceeds the job's progress chatter.
		tl.buf[tl.start] = ev
		tl.start = (tl.start + 1) % tl.cap
	}
	if terminalEvent(ev.Type) && !tl.neverClose {
		tl.closed = true
	}
	for ch := range tl.subs {
		select {
		case ch <- struct{}{}:
		default: // already pending; notifications coalesce
		}
	}
}

// after returns every retained event with Seq > seq, in order, plus
// whether the timeline is closed (no further events will arrive).
func (tl *timeline) after(seq int64) ([]Event, bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var out []Event
	for i := 0; i < tl.count; i++ {
		ev := tl.buf[(tl.start+i)%len(tl.buf)]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out, tl.closed
}

// subscribe registers a wake-up channel for new events; the returned
// cancel must be called (streams defer it) or the channel leaks until the
// job is evicted.
func (tl *timeline) subscribe() (ch chan struct{}, cancel func()) {
	ch = make(chan struct{}, 1)
	tl.mu.Lock()
	tl.subs[ch] = struct{}{}
	tl.mu.Unlock()
	return ch, func() {
		tl.mu.Lock()
		delete(tl.subs, ch)
		tl.mu.Unlock()
	}
}

// event appends one timeline event to j — and, stamped with the job ID,
// to the server-wide feed — and journals the durable types. It is the
// single place job history is recorded, mirroring settle for state.
func (s *Server) event(j *job, typ, detail string) {
	ev := j.tl.append(typ, detail, "")
	s.feed.append(typ, detail, j.id)
	s.jobEvents.Inc()
	if journaledEvent(typ) {
		if err := s.jj.append(jobEvent{ID: j.id, Event: "timeline", TL: &ev}); err != nil {
			j.log.Warn("journaling timeline event failed", obslog.Err(err), obslog.F("type", typ))
		}
	}
}

// EventsPage is the body of GET /jobs/{id}/events.
type EventsPage struct {
	ID        string  `json:"id"`
	RequestID string  `json:"request_id,omitempty"`
	State     string  `json:"state"`
	Closed    bool    `json:"closed"` // terminal event present; no more will come
	Events    []Event `json:"events"`
}

// handleEvents serves a job's timeline: the JSON snapshot by default, or
// a live SSE stream when the client asks for text/event-stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if wantsSSE(r) {
		s.streamEvents(w, r, j)
		return
	}
	events, closed := j.tl.after(0)
	if events == nil {
		events = []Event{}
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, EventsPage{
		ID: j.id, RequestID: j.requestID, State: state, Closed: closed, Events: events,
	})
}

// wantsSSE reports whether the request negotiates Server-Sent Events.
func wantsSSE(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt, _, _ := strings.Cut(part, ";")
			if strings.TrimSpace(mt) == "text/event-stream" {
				return true
			}
		}
	}
	return false
}

// FeedPage is the JSON snapshot body of GET /events: the retained tail
// of the server-wide event feed, every event stamped with its job ID.
type FeedPage struct {
	Events []Event `json:"events"`
}

// handleEventsFeed serves the server-wide firehose: every job's timeline
// events interleaved in one stream, each stamped with its job ID. SSE
// when negotiated (the stream never closes on job settlement — only on
// disconnect or drain), JSON snapshot of the retained ring otherwise.
func (s *Server) handleEventsFeed(w http.ResponseWriter, r *http.Request) {
	if wantsSSE(r) {
		s.streamTimeline(w, r, s.feed)
		return
	}
	events, _ := s.feed.after(0)
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, http.StatusOK, FeedPage{Events: events})
}

// streamEvents streams one job's timeline over SSE.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *job) {
	s.streamTimeline(w, r, j.tl)
}

// streamTimeline is the SSE path: it replays the timeline after the
// client's Last-Event-ID (or ?after=seq), then follows live until the
// timeline closes (a job's terminal event; the feed never closes), the
// client disconnects, or the server drains. Heartbeat comments keep
// intermediaries from timing the stream out; the event id is the
// timeline sequence number, so a dropped connection resumes exactly
// where it left off.
func (s *Server) streamTimeline(w http.ResponseWriter, r *http.Request, tl *timeline) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("response writer cannot stream"))
		return
	}
	after := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			after = n
		}
	} else if v := r.URL.Query().Get("after"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			after = n
		}
	}

	notify, unsubscribe := tl.subscribe()
	defer unsubscribe()
	s.sseStreams.Inc()
	defer s.sseStreams.Dec()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	heartbeat := time.NewTicker(s.sseHeartbeat)
	defer heartbeat.Stop()

	for {
		events, closed := tl.after(after)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			after = ev.Seq
			s.sseEvents.Inc()
		}
		if len(events) > 0 {
			fl.Flush()
		}
		if closed {
			// Everything up to the terminal event has been delivered.
			return
		}
		select {
		case <-notify:
		case <-heartbeat.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}
