package server

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"time"

	"hdsmt/internal/faultinject"
	"hdsmt/internal/jsonl"
	"hdsmt/internal/retry"
)

// The job journal makes the server's job table durable: every state
// transition appends one JSONL event, so a daemon killed at any instant
// can replay the file and account for every job it ever accepted. It is
// the same crash-safe substrate as the engine's checkpoint journal
// (internal/jsonl) — a torn final line is counted, skipped and healed.
//
// Event vocabulary, in a job's lifecycle order:
//
//	accepted    — spec admitted; carries the full JobSpec, tenant, created
//	running     — execution began
//	done        — settled successfully; carries the result JSON
//	failed      — settled with an error (including deadline expiry, panics)
//	canceled    — settled by explicit cancellation
//	interrupted — a restarted daemon found the job unfinished and could
//	              not resume it; terminal, inspectable via GET /jobs/{id}
//	evicted     — DELETE released a settled job; replay drops it
//	timeline    — one durable timeline event (see events.go); replay
//	              restores it into the job's in-memory ring
type jobEvent struct {
	ID    string `json:"id"`
	Event string `json:"event"`

	// accepted events only.
	Tenant      string   `json:"tenant,omitempty"`
	Priority    int      `json:"priority,omitempty"`
	Spec        *JobSpec `json:"spec,omitempty"`
	Created     string   `json:"created,omitempty"`
	RequestID   string   `json:"request_id,omitempty"`
	Traceparent string   `json:"traceparent,omitempty"`

	// settle events only.
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Finished string          `json:"finished,omitempty"`

	// timeline events only: one durable entry of the job's event timeline
	// (see events.go), replayed into the in-memory ring on restart.
	TL *Event `json:"tl,omitempty"`
}

type jobJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openJobJournal opens (creating if needed) the job journal at path and
// returns every well-formed event already present, plus the count of torn
// lines healed away — surfaced in telemetry by the caller.
func openJobJournal(path string) (*jobJournal, []jobEvent, int, error) {
	var events []jobEvent
	f, torn, err := jsonl.OpenHealed(path, func(line []byte) error {
		var ev jobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		events = append(events, ev)
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return &jobJournal{f: f}, events, torn, nil
}

// append journals one event. Best-effort by contract — the caller logs
// but never fails a job over a journal write — but transient failures are
// retried so a momentary stall doesn't silently punch a hole in the
// recovery record. Single Write call per event: concurrent settlements
// never interleave bytes.
func (jj *jobJournal) append(ev jobEvent) error {
	if jj == nil {
		return nil
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	jj.mu.Lock()
	defer jj.mu.Unlock()
	return retry.Do(context.Background(), jobJournalRetry, func() error {
		if err := faultinject.Hit(faultinject.PointJobJournalAppend); err != nil {
			return err
		}
		_, werr := jj.f.Write(b)
		return werr
	})
}

var jobJournalRetry = retry.Policy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}

func (jj *jobJournal) Close() error {
	if jj == nil {
		return nil
	}
	jj.mu.Lock()
	defer jj.mu.Unlock()
	return jj.f.Close()
}

// rfc3339 formats journal timestamps; empty for the zero time so replayed
// events round-trip without inventing instants.
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func parseRFC3339(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}
