package server

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// AdmissionConfig bounds what the server accepts. The zero value admits
// everything — existing single-user deployments keep their behavior —
// and each limit activates independently when set positive.
type AdmissionConfig struct {
	// MaxActive caps concurrently executing jobs. Beyond it, submissions
	// queue (see MaxPending) instead of piling unbounded goroutines onto
	// the engine. <= 0 means unlimited.
	MaxActive int
	// MaxPending caps the accept queue holding jobs waiting for an active
	// slot. A full queue rejects with 429 + Retry-After rather than
	// blocking the client. <= 0 disables queuing: submissions beyond
	// MaxActive are rejected outright.
	MaxPending int
	// TenantQuota caps one tenant's unsettled jobs (active + queued), so
	// a single API key cannot monopolize the server. <= 0 means unlimited.
	TenantQuota int
	// Rate is the sustained submission rate (jobs/second) of a token
	// bucket shared by all tenants; Burst is the bucket depth (defaults
	// to max(Rate, 1)). Rate <= 0 disables rate limiting.
	Rate  float64
	Burst int
}

func (c AdmissionConfig) burst() int {
	if c.Burst > 0 {
		return c.Burst
	}
	if c.Rate >= 1 {
		return int(c.Rate)
	}
	return 1
}

// admissionError is a rejected submission: reason labels the 429 in
// telemetry, and RetryDelay carries the backpressure hint surfaced as
// Retry-After (and honored by internal/client through retry.Delayer).
type admissionError struct {
	reason     string // rate | quota | queue_full
	msg        string
	retryAfter time.Duration
}

func (e *admissionError) Error() string             { return e.msg }
func (e *admissionError) RetryDelay() time.Duration { return e.retryAfter }

// retryAfterSeconds renders the hint for a Retry-After header: whole
// seconds, rounded up, at least 1 — clients must never be told "0" and
// hammer the server in a tight loop.
func (e *admissionError) retryAfterSeconds() int {
	s := int(math.Ceil(e.retryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// pendEntry is one queued job: launch fires exactly once when an active
// slot frees up. Higher Priority first; FIFO within a priority.
type pendEntry struct {
	pri    int
	seq    uint64
	tenant string
	launch func()
}

type pendQueue []*pendEntry

func (q pendQueue) Len() int { return len(q) }
func (q pendQueue) Less(i, j int) bool {
	if q[i].pri != q[j].pri {
		return q[i].pri > q[j].pri
	}
	return q[i].seq < q[j].seq
}
func (q pendQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pendQueue) Push(x any)   { *q = append(*q, x.(*pendEntry)) }
func (q *pendQueue) Pop() (x any) { old := *q; n := len(old); x = old[n-1]; *q = old[:n-1]; return }

// admission is the server's admission controller: token-bucket rate
// limiting, per-tenant quotas, and a bounded priority queue feeding a
// bounded set of active slots.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time // test hook; rate limiting is the one place wall clock legitimately decides behavior

	mu      sync.Mutex
	active  int
	tenants map[string]int // unsettled jobs per tenant (active + queued)
	pending pendQueue
	seq     uint64
	tokens  float64
	last    time.Time
}

func newAdmission(cfg AdmissionConfig) *admission {
	a := &admission{cfg: cfg, now: time.Now, tenants: map[string]int{}}
	a.tokens = float64(cfg.burst())
	a.last = a.now()
	return a
}

// admit reserves capacity for one job. On success launch is invoked
// exactly once — immediately when an active slot is free, or later from
// release when one frees up — and the reservation is held until release.
// On rejection nothing is reserved and the returned *admissionError says
// why and when to retry.
func (a *admission) admit(tenant string, pri int, launch func()) error {
	return a.admitOr(tenant, pri, launch, func() {})
}

// admitOr is admit with a queued hook: invoked (under the admission lock,
// so it strictly precedes the deferred launch) when the job lands in the
// pending queue instead of launching immediately. The server uses it to
// record the queued→admitted transition on the job's timeline.
func (a *admission) admitOr(tenant string, pri int, launch, queued func()) error {
	a.mu.Lock()

	// Token bucket first: it is the cheapest check and the one with an
	// exact Retry-After. Tokens are only consumed once the quota and
	// queue checks also pass, so a rejected submission costs nothing.
	if a.cfg.Rate > 0 {
		t := a.now()
		a.tokens = math.Min(float64(a.cfg.burst()), a.tokens+t.Sub(a.last).Seconds()*a.cfg.Rate)
		a.last = t
		if a.tokens < 1 {
			wait := time.Duration((1 - a.tokens) / a.cfg.Rate * float64(time.Second))
			a.mu.Unlock()
			return &admissionError{
				reason:     "rate",
				msg:        fmt.Sprintf("rate limit: %.3g jobs/s exceeded", a.cfg.Rate),
				retryAfter: wait,
			}
		}
	}
	if a.cfg.TenantQuota > 0 && a.tenants[tenant] >= a.cfg.TenantQuota {
		a.mu.Unlock()
		return &admissionError{
			reason:     "quota",
			msg:        fmt.Sprintf("tenant %q already has %d unsettled jobs (quota %d)", tenant, a.cfg.TenantQuota, a.cfg.TenantQuota),
			retryAfter: a.hint(),
		}
	}
	if a.cfg.MaxActive > 0 && a.active >= a.cfg.MaxActive && len(a.pending) >= a.cfg.MaxPending {
		a.mu.Unlock()
		return &admissionError{
			reason:     "queue_full",
			msg:        fmt.Sprintf("server saturated: %d active, %d queued", a.active, len(a.pending)),
			retryAfter: a.hint(),
		}
	}

	if a.cfg.Rate > 0 {
		a.tokens--
	}
	a.tenants[tenant]++
	if a.cfg.MaxActive <= 0 || a.active < a.cfg.MaxActive {
		a.active++
		a.mu.Unlock()
		launch()
		return nil
	}
	a.seq++
	heap.Push(&a.pending, &pendEntry{pri: pri, seq: a.seq, tenant: tenant, launch: launch})
	queued()
	a.mu.Unlock()
	return nil
}

// hint estimates a Retry-After for quota/queue rejections: the bucket's
// refill interval when rate limiting is on, one second otherwise.
func (a *admission) hint() time.Duration {
	if a.cfg.Rate > 0 {
		return time.Duration(float64(time.Second) / a.cfg.Rate)
	}
	return time.Second
}

// adopt reserves an active slot unconditionally — used at replay time for
// crash-recovered jobs being resumed, which were already admitted by the
// previous incarnation and must not be re-rejected.
func (a *admission) adopt(tenant string) {
	a.mu.Lock()
	a.active++
	a.tenants[tenant]++
	a.mu.Unlock()
}

// release frees the reservation of a settled job and, if the queue is
// non-empty, hands the slot to the highest-priority queued job.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	a.active--
	if a.tenants[tenant]--; a.tenants[tenant] <= 0 {
		delete(a.tenants, tenant)
	}
	var next *pendEntry
	if len(a.pending) > 0 {
		next = heap.Pop(&a.pending).(*pendEntry)
		a.active++
	}
	a.mu.Unlock()
	if next != nil {
		next.launch()
	}
}

func (a *admission) pendingLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}
