package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hdsmt/internal/client"
	"hdsmt/internal/server"
	"hdsmt/internal/telemetry"
)

// getEvents fetches the JSON timeline snapshot.
func getEvents(t *testing.T, ts *httptest.Server, id string) server.EventsPage {
	t.Helper()
	var page server.EventsPage
	if code := getJSON(t, ts.URL+"/jobs/"+id+"/events", &page); code != http.StatusOK {
		t.Fatalf("GET /jobs/%s/events = %d", id, code)
	}
	return page
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    int64
	event string
	data  server.Event
}

// openSSE starts an SSE stream and parses frames onto a channel until the
// connection ends. Close the returned cancel to disconnect mid-stream.
func openSSE(t *testing.T, url string, lastEventID string) (<-chan sseFrame, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE connect = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := make(chan sseFrame, 64)
	go func() {
		defer resp.Body.Close()
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		var fr sseFrame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if fr.event != "" {
					frames <- fr
				}
				fr = sseFrame{}
			case strings.HasPrefix(line, "id: "):
				fr.id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			case strings.HasPrefix(line, "event: "):
				fr.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				_ = json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &fr.data)
			}
		}
	}()
	return frames, cancel
}

// collectUntilTerminal drains frames until a terminal event or timeout.
func collectUntilTerminal(t *testing.T, frames <-chan sseFrame) []sseFrame {
	t.Helper()
	var got []sseFrame
	deadline := time.After(60 * time.Second)
	for {
		select {
		case fr, ok := <-frames:
			if !ok {
				return got
			}
			got = append(got, fr)
			switch fr.event {
			case server.EventSettled, server.EventEvicted, server.EventInterrupted:
				return got
			}
		case <-deadline:
			t.Fatalf("no terminal event after %d frames", len(got))
		}
	}
}

func spineOf(types []string) (accepted, started, settled bool) {
	for _, typ := range types {
		switch typ {
		case server.EventAccepted:
			accepted = true
		case server.EventStarted:
			started = true
		case server.EventSettled:
			settled = true
		}
	}
	return
}

// TestEventsTimeline pins the JSON snapshot: a settled job's timeline
// carries the accepted→started→settled spine with monotonic sequence
// numbers and non-decreasing relative timestamps, and is closed.
func TestEventsTimeline(t *testing.T) {
	ts, _ := newTestServer(t)
	st := postJob(t, ts, server.JobSpec{Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000})
	awaitJob(t, ts, st.ID)

	page := getEvents(t, ts, st.ID)
	if !page.Closed {
		t.Error("settled job's timeline is not closed")
	}
	if page.State != "done" {
		t.Errorf("state = %q, want done", page.State)
	}
	if page.RequestID == "" {
		t.Error("events page carries no request_id")
	}
	var types []string
	lastSeq, lastTMS := int64(0), -1.0
	for _, ev := range page.Events {
		if ev.Seq <= lastSeq {
			t.Errorf("seq %d after %d: not monotonic", ev.Seq, lastSeq)
		}
		if ev.TMS < lastTMS {
			t.Errorf("t_ms %v after %v: went backwards", ev.TMS, lastTMS)
		}
		lastSeq, lastTMS = ev.Seq, ev.TMS
		types = append(types, ev.Type)
	}
	if a, s, d := spineOf(types); !a || !s || !d {
		t.Errorf("timeline %v misses the accepted/started/settled spine", types)
	}
	if last := page.Events[len(page.Events)-1]; last.Type != server.EventSettled || last.Detail != "done" {
		t.Errorf("final event = %s %q, want settled done", last.Type, last.Detail)
	}
}

// TestSSEConcurrentSubscribers runs several streams over one job — on
// both /jobs/{id}/events and the Accept-negotiated /jobs/{id} — and
// requires every one of them to independently deliver the full timeline
// through the terminal event.
func TestSSEConcurrentSubscribers(t *testing.T) {
	ts, _ := newTestServer(t)
	st := postJob(t, ts, server.JobSpec{
		Kind: "search", Strategy: "random", SearchBudget: 8, Seed: 5,
		Workloads: []string{"2W7"}, Budget: 3_000, Warmup: 2_000,
	})

	paths := []string{"/jobs/" + st.ID + "/events", "/jobs/" + st.ID, "/jobs/" + st.ID + "/events"}
	var wg sync.WaitGroup
	results := make([][]sseFrame, len(paths))
	for i, path := range paths {
		frames, cancel := openSSE(t, ts.URL+path, "")
		defer cancel()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = collectUntilTerminal(t, frames)
		}(i)
	}
	wg.Wait()

	for i, got := range results {
		var types []string
		for _, fr := range got {
			types = append(types, fr.event)
			if fr.id != fr.data.Seq {
				t.Errorf("stream %d: frame id %d != event seq %d", i, fr.id, fr.data.Seq)
			}
		}
		if a, s, d := spineOf(types); !a || !s || !d {
			t.Errorf("stream %d saw %v, missing the spine", i, types)
		}
	}
}

// TestSSELastEventIDResume pins exact resume: reconnecting with
// Last-Event-ID (or ?after=) replays only events beyond that sequence
// number — no duplicates, no gaps.
func TestSSELastEventIDResume(t *testing.T) {
	ts, _ := newTestServer(t)
	st := postJob(t, ts, server.JobSpec{Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000})
	awaitJob(t, ts, st.ID)
	full := getEvents(t, ts, st.ID).Events
	if len(full) < 3 {
		t.Fatalf("timeline too short to test resume: %d events", len(full))
	}
	cut := full[1].Seq

	for name, url := range map[string]string{
		"Last-Event-ID": ts.URL + "/jobs/" + st.ID + "/events",
		"after query":   fmt.Sprintf("%s/jobs/%s/events?after=%d", ts.URL, st.ID, cut),
	} {
		header := ""
		if name == "Last-Event-ID" {
			header = strconv.FormatInt(cut, 10)
		}
		frames, cancel := openSSE(t, url, header)
		got := collectUntilTerminal(t, frames)
		cancel()
		if len(got) != len(full)-2 {
			t.Errorf("%s: resumed %d events, want %d", name, len(got), len(full)-2)
		}
		for i, fr := range got {
			if want := full[i+2].Seq; fr.data.Seq != want {
				t.Errorf("%s: frame %d seq = %d, want %d", name, i, fr.data.Seq, want)
			}
		}
	}
}

// TestSSEClientDisconnect drops a live stream mid-job and requires the
// handler goroutine to unwind (gauge back to zero, goroutines stable)
// while the job itself settles unbothered.
func TestSSEClientDisconnect(t *testing.T) {
	dir := t.TempDir()
	ts, _, reg := durableServer(t, filepath.Join(dir, "jobs.jsonl"))
	base := runtime.NumGoroutine()

	st := postJob(t, ts, server.JobSpec{
		Kind: "search", Strategy: "random", SearchBudget: 10, Seed: 3,
		Workloads: []string{"2W7"}, Budget: 5_000, Warmup: 2_000,
	})
	frames, cancel := openSSE(t, ts.URL+"/jobs/"+st.ID+"/events", "")
	if _, ok := <-frames; !ok {
		t.Fatal("stream closed before first event")
	}
	cancel() // hang up mid-stream

	if st := awaitJob(t, ts, st.ID); st.State != "done" {
		t.Errorf("job settled %q after subscriber hangup, want done", st.State)
	}
	waitFor(t, 5*time.Second, func() bool {
		return reg.Total(telemetry.MetricServerSSEStreams) == 0
	}, "sse_streams gauge did not return to 0")
	waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+4
	}, "stream handler goroutines leaked")
}

// TestSSECancelDuringStream cancels a job that a live stream is
// following: the stream must deliver the canceled and terminal settled
// events, then end, leaking nothing.
func TestSSECancelDuringStream(t *testing.T) {
	ts, _ := newTestServer(t)
	base := runtime.NumGoroutine()
	st := postJob(t, ts, server.JobSpec{
		Kind: "search", Strategy: "random",
		SearchBudget: 100_000, // far beyond the space: runs until canceled
		Seed:         1, Workloads: []string{"2W7"},
		Budget: 200_000, Warmup: 1_000,
	})
	frames, cancel := openSSE(t, ts.URL+"/jobs/"+st.ID+"/events", "")
	defer cancel()

	// Wait for execution to begin so the cancel lands mid-run.
	started := false
	for fr := range frames {
		if fr.event == server.EventStarted {
			started = true
			break
		}
	}
	if !started {
		t.Fatal("stream ended before the job started")
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs/"+st.ID+"/cancel", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got := collectUntilTerminal(t, frames)
	var sawCanceled bool
	for _, fr := range got {
		if fr.event == server.EventCanceled {
			sawCanceled = true
		}
	}
	if !sawCanceled {
		t.Error("stream never delivered the canceled event")
	}
	last := got[len(got)-1]
	if last.event != server.EventSettled || !strings.HasPrefix(last.data.Detail, "canceled") {
		t.Errorf("terminal frame = %s %q, want settled canceled...", last.event, last.data.Detail)
	}
	waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+4
	}, "goroutines leaked after cancel-during-stream")
}

// TestClientStream exercises the client-side SSE consumer: it must
// deliver the full ordered timeline and return nil at the terminal
// event, and its requests must carry the request ID the server echoes.
func TestClientStream(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := client.New(ts.URL)
	st, err := cl.Submit(context.Background(), server.JobSpec{
		Kind: "run", Config: "M8", Workload: "2W7", Budget: 2_000, Warmup: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.RequestID == "" {
		t.Error("submitted job carries no request_id")
	}
	var types []string
	lastSeq := int64(0)
	err = cl.Stream(context.Background(), st.ID, 0, func(ev server.Event) error {
		if ev.Seq <= lastSeq {
			t.Errorf("client stream seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types = append(types, ev.Type)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if a, s, d := spineOf(types); !a || !s || !d {
		t.Errorf("client stream saw %v, missing the spine", types)
	}
}

// TestEventsJournalReplay restarts the daemon and requires the replayed
// job to keep its durable timeline — the accepted/started/settled spine
// with original sequence numbers — plus a correlation ID that survives.
func TestEventsJournalReplay(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.jsonl")
	ts, srv, _ := durableServer(t, journal)
	headers := map[string]string{"X-Request-ID": "replay-test-7"}
	code, st, _ := postStatus(t, ts, server.JobSpec{
		Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000,
	}, headers)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	awaitJob(t, ts, st.ID)
	before := getEvents(t, ts, st.ID)
	ts.Close()
	srv.Close()

	ts2, _, _ := durableServer(t, journal)
	after := getEvents(t, ts2, st.ID)
	if after.RequestID != "replay-test-7" {
		t.Errorf("replayed request_id = %q, want replay-test-7", after.RequestID)
	}
	if !after.Closed {
		t.Error("replayed timeline is not closed")
	}
	// Durable events (the spine among them) survive with their original
	// sequence numbers; ring-only progress events are allowed to vanish.
	bySeq := map[int64]server.Event{}
	for _, ev := range before.Events {
		bySeq[ev.Seq] = ev
	}
	var types []string
	for _, ev := range after.Events {
		types = append(types, ev.Type)
		orig, ok := bySeq[ev.Seq]
		if !ok {
			t.Errorf("replayed event seq %d (%s) never existed", ev.Seq, ev.Type)
			continue
		}
		if orig.Type != ev.Type || orig.TMS != ev.TMS {
			t.Errorf("replayed seq %d = %s@%v, original %s@%v", ev.Seq, ev.Type, ev.TMS, orig.Type, orig.TMS)
		}
	}
	if a, s, d := spineOf(types); !a || !s || !d {
		t.Errorf("replayed timeline %v misses the spine", types)
	}
}

// TestQueuedBeforeAdmitted pins event ordering under saturation: a job
// that waits for a slot records queued strictly before admitted.
func TestQueuedBeforeAdmitted(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := durableServer(t, filepath.Join(dir, "jobs.jsonl"),
		server.WithAdmission(server.AdmissionConfig{MaxActive: 1, MaxPending: 8}))

	// The slow job must still hold the only active slot when the fast one
	// arrives, or the fast job is admitted without ever queueing; a
	// generous search budget keeps that window wide under parallel-test
	// scheduling noise.
	slow := postJob(t, ts, server.JobSpec{
		Kind: "search", Strategy: "random", SearchBudget: 60, Seed: 2,
		Workloads: []string{"2W7"}, Budget: 5_000, Warmup: 2_000,
	})
	fast := postJob(t, ts, server.JobSpec{Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000})
	awaitJob(t, ts, slow.ID)
	awaitJob(t, ts, fast.ID)

	var queuedSeq, admittedSeq int64
	for _, ev := range getEvents(t, ts, fast.ID).Events {
		switch ev.Type {
		case server.EventQueued:
			queuedSeq = ev.Seq
		case server.EventAdmitted:
			admittedSeq = ev.Seq
		}
	}
	if queuedSeq == 0 || admittedSeq == 0 {
		t.Fatalf("queued seq %d, admitted seq %d: both must be present", queuedSeq, admittedSeq)
	}
	if queuedSeq >= admittedSeq {
		t.Errorf("queued (seq %d) did not precede admitted (seq %d)", queuedSeq, admittedSeq)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Error(msg)
}
