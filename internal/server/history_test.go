package server_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"hdsmt/internal/engine"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
	"hdsmt/internal/tshist"
)

// TestMetricsHistoryEndpoint pins the /metrics/history surface: a
// server wired with a sampler serves the versioned windowed view —
// every declared window present, job traffic visible per kind, SLO
// status included — and /readyz carries the SLO detail alongside.
func TestMetricsHistoryEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	sampler := tshist.New(reg, tshist.Config{
		SLOs: []tshist.SLO{tshist.AvailabilitySLO(0.999), tshist.LatencySLO("run", 30)},
	})
	r, err := sim.NewRunner(engine.Options{Workers: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(r, server.WithTelemetry(reg), server.WithHistory(sampler))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})

	// Two samples bracket the job — windows are deltas against a baseline
	// point, so the job must land between them to be visible.
	sampler.Sample()
	st := postJob(t, ts, tinyRun())
	awaitJob(t, ts, st.ID)
	sampler.Sample()

	var h tshist.History
	if code := getJSON(t, ts.URL+"/metrics/history", &h); code != http.StatusOK {
		t.Fatalf("GET /metrics/history = %d", code)
	}
	if h.Schema != tshist.SchemaVersion {
		t.Errorf("schema = %q, want %q", h.Schema, tshist.SchemaVersion)
	}
	if h.Samples != 2 {
		t.Errorf("samples = %d, want 2", h.Samples)
	}
	for _, w := range tshist.Windows {
		ws, ok := h.Windows[w.Name]
		if !ok {
			t.Fatalf("window %q missing from history", w.Name)
		}
		if ks, ok := ws.Kinds["run"]; !ok || ks.Count != 1 {
			t.Errorf("window %q run stats = %+v, want the settled job counted", w.Name, ws.Kinds)
		}
		if ws.Requests < 1 {
			t.Errorf("window %q requests = %g, want >= 1", w.Name, ws.Requests)
		}
	}
	if len(h.SLOs) != 2 {
		t.Fatalf("history carries %d SLOs, want 2", len(h.SLOs))
	}
	names := map[string]bool{}
	for _, s := range h.SLOs {
		names[s.Name] = true
	}
	if !names["availability"] || !names["latency-run"] {
		t.Errorf("SLO names = %v, want availability and latency-run", names)
	}

	var ready struct {
		SLOs      map[string]string `json:"slos"`
		SLOBreach bool              `json:"slo_breach"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("GET /readyz = %d", code)
	}
	if _, ok := ready.SLOs["availability"]; !ok {
		t.Errorf("readyz slos = %v, want availability detail", ready.SLOs)
	}
	if ready.SLOBreach {
		t.Error("slo_breach true on a healthy idle server")
	}
}

// TestMetricsHistoryAbsent pins that a server without a sampler answers
// 404 — the endpoint's existence signals the feature, so probes can
// distinguish "not enabled" from "empty".
func TestMetricsHistoryAbsent(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := getJSON(t, ts.URL+"/metrics/history", nil); code != http.StatusNotFound {
		t.Errorf("GET /metrics/history without sampler = %d, want 404", code)
	}
}
