// Package server exposes the batch-simulation engine over HTTP: clients
// submit runs, evaluations or whole sweeps as asynchronous jobs, poll
// their progress, and fetch aggregated results. All jobs on one server
// share one sim.Runner — and therefore one memoization store, so a client
// resubmitting an overlapping sweep only pays for the cells nobody has
// simulated yet.
//
//	POST   /jobs             submit a job; returns {"id": ...}
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        job status and progress
//	GET    /jobs/{id}/result aggregated result JSON (once done)
//	DELETE /jobs/{id}        cancel a running job, or evict a finished one
//	GET    /stats            engine counters (hits, executed, ...)
//	GET    /healthz          liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/pareto"
	"hdsmt/internal/search"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
	"hdsmt/internal/workload"
)

// JobSpec is the body of POST /jobs.
type JobSpec struct {
	// Kind selects the job type:
	//   "run"      — one simulation: Config, Workload, optional Mapping
	//                (default: §2.1 heuristic). Result: core.Results.
	//   "evaluate" — BEST/HEUR/WORST measurement for Config × Workload.
	//                Result: sim.Measurement.
	//   "sweep"    — evaluate every Configs × Workloads cell (defaults:
	//                the paper's six configurations × all workloads).
	//                Result: {"measurements": [...]}.
	//   "search"   — metaheuristic design-space search (internal/search):
	//                Strategy over an enriched configuration space, on the
	//                server's shared engine. Progress counts evaluations
	//                against SearchBudget; DELETE cancels mid-search.
	//                Result: search.Result (best point + trajectory).
	//   "pareto"   — multi-objective search over Objectives (default
	//                ipc,area,fairness; Strategy defaults to nsga2).
	//                Same space/budget/cancellation contract as "search";
	//                Result: search.Result with the non-dominated front
	//                and its hypervolume trajectory.
	Kind string `json:"kind"`

	Config    string   `json:"config,omitempty"`
	Configs   []string `json:"configs,omitempty"`
	Workload  string   `json:"workload,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Mapping   []int    `json:"mapping,omitempty"`

	// Budget/Warmup default to sim.DefaultOptions; OracleBudget defaults
	// to Budget; MaxOracle 0 means exhaustive.
	Budget       uint64 `json:"budget,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`
	OracleBudget uint64 `json:"oracle_budget,omitempty"`
	MaxOracle    int    `json:"max_oracle,omitempty"`

	// search jobs only. Strategy is exhaustive|random|hillclimb|aco.
	// SearchBudget bounds charged point evaluations (required for the
	// guided strategies, ignored for exhaustive — a truncated enumeration
	// would be a false ground truth); Seed drives the strategy's
	// randomness (fixed seed =
	// reproducible trajectory). The space starts from search.EnrichedSpace
	// when Enriched is set, search.NewSpace otherwise (MaxPipes defaults
	// to 4), and any explicitly given axis overrides the default; the
	// Workloads field above selects the evaluation set (default: all).
	Strategy       string   `json:"strategy,omitempty"`
	SearchBudget   int      `json:"search_budget,omitempty"`
	Seed           int64    `json:"seed,omitempty"`
	Enriched       bool     `json:"enriched,omitempty"`
	MaxPipes       int      `json:"max_pipes,omitempty"`
	AreaCap        float64  `json:"area_cap,omitempty"`
	Policies       []string `json:"policies,omitempty"`
	RemapIntervals []uint64 `json:"remap_intervals,omitempty"`
	QueueScales    []int    `json:"queue_scales,omitempty"`
	FetchBufScales []int    `json:"fetch_buf_scales,omitempty"`

	// pareto jobs only. Objectives lists the objective keys (2+ metric
	// names from the registry — ipc, area, fairness, energy, per_area, ed,
	// ed2; empty = ipc,area,fairness; names are validated against the
	// registry at submit time) and ArchiveCap bounds the non-dominated
	// archive (0 = default). Archive, when non-empty, names a persisted
	// archive file in the server's archive directory (New's dir option):
	// the job's non-dominated front is checkpointed there on every change,
	// and a later pareto job submitted with the same name — e.g. after the
	// first was canceled — restores the front instead of rediscovering it.
	Objectives []string `json:"objectives,omitempty"`
	ArchiveCap int      `json:"archive_cap,omitempty"`
	Archive    string   `json:"archive,omitempty"`
}

func (s JobSpec) options() sim.Options {
	opt := sim.DefaultOptions()
	if s.Budget > 0 {
		opt.Budget = s.Budget
	}
	if s.Warmup > 0 {
		opt.Warmup = s.Warmup
	}
	opt.OracleBudget = s.OracleBudget
	opt.MaxOracle = s.MaxOracle
	return opt
}

// Progress counts a job's completed cells (one cell = one evaluation or
// run; a cell may expand to many simulations inside the engine).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Status is the body of GET /jobs/{id}.
type Status struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    string   `json:"state"` // pending|running|done|failed|canceled
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
	Created  string   `json:"created,omitempty"`
	Finished string   `json:"finished,omitempty"`

	// Front and Hypervolume stream a pareto job's incumbent non-dominated
	// front mid-run: they update on every archive change, so a client
	// polling GET /jobs/{id} watches the front grow instead of waiting for
	// the final result.
	Front       []search.TrajectoryPoint `json:"front,omitempty"`
	Hypervolume float64                  `json:"hypervolume,omitempty"`
}

// SweepResult is the result payload of a "sweep" job: one measurement per
// (config, workload) cell, configs outer, workloads inner.
type SweepResult struct {
	Measurements []sim.Measurement `json:"measurements"`
}

type job struct {
	id     string
	spec   JobSpec
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	errmsg   string
	result   any
	done     int
	total    int
	created  time.Time
	finished time.Time
	front    []search.TrajectoryPoint
	hv       float64
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		Kind:        j.spec.Kind,
		State:       j.state,
		Error:       j.errmsg,
		Progress:    Progress{Done: j.done, Total: j.total},
		Created:     j.created.UTC().Format(time.RFC3339),
		Front:       j.front,
		Hypervolume: j.hv,
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339)
	}
	return st
}

// Server is the HTTP job server. Create one with New and mount Handler.
type Server struct {
	runner *sim.Runner
	// archiveDir, when non-empty, hosts named pareto-archive files
	// (JobSpec.Archive); meant to sit next to the engine's journal and
	// cache directory so a restarted daemon resumes both simulations and
	// fronts.
	archiveDir string

	// reg backs GET /metrics and the per-kind job instruments below. Pass
	// the same registry to the runner's engine.Options (WithTelemetry) so
	// one scrape covers both layers; without the option a private registry
	// exposes the server families alone.
	reg         *telemetry.Registry
	jobsTotal   *telemetry.CounterVec
	jobSeconds  *telemetry.HistogramVec
	jobInflight *telemetry.Gauge

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	// archives maps a claimed archive path to the running job holding it:
	// two concurrent jobs checkpointing the same file would silently
	// clobber each other's front, so a name is exclusive until its job
	// settles.
	archives map[string]string
}

// Option customizes a Server.
type Option func(*Server)

// WithArchiveDir enables named pareto-archive persistence under dir
// (created on first use).
func WithArchiveDir(dir string) Option {
	return func(s *Server) { s.archiveDir = dir }
}

// WithTelemetry scrapes reg at GET /metrics and registers the server's
// per-kind job instruments there. Hand the same registry to the engine
// (engine.Options.Telemetry) so one scrape covers request handling,
// search progress and simulation cache behavior together.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// New builds a Server executing jobs on r. The caller keeps ownership of
// r (and closes it after shutting the HTTP listener down).
func New(r *sim.Runner, opts ...Option) *Server {
	s := &Server{runner: r, jobs: map[string]*job{}, archives: map[string]string{}}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.jobsTotal = s.reg.CounterVec(telemetry.MetricServerJobs,
		"jobs accepted, by kind", "kind")
	s.jobSeconds = s.reg.HistogramVec(telemetry.MetricServerJobSeconds,
		"job duration from acceptance to settlement, by kind", "kind", nil)
	s.jobInflight = s.reg.Gauge(telemetry.MetricServerInflight,
		"jobs currently executing")
	return s
}

// Handler returns the server's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// handleMetrics renders the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// resolveCells expands a spec into its (config, workload) cells at submit
// time, so malformed specs fail synchronously with 400 rather than
// asynchronously.
func resolveCells(spec JobSpec) ([]sim.SweepCell, error) {
	switch spec.Kind {
	case "run", "evaluate":
		if spec.Config == "" || spec.Workload == "" {
			return nil, fmt.Errorf("%s job needs config and workload", spec.Kind)
		}
		cfg, err := config.Parse(spec.Config)
		if err != nil {
			return nil, err
		}
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, err
		}
		return []sim.SweepCell{{Cfg: cfg, W: w}}, nil
	case "sweep":
		var cfgs []config.Microarch
		if len(spec.Configs) == 0 {
			cfgs = config.EvaluatedMicroarchs()
		} else {
			for _, name := range spec.Configs {
				cfg, err := config.Parse(name)
				if err != nil {
					return nil, err
				}
				cfgs = append(cfgs, cfg)
			}
		}
		var wls []workload.Workload
		if len(spec.Workloads) == 0 {
			wls = workload.All()
		} else {
			for _, name := range spec.Workloads {
				w, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				wls = append(wls, w)
			}
		}
		cells := make([]sim.SweepCell, 0, len(cfgs)*len(wls))
		for _, cfg := range cfgs {
			for _, w := range wls {
				cells = append(cells, sim.SweepCell{Cfg: cfg, W: w})
			}
		}
		return cells, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q (want run, evaluate, sweep, search or pareto)", spec.Kind)
	}
}

// resolveSearch validates a search or pareto spec at submit time and
// assembles its space, strategy and driver options. Pareto jobs default
// the strategy to nsga2 and carry an objective list (default
// ipc,area,fairness — names resolved against the metric registry, so a
// typo'd objective 400s with the list of known metrics); search jobs stay
// scalar and ignore Objectives.
func (s *Server) resolveSearch(spec JobSpec) (search.Space, search.Strategy, search.Options, error) {
	var zero search.Space
	strategy := spec.Strategy
	if strategy == "" && spec.Kind == "pareto" {
		strategy = "nsga2"
	}
	st, err := search.ByName(strategy)
	if err != nil {
		return zero, nil, search.Options{}, err
	}
	budget := spec.SearchBudget
	if strategy == "exhaustive" {
		// Exhaustive results are only trustworthy un-truncated: the
		// enumeration terminates on its own, so the budget is ignored
		// rather than allowed to silently cut the ground truth short.
		budget = 0
	} else if budget <= 0 {
		return zero, nil, search.Options{}, fmt.Errorf("%s search needs a positive search_budget", strategy)
	}

	var wls []workload.Workload
	if len(spec.Workloads) == 0 {
		wls = workload.All()
	} else {
		for _, name := range spec.Workloads {
			wl, err := workload.ByName(name)
			if err != nil {
				return zero, nil, search.Options{}, err
			}
			wls = append(wls, wl)
		}
	}
	maxPipes := spec.MaxPipes
	if maxPipes <= 0 {
		maxPipes = 4
	}
	sp := search.NewSpace(maxPipes, spec.AreaCap, wls)
	if spec.Enriched {
		sp = search.EnrichedSpace(maxPipes, spec.AreaCap, wls)
	}
	if len(spec.Policies) > 0 {
		sp.Policies = spec.Policies
	}
	if len(spec.RemapIntervals) > 0 {
		sp.RemapIntervals = spec.RemapIntervals
	}
	if len(spec.QueueScales) > 0 {
		sp.QueueScales = spec.QueueScales
	}
	if len(spec.FetchBufScales) > 0 {
		sp.FetchBufScales = spec.FetchBufScales
	}
	if err := sp.Validate(); err != nil {
		return zero, nil, search.Options{}, err
	}
	opts := search.Options{
		Budget: budget,
		Seed:   spec.Seed,
		Sim:    spec.options(),
	}
	switch spec.Kind {
	case "pareto":
		csv := "ipc,area,fairness"
		if len(spec.Objectives) > 0 {
			csv = strings.Join(spec.Objectives, ",")
		}
		objs, err := pareto.Parse(csv)
		if err != nil {
			return zero, nil, search.Options{}, err
		}
		opts.Objectives = objs
		opts.ArchiveCap = spec.ArchiveCap
		if spec.Archive != "" {
			path, err := s.archivePath(spec.Archive)
			if err != nil {
				return zero, nil, search.Options{}, err
			}
			opts.ArchivePath = path
		}
	default:
		// Scalar searches must not silently drop multi-objective fields: a
		// client that meant "pareto" would otherwise get a frontless result
		// with a 200.
		if len(spec.Objectives) > 0 || spec.ArchiveCap != 0 || spec.Archive != "" {
			return zero, nil, search.Options{}, fmt.Errorf("objectives/archive_cap/archive need kind \"pareto\", not %q", spec.Kind)
		}
	}
	return sp, st, opts, nil
}

// archivePath resolves a client-chosen archive name inside the server's
// archive directory. Names are restricted to a flat namespace — no path
// separators or dot-prefixes — so a job spec cannot write outside the
// directory the operator configured.
func (s *Server) archivePath(name string) (string, error) {
	if s.archiveDir == "" {
		return "", fmt.Errorf("this server has no archive directory (start hdsmtd with -archives)")
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("archive name %q must be a plain file name", name)
	}
	if err := os.MkdirAll(s.archiveDir, 0o755); err != nil {
		return "", fmt.Errorf("creating archive directory: %w", err)
	}
	return filepath.Join(s.archiveDir, name+".json"), nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	if spec.Kind == "search" || spec.Kind == "pareto" {
		sp, st, opts, err := s.resolveSearch(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		j, ctx := s.newJob(spec, opts.Budget)
		if opts.ArchivePath != "" {
			if holder, ok := s.claimArchive(opts.ArchivePath, j.id); !ok {
				s.mu.Lock()
				delete(s.jobs, j.id)
				s.mu.Unlock()
				j.cancel()
				httpError(w, http.StatusConflict,
					fmt.Errorf("archive %q is in use by running job %s", spec.Archive, holder))
				return
			}
		}
		go s.executeSearch(ctx, j, sp, st, opts)
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	cells, err := resolveCells(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Kind == "run" && spec.Mapping != nil {
		// Validate against the thread-stretched configuration: the
		// monolithic baseline accepts up to 6 threads (paper §3).
		cfg := cells[0].Cfg.ForThreads(cells[0].W.Threads())
		if got, want := len(spec.Mapping), cells[0].W.Threads(); got != want {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("mapping covers %d threads, workload has %d", got, want))
			return
		}
		if err := mapping.Validate(cfg, spec.Mapping); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}

	j, ctx := s.newJob(spec, len(cells))
	go s.execute(ctx, j, cells)
	writeJSON(w, http.StatusAccepted, j.status())
}

// newJob registers a pending job with a cancelable context; total is the
// initial progress denominator (cells for simulation jobs, the budget for
// search jobs — refined once the search knows its effective target).
func (s *Server) newJob(spec JobSpec, total int) (*job, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{spec: spec, cancel: cancel, state: "pending", total: total, created: time.Now()}
	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("job-%06d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.jobsTotal.With(spec.Kind).Inc()
	return j, ctx
}

// jobStarted and jobSettled bracket a job's execution for the in-flight
// gauge and the per-kind duration histogram. Wall-clock durations go to
// /metrics only — results and artifacts stay byte-reproducible.
func (s *Server) jobStarted() { s.jobInflight.Inc() }

func (s *Server) jobSettled(j *job) {
	s.jobInflight.Dec()
	j.mu.Lock()
	d := j.finished.Sub(j.created)
	kind := j.spec.Kind
	j.mu.Unlock()
	s.jobSeconds.With(kind).Observe(d.Seconds())
}

// execute runs a job to completion. One goroutine per job coordinates;
// all simulation fan-out happens inside the shared engine, which bounds
// total concurrency across every job on the server.
func (s *Server) execute(ctx context.Context, j *job, cells []sim.SweepCell) {
	s.jobStarted()
	defer s.jobSettled(j)
	j.mu.Lock()
	j.state = "running"
	j.mu.Unlock()

	opt := j.spec.options()
	var result any
	var err error
	switch j.spec.Kind {
	case "run":
		result, err = s.executeRun(ctx, cells[0], j.spec.Mapping, opt)
		if err == nil {
			j.mu.Lock()
			j.done = 1
			j.mu.Unlock()
		}
	case "evaluate":
		result, err = s.runner.Evaluate(ctx, cells[0].Cfg, cells[0].W, opt)
		if err == nil {
			j.mu.Lock()
			j.done = 1
			j.mu.Unlock()
		}
	case "sweep":
		var ms []sim.Measurement
		ms, err = s.runner.EvaluateAll(ctx, cells, opt, func(done int) {
			j.mu.Lock()
			j.done = done
			j.mu.Unlock()
		})
		result = SweepResult{Measurements: ms}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = "done"
		j.result = result
	case ctx.Err() != nil:
		j.state = "canceled"
		j.errmsg = ctx.Err().Error()
	default:
		j.state = "failed"
		j.errmsg = err.Error()
	}
}

// claimArchive binds an archive path to a job; it fails when another
// running job already holds it.
func (s *Server) claimArchive(path, jobID string) (holder string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder, busy := s.archives[path]; busy {
		return holder, false
	}
	s.archives[path] = jobID
	return jobID, true
}

// executeSearch runs a search job on the server's shared runner: every
// point evaluation goes through the one engine, so overlapping searches
// (and sweeps) share their simulations.
func (s *Server) executeSearch(ctx context.Context, j *job, sp search.Space, st search.Strategy, opts search.Options) {
	s.jobStarted()
	defer s.jobSettled(j)
	// The search shares the server's registry, so a /metrics scrape sees
	// its per-strategy progress next to the engine's cache counters.
	opts.Telemetry = s.reg
	if opts.ArchivePath != "" {
		defer func() {
			s.mu.Lock()
			delete(s.archives, opts.ArchivePath)
			s.mu.Unlock()
		}()
	}
	j.mu.Lock()
	j.state = "running"
	j.mu.Unlock()

	opts.Progress = func(done, total int) {
		j.mu.Lock()
		j.done = done
		j.total = total // the driver's effective target: min(budget, space)
		j.mu.Unlock()
	}
	opts.FrontProgress = func(front []search.TrajectoryPoint, hv float64) {
		j.mu.Lock()
		j.front = front
		j.hv = hv
		j.mu.Unlock()
	}
	result, err := search.NewDriver(s.runner).Search(ctx, sp, st, opts)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = "done"
		j.result = result
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Attribute by the returned error, not ctx.Err(): a DELETE racing
		// a genuine failure must not relabel the failure as canceled.
		j.state = "canceled"
		j.errmsg = err.Error()
	default:
		j.state = "failed"
		j.errmsg = err.Error()
	}
}

func (s *Server) executeRun(ctx context.Context, c sim.SweepCell, m mapping.Mapping, opt sim.Options) (any, error) {
	if m == nil {
		dm, err := sim.DefaultMapping(c.Cfg, c.W)
		if err != nil {
			return nil, err
		}
		m = dm
	}
	return s.runner.Run(ctx, c.Cfg, c.W, m, opt)
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state, result, errmsg := j.state, j.result, j.errmsg
	j.mu.Unlock()
	switch state {
	case "done":
		writeJSON(w, http.StatusOK, result)
	case "failed", "canceled":
		httpError(w, http.StatusInternalServerError, fmt.Errorf("job %s: %s", state, errmsg))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job still %s", state))
	}
}

// handleCancel cancels a pending or running job; a job already settled is
// evicted instead, so long-lived daemons have a way to release finished
// jobs' result payloads.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	settled := j.state == "done" || j.state == "failed" || j.state == "canceled"
	j.mu.Unlock()
	if settled {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
	} else {
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
