// Package server exposes the batch-simulation engine over HTTP: clients
// submit runs, evaluations or whole sweeps as asynchronous jobs, poll
// their progress, and fetch aggregated results. All jobs on one server
// share one sim.Runner — and therefore one memoization store, so a client
// resubmitting an overlapping sweep only pays for the cells nobody has
// simulated yet.
//
//	POST   /jobs             submit a job; returns {"id": ...}
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        job status and progress
//	GET    /jobs/{id}/result aggregated result JSON (200 once done;
//	                         404 unknown id, 409 any unsettled or
//	                         unsuccessful state)
//	POST   /jobs/{id}/cancel cancel a pending or running job (202;
//	                         404 unknown id, 409 already settled)
//	DELETE /jobs/{id}        cancel a running job, or evict a settled one
//	GET    /stats            engine counters (hits, executed, ...)
//	GET    /healthz          liveness
//
// The server is built to survive abuse and crashes: submissions pass an
// admission controller (per-tenant quotas, token-bucket rate limiting and
// a bounded priority queue — rejections are 429 with Retry-After, never a
// blocked client), every job transition is journaled to an append-only
// JSONL file so a restarted daemon re-lists, resumes or cleanly
// interrupts every job it ever accepted, and a panicking job fails alone
// instead of taking the daemon down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdsmt/internal/config"
	"hdsmt/internal/mapping"
	"hdsmt/internal/obslog"
	"hdsmt/internal/pareto"
	"hdsmt/internal/search"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
	"hdsmt/internal/tshist"
	"hdsmt/internal/version"
	"hdsmt/internal/workload"
)

// JobSpec is the body of POST /jobs.
type JobSpec struct {
	// Kind selects the job type:
	//   "run"      — one simulation: Config, Workload, optional Mapping
	//                (default: §2.1 heuristic). Result: core.Results.
	//   "evaluate" — BEST/HEUR/WORST measurement for Config × Workload.
	//                Result: sim.Measurement.
	//   "sweep"    — evaluate every Configs × Workloads cell (defaults:
	//                the paper's six configurations × all workloads).
	//                Result: {"measurements": [...]}.
	//   "search"   — metaheuristic design-space search (internal/search):
	//                Strategy over an enriched configuration space, on the
	//                server's shared engine. Progress counts evaluations
	//                against SearchBudget; DELETE cancels mid-search.
	//                Result: search.Result (best point + trajectory).
	//   "pareto"   — multi-objective search over Objectives (default
	//                ipc,area,fairness; Strategy defaults to nsga2).
	//                Same space/budget/cancellation contract as "search";
	//                Result: search.Result with the non-dominated front
	//                and its hypervolume trajectory.
	Kind string `json:"kind"`

	// Priority orders the accept queue when the server is saturated:
	// higher launches first, FIFO within a priority. Ignored while an
	// active slot is free.
	Priority int `json:"priority,omitempty"`

	// TimeoutSec caps this job's wall-clock execution; past it the job
	// settles as failed (deadline exceeded). 0 means the server's
	// per-kind default (WithDeadlines), which may be unlimited.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	Config    string   `json:"config,omitempty"`
	Configs   []string `json:"configs,omitempty"`
	Workload  string   `json:"workload,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Mapping   []int    `json:"mapping,omitempty"`

	// Budget/Warmup default to sim.DefaultOptions; OracleBudget defaults
	// to Budget; MaxOracle 0 means exhaustive.
	Budget       uint64 `json:"budget,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`
	OracleBudget uint64 `json:"oracle_budget,omitempty"`
	MaxOracle    int    `json:"max_oracle,omitempty"`

	// search jobs only. Strategy is exhaustive|random|hillclimb|aco.
	// SearchBudget bounds charged point evaluations (required for the
	// guided strategies, ignored for exhaustive — a truncated enumeration
	// would be a false ground truth); Seed drives the strategy's
	// randomness (fixed seed =
	// reproducible trajectory). The space starts from search.EnrichedSpace
	// when Enriched is set, search.NewSpace otherwise (MaxPipes defaults
	// to 4), and any explicitly given axis overrides the default; the
	// Workloads field above selects the evaluation set (default: all).
	Strategy       string   `json:"strategy,omitempty"`
	SearchBudget   int      `json:"search_budget,omitempty"`
	Seed           int64    `json:"seed,omitempty"`
	Enriched       bool     `json:"enriched,omitempty"`
	MaxPipes       int      `json:"max_pipes,omitempty"`
	AreaCap        float64  `json:"area_cap,omitempty"`
	Policies       []string `json:"policies,omitempty"`
	RemapIntervals []uint64 `json:"remap_intervals,omitempty"`
	QueueScales    []int    `json:"queue_scales,omitempty"`
	FetchBufScales []int    `json:"fetch_buf_scales,omitempty"`

	// pareto jobs only. Objectives lists the objective keys (2+ metric
	// names from the registry — ipc, area, fairness, energy, per_area, ed,
	// ed2; empty = ipc,area,fairness; names are validated against the
	// registry at submit time) and ArchiveCap bounds the non-dominated
	// archive (0 = default). Archive, when non-empty, names a persisted
	// archive file in the server's archive directory (New's dir option):
	// the job's non-dominated front is checkpointed there on every change,
	// and a later pareto job submitted with the same name — e.g. after the
	// first was canceled — restores the front instead of rediscovering it.
	// Archive-backed pareto jobs are also the resumable class after a
	// daemon crash: replay relaunches them from their checkpoint.
	Objectives []string `json:"objectives,omitempty"`
	ArchiveCap int      `json:"archive_cap,omitempty"`
	Archive    string   `json:"archive,omitempty"`
}

func (s JobSpec) options() sim.Options {
	opt := sim.DefaultOptions()
	if s.Budget > 0 {
		opt.Budget = s.Budget
	}
	if s.Warmup > 0 {
		opt.Warmup = s.Warmup
	}
	opt.OracleBudget = s.OracleBudget
	opt.MaxOracle = s.MaxOracle
	return opt
}

// Progress counts a job's completed cells (one cell = one evaluation or
// run; a cell may expand to many simulations inside the engine).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Status is the body of GET /jobs/{id}.
type Status struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	// RequestID is the correlation ID bound to this job at admission —
	// the client's X-Request-ID, or server-minted. Every log line, trace
	// span and timeline event of the job carries it.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the distributed-trace identity bound at admission — the
	// client's traceparent, or server-minted. GET /jobs/{id}/trace serves
	// the span tree recorded under it.
	TraceID  string   `json:"trace_id,omitempty"`
	State    string   `json:"state"` // pending|running|done|failed|canceled|interrupted
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
	Created  string   `json:"created,omitempty"`
	Finished string   `json:"finished,omitempty"`

	// Front and Hypervolume stream a pareto job's incumbent non-dominated
	// front mid-run: they update on every archive change, so a client
	// polling GET /jobs/{id} watches the front grow instead of waiting for
	// the final result.
	Front       []search.TrajectoryPoint `json:"front,omitempty"`
	Hypervolume float64                  `json:"hypervolume,omitempty"`
}

// SweepResult is the result payload of a "sweep" job: one measurement per
// (config, workload) cell, configs outer, workloads inner.
type SweepResult struct {
	Measurements []sim.Measurement `json:"measurements"`
}

// settled reports whether state is terminal. "interrupted" counts: a
// crash-orphaned job will never progress, only be inspected or evicted.
func settledState(state string) bool {
	switch state {
	case "done", "failed", "canceled", "interrupted":
		return true
	}
	return false
}

type job struct {
	id        string
	spec      JobSpec
	tenant    string
	requestID string
	cancel    context.CancelFunc
	// tl is the job's event timeline (bounded ring + SSE subscribers);
	// log is the server logger with the job's correlation fields bound,
	// so every record names job, tenant and request ID.
	tl  *timeline
	log *obslog.Logger
	// trace is the job's bounded span buffer, rooted at the client's
	// traceparent span; execSpan is the pre-minted ID of the execute span
	// (started→settled) — minted before launch so engine spans recorded
	// mid-flight parent to it.
	trace    *telemetry.JobTrace
	execSpan string

	mu       sync.Mutex
	state    string
	errmsg   string
	result   any
	done     int
	total    int
	created  time.Time
	started  time.Time
	finished time.Time
	front    []search.TrajectoryPoint
	hv       float64
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		Kind:        j.spec.Kind,
		Tenant:      j.tenant,
		RequestID:   j.requestID,
		TraceID:     j.trace.Context().TraceID,
		State:       j.state,
		Error:       j.errmsg,
		Progress:    Progress{Done: j.done, Total: j.total},
		Created:     j.created.UTC().Format(time.RFC3339),
		Front:       j.front,
		Hypervolume: j.hv,
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339)
	}
	return st
}

// Server is the HTTP job server. Create one with New and mount Handler.
type Server struct {
	runner *sim.Runner
	// archiveDir, when non-empty, hosts named pareto-archive files
	// (JobSpec.Archive); meant to sit next to the engine's journal and
	// cache directory so a restarted daemon resumes both simulations and
	// fronts.
	archiveDir string

	// jj is the durable job journal (WithJobJournal); nil disables
	// durability and the server reverts to in-memory jobs only.
	jj          *jobJournal
	journalPath string

	adm       *admission
	deadlines map[string]time.Duration
	maxBody   int64
	draining  atomic.Bool
	drainCh   chan struct{}  // closed once by Drain; ends live SSE streams
	ready     atomic.Bool    // journal replayed; flips in New
	wg        sync.WaitGroup // every accepted-and-launched job; Drain waits on it

	// log receives the server's structured records; per-job children bind
	// job ID, tenant and request ID so no line is uncorrelated.
	log *obslog.Logger

	// SSE tuning: heartbeat period for idle streams and the per-job
	// timeline ring capacity. Options override both (tests shrink them).
	sseHeartbeat time.Duration
	timelineCap  int

	// traceSpanCap bounds each job's span buffer (WithTraceSpanCap);
	// feed is the server-wide event firehose behind GET /events — every
	// job's timeline events, stamped with the job ID, in one stream.
	traceSpanCap int
	feed         *timeline

	// hist, when set (WithHistory), serves GET /metrics/history and the
	// SLO detail on /readyz. The owner runs its sampling loop.
	hist *tshist.Sampler

	// reg backs GET /metrics and the per-kind job instruments below. Pass
	// the same registry to the runner's engine.Options (WithTelemetry) so
	// one scrape covers both layers; without the option a private registry
	// exposes the server families alone.
	reg           *telemetry.Registry
	jobsTotal     *telemetry.CounterVec
	jobSeconds    *telemetry.HistogramVec
	jobInflight   *telemetry.Gauge
	rejected      *telemetry.CounterVec
	httpResponses *telemetry.CounterVec
	jobPanics     *telemetry.Counter
	recovered     *telemetry.CounterVec
	journalTorn   *telemetry.Counter
	sseStreams    *telemetry.Gauge
	sseEvents     *telemetry.Counter
	jobEvents     *telemetry.Counter

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	// archives maps a claimed archive path to the running job holding it:
	// two concurrent jobs checkpointing the same file would silently
	// clobber each other's front, so a name is exclusive until its job
	// settles.
	archives map[string]string
}

// Option customizes a Server.
type Option func(*Server)

// WithArchiveDir enables named pareto-archive persistence under dir
// (created on first use).
func WithArchiveDir(dir string) Option {
	return func(s *Server) { s.archiveDir = dir }
}

// WithTelemetry scrapes reg at GET /metrics and registers the server's
// per-kind job instruments there. Hand the same registry to the engine
// (engine.Options.Telemetry) so one scrape covers request handling,
// search progress and simulation cache behavior together.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithJobJournal makes the job table durable: every accepted job and
// every state transition appends to the JSONL file at path, and New
// replays the file so a restarted daemon re-lists settled jobs, resumes
// archive-backed pareto jobs, and marks everything else interrupted.
func WithJobJournal(path string) Option {
	return func(s *Server) { s.journalPath = path }
}

// WithAdmission bounds what the server accepts; see AdmissionConfig.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) { s.adm = newAdmission(cfg) }
}

// WithDeadlines sets per-kind default execution deadlines (job kind →
// wall-clock cap); JobSpec.TimeoutSec overrides per job. A job past its
// deadline settles as failed, freeing its admission slot.
func WithDeadlines(d map[string]time.Duration) Option {
	return func(s *Server) {
		s.deadlines = make(map[string]time.Duration, len(d))
		for k, v := range d {
			s.deadlines[k] = v
		}
	}
}

// WithMaxBodyBytes caps the POST /jobs request body (default 1 MiB);
// larger specs are rejected with 413 before any decoding work.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithLogger sets the server's structured logger (default: the process
// logger). The server binds component/job/tenant/request ID fields
// itself; hand it a child with deployment fields if needed.
func WithLogger(lg *obslog.Logger) Option {
	return func(s *Server) { s.log = lg }
}

// WithSSEHeartbeat sets the idle-stream heartbeat period (default 15s).
// Tests shrink it to observe heartbeats quickly.
func WithSSEHeartbeat(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.sseHeartbeat = d
		}
	}
}

// WithTimelineCap bounds each job's in-memory event ring (default 512).
// When a job outgrows it, the oldest events are dropped from the ring
// (sequence numbers expose the gap); the durable lifecycle events remain
// in the job journal regardless.
func WithTimelineCap(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.timelineCap = n
		}
	}
}

// WithTraceSpanCap bounds each job's span buffer (default
// telemetry.DefaultJobTraceCap). A job outgrowing it drops its oldest
// spans — eviction degrades detail, never the tree's connectivity.
func WithTraceSpanCap(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.traceSpanCap = n
		}
	}
}

// WithHistory serves sampler's windowed view at GET /metrics/history and
// its SLO status in the /readyz detail. The caller owns the sampling
// loop (sampler.Run); build the sampler over the same registry passed to
// WithTelemetry or the windows will be empty.
func WithHistory(sampler *tshist.Sampler) Option {
	return func(s *Server) { s.hist = sampler }
}

// New builds a Server executing jobs on r. The caller keeps ownership of
// r (and closes it after shutting the HTTP listener down, after Close on
// the server). The only error source is the job journal: an unreadable
// or unopenable journal file refuses to start rather than silently
// running non-durable.
func New(r *sim.Runner, opts ...Option) (*Server, error) {
	s := &Server{
		runner:       r,
		jobs:         map[string]*job{},
		archives:     map[string]string{},
		maxBody:      1 << 20,
		sseHeartbeat: 15 * time.Second,
		timelineCap:  defaultTimelineCap,
		traceSpanCap: telemetry.DefaultJobTraceCap,
		drainCh:      make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	// The firehose outlives every job, so terminal job events must not
	// close it; timestamps are relative to server start.
	s.feed = newTimeline(time.Now(), s.timelineCap)
	s.feed.neverClose = true
	if s.log == nil {
		s.log = obslog.Default()
	}
	s.log = s.log.With(obslog.F("component", "server"))
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	if s.adm == nil {
		s.adm = newAdmission(AdmissionConfig{})
	}
	s.jobsTotal = s.reg.CounterVec(telemetry.MetricServerJobs,
		"jobs accepted, by kind", "kind")
	s.jobSeconds = s.reg.HistogramVec(telemetry.MetricServerJobSeconds,
		"job duration from acceptance to settlement, by kind", "kind", nil)
	s.jobInflight = s.reg.Gauge(telemetry.MetricServerInflight,
		"jobs currently executing")
	s.rejected = s.reg.CounterVec(telemetry.MetricServerRejected,
		"submissions rejected by admission control or limits, by reason", "reason")
	s.httpResponses = s.reg.CounterVec(telemetry.MetricServerHTTPResponses,
		"HTTP responses by status class (2xx/4xx/5xx); the availability SLO's event stream", "class")
	s.jobPanics = s.reg.Counter(telemetry.MetricServerJobPanics,
		"job goroutine panics contained (the job failed; the daemon survived)")
	s.recovered = s.reg.CounterVec(telemetry.MetricServerRecovered,
		"jobs recovered from the job journal at startup, by outcome", "outcome")
	s.journalTorn = s.reg.Counter(telemetry.MetricServerJournalTorn,
		"truncated or corrupt job-journal lines skipped at load")
	s.reg.GaugeFunc(telemetry.MetricServerPending,
		"jobs queued by admission control awaiting an active slot",
		func() float64 { return float64(s.adm.pendingLen()) })
	s.sseStreams = s.reg.Gauge(telemetry.MetricServerSSEStreams,
		"live SSE event streams currently open")
	s.sseEvents = s.reg.Counter(telemetry.MetricServerSSEEvents,
		"events delivered over SSE streams (heartbeats excluded)")
	s.jobEvents = s.reg.Counter(telemetry.MetricServerJobEvents,
		"job timeline events recorded, all jobs")
	s.reg.Info(telemetry.MetricBuildInfo, "build metadata", [][2]string{
		{"version", version.Version}, {"goversion", version.Go()},
	})

	if s.journalPath != "" {
		jj, events, torn, err := openJobJournal(s.journalPath)
		if err != nil {
			return nil, err
		}
		s.jj = jj
		s.journalTorn.Add(float64(torn))
		s.replay(events)
	}
	s.ready.Store(true)
	return s, nil
}

// Close flushes and closes the job journal. Call after the HTTP listener
// is down and Drain has returned.
func (s *Server) Close() error { return s.jj.Close() }

// replay reconstructs the job table from journal events and disposes of
// every job left unfinished by the previous incarnation: settled jobs are
// re-listed with their results, archive-backed pareto jobs are resumed
// from their checkpoint, and everything else is marked interrupted — a
// terminal, inspectable state — so no accepted job silently vanishes.
func (s *Server) replay(events []jobEvent) {
	for _, ev := range events {
		switch ev.Event {
		case "accepted":
			if ev.Spec == nil || ev.ID == "" {
				continue
			}
			j := &job{
				id:        ev.ID,
				spec:      *ev.Spec,
				tenant:    ev.Tenant,
				requestID: ev.RequestID,
				cancel:    func() {},
				state:     "pending",
				created:   parseRFC3339(ev.Created),
			}
			// The trace identity survives the restart (journaled at
			// accept); the spans themselves do not — they are debugging
			// state, not results. Pre-PR-9 journals lack the field: mint.
			tc, ok := telemetry.ParseTraceparent(ev.Traceparent)
			if !ok {
				tc = telemetry.NewTraceContext()
			}
			j.trace = telemetry.NewJobTrace(tc, s.traceSpanCap)
			j.execSpan = j.trace.NewSpanID()
			j.tl = newTimeline(j.created, s.timelineCap)
			j.log = s.jobLogger(j)
			s.jobs[ev.ID] = j
			var n int
			if _, err := fmt.Sscanf(ev.ID, "job-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
			}
		case "timeline":
			// Durable timeline events re-populate the ring with their
			// original sequence numbers and relative timestamps, so a
			// restarted daemon still serves the accepted→… history.
			if j, ok := s.jobs[ev.ID]; ok && ev.TL != nil {
				j.tl.restore(*ev.TL)
			}
		case "running":
			if j, ok := s.jobs[ev.ID]; ok {
				j.state = "running"
			}
		case "done", "failed", "canceled", "interrupted":
			j, ok := s.jobs[ev.ID]
			if !ok {
				continue
			}
			j.state = ev.Event
			j.errmsg = ev.Error
			j.finished = parseRFC3339(ev.Finished)
			if len(ev.Result) > 0 {
				j.result = ev.Result // raw JSON, served verbatim by /result
			}
		case "evicted":
			delete(s.jobs, ev.ID)
		}
	}

	for _, j := range s.jobs {
		switch {
		case settledState(j.state):
			s.recovered.With("settled").Inc()
		case j.spec.Kind == "pareto" && j.spec.Archive != "":
			s.resume(j)
		default:
			s.interrupt(j)
		}
	}
}

// resume relaunches a crash-orphaned archive-backed pareto job: the
// persisted archive restores its front and the engine's memoization
// absorbs any cells it had already simulated, so the rerun only pays for
// the remainder. Falls back to interrupt when the spec no longer
// resolves (e.g. the daemon restarted without -archives).
func (s *Server) resume(j *job) {
	sp, st, opts, err := s.resolveSearch(j.spec)
	if err != nil {
		s.interrupt(j)
		return
	}
	if opts.ArchivePath != "" {
		if _, ok := s.claimArchive(opts.ArchivePath, j.id); !ok {
			s.interrupt(j)
			return
		}
	}
	ctx, cancel := s.jobContext(j.spec, j.requestID, j)
	j.cancel = cancel
	j.total = opts.Budget
	s.recovered.With("resumed").Inc()
	s.event(j, EventRetried, "resumed from archive after daemon restart")
	j.log.Info("job resumed after restart", obslog.F("archive", j.spec.Archive))
	s.adm.adopt(j.tenant)
	s.wg.Add(1)
	go s.runJob(ctx, j, func(ctx context.Context, j *job) (any, error) {
		return s.searchBody(ctx, j, sp, st, opts)
	})
}

// interrupt settles a crash-orphaned job that cannot be resumed.
func (s *Server) interrupt(j *job) {
	j.state = "interrupted"
	j.errmsg = "daemon restarted while the job was unfinished; not resumable"
	j.finished = time.Now()
	s.recovered.With("interrupted").Inc()
	s.event(j, EventInterrupted, j.errmsg)
	if err := s.jj.append(jobEvent{ID: j.id, Event: "interrupted", Error: j.errmsg, Finished: rfc3339(j.finished)}); err != nil {
		j.log.Error("journaling interrupt failed", obslog.Err(err))
	}
}

// Drain stops accepting jobs (submissions get 503) and waits until every
// accepted job — active or queued — settles, or ctx expires. Pair with
// http.Server.Shutdown for a clean SIGTERM: stop the listener, drain the
// jobs, close the engine.
func (s *Server) Drain(ctx context.Context) error {
	// The flag flips under s.mu, the same lock newJob registers under, so
	// no job can slip into the WaitGroup after the drain decides its
	// membership — wg.Add never races wg.Wait from zero.
	s.mu.Lock()
	if !s.draining.Swap(true) {
		// Live SSE streams end now: they are reads, not jobs, and must
		// not hold http.Server.Shutdown open for the heartbeat interval.
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}

// Handler returns the server's route mux, wrapped so every request gets
// a correlation ID: an incoming X-Request-ID is adopted (sanitized), a
// missing one is minted, and either way the ID is echoed on the response
// and bound to the request context for logs, jobs and timelines.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancelPost)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /events", s.handleEventsFeed)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/history", s.handleHistory)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s.withRequestID(mux)
}

// withRequestID is the correlation middleware described on Handler. It
// handles both correlation headers the same way — adopt after strict
// validation, mint otherwise, echo on the response, bind to the request
// context — and counts every response by status class, the event stream
// the availability SLO burns against.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := obslog.SanitizeRequestID(r.Header.Get(obslog.HeaderRequestID))
		if rid == "" {
			rid = obslog.NewRequestID()
		}
		// traceparent mirrors X-Request-ID: a malformed header — wrong
		// length, bad hex, all-zero IDs — is replaced, never half-trusted.
		tc, ok := telemetry.ParseTraceparent(r.Header.Get(telemetry.HeaderTraceparent))
		if !ok {
			tc = telemetry.NewTraceContext()
		}
		w.Header().Set(obslog.HeaderRequestID, rid)
		w.Header().Set(telemetry.HeaderTraceparent, tc.Traceparent())
		ctx := obslog.WithRequestID(r.Context(), rid)
		ctx = telemetry.WithTraceContext(ctx, tc)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		// The metrics plane does not observe itself: counting scrapes
		// would make two scrapes of an idle server differ (each sees the
		// previous one), and the availability SLO is about job traffic,
		// not the scraper's.
		if r.URL.Path != "/metrics" && r.URL.Path != "/metrics/history" {
			s.httpResponses.With(sw.class()).Inc()
		}
		if s.log.Enabled(obslog.LevelDebug) {
			s.log.Debug("http request",
				obslog.F("method", r.Method), obslog.F("path", r.URL.Path),
				obslog.F("request_id", rid), obslog.F("trace_id", tc.TraceID),
				obslog.F("status", sw.status()))
		}
	})
}

// statusWriter captures the response status for the per-class counter.
// It forwards Flush so SSE streaming keeps working through the wrapper
// (a transport that cannot flush gets a no-op, matching net/http's
// behavior of buffering until the handler returns).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.code, sw.wrote = http.StatusOK, true
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) status() int {
	if !sw.wrote {
		return http.StatusOK
	}
	return sw.code
}

func (sw *statusWriter) class() string {
	return fmt.Sprintf("%dxx", sw.status()/100)
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// Orchestrators restart on its failure, so it must never depend on load,
// drains or journal state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the job journal has been replayed and the
// engine is accepting work, and the server is not draining. Load
// balancers route on it, so a draining daemon reports 503 to shed
// traffic while /healthz stays green.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	body := map[string]any{
		"version": version.Version,
		"jobs":    jobs,
	}
	// SLO status is detail, not a readiness gate: flipping readiness on a
	// burn would shed load from an already-struggling daemon and turn a
	// latency breach into an availability outage.
	if s.hist != nil {
		slos := map[string]string{}
		breach := false
		for _, st := range s.hist.History().SLOs {
			slos[st.Name] = st.Status
			breach = breach || st.Breach
		}
		body["slos"] = slos
		body["slo_breach"] = breach
	}
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case !s.ready.Load() || !s.runner.Accepting():
		body["status"] = "not ready"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ready"
		writeJSON(w, http.StatusOK, body)
	}
}

// handleMetrics renders the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleHistory serves the sampler's windowed view — rates, quantiles
// and SLO burn — as JSON (schema tshist.SchemaVersion). 404 when the
// daemon runs without a sampler.
func (s *Server) handleHistory(w http.ResponseWriter, _ *http.Request) {
	if s.hist == nil {
		httpError(w, http.StatusNotFound,
			errors.New("metrics history is disabled on this server"))
		return
	}
	writeJSON(w, http.StatusOK, s.hist.History())
}

// TracePage is the body of GET /jobs/{id}/trace: the assembled span tree
// rooted at the span the client named in its traceparent header.
type TracePage struct {
	ID        string `json:"id"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id"`
	State     string `json:"state"`
	Spans     int    `json:"spans"`
	// Dropped counts spans evicted from the bounded buffer; evicted
	// spans' children re-attach to the root, so the tree stays connected.
	Dropped uint64              `json:"dropped,omitempty"`
	Root    *telemetry.SpanNode `json:"root"`
}

// handleTrace serves a job's span tree — live or settled — as JSON, or
// as Chrome trace_event JSON with ?format=chrome for about://tracing
// and Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = j.trace.WriteChrome(w)
		return
	}
	spans, dropped := j.trace.Snapshot()
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, TracePage{
		ID:        j.id,
		RequestID: j.requestID,
		TraceID:   j.trace.Context().TraceID,
		State:     state,
		Spans:     len(spans),
		Dropped:   dropped,
		Root:      j.trace.Tree(),
	})
}

// resolveCells expands a spec into its (config, workload) cells at submit
// time, so malformed specs fail synchronously with 400 rather than
// asynchronously.
func resolveCells(spec JobSpec) ([]sim.SweepCell, error) {
	switch spec.Kind {
	case "run", "evaluate":
		if spec.Config == "" || spec.Workload == "" {
			return nil, fmt.Errorf("%s job needs config and workload", spec.Kind)
		}
		cfg, err := config.Parse(spec.Config)
		if err != nil {
			return nil, err
		}
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, err
		}
		return []sim.SweepCell{{Cfg: cfg, W: w}}, nil
	case "sweep":
		var cfgs []config.Microarch
		if len(spec.Configs) == 0 {
			cfgs = config.EvaluatedMicroarchs()
		} else {
			for _, name := range spec.Configs {
				cfg, err := config.Parse(name)
				if err != nil {
					return nil, err
				}
				cfgs = append(cfgs, cfg)
			}
		}
		var wls []workload.Workload
		if len(spec.Workloads) == 0 {
			wls = workload.All()
		} else {
			for _, name := range spec.Workloads {
				w, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				wls = append(wls, w)
			}
		}
		cells := make([]sim.SweepCell, 0, len(cfgs)*len(wls))
		for _, cfg := range cfgs {
			for _, w := range wls {
				cells = append(cells, sim.SweepCell{Cfg: cfg, W: w})
			}
		}
		return cells, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q (want run, evaluate, sweep, search or pareto)", spec.Kind)
	}
}

// resolveSearch validates a search or pareto spec at submit time and
// assembles its space, strategy and driver options. Pareto jobs default
// the strategy to nsga2 and carry an objective list (default
// ipc,area,fairness — names resolved against the metric registry, so a
// typo'd objective 400s with the list of known metrics); search jobs stay
// scalar and ignore Objectives.
func (s *Server) resolveSearch(spec JobSpec) (search.Space, search.Strategy, search.Options, error) {
	var zero search.Space
	strategy := spec.Strategy
	if strategy == "" && spec.Kind == "pareto" {
		strategy = "nsga2"
	}
	st, err := search.ByName(strategy)
	if err != nil {
		return zero, nil, search.Options{}, err
	}
	budget := spec.SearchBudget
	if strategy == "exhaustive" {
		// Exhaustive results are only trustworthy un-truncated: the
		// enumeration terminates on its own, so the budget is ignored
		// rather than allowed to silently cut the ground truth short.
		budget = 0
	} else if budget <= 0 {
		return zero, nil, search.Options{}, fmt.Errorf("%s search needs a positive search_budget", strategy)
	}

	var wls []workload.Workload
	if len(spec.Workloads) == 0 {
		wls = workload.All()
	} else {
		for _, name := range spec.Workloads {
			wl, err := workload.ByName(name)
			if err != nil {
				return zero, nil, search.Options{}, err
			}
			wls = append(wls, wl)
		}
	}
	maxPipes := spec.MaxPipes
	if maxPipes <= 0 {
		maxPipes = 4
	}
	sp := search.NewSpace(maxPipes, spec.AreaCap, wls)
	if spec.Enriched {
		sp = search.EnrichedSpace(maxPipes, spec.AreaCap, wls)
	}
	if len(spec.Policies) > 0 {
		sp.Policies = spec.Policies
	}
	if len(spec.RemapIntervals) > 0 {
		sp.RemapIntervals = spec.RemapIntervals
	}
	if len(spec.QueueScales) > 0 {
		sp.QueueScales = spec.QueueScales
	}
	if len(spec.FetchBufScales) > 0 {
		sp.FetchBufScales = spec.FetchBufScales
	}
	if err := sp.Validate(); err != nil {
		return zero, nil, search.Options{}, err
	}
	opts := search.Options{
		Budget: budget,
		Seed:   spec.Seed,
		Sim:    spec.options(),
	}
	switch spec.Kind {
	case "pareto":
		csv := "ipc,area,fairness"
		if len(spec.Objectives) > 0 {
			csv = strings.Join(spec.Objectives, ",")
		}
		objs, err := pareto.Parse(csv)
		if err != nil {
			return zero, nil, search.Options{}, err
		}
		opts.Objectives = objs
		opts.ArchiveCap = spec.ArchiveCap
		if spec.Archive != "" {
			path, err := s.archivePath(spec.Archive)
			if err != nil {
				return zero, nil, search.Options{}, err
			}
			opts.ArchivePath = path
		}
	default:
		// Scalar searches must not silently drop multi-objective fields: a
		// client that meant "pareto" would otherwise get a frontless result
		// with a 200.
		if len(spec.Objectives) > 0 || spec.ArchiveCap != 0 || spec.Archive != "" {
			return zero, nil, search.Options{}, fmt.Errorf("objectives/archive_cap/archive need kind \"pareto\", not %q", spec.Kind)
		}
	}
	return sp, st, opts, nil
}

// archivePath resolves a client-chosen archive name inside the server's
// archive directory. Names are restricted to a flat namespace — no path
// separators or dot-prefixes — so a job spec cannot write outside the
// directory the operator configured.
func (s *Server) archivePath(name string) (string, error) {
	if s.archiveDir == "" {
		return "", fmt.Errorf("this server has no archive directory (start hdsmtd with -archives)")
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("archive name %q must be a plain file name", name)
	}
	if err := os.MkdirAll(s.archiveDir, 0o755); err != nil {
		return "", fmt.Errorf("creating archive directory: %w", err)
	}
	return filepath.Join(s.archiveDir, name+".json"), nil
}

// tenantOf identifies the submitting tenant for quotas and accounting:
// the X-API-Key header, or "anonymous". The key is an identity, not a
// secret — hdsmtd runs on trusted networks — so it is stored and listed
// verbatim.
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejected.With("draining").Inc()
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, errors.New("server is draining; resubmit to its successor"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.rejected.With("body_too_large").Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("job spec exceeds the %d-byte limit", mbe.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	tenant := tenantOf(r)

	// Validate fully before admission: a malformed spec is the client's
	// fault (400) and must not consume rate-limit tokens or quota.
	var total int
	var archivePath string
	var body func(context.Context, *job) (any, error)
	switch spec.Kind {
	case "search", "pareto":
		sp, st, opts, err := s.resolveSearch(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		total, archivePath = opts.Budget, opts.ArchivePath
		body = func(ctx context.Context, j *job) (any, error) {
			return s.searchBody(ctx, j, sp, st, opts)
		}
	default:
		cells, err := resolveCells(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if spec.Kind == "run" && spec.Mapping != nil {
			// Validate against the thread-stretched configuration: the
			// monolithic baseline accepts up to 6 threads (paper §3).
			cfg := cells[0].Cfg.ForThreads(cells[0].W.Threads())
			if got, want := len(spec.Mapping), cells[0].W.Threads(); got != want {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("mapping covers %d threads, workload has %d", got, want))
				return
			}
			if err := mapping.Validate(cfg, spec.Mapping); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		total = len(cells)
		body = func(ctx context.Context, j *job) (any, error) {
			return s.cellsBody(ctx, j, cells)
		}
	}

	tc, _ := telemetry.TraceContextFrom(r.Context())
	j, ctx, err := s.newJob(spec, tenant, total, obslog.RequestID(r.Context()), tc)
	if err != nil {
		s.rejected.With("draining").Inc()
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if archivePath != "" {
		if holder, ok := s.claimArchive(archivePath, j.id); !ok {
			s.dropJob(j)
			httpError(w, http.StatusConflict,
				fmt.Errorf("archive %q is in use by running job %s", spec.Archive, holder))
			return
		}
	}

	// Journal the accept before admission launches anything: the launch
	// goroutine appends "running" and replay refuses events for unknown
	// jobs, so ordering here is what makes the journal replayable. A
	// rejected submission is erased with an eviction event below.
	s.journalAccepted(j)
	s.event(j, EventAccepted, spec.Kind)
	launch := func() {
		// The admission span covers acceptance to slot grant — for a
		// queued job, the time spent waiting behind the active set.
		j.trace.Add("", "admission", "server", j.created, time.Now(), nil)
		s.event(j, EventAdmitted, "")
		go s.runJob(ctx, j, body)
	}
	queued := func() { s.event(j, EventQueued, "awaiting an active slot") }
	if err := s.adm.admitOr(tenant, spec.Priority, launch, queued); err != nil {
		if archivePath != "" {
			s.unclaimArchive(archivePath)
		}
		s.dropJob(j)
		if jerr := s.jj.append(jobEvent{ID: j.id, Event: "evicted"}); jerr != nil {
			j.log.Error("journaling rejection failed", obslog.Err(jerr))
		}
		var ae *admissionError
		if errors.As(err, &ae) {
			s.rejected.With(ae.reason).Inc()
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.jobsTotal.With(spec.Kind).Inc()
	writeJSON(w, http.StatusAccepted, j.status())
}

// newJob registers a pending job with a cancelable context carrying the
// job's execution deadline, if any; total is the initial progress
// denominator (cells for simulation jobs, the budget for search jobs —
// refined once the search knows its effective target). Registration and
// the drain re-check share one critical section so Drain's WaitGroup
// membership is exact.
func (s *Server) newJob(spec JobSpec, tenant string, total int, requestID string, tc telemetry.TraceContext) (*job, context.Context, error) {
	if requestID == "" {
		requestID = obslog.NewRequestID()
	}
	if !tc.Valid() {
		tc = telemetry.NewTraceContext()
	}
	j := &job{
		spec: spec, tenant: tenant, requestID: requestID,
		state: "pending", total: total, created: time.Now(),
	}
	// The execute span's ID is minted before anything runs: engine spans
	// recorded while the job executes parent to it, and settle closes it
	// under the same ID.
	j.trace = telemetry.NewJobTrace(tc, s.traceSpanCap)
	j.execSpan = j.trace.NewSpanID()
	ctx, cancel := s.jobContext(spec, requestID, j)
	j.cancel = cancel
	j.tl = newTimeline(j.created, s.timelineCap)
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		cancel()
		return nil, nil, errors.New("server is draining; resubmit to its successor")
	}
	s.wg.Add(1)
	s.nextID++
	j.id = fmt.Sprintf("job-%06d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.log = s.jobLogger(j)
	return j, ctx, nil
}

// jobLogger binds a job's correlation fields, so every record about the
// job carries its ID, tenant and request ID without the call site
// repeating them.
func (s *Server) jobLogger(j *job) *obslog.Logger {
	return s.log.With(
		obslog.F("job", j.id),
		obslog.F("tenant", j.tenant),
		obslog.F("request_id", j.requestID),
	)
}

// jobContext builds a job's execution context: canceled by DELETE or
// POST cancel, bounded by the job's deadline when one applies, and
// carrying the job's correlation IDs — request ID, trace identity, and
// the span buffer with the execute span as parent — so engine- and
// search-level records tie back to the originating request.
func (s *Server) jobContext(spec JobSpec, requestID string, j *job) (context.Context, context.CancelFunc) {
	base := obslog.WithRequestID(context.Background(), requestID)
	base = telemetry.WithTraceContext(base, j.trace.Context())
	base = telemetry.WithSpan(base, j.trace, j.execSpan)
	if d := s.deadlineFor(spec); d > 0 {
		return context.WithTimeout(base, d)
	}
	return context.WithCancel(base)
}

func (s *Server) deadlineFor(spec JobSpec) time.Duration {
	if spec.TimeoutSec > 0 {
		return time.Duration(spec.TimeoutSec * float64(time.Second))
	}
	return s.deadlines[spec.Kind]
}

// dropJob removes a job that never launched (archive conflict, admission
// rejection): it leaves the table and the drain WaitGroup and releases
// its context resources.
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
	s.wg.Done()
	j.cancel()
}

func (s *Server) journalAccepted(j *job) {
	if err := s.jj.append(jobEvent{
		ID:          j.id,
		Event:       "accepted",
		Tenant:      j.tenant,
		RequestID:   j.requestID,
		Traceparent: j.trace.Context().Traceparent(),
		Priority:    j.spec.Priority,
		Spec:        &j.spec,
		Created:     rfc3339(j.created),
	}); err != nil {
		j.log.Error("journaling accept failed", obslog.Err(err))
	}
}

// runJob is the one execution wrapper every job goes through: it marks
// the job running, executes body with panic containment — a panicking
// job settles as failed and is counted, the daemon survives — and hands
// the outcome to settle, the single settlement point.
func (s *Server) runJob(ctx context.Context, j *job, body func(context.Context, *job) (any, error)) {
	defer s.wg.Done()
	s.jobInflight.Inc()
	s.markRunning(j)
	var result any
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.jobPanics.Inc()
				j.log.Error("job panicked; job failed, daemon unaffected",
					obslog.F("panic", fmt.Sprint(r)))
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		result, err = body(ctx, j)
	}()
	s.settle(ctx, j, result, err)
}

func (s *Server) markRunning(j *job) {
	j.mu.Lock()
	j.state = "running"
	j.started = time.Now()
	j.mu.Unlock()
	s.event(j, EventStarted, "")
	if err := s.jj.append(jobEvent{ID: j.id, Event: "running"}); err != nil {
		j.log.Error("journaling start failed", obslog.Err(err))
	}
}

// settle is the single settlement point: state transition, journal
// event, metrics and admission release all happen here, exactly once per
// launched job. Deadline expiry is a failure — the job did not do what
// was asked — while explicit cancellation stays "canceled".
func (s *Server) settle(ctx context.Context, j *job, result any, err error) {
	deadline := errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(ctx.Err(), context.DeadlineExceeded)
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = "done"
		j.result = result
	case deadline:
		j.state = "failed"
		j.errmsg = fmt.Sprintf("deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled) || ctx.Err() != nil:
		j.state = "canceled"
		j.errmsg = err.Error()
	default:
		j.state = "failed"
		j.errmsg = err.Error()
	}
	ev := jobEvent{ID: j.id, Event: j.state, Error: j.errmsg, Finished: rfc3339(j.finished)}
	dur := j.finished.Sub(j.created)
	kind, tenant, state, errmsg := j.spec.Kind, j.tenant, j.state, j.errmsg
	started := j.started
	if j.state == "done" {
		if raw, merr := json.Marshal(j.result); merr == nil {
			ev.Result = raw
		} else {
			j.log.Error("result not journalable", obslog.Err(merr))
		}
	}
	j.mu.Unlock()

	// The execute span closes under its pre-minted ID, so every engine
	// span recorded mid-flight is already parented beneath it.
	j.trace.AddWithID(j.execSpan, "", "execute", "server", started, j.finished,
		map[string]string{"state": state, "kind": kind})
	detail := state
	if errmsg != "" {
		detail = state + ": " + errmsg
	}
	s.event(j, EventSettled, detail)
	if state == "done" {
		j.log.Info("job settled", obslog.F("state", state), obslog.F("kind", kind))
	} else {
		j.log.Warn("job settled", obslog.F("state", state), obslog.F("kind", kind),
			obslog.F("err", errmsg))
	}
	if jerr := s.jj.append(ev); jerr != nil {
		j.log.Error("journaling settlement failed", obslog.Err(jerr))
	}
	s.jobInflight.Dec()
	s.jobSeconds.With(kind).Observe(dur.Seconds())
	s.adm.release(tenant)
	j.cancel() // releases the deadline timer
}

// cellsBody executes a run, evaluate or sweep job. All simulation
// fan-out happens inside the shared engine, which bounds total
// concurrency across every job on the server.
func (s *Server) cellsBody(ctx context.Context, j *job, cells []sim.SweepCell) (any, error) {
	opt := j.spec.options()
	switch j.spec.Kind {
	case "run":
		result, err := s.executeRun(ctx, cells[0], j.spec.Mapping, opt)
		if err != nil {
			return nil, err
		}
		j.mu.Lock()
		j.done = 1
		j.mu.Unlock()
		s.event(j, EventProgress, "1/1")
		return result, nil
	case "evaluate":
		result, err := s.runner.Evaluate(ctx, cells[0].Cfg, cells[0].W, opt)
		if err != nil {
			return nil, err
		}
		j.mu.Lock()
		j.done = 1
		j.mu.Unlock()
		s.event(j, EventProgress, "1/1")
		return result, nil
	default: // sweep
		ms, err := s.runner.EvaluateAll(ctx, cells, opt, func(done int) {
			j.mu.Lock()
			j.done = done
			total := j.total
			j.mu.Unlock()
			s.event(j, EventProgress, fmt.Sprintf("%d/%d", done, total))
		})
		if err != nil {
			return nil, err
		}
		return SweepResult{Measurements: ms}, nil
	}
}

// claimArchive binds an archive path to a job; it fails when another
// running job already holds it.
func (s *Server) claimArchive(path, jobID string) (holder string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder, busy := s.archives[path]; busy {
		return holder, false
	}
	s.archives[path] = jobID
	return jobID, true
}

func (s *Server) unclaimArchive(path string) {
	s.mu.Lock()
	delete(s.archives, path)
	s.mu.Unlock()
}

// searchBody executes a search or pareto job on the server's shared
// runner: every point evaluation goes through the one engine, so
// overlapping searches (and sweeps) share their simulations.
func (s *Server) searchBody(ctx context.Context, j *job, sp search.Space, st search.Strategy, opts search.Options) (any, error) {
	// The search shares the server's registry, so a /metrics scrape sees
	// its per-strategy progress next to the engine's cache counters.
	opts.Telemetry = s.reg
	if opts.ArchivePath != "" {
		defer s.unclaimArchive(opts.ArchivePath)
	}
	opts.Progress = func(done, total int) {
		j.mu.Lock()
		j.done = done
		j.total = total // the driver's effective target: min(budget, space)
		j.mu.Unlock()
		s.event(j, EventProgress, fmt.Sprintf("%d/%d", done, total))
	}
	opts.FrontProgress = func(front []search.TrajectoryPoint, hv float64) {
		j.mu.Lock()
		j.front = front
		j.hv = hv
		j.mu.Unlock()
		s.event(j, EventFrontUpdate, fmt.Sprintf("size=%d hv=%.6g", len(front), hv))
	}
	return search.NewDriver(s.runner).Search(ctx, sp, st, opts)
}

func (s *Server) executeRun(ctx context.Context, c sim.SweepCell, m mapping.Mapping, opt sim.Options) (any, error) {
	if m == nil {
		dm, err := sim.DefaultMapping(c.Cfg, c.W)
		if err != nil {
			return nil, err
		}
		m = dm
	}
	return s.runner.Run(ctx, c.Cfg, c.W, m, opt)
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleStatus serves a job's status snapshot — or, when the client
// accepts text/event-stream, switches to live SSE of the job's timeline,
// replacing the poll loop the client would otherwise run.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if wantsSSE(r) {
		s.streamEvents(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleResult has exactly three outcomes, all stable: 404 for an id the
// server never accepted (or has evicted), 200 with the payload for a
// successful job, and 409 for every other state — still pending/running,
// failed, canceled or interrupted — with the state named in the error so
// clients can distinguish "come back later" from "will never succeed".
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state, result, errmsg := j.state, j.result, j.errmsg
	j.mu.Unlock()
	switch state {
	case "done":
		writeJSON(w, http.StatusOK, result)
	case "failed", "canceled", "interrupted":
		httpError(w, http.StatusConflict, fmt.Errorf("job %s: %s", state, errmsg))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job still %s", state))
	}
}

// handleCancelPost (POST /jobs/{id}/cancel) requests cancellation of a
// pending or running job: 202 with the job's status when the request is
// taken, 409 when the job has already settled (cancel would be a lie),
// 404 for unknown ids. Idempotent for unsettled jobs.
func (s *Server) handleCancelPost(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if settledState(state) {
		httpError(w, http.StatusConflict, fmt.Errorf("job already settled (%s)", state))
		return
	}
	s.event(j, EventCanceled, "cancellation requested")
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleCancel (DELETE) cancels a pending or running job; a job already
// settled is evicted instead — removed from the table and, durably, from
// the journal's replay — so long-lived daemons have a way to release
// finished jobs' result payloads.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	settled := settledState(j.state)
	j.mu.Unlock()
	if settled {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.event(j, EventEvicted, "")
		if err := s.jj.append(jobEvent{ID: j.id, Event: "evicted"}); err != nil {
			j.log.Error("journaling eviction failed", obslog.Err(err))
		}
	} else {
		s.event(j, EventCanceled, "cancellation requested")
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
