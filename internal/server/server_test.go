package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdsmt/internal/config"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/mapping"
	"hdsmt/internal/pareto"
	"hdsmt/internal/search"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/workload"
)

// tinyOptions mirrors the sim package's fast test budgets.
func tinyOptions() sim.Options {
	return sim.Options{Budget: 3_000, Warmup: 2_000, OracleBudget: 1_500}
}

func newTestServer(t *testing.T) (*httptest.Server, *sim.Runner) {
	t.Helper()
	r, err := sim.NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(r)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return ts, r
}

func postJob(t *testing.T, ts *httptest.Server, spec any) server.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("job id missing")
	}
	return st
}

func awaitJob(t *testing.T, ts *httptest.Server, id string) server.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st server.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "canceled", "interrupted":
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not settle in time")
	return server.Status{}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestSweepRoundTrip pins the serving acceptance criterion: a sweep
// submitted over HTTP, polled to completion, yields byte-identical
// measurements to calling the sim package directly.
func TestSweepRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	opt := tinyOptions()
	configs := []string{"M8", "2M4+2M2"}

	st := postJob(t, ts, server.JobSpec{
		Kind:         "sweep",
		Configs:      configs,
		Workloads:    []string{"2W7"},
		Budget:       opt.Budget,
		Warmup:       opt.Warmup,
		OracleBudget: opt.OracleBudget,
	})
	if st.Progress.Total != 2 {
		t.Errorf("total = %d, want 2 cells", st.Progress.Total)
	}
	final := awaitJob(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	if final.Progress.Done != final.Progress.Total {
		t.Errorf("progress %+v not complete", final.Progress)
	}

	var got server.SweepResult
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}

	// Direct reference on a fresh runner with identical options.
	direct, err := sim.NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want := server.SweepResult{}
	for _, name := range configs {
		m, err := direct.Evaluate(context.Background(), config.MustParse(name),
			workload.MustByName("2W7"), opt)
		if err != nil {
			t.Fatal(err)
		}
		want.Measurements = append(want.Measurements, m)
	}

	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("HTTP sweep differs from direct sim:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// The engine behind the server must expose its counters.
	var stats engine.Stats
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	if stats.Executed == 0 {
		t.Error("server executed nothing")
	}
}

func TestRunJobMatchesDirectRun(t *testing.T) {
	ts, _ := newTestServer(t)
	opt := tinyOptions()

	st := postJob(t, ts, server.JobSpec{
		Kind:     "run",
		Config:   "2M4+2M2",
		Workload: "2W7",
		Mapping:  []int{0, 1},
		Budget:   opt.Budget,
		Warmup:   opt.Warmup,
	})
	final := awaitJob(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	var got core.Results
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}

	want, err := sim.Run(config.MustParse("2M4+2M2"), workload.MustByName("2W7"),
		mapping.Mapping{0, 1}, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("HTTP run differs from direct run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestSharedCacheAcrossJobs(t *testing.T) {
	ts, _ := newTestServer(t)
	opt := tinyOptions()
	spec := server.JobSpec{
		Kind: "evaluate", Config: "2M4+2M2", Workload: "2W9",
		Budget: opt.Budget, Warmup: opt.Warmup, OracleBudget: opt.OracleBudget,
	}

	first := awaitJob(t, ts, postJob(t, ts, spec).ID)
	if first.State != "done" {
		t.Fatalf("first job: %s", first.Error)
	}
	var stats engine.Stats
	getJSON(t, ts.URL+"/stats", &stats)
	executed := stats.Executed

	second := awaitJob(t, ts, postJob(t, ts, spec).ID)
	if second.State != "done" {
		t.Fatalf("second job: %s", second.Error)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Executed != executed {
		t.Errorf("resubmitted job executed %d new simulations, want 0", stats.Executed-executed)
	}
}

func TestValidationAndErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	bad := []any{
		server.JobSpec{Kind: "nope"},
		server.JobSpec{Kind: "run"},                                                           // missing config/workload
		server.JobSpec{Kind: "run", Config: "M99", Workload: "2W1"},                           // bad config
		server.JobSpec{Kind: "run", Config: "M8", Workload: "9W9"},                            // bad workload
		server.JobSpec{Kind: "run", Config: "2M4+2M2", Workload: "2W1", Mapping: []int{7, 7}}, // bad mapping
		server.JobSpec{Kind: "run", Config: "2M4+2M2", Workload: "4W6", Mapping: []int{0}},    // short mapping
		server.JobSpec{Kind: "sweep", Configs: []string{"bogus"}},
	}
	for i, spec := range bad {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d accepted with %d", i, resp.StatusCode)
		}
	}

	// The monolithic baseline stretches to 6 threads (paper §3): an
	// explicit all-zero mapping for a 6-thread workload must be accepted.
	postJob(t, ts, server.JobSpec{
		Kind: "run", Config: "M8", Workload: "6W1",
		Mapping: []int{0, 0, 0, 0, 0, 0}, Budget: 2_000, Warmup: 1_000,
	})

	if code := getJSON(t, ts.URL+"/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/job-999999/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown job result = %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}

	// Listing returns every submitted job.
	st := postJob(t, ts, server.JobSpec{Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000})
	awaitJob(t, ts, st.ID)
	var list []server.Status
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Errorf("GET /jobs = %d with %d jobs, want 2", code, len(list))
	}

	// DELETE on a finished job evicts it.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("DELETE finished job = %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID, nil); code != http.StatusNotFound {
		t.Errorf("evicted job still present (status %d)", code)
	}
}

func TestResultBeforeDone(t *testing.T) {
	ts, _ := newTestServer(t)
	// A sweep big enough to still be running on first poll.
	st := postJob(t, ts, server.JobSpec{
		Kind: "sweep", Configs: []string{"2M4+2M2"}, Workloads: []string{"4W6"},
		Budget: 3_000, Warmup: 2_000, OracleBudget: 1_500,
	})
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Errorf("result while running = %d, want 409 (or 200 if already done)", resp.StatusCode)
	}
	final := awaitJob(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
}

// TestSearchJobRoundTrip exercises the search job kind end to end: submit
// an ACO search over a small enriched space, poll to done, fetch the
// trajectory, and check it matches a direct driver run on the same seed.
func TestSearchJobRoundTrip(t *testing.T) {
	ts, r := newTestServer(t)
	spec := server.JobSpec{
		Kind:         "search",
		Strategy:     "aco",
		SearchBudget: 10,
		Seed:         7,
		MaxPipes:     3,
		QueueScales:  []int{75, 100},
		Workloads:    []string{"2W7"},
		Budget:       2_000,
		Warmup:       1_000,
	}
	st := postJob(t, ts, spec)
	st = awaitJob(t, ts, st.ID)
	if st.State != "done" {
		t.Fatalf("search job state = %s (%s)", st.State, st.Error)
	}
	if st.Progress.Done != 10 || st.Progress.Total != 10 {
		t.Errorf("progress = %+v, want 10/10", st.Progress)
	}

	var got search.Result
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	if got.Best == nil || len(got.Trajectory) == 0 {
		t.Fatalf("search result lacks a best point or trajectory: %+v", got)
	}
	if got.Strategy != "aco" || got.Evaluations != 10 {
		t.Errorf("result = strategy %q evaluations %d, want aco/10", got.Strategy, got.Evaluations)
	}

	// The same search run directly on the server's runner must agree on
	// the incumbent (the engine cache is warm; scores are memoized, not
	// re-derived, so equality is exact).
	sp := search.NewSpace(3, 0, []workload.Workload{workload.MustByName("2W7")})
	sp.QueueScales = []int{75, 100}
	direct, err := search.NewDriver(r).Search(context.Background(), sp, search.NewACO(),
		search.Options{Budget: 10, Seed: 7, Sim: sim.Options{Budget: 2_000, Warmup: 1_000}})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Best.Config != got.Best.Config || direct.Best.Metric("per_area") != got.Best.Metric("per_area") {
		t.Errorf("HTTP search best %s (%.6f) != direct best %s (%.6f)",
			got.Best.Config, got.Best.Metric("per_area"), direct.Best.Config, direct.Best.Metric("per_area"))
	}
}

// TestSearchJobCancel covers the cancel path: DELETE on a running search
// settles it as canceled.
func TestSearchJobCancel(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := server.JobSpec{
		Kind:         "search",
		Strategy:     "random",
		SearchBudget: 100_000, // far more than the space holds: runs until canceled
		MaxPipes:     4,
		Workloads:    []string{"4W6"},
		Budget:       200_000, // slow cells so the cancel lands mid-run
		Warmup:       10_000,
	}
	st := postJob(t, ts, spec)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st = awaitJob(t, ts, st.ID)
	if st.State != "canceled" {
		t.Errorf("state after DELETE = %s, want canceled", st.State)
	}
}

// TestSearchJobValidation rejects malformed search specs at submit time.
func TestSearchJobValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, spec := range map[string]server.JobSpec{
		"unknown strategy": {Kind: "search", Strategy: "genetic", SearchBudget: 5},
		"missing budget":   {Kind: "search", Strategy: "aco"},
		"bad workload":     {Kind: "search", Strategy: "aco", SearchBudget: 5, Workloads: []string{"9W9"}},
		"bad policy":       {Kind: "search", Strategy: "aco", SearchBudget: 5, Policies: []string{"NOPE"}},
		"bad scale":        {Kind: "search", Strategy: "aco", SearchBudget: 5, QueueScales: []int{0}},
	} {
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestParetoJobRoundTrip: the multi-objective job kind end to end —
// submit, poll, fetch a result whose front is non-empty and mutually
// non-dominated, and agree with the same search run directly on the
// server's runner.
func TestParetoJobRoundTrip(t *testing.T) {
	ts, r := newTestServer(t)
	spec := server.JobSpec{
		Kind:         "pareto",
		SearchBudget: 8,
		Seed:         7,
		MaxPipes:     2,
		Workloads:    []string{"2W7"},
		Objectives:   []string{"ipc", "area"},
		Budget:       2_000,
		Warmup:       1_000,
	}
	st := postJob(t, ts, spec)
	st = awaitJob(t, ts, st.ID)
	if st.State != "done" {
		t.Fatalf("pareto job state = %s (%s)", st.State, st.Error)
	}
	if st.Kind != "pareto" {
		t.Errorf("kind = %q", st.Kind)
	}

	var got search.Result
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	if got.Strategy != "nsga2" {
		t.Errorf("default strategy = %q, want nsga2", got.Strategy)
	}
	if len(got.Front) == 0 || len(got.Hypervolume) == 0 {
		t.Fatalf("pareto result lacks a front or hypervolume trajectory: %+v", got)
	}
	if len(got.Objectives) != 2 || got.Objectives[0] != "ipc" || got.Objectives[1] != "area" {
		t.Errorf("objectives = %v", got.Objectives)
	}
	objs, err := pareto.Parse("ipc,area")
	if err != nil {
		t.Fatal(err)
	}
	if err := search.CheckFront(objs, got.Front); err != nil {
		t.Error(err)
	}

	sp := search.NewSpace(2, 0, []workload.Workload{workload.MustByName("2W7")})
	direct, err := search.NewDriver(r).Search(context.Background(), sp, search.NewNSGA2(),
		search.Options{Budget: 8, Seed: 7, Sim: sim.Options{Budget: 2_000, Warmup: 1_000}, Objectives: objs})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Front) != len(got.Front) {
		t.Errorf("front sizes differ: HTTP %d vs direct %d", len(got.Front), len(direct.Front))
	}
}

// TestParetoJobValidation rejects malformed pareto specs at submit time.
func TestParetoJobValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, spec := range map[string]server.JobSpec{
		"missing budget":      {Kind: "pareto"},
		"one objective":       {Kind: "pareto", SearchBudget: 5, Objectives: []string{"ipc"}},
		"unknown objective":   {Kind: "pareto", SearchBudget: 5, Objectives: []string{"ipc", "nope"}},
		"duplicate objective": {Kind: "pareto", SearchBudget: 5, Objectives: []string{"ipc", "ipc"}},
	} {
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}
