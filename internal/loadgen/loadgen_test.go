package loadgen_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"hdsmt/internal/engine"
	"hdsmt/internal/loadgen"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
)

// TestFleetDeterministic pins fleet generation: same seed, same config →
// identical spec list; a different seed diverges.
func TestFleetDeterministic(t *testing.T) {
	cfg := loadgen.Config{Seed: 42, Jobs: 30}
	a, b := loadgen.Fleet(cfg), loadgen.Fleet(cfg)
	if len(a) != 30 {
		t.Fatalf("fleet size = %d, want 30", len(a))
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.Kind != bv.Kind || av.Workload != bv.Workload || av.Seed != bv.Seed || av.Strategy != bv.Strategy {
			t.Fatalf("spec %d differs across identical configs: %+v vs %+v", i, av, bv)
		}
	}
	cfg.Seed = 43
	c := loadgen.Fleet(cfg)
	same := true
	for i := range a {
		if a[i].Kind != c[i].Kind || a[i].Workload != c[i].Workload || a[i].Seed != c[i].Seed {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fleets")
	}
}

// TestFleetMix checks that every generated kind is one the config's mix
// names and that every named kind appears in a large enough fleet.
func TestFleetMix(t *testing.T) {
	mix := map[string]int{"run": 1, "pareto": 1}
	seen := map[string]int{}
	for _, s := range loadgen.Fleet(loadgen.Config{Seed: 7, Jobs: 40, Mix: mix}) {
		seen[s.Kind]++
		if _, ok := mix[s.Kind]; !ok {
			t.Errorf("fleet contains kind %q not in the mix", s.Kind)
		}
	}
	for k := range mix {
		if seen[k] == 0 {
			t.Errorf("kind %q never drawn in 40 jobs", k)
		}
	}
}

// freshDaemon boots an isolated server+runner pair.
func freshDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	r, err := sim.NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(r)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		r.Close()
	})
	return ts
}

// TestRunPinnedReproducible is the acceptance criterion end to end: the
// same seeded fleet replayed against two freshly started daemons yields
// byte-identical pinned sections, with zero failed jobs and a complete
// timeline for every job.
func TestRunPinnedReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two full fleets")
	}
	cfg := loadgen.Config{
		Seed: 1, Jobs: 8, Concurrency: 4, Stream: true,
		Budget: 2_000, Warmup: 1_000, SearchBudget: 4,
	}
	var pinned [][]byte
	for range 2 {
		ts := freshDaemon(t)
		cfg.BaseURL = ts.URL
		report, err := loadgen.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if report.Pinned.Failed != 0 || report.Pinned.Rejected != 0 {
			t.Fatalf("failed=%d rejected=%d, want 0/0", report.Pinned.Failed, report.Pinned.Rejected)
		}
		if report.Pinned.CompleteTimelines != cfg.Jobs {
			t.Errorf("complete timelines = %d, want %d", report.Pinned.CompleteTimelines, cfg.Jobs)
		}
		if report.Timing.SSELag == nil || report.Timing.StreamEvents == 0 {
			t.Error("streaming run reported no SSE lag samples")
		}
		b, err := report.Pinned.JSON()
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, b)
	}
	if !bytes.Equal(pinned[0], pinned[1]) {
		t.Errorf("pinned sections differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", pinned[0], pinned[1])
	}
}
