// Package loadgen replays deterministic job fleets against a running
// hdsmtd and reports what the daemon did under load: per-kind submit→
// settle latencies, backpressure (429/503) and retry counts, SSE event
// lag, timeline completeness, and the engine's cache-hit rate.
//
// The fleet is generated from a seed: same seed, same Config → the same
// job specs in the same order, drawn from a small palette so duplicate
// simulations exercise the engine's memoization deliberately. Everything
// derived only from the fleet and the engine's deterministic counters
// lands in the report's Pinned section, which is byte-identical across
// runs against a fresh daemon; everything touched by wall clock (latency,
// throughput, retry timing, event lag) is quarantined in Timing.
package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"hdsmt/internal/client"
	"hdsmt/internal/engine"
	"hdsmt/internal/server"
	"hdsmt/internal/telemetry"
)

// Config parameterizes one load run. The zero value is not usable: set
// BaseURL; everything else has working defaults.
type Config struct {
	// BaseURL is the daemon under test, e.g. "http://localhost:8080".
	BaseURL string
	// Seed drives fleet generation; same seed = same fleet.
	Seed int64
	// Jobs is the fleet size (default 20).
	Jobs int
	// Mix weights job kinds in the fleet (default run=3, evaluate=2,
	// search=2, pareto=1). Supported kinds: run, evaluate, search, pareto.
	Mix map[string]int
	// Concurrency bounds in-flight jobs in closed-loop mode (default 4).
	Concurrency int
	// Rate, when positive, switches to open-loop mode: submissions are
	// paced at Rate jobs/second regardless of completions.
	Rate float64
	// Stream follows each job's timeline over SSE (measuring event lag)
	// instead of polling status.
	Stream bool
	// Budget/Warmup are the simulation cycle budgets for generated specs
	// (defaults 2000/1000 — small enough for CI, large enough to execute).
	Budget uint64
	Warmup uint64
	// SearchBudget bounds evaluations of generated search/pareto jobs
	// (default 6).
	SearchBudget int
	// APIKey tenants every request, exercising per-tenant quotas.
	APIKey string
}

func (c Config) jobs() int { return defInt(c.Jobs, 20) }
func (c Config) concurrency() int {
	if c.Rate > 0 {
		return c.jobs() // open loop: pacing, not slots, is the limiter
	}
	return defInt(c.Concurrency, 4)
}
func (c Config) budget() uint64    { return defUint(c.Budget, 2000) }
func (c Config) warmup() uint64    { return defUint(c.Warmup, 1000) }
func (c Config) searchBudget() int { return defInt(c.SearchBudget, 6) }
func (c Config) mix() map[string]int {
	if len(c.Mix) > 0 {
		return c.Mix
	}
	return map[string]int{"run": 3, "evaluate": 2, "search": 2, "pareto": 1}
}
func (c Config) mode() string {
	if c.Rate > 0 {
		return "open"
	}
	return "closed"
}

func defInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func defUint(v, d uint64) uint64 {
	if v > 0 {
		return v
	}
	return d
}

// Report is the BENCH_PR8 artifact.
type Report struct {
	Schema string `json:"schema"`
	// Pinned holds only values derived from the seed and the engine's
	// deterministic counters: byte-identical across runs against a fresh
	// daemon. CI diffs this section between two runs.
	Pinned Pinned `json:"pinned"`
	// Timing holds everything wall clock touches; excluded from the
	// reproducibility comparison by construction.
	Timing Timing `json:"timing"`
}

// Pinned is the byte-reproducible section of the report.
type Pinned struct {
	Seed       int64          `json:"seed"`
	Jobs       int            `json:"jobs"`
	Mode       string         `json:"mode"` // closed | open
	Mix        map[string]int `json:"mix"`
	SpecDigest string         `json:"spec_digest"` // sha256 over the fleet's spec JSON
	Kinds      map[string]int `json:"kinds"`       // jobs per kind
	States     map[string]int `json:"states"`      // settled jobs per terminal state
	Failed     int            `json:"failed"`      // jobs that settled failed (or errored client-side)
	Rejected   int            `json:"rejected"`    // submissions refused after retries

	// CompleteTimelines counts jobs whose timeline carries the full
	// accepted→started→settled spine and is closed.
	CompleteTimelines int `json:"complete_timelines"`

	// Engine counter deltas across the run. CacheHitRate is the fraction
	// of engine submissions not executed — memo hits, disk hits and
	// coalesced joins together — deterministic even though the split
	// between those three is race-dependent.
	EngineSubmitted uint64  `json:"engine_submitted"`
	EngineExecuted  uint64  `json:"engine_executed"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
}

// JSON renders the pinned section alone, for byte comparison.
func (p Pinned) JSON() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// Timing is the wall-clock-dependent section of the report.
type Timing struct {
	WallMS     float64                `json:"wall_ms"`
	JobsPerSec float64                `json:"jobs_per_sec"`
	Latency    map[string]Percentiles `json:"latency_ms"` // per kind, submit→settle
	// SSELag is the delay between an event's server-side timestamp and
	// its arrival at the streaming client; present only with Stream.
	SSELag       *Percentiles `json:"sse_lag_ms,omitempty"`
	Requests     int          `json:"http_requests"`
	Status429    int          `json:"http_429"`
	Status503    int          `json:"http_503"`
	Retries      int          `json:"retries"` // backpressure responses that triggered a retry
	StreamEvents int          `json:"stream_events,omitempty"`
}

// Percentiles summarizes a latency sample in milliseconds.
type Percentiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

func percentiles(samples []float64) Percentiles {
	p := Percentiles{N: len(samples)}
	if len(samples) == 0 {
		return p
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	p.P50, p.P95, p.P99 = at(0.50), at(0.95), at(0.99)
	return p
}

// Fleet generates the deterministic job list for cfg: a seeded weighted
// draw over the kind mix, each kind instantiated from a small palette so
// repeats collide in the engine's memoization store on purpose.
func Fleet(cfg Config) []server.JobSpec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mix := cfg.mix()
	kinds := make([]string, 0, len(mix))
	for k := range mix {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds) // map order must not leak into the draw
	total := 0
	for _, k := range kinds {
		total += mix[k]
	}

	pick := func() string {
		n := rng.Intn(total)
		for _, k := range kinds {
			if n -= mix[k]; n < 0 {
				return k
			}
		}
		return kinds[len(kinds)-1]
	}

	// Palettes are intentionally narrow: with a handful of distinct specs
	// per kind, a 20-job fleet re-submits most simulations several times.
	var (
		runWorkloads  = []string{"2W1", "2W7", "4W6"}
		evalWorkloads = []string{"2W4", "2W8"}
		seeds         = []int64{1, 2, 3}
		strategies    = []string{"random", "aco"}
	)

	specs := make([]server.JobSpec, cfg.jobs())
	for i := range specs {
		spec := server.JobSpec{
			Kind:   pick(),
			Budget: cfg.budget(),
			Warmup: cfg.warmup(),
		}
		switch spec.Kind {
		case "run":
			spec.Config = "M8"
			spec.Workload = runWorkloads[rng.Intn(len(runWorkloads))]
		case "evaluate":
			spec.Config = "M8"
			spec.Workload = evalWorkloads[rng.Intn(len(evalWorkloads))]
			spec.OracleBudget = cfg.budget() / 2
			spec.MaxOracle = 4
		case "search":
			spec.Strategy = strategies[rng.Intn(len(strategies))]
			spec.SearchBudget = cfg.searchBudget()
			spec.Seed = seeds[rng.Intn(len(seeds))]
			spec.Workloads = []string{"2W7"}
		case "pareto":
			spec.Kind = "pareto"
			spec.SearchBudget = cfg.searchBudget()
			spec.Seed = seeds[rng.Intn(len(seeds))]
			spec.Workloads = []string{"2W7"}
		default:
			// Unknown kind in a custom mix: submit as-is and let the
			// server's validation reject it (it will show up as rejected).
		}
		specs[i] = spec
	}
	return specs
}

// specDigest fingerprints the fleet: the pinned sections of two runs can
// only match if they replayed the identical job list.
func specDigest(specs []server.JobSpec) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, s := range specs {
		_ = enc.Encode(s)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// countingTransport counts HTTP exchanges and backpressure responses
// under the client's retry loop.
type countingTransport struct {
	base http.RoundTripper

	mu        sync.Mutex
	requests  int
	status429 int
	status503 int
}

func (t *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(r)
	t.mu.Lock()
	t.requests++
	if err == nil {
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			t.status429++
		case http.StatusServiceUnavailable:
			t.status503++
		}
	}
	t.mu.Unlock()
	return resp, err
}

// outcome is one job's fate as the generator saw it.
type outcome struct {
	kind       string
	state      string // terminal state, or "rejected" if submission failed
	latencyMS  float64
	timelineOK bool
	lagMS      []float64
	events     int
}

// engineStats reads GET /stats.
func engineStats(ctx context.Context, hc *http.Client, base string) (engine.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return engine.Stats{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return engine.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.Stats{}, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var st engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return engine.Stats{}, err
	}
	return st, nil
}

// Run replays the fleet and assembles the report. It returns an error
// only when the daemon is unreachable; individual job failures are data,
// not errors — they land in the report (and Failed/Rejected counts).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	specs := Fleet(cfg)
	ct := &countingTransport{base: http.DefaultTransport}
	hc := &http.Client{Transport: ct, Timeout: 5 * time.Minute}
	opts := []client.Option{client.WithHTTPClient(hc)}
	if cfg.APIKey != "" {
		opts = append(opts, client.WithAPIKey(cfg.APIKey))
	}
	cl := client.New(cfg.BaseURL, opts...)

	before, err := engineStats(ctx, hc, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: daemon unreachable: %w", err)
	}

	outcomes := make([]outcome, len(specs))
	start := time.Now()

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.concurrency())
	var tick *time.Ticker
	if cfg.Rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
		defer tick.Stop()
	}
	for i := range specs {
		if tick != nil {
			select {
			case <-tick.C:
			case <-ctx.Done():
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[i] = runOne(ctx, cl, cfg, specs[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := engineStats(ctx, hc, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: daemon unreachable: %w", err)
	}

	return assemble(cfg, specs, outcomes, before, after, wall, ct), nil
}

// runOne drives a single job from submission to settlement. Each job
// gets its own trace identity, so a fleet run produces one stitched
// span tree per job at GET /jobs/{id}/trace — identities are
// correlation handles only and never touch the pinned report.
func runOne(ctx context.Context, cl *client.Client, cfg Config, spec server.JobSpec) outcome {
	ctx = telemetry.WithTraceContext(ctx, telemetry.NewTraceContext())
	o := outcome{kind: spec.Kind}
	t0 := time.Now()
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		o.state = "rejected"
		return o
	}
	// Event timestamps are relative to server-side acceptance, which
	// happened just before Submit returned; accepted anchors lag
	// measurement to the closest client-side instant.
	accepted := time.Now()

	if cfg.Stream {
		_ = cl.Stream(ctx, st.ID, 0, func(ev server.Event) error {
			lag := time.Since(accepted).Seconds()*1e3 - ev.TMS
			if lag < 0 {
				lag = 0
			}
			o.lagMS = append(o.lagMS, lag)
			o.events++
			return nil
		})
		st, err = cl.Status(ctx, st.ID)
	} else {
		st, err = cl.Wait(ctx, st.ID)
	}
	o.latencyMS = time.Since(t0).Seconds() * 1e3
	if err != nil {
		o.state = "failed"
		return o
	}
	o.state = st.State

	if page, err := cl.Events(ctx, st.ID); err == nil {
		o.timelineOK = page.Closed && hasSpine(page.Events)
		if o.events == 0 {
			o.events = len(page.Events)
		}
	}
	return o
}

// hasSpine checks the accepted→started→settled backbone of a timeline.
func hasSpine(events []server.Event) bool {
	var accepted, started, settled bool
	for _, ev := range events {
		switch ev.Type {
		case server.EventAccepted:
			accepted = true
		case server.EventStarted:
			started = true
		case server.EventSettled:
			settled = true
		}
	}
	return accepted && started && settled
}

func assemble(cfg Config, specs []server.JobSpec, outcomes []outcome, before, after engine.Stats, wall time.Duration, ct *countingTransport) *Report {
	p := Pinned{
		Seed:       cfg.Seed,
		Jobs:       cfg.jobs(),
		Mode:       cfg.mode(),
		Mix:        cfg.mix(),
		SpecDigest: specDigest(specs),
		Kinds:      map[string]int{},
		States:     map[string]int{},
	}
	lat := map[string][]float64{}
	var lags []float64
	events := 0
	for _, o := range outcomes {
		p.Kinds[o.kind]++
		switch o.state {
		case "rejected":
			p.Rejected++
			continue
		case "failed":
			p.Failed++
		}
		p.States[o.state]++
		if o.timelineOK {
			p.CompleteTimelines++
		}
		lat[o.kind] = append(lat[o.kind], o.latencyMS)
		lags = append(lags, o.lagMS...)
		events += o.events
	}
	p.EngineSubmitted = after.Submitted - before.Submitted
	p.EngineExecuted = after.Executed - before.Executed
	if p.EngineSubmitted > 0 {
		p.CacheHitRate = 1 - float64(p.EngineExecuted)/float64(p.EngineSubmitted)
	}

	t := Timing{
		WallMS:    wall.Seconds() * 1e3,
		Latency:   map[string]Percentiles{},
		Requests:  ct.requests,
		Status429: ct.status429,
		Status503: ct.status503,
		Retries:   ct.status429 + ct.status503,
	}
	if wall > 0 {
		t.JobsPerSec = float64(len(outcomes)) / wall.Seconds()
	}
	for kind, samples := range lat {
		t.Latency[kind] = percentiles(samples)
	}
	if cfg.Stream {
		pl := percentiles(lags)
		t.SSELag = &pl
		t.StreamEvents = events
	}
	return &Report{Schema: "hdsmt-bench-pr8/v1", Pinned: p, Timing: t}
}
