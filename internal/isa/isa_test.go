package isa

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Nop:    "nop",
		IntALU: "intalu",
		IntMul: "intmul",
		IntDiv: "intdiv",
		Branch: "branch",
		Jump:   "jump",
		Call:   "call",
		Return: "return",
		Load:   "load",
		Store:  "store",
		FPAdd:  "fpadd",
		FPMul:  "fpmul",
		FPDiv:  "fpdiv",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
	if Class(numClasses).Valid() {
		t.Error("numClasses should not be valid")
	}
}

func TestControlClassification(t *testing.T) {
	control := []Class{Branch, Jump, Call, Return}
	for _, c := range control {
		if !c.IsControl() {
			t.Errorf("%v should be control", c)
		}
		if !c.IsInt() {
			t.Errorf("%v should use the integer cluster", c)
		}
	}
	if !Branch.IsConditional() {
		t.Error("Branch must be conditional")
	}
	for _, c := range []Class{Jump, Call, Return, Load, IntALU} {
		if c.IsConditional() {
			t.Errorf("%v must not be conditional", c)
		}
	}
	if !Return.IsIndirect() {
		t.Error("Return must be indirect")
	}
	if Jump.IsIndirect() || Branch.IsIndirect() {
		t.Error("Jump/Branch must not be indirect")
	}
}

func TestMemClassification(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("Load and Store are memory classes")
	}
	if !Load.IsLoad() || Load.IsStore() {
		t.Error("Load classification wrong")
	}
	if !Store.IsStore() || Store.IsLoad() {
		t.Error("Store classification wrong")
	}
	if IntALU.IsMem() || Branch.IsMem() || FPAdd.IsMem() {
		t.Error("non-memory class reported as memory")
	}
}

func TestFPIntPartition(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		if c.IsFP() && c.IsInt() {
			t.Errorf("%v cannot be both FP and Int", c)
		}
		if c != Nop && !c.IsMem() && !c.IsFP() && !c.IsInt() {
			t.Errorf("%v belongs to no execution class", c)
		}
	}
}

func TestQueueFor(t *testing.T) {
	cases := map[Class]Queue{
		IntALU: IQ, IntMul: IQ, IntDiv: IQ,
		Branch: IQ, Jump: IQ, Call: IQ, Return: IQ,
		Nop:  IQ,
		Load: LQ, Store: LQ,
		FPAdd: FQ, FPMul: FQ, FPDiv: FQ,
	}
	for c, want := range cases {
		if got := QueueFor(c); got != want {
			t.Errorf("QueueFor(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestQueueString(t *testing.T) {
	if IQ.String() != "IQ" || FQ.String() != "FQ" || LQ.String() != "LQ" {
		t.Error("queue names must match the paper's IQ/FQ/LQ")
	}
	if Queue(9).String() != "queue(9)" {
		t.Error("unknown queue string")
	}
}

func TestUnitFor(t *testing.T) {
	cases := map[Class]Unit{
		Nop:    UnitNone,
		IntALU: UnitInt, IntMul: UnitInt, IntDiv: UnitInt,
		Branch: UnitInt, Jump: UnitInt, Call: UnitInt, Return: UnitInt,
		Load: UnitLdSt, Store: UnitLdSt,
		FPAdd: UnitFP, FPMul: UnitFP, FPDiv: UnitFP,
	}
	for c, want := range cases {
		if got := UnitFor(c); got != want {
			t.Errorf("UnitFor(%v) = %v, want %v", c, got, want)
		}
	}
	if UnitInt.String() != "int" || UnitFP.String() != "fp" || UnitLdSt.String() != "ldst" || UnitNone.String() != "none" {
		t.Error("unit names wrong")
	}
	if Unit(9).String() != "unit(9)" {
		t.Error("unknown unit string")
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		if Latency(c) < 1 {
			t.Errorf("Latency(%v) = %d, must be >= 1", c, Latency(c))
		}
	}
	if Latency(Class(250)) != 1 {
		t.Error("unknown class latency should default to 1")
	}
	if Latency(IntMul) <= Latency(IntALU) {
		t.Error("multiply must be slower than ALU op")
	}
	if Latency(IntDiv) <= Latency(IntMul) {
		t.Error("divide must be slower than multiply")
	}
	if Latency(FPDiv) <= Latency(FPMul) {
		t.Error("fp divide must be slower than fp multiply")
	}
}

func TestPipelined(t *testing.T) {
	if Pipelined(IntDiv) || Pipelined(FPDiv) {
		t.Error("divides must be unpipelined")
	}
	for _, c := range []Class{IntALU, IntMul, Load, Store, FPAdd, FPMul, Branch} {
		if !Pipelined(c) {
			t.Errorf("%v must be pipelined", c)
		}
	}
}

func TestRegConstructors(t *testing.T) {
	if IntReg(0) != Reg(0) || IntReg(31) != Reg(31) {
		t.Error("IntReg mapping wrong")
	}
	if FPReg(0) != Reg(32) || FPReg(31) != Reg(63) {
		t.Error("FPReg mapping wrong")
	}
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { IntReg(-1) })
	mustPanic(func() { IntReg(32) })
	mustPanic(func() { FPReg(-1) })
	mustPanic(func() { FPReg(32) })
}

func TestRegClassification(t *testing.T) {
	for n := 0; n < NumIntRegs; n++ {
		r := IntReg(n)
		if !r.Valid() || !r.IsInt() || r.IsFP() {
			t.Errorf("r%d misclassified", n)
		}
	}
	for n := 0; n < NumFPRegs; n++ {
		r := FPReg(n)
		if !r.Valid() || !r.IsFP() || r.IsInt() {
			t.Errorf("f%d misclassified", n)
		}
	}
	if RegNone.Valid() {
		t.Error("RegNone must be invalid")
	}
	if !RegZero.IsZero() || !RegZero.IsInt() {
		t.Error("RegZero misclassified")
	}
}

func TestRegString(t *testing.T) {
	if IntReg(5).String() != "r5" {
		t.Errorf("got %q", IntReg(5).String())
	}
	if FPReg(5).String() != "f5" {
		t.Errorf("got %q", FPReg(5).String())
	}
	if RegNone.String() != "-" {
		t.Errorf("got %q", RegNone.String())
	}
	if Reg(100).String() != "reg(100)" {
		t.Errorf("got %q", Reg(100).String())
	}
}

func TestInstructionNextPC(t *testing.T) {
	br := &Instruction{PC: 0x1000, Class: Branch, Taken: true, Target: 0x2000}
	if br.NextPC() != 0x2000 {
		t.Error("taken branch must go to target")
	}
	br.Taken = false
	if br.NextPC() != 0x1004 {
		t.Error("not-taken branch must fall through")
	}
	alu := &Instruction{PC: 0x1000, Class: IntALU, Taken: true, Target: 0x2000}
	if alu.NextPC() != 0x1004 {
		t.Error("non-control instructions always fall through")
	}
	if br.FallThrough() != 0x1004 {
		t.Error("fall-through must be PC+4")
	}
}

func TestInstructionHasDest(t *testing.T) {
	in := &Instruction{Dest: IntReg(3)}
	if !in.HasDest() {
		t.Error("r3 destination must rename")
	}
	in.Dest = RegZero
	if in.HasDest() {
		t.Error("zero-register destination must not rename")
	}
	in.Dest = RegNone
	if in.HasDest() {
		t.Error("missing destination must not rename")
	}
}

func TestInstructionSources(t *testing.T) {
	in := &Instruction{Src1: IntReg(1), Src2: IntReg(2)}
	got := in.Sources(nil)
	if len(got) != 2 || got[0] != IntReg(1) || got[1] != IntReg(2) {
		t.Errorf("Sources = %v", got)
	}
	in.Src1 = RegZero
	in.Src2 = RegNone
	if got := in.Sources(nil); len(got) != 0 {
		t.Errorf("zero/none sources must be dropped, got %v", got)
	}
	// Appending to an existing slice preserves prefix.
	pre := []Reg{IntReg(9)}
	in.Src1 = IntReg(4)
	got = in.Sources(pre)
	if len(got) != 2 || got[0] != IntReg(9) || got[1] != IntReg(4) {
		t.Errorf("append semantics broken: %v", got)
	}
}

func TestInstructionString(t *testing.T) {
	br := &Instruction{PC: 0x10, Class: Branch, Taken: true, Target: 0x40}
	if s := br.String(); s == "" {
		t.Error("empty branch string")
	}
	ld := &Instruction{PC: 0x10, Class: Load, Dest: IntReg(1), EffAddr: 0x8000}
	if s := ld.String(); s == "" {
		t.Error("empty load string")
	}
	alu := &Instruction{PC: 0x10, Class: IntALU, Dest: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)}
	if s := alu.String(); s == "" {
		t.Error("empty alu string")
	}
}

// Property: QueueFor and UnitFor agree on the memory/FP/integer partition for
// every valid class.
func TestQueueUnitAgreement(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(raw % uint8(numClasses))
		q, u := QueueFor(c), UnitFor(c)
		switch q {
		case LQ:
			return u == UnitLdSt
		case FQ:
			return u == UnitFP
		case IQ:
			return u == UnitInt || u == UnitNone
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NextPC is always Target or FallThrough, and Sources never emits
// invalid registers.
func TestInstructionProperties(t *testing.T) {
	reg := func(raw uint8) Reg {
		// Map raw bytes onto the space of legal operand encodings:
		// a valid architectural register or RegNone.
		if raw%5 == 0 {
			return RegNone
		}
		return Reg(raw % NumArchRegs)
	}
	f := func(pc uint64, rawClass uint8, taken bool, target uint64, s1, s2 uint8) bool {
		in := &Instruction{
			PC:     pc,
			Class:  Class(rawClass % uint8(numClasses)),
			Taken:  taken,
			Target: target,
			Src1:   reg(s1),
			Src2:   reg(s2),
		}
		next := in.NextPC()
		if next != in.Target && next != in.FallThrough() {
			return false
		}
		for _, r := range in.Sources(nil) {
			if !r.Valid() || r.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
