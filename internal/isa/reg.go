package isa

import "fmt"

// Reg names an architectural register. Integer registers occupy 0..31 and
// floating-point registers 32..63, mirroring a RISC ISA such as Alpha.
// RegNone marks an absent operand.
type Reg uint8

// Architectural register file geometry.
const (
	NumIntRegs  = 32
	NumFPRegs   = 32
	NumArchRegs = NumIntRegs + NumFPRegs

	// RegZero is the hard-wired integer zero register (Alpha r31 idiom);
	// it is never renamed and never creates a dependence.
	RegZero Reg = 31

	// RegNone marks a missing source or destination operand.
	RegNone Reg = 0xFF
)

// IntReg returns the architectural name of integer register n (0..31).
func IntReg(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", n))
	}
	return Reg(n)
}

// FPReg returns the architectural name of floating-point register n (0..31).
func FPReg(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", n))
	}
	return Reg(NumIntRegs + n)
}

// Valid reports whether r names an actual architectural register.
func (r Reg) Valid() bool { return r < NumArchRegs }

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r < NumIntRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumArchRegs }

// IsZero reports whether r is the hard-wired zero register.
func (r Reg) IsZero() bool { return r == RegZero }

// String formats the register in Alpha-like assembly syntax.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", uint8(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", uint8(r)-NumIntRegs)
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Instruction is one dynamic trace record: everything the timing model needs
// to simulate one instruction, with semantics already resolved by the trace
// generator (actual branch direction and target, actual effective address).
type Instruction struct {
	PC    uint64 // address of this instruction
	Seq   uint64 // per-thread dynamic sequence number, from 0
	Class Class

	Dest Reg // destination register, RegNone if none
	Src1 Reg // first source, RegNone if none
	Src2 Reg // second source, RegNone if none

	// Control flow (valid when Class.IsControl()).
	Taken  bool   // resolved direction (always true for Jump/Call/Return)
	Target uint64 // resolved target address

	// Memory (valid when Class.IsMem()).
	EffAddr uint64 // effective virtual address
	MemSize uint8  // access size in bytes

	// WrongPath marks instructions fetched past a mispredicted branch;
	// they occupy resources until squashed but never commit.
	WrongPath bool
}

// FallThrough returns the address of the next sequential instruction.
// All instructions are 4 bytes, as on Alpha.
func (in *Instruction) FallThrough() uint64 { return in.PC + InstrBytes }

// InstrBytes is the fixed encoding size of one instruction.
const InstrBytes = 4

// NextPC returns the address control flow actually proceeds to after this
// instruction (target for taken control flow, fall-through otherwise).
func (in *Instruction) NextPC() uint64 {
	if in.Class.IsControl() && in.Taken {
		return in.Target
	}
	return in.FallThrough()
}

// HasDest reports whether the instruction writes a register that must be
// renamed (the zero register is excluded: writes to it are discarded).
func (in *Instruction) HasDest() bool {
	return in.Dest != RegNone && !in.Dest.IsZero()
}

// Sources appends the register sources that create true dependences
// (excluding RegNone and the zero register) to dst and returns it.
func (in *Instruction) Sources(dst []Reg) []Reg {
	if in.Src1 != RegNone && !in.Src1.IsZero() {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != RegNone && !in.Src2.IsZero() {
		dst = append(dst, in.Src2)
	}
	return dst
}

// String renders a compact single-line disassembly-like form, useful in
// debug logs and test failure messages.
func (in *Instruction) String() string {
	switch {
	case in.Class.IsControl():
		dir := "not-taken"
		if in.Taken {
			dir = "taken"
		}
		return fmt.Sprintf("%#x: %s -> %#x (%s)", in.PC, in.Class, in.Target, dir)
	case in.Class.IsMem():
		return fmt.Sprintf("%#x: %s %s, [%#x]", in.PC, in.Class, in.Dest, in.EffAddr)
	default:
		return fmt.Sprintf("%#x: %s %s, %s, %s", in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}
