// Package isa defines the minimal instruction-set abstraction used by the
// hdSMT trace-driven simulator.
//
// The simulator is trace driven: it never interprets instruction semantics.
// What it needs from an instruction is its resource class (which functional
// unit executes it and which issue queue holds it), its register names (to
// build the dependence graph through renaming), its control-flow behaviour
// (for branch prediction and wrong-path fetch) and its memory behaviour
// (effective address, for the cache hierarchy). This mirrors the information
// an SMTSIM-style Alpha trace record carries.
package isa

import "fmt"

// Class identifies the resource class of an instruction. The class decides
// which issue queue buffers the instruction (IQ for integer, FQ for floating
// point, LQ for memory) and which functional-unit pool executes it.
type Class uint8

// Instruction classes. SPECint2000 workloads are integer dominated; the FP
// classes exist because the pipeline models reserve FP issue queues and
// functional units (paper Fig. 2a) and a small FP fraction keeps them warm.
const (
	Nop Class = iota
	IntALU
	IntMul
	IntDiv
	Branch // conditional branch
	Jump   // unconditional direct jump
	Call   // direct call (pushes return address)
	Return // indirect return (pops return address)
	Load
	Store
	FPAdd
	FPMul
	FPDiv
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	Nop:    "nop",
	IntALU: "intalu",
	IntMul: "intmul",
	IntDiv: "intdiv",
	Branch: "branch",
	Jump:   "jump",
	Call:   "call",
	Return: "return",
	Load:   "load",
	Store:  "store",
	FPAdd:  "fpadd",
	FPMul:  "fpmul",
	FPDiv:  "fpdiv",
}

// String returns the lower-case mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Valid reports whether c is one of the defined instruction classes.
func (c Class) Valid() bool { return c < numClasses }

// IsControl reports whether the class changes control flow.
func (c Class) IsControl() bool {
	switch c {
	case Branch, Jump, Call, Return:
		return true
	}
	return false
}

// IsConditional reports whether the class is a conditional branch, i.e.
// whether its direction needs predicting.
func (c Class) IsConditional() bool { return c == Branch }

// IsIndirect reports whether the instruction's target comes from a register
// (or the return-address stack) rather than being encoded in the instruction.
func (c Class) IsIndirect() bool { return c == Return }

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsLoad reports whether the class reads data memory.
func (c Class) IsLoad() bool { return c == Load }

// IsStore reports whether the class writes data memory.
func (c Class) IsStore() bool { return c == Store }

// IsFP reports whether the class executes on the floating-point cluster.
func (c Class) IsFP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// IsInt reports whether the class executes on an integer ALU/multiplier.
func (c Class) IsInt() bool {
	switch c {
	case IntALU, IntMul, IntDiv, Branch, Jump, Call, Return:
		return true
	}
	return false
}

// Queue identifies the issue queue an instruction class dispatches into.
type Queue uint8

// Issue queues, following the paper's IQ/FQ/LQ split (Fig. 2a).
const (
	IQ Queue = iota // integer instructions, including control flow
	FQ              // floating-point instructions
	LQ              // loads and stores
	NumQueues
)

// String returns the paper's name for the queue.
func (q Queue) String() string {
	switch q {
	case IQ:
		return "IQ"
	case FQ:
		return "FQ"
	case LQ:
		return "LQ"
	}
	return fmt.Sprintf("queue(%d)", uint8(q))
}

// QueueFor returns the issue queue that buffers instructions of class c.
func QueueFor(c Class) Queue {
	switch {
	case c.IsMem():
		return LQ
	case c.IsFP():
		return FQ
	default:
		return IQ
	}
}

// Unit identifies a functional-unit pool.
type Unit uint8

// Functional-unit pools (paper Fig. 2a: Integer, FP, LD/ST units).
const (
	UnitInt Unit = iota
	UnitFP
	UnitLdSt
	UnitNone // nops consume no unit
	NumUnits = int(UnitNone)
)

// String returns a short name for the unit pool.
func (u Unit) String() string {
	switch u {
	case UnitInt:
		return "int"
	case UnitFP:
		return "fp"
	case UnitLdSt:
		return "ldst"
	case UnitNone:
		return "none"
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// UnitFor returns the functional-unit pool that executes class c.
func UnitFor(c Class) Unit {
	switch {
	case c == Nop:
		return UnitNone
	case c.IsMem():
		return UnitLdSt
	case c.IsFP():
		return UnitFP
	default:
		return UnitInt
	}
}

// Latency returns the execution latency, in cycles, of class c on its
// functional unit (memory latency for loads is added by the cache model on
// top of the address-generation cycle returned here).
func Latency(c Class) int {
	switch c {
	case Nop:
		return 1
	case IntALU, Branch, Jump, Call, Return:
		return 1
	case IntMul:
		return 3
	case IntDiv:
		return 20
	case Load, Store:
		return 1 // address generation; cache adds the rest
	case FPAdd:
		return 4
	case FPMul:
		return 4
	case FPDiv:
		return 16
	}
	return 1
}

// Pipelined reports whether the unit can accept a new instruction of class c
// every cycle while one is in flight (divides are unpipelined).
func Pipelined(c Class) bool { return c != IntDiv && c != FPDiv }
