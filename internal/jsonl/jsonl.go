// Package jsonl is the shared crash-safe JSONL journal substrate behind
// the engine's checkpoint journal and the server's job journal: an
// append-only file of one JSON document per line, opened with a replay
// that tolerates — and heals — the partial final line a SIGKILL mid-write
// leaves behind.
package jsonl

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// OpenHealed opens (creating if needed) the JSONL file at path, replays
// every line through decode, and positions the file for appending.
//
// decode is called once per non-blank line; returning an error marks the
// line torn or corrupt (it is counted in torn, and skipped). After the
// scan the file's tail is healed: bytes after the last well-formed line
// are truncated away, and a final valid line that lost its newline in a
// crash gets one — so the next append always starts on a clean line
// boundary instead of concatenating onto torn bytes and corrupting a
// fresh entry.
func OpenHealed(path string, decode func(line []byte) error) (f *os.File, torn int, err error) {
	f, err = os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("jsonl: opening %s: %w", path, err)
	}
	var (
		offset      int64 // bytes consumed so far
		valid       int64 // offset just past the last well-formed line
		needNewline bool  // last valid line parsed but lost its '\n'
	)
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, rerr := r.ReadBytes('\n')
		offset += int64(len(line))
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			if derr := decode(trimmed); derr != nil {
				torn++
			} else {
				valid, needNewline = offset, !complete
			}
		} else if complete {
			valid, needNewline = offset, false // blank line: harmless, keep position
		}
		if rerr != nil {
			if rerr != io.EOF {
				f.Close()
				return nil, 0, fmt.Errorf("jsonl: reading %s: %w", path, rerr)
			}
			break
		}
	}
	if valid < offset {
		if terr := f.Truncate(valid); terr != nil {
			f.Close()
			return nil, 0, fmt.Errorf("jsonl: healing %s: %w", path, terr)
		}
	}
	if _, serr := f.Seek(valid, 0); serr != nil {
		f.Close()
		return nil, 0, fmt.Errorf("jsonl: seeking %s: %w", path, serr)
	}
	if needNewline {
		if _, werr := f.Write([]byte{'\n'}); werr != nil {
			f.Close()
			return nil, 0, fmt.Errorf("jsonl: healing %s: %w", path, werr)
		}
	}
	return f, torn, nil
}
