package telemetry

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeTrace parses a written trace back into its generic JSON shape.
func decodeTrace(t *testing.T, tr *Tracer) map[string]any {
	t.Helper()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	return doc
}

func TestTracerSpansAndInstants(t *testing.T) {
	tr := NewTracer()
	tr.SetThreadName(1, "worker-1")
	sp := tr.Begin(1, "simulate", "engine")
	time.Sleep(time.Millisecond)
	sp.EndWith(map[string]string{"config": "M8"})
	tr.Instant(0, "memo-hit", "engine", nil)
	tr.Complete(1, "queue-wait", "engine", time.Now().Add(-time.Millisecond), time.Now(), nil)

	doc := decodeTrace(t, tr)
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) != 4 {
		t.Fatalf("traceEvents = %v, want 4 events", doc["traceEvents"])
	}
	byName := map[string]map[string]any{}
	for _, e := range events {
		ev := e.(map[string]any)
		byName[ev["name"].(string)] = ev
	}
	sim := byName["simulate"]
	if sim["ph"] != "X" || sim["dur"].(float64) <= 0 {
		t.Errorf("simulate span = %v, want complete event with positive dur", sim)
	}
	if sim["args"].(map[string]any)["config"] != "M8" {
		t.Errorf("simulate args = %v", sim["args"])
	}
	if byName["memo-hit"]["ph"] != "i" {
		t.Errorf("memo-hit = %v, want instant", byName["memo-hit"])
	}
	if byName["thread_name"]["ph"] != "M" {
		t.Errorf("thread_name = %v, want metadata", byName["thread_name"])
	}
	if byName["queue-wait"]["dur"].(float64) <= 0 {
		t.Errorf("queue-wait = %v, want positive dur", byName["queue-wait"])
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Begin(0, "x", "y")
	sp.End()
	sp.EndWith(map[string]string{"a": "b"})
	tr.Instant(0, "x", "y", nil)
	tr.Complete(0, "x", "y", time.Now(), time.Now(), nil)
	tr.SetThreadName(0, "x")
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
	if err := tr.WriteJSON(&strings.Builder{}); err == nil {
		t.Error("nil tracer WriteJSON must error")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Begin(w, "span", "test").End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("recorded %d events, want 800", tr.Len())
	}
	doc := decodeTrace(t, tr)
	if len(doc["traceEvents"].([]any)) != 800 {
		t.Error("written trace dropped events")
	}
}

func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	tr.Begin(0, "a", "b").End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
}
