package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer records spans and instants for one run and exports them as
// Chrome trace_event JSON — open the file in about://tracing (Chrome) or
// https://ui.perfetto.dev to see the engine's job pipeline laid out per
// worker over time.
//
// A nil *Tracer is the disabled state: every method no-ops after a single
// pointer comparison and allocates nothing, so instrumented code guards
// argument assembly with Enabled() and otherwise calls unconditionally.
//
// The event buffer is a bounded ring: a long-lived daemon tracing every
// job would otherwise grow it forever. When full, the oldest events are
// overwritten and counted (Dropped, exported as
// hdsmt_trace_events_dropped_total via Register), so the export keeps the
// most recent window of activity instead of OOMing the process.
type Tracer struct {
	start time.Time
	cap   int

	mu      sync.Mutex
	events  []traceEvent // ring storage, len == cap once full
	head    int          // index of the oldest retained event
	count   int
	dropped uint64
}

// DefaultTraceCap is the event-ring bound of NewTracer: roughly a few
// hundred thousand jobs' worth of spans, tens of MB at most.
const DefaultTraceCap = 1 << 18

// traceEvent is one Chrome trace_event. Complete events ("X") carry a
// duration; instants ("i") mark a point; metadata ("M") names threads.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds since trace start
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant scope
	Args  map[string]string `json:"args,omitempty"`
}

// NewTracer builds an enabled tracer; timestamps are relative to now.
// The event ring is bounded at DefaultTraceCap; use NewTracerCap to
// choose the bound.
func NewTracer() *Tracer {
	return NewTracerCap(DefaultTraceCap)
}

// NewTracerCap builds an enabled tracer retaining at most capacity
// events (<= 0 means DefaultTraceCap).
func NewTracerCap(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), cap: capacity}
}

// Dropped returns how many events the bounded ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Register exposes the tracer's drop count in reg as the counter
// hdsmt_trace_events_dropped_total, so a daemon tracing under memory
// pressure is observable instead of silently lossy.
func (t *Tracer) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.CounterFunc(MetricTraceDropped,
		"trace events evicted from the bounded ring (export keeps the newest window)",
		func() float64 { return float64(t.Dropped()) })
}

// Enabled reports whether spans are being recorded. Callers use it to
// skip assembling argument maps for a disabled tracer.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

func (t *Tracer) since(at time.Time) int64 { return at.Sub(t.start).Microseconds() }

func (t *Tracer) append(ev traceEvent) {
	ev.PID = 1
	t.mu.Lock()
	if t.cap <= 0 {
		t.cap = DefaultTraceCap // zero-value Tracer from old constructors
	}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		t.count++
	} else {
		// Ring full: overwrite the oldest event and count the loss.
		t.events[t.head] = ev
		t.head = (t.head + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Span is one in-flight complete event. The zero Span (from a nil tracer)
// is inert.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Begin opens a span on track tid. End (or EndWith) closes it.
func (t *Tracer) Begin(tid int, name, cat string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End records the span without arguments.
func (s Span) End() { s.EndWith(nil) }

// EndWith records the span with arguments.
func (s Span) EndWith(args map[string]string) {
	if s.t == nil {
		return
	}
	end := time.Now()
	s.t.append(traceEvent{
		Name: s.name, Cat: s.cat, Phase: "X",
		TS: s.t.since(s.start), Dur: end.Sub(s.start).Microseconds(),
		TID: s.tid, Args: args,
	})
}

// Complete records a span whose start and end were measured by the caller
// (e.g. a queue-wait reconstructed from a task's enqueue time).
func (t *Tracer) Complete(tid int, name, cat string, start, end time.Time, args map[string]string) {
	if t == nil {
		return
	}
	t.append(traceEvent{
		Name: name, Cat: cat, Phase: "X",
		TS: t.since(start), Dur: end.Sub(start).Microseconds(),
		TID: tid, Args: args,
	})
}

// Instant records a point event on track tid.
func (t *Tracer) Instant(tid int, name, cat string, args map[string]string) {
	if t == nil {
		return
	}
	t.append(traceEvent{
		Name: name, Cat: cat, Phase: "i", Scope: "t",
		TS: t.since(time.Now()), TID: tid, Args: args,
	})
}

// SetThreadName labels track tid in the trace viewer ("submit",
// "worker-3", ...).
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.append(traceEvent{
		Name: "thread_name", Phase: "M", TID: tid,
		Args: map[string]string{"name": name},
	})
}

// WriteJSON writes the trace in Chrome trace_event JSON object form.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer has no trace to write")
	}
	t.mu.Lock()
	events := make([]traceEvent, 0, t.count)
	for i := 0; i < t.count; i++ {
		events = append(events, t.events[(t.head+i)%len(t.events)])
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events})
}

// WriteFile writes the trace to path (0644).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	return nil
}
