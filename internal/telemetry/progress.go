package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Reporter prints a periodic one-line progress summary to a writer,
// assembled entirely from a Registry's counters: evaluations done (search
// evaluations when a search is instrumented, completed engine jobs
// otherwise), the engine's cache-hit rate, and — once SetTotal has
// announced a target — an ETA extrapolated from the completion rate.
// Wall-clock estimates stay on stderr; they never enter artifacts.
type Reporter struct {
	w     io.Writer
	reg   *Registry
	every time.Duration
	start time.Time
	total atomic.Int64

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// StartReporter begins printing a progress line every interval (minimum
// one second). Stop prints one final line and halts it. A nil registry
// yields a Reporter that does nothing.
func StartReporter(w io.Writer, reg *Registry, every time.Duration) *Reporter {
	if every < time.Second {
		every = time.Second
	}
	r := &Reporter{
		w: w, reg: reg, every: every, start: time.Now(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	if reg == nil {
		close(r.done)
		return r
	}
	go r.loop()
	return r
}

// SetTotal announces the run's evaluation target, enabling the ETA term.
func (r *Reporter) SetTotal(n int) {
	if r == nil {
		return
	}
	r.total.Store(int64(n))
}

// Stop halts the reporter after printing one final line (so runs shorter
// than the interval still report once). Safe to call more than once.
func (r *Reporter) Stop() {
	if r == nil || r.reg == nil {
		return
	}
	r.once.Do(func() {
		close(r.stop)
		<-r.done
		fmt.Fprintln(r.w, r.line())
	})
}

func (r *Reporter) loop() {
	defer close(r.done)
	t := time.NewTicker(r.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fmt.Fprintln(r.w, r.line())
		case <-r.stop:
			return
		}
	}
}

// line renders one progress line from the registry's counters.
func (r *Reporter) line() string {
	unit := "evaluations"
	done := r.reg.Total(MetricSearchEvaluations)
	if done == 0 {
		// No search instrumented: report completed engine jobs instead.
		unit = "jobs"
		done = r.reg.Total(MetricEngineMemoHits) +
			r.reg.Total(MetricEngineDiskHits) +
			r.reg.Total(MetricEngineExecuted)
	}
	s := fmt.Sprintf("progress: %.0f", done)
	if total := r.total.Load(); total > 0 {
		s = fmt.Sprintf("progress: %.0f/%d", done, total)
	}
	s += " " + unit

	if submitted := r.reg.Total(MetricEngineSubmitted); submitted > 0 {
		hits := r.reg.Total(MetricEngineMemoHits)
		s += fmt.Sprintf(", cache-hit %.0f%%", 100*hits/submitted)
	}

	elapsed := time.Since(r.start)
	s += ", elapsed " + shortDuration(elapsed)
	if total := r.total.Load(); total > 0 && done > 0 && done < float64(total) {
		eta := time.Duration(float64(elapsed) / done * (float64(total) - done))
		s += ", ETA " + shortDuration(eta)
	}
	return s
}

// shortDuration renders a duration at second granularity ("1m32s").
func shortDuration(d time.Duration) string {
	return d.Round(time.Second).String()
}
