package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultJobTraceCap bounds a job's span buffer when the owner does not
// choose: large enough to hold every span of a sweep-sized job, small
// enough that thousands of retained jobs cannot OOM a daemon.
const DefaultJobTraceCap = 512

// SpanRecord is one completed span in a job's trace. Timestamps are
// microseconds relative to the trace's creation (the job's acceptance),
// so two clients need not share a wall clock to read the tree causally.
// Wall-clock durations appear only here and in /metrics — never in BENCH
// artifacts.
type SpanRecord struct {
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_span_id,omitempty"`
	Name     string            `json:"name"`
	Cat      string            `json:"cat,omitempty"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Args     map[string]string `json:"args,omitempty"`
}

// JobTrace is one request's bounded span buffer: every span recorded for
// the job — admission, queue wait, store lookups, simulations, journal
// appends — parented into one tree rooted at the span the client named in
// its traceparent header. Concurrency-safe; a nil *JobTrace no-ops every
// method after one pointer comparison, so instrumented code calls
// unconditionally.
//
// The buffer is a ring: when a job outgrows its capacity (a long search
// submits thousands of simulations), the oldest spans are dropped and
// counted, so an unbounded job cannot grow an unbounded trace.
type JobTrace struct {
	tc   TraceContext
	base time.Time
	cap  int

	mu      sync.Mutex
	buf     []SpanRecord // ring storage, len == cap once full
	start   int          // index of the oldest retained span
	count   int
	seq     uint64 // span-ID sequence within this trace
	dropped uint64
}

// NewJobTrace builds a span buffer for one request. tc must be valid (the
// caller parsed or minted it); capacity <= 0 means DefaultJobTraceCap.
// The base time is now: spans are stamped relative to it.
func NewJobTrace(tc TraceContext, capacity int) *JobTrace {
	if capacity <= 0 {
		capacity = DefaultJobTraceCap
	}
	return &JobTrace{tc: tc, base: time.Now(), cap: capacity}
}

// Context returns the trace identity (trace ID + the client's root span
// ID).
func (jt *JobTrace) Context() TraceContext {
	if jt == nil {
		return TraceContext{}
	}
	return jt.tc
}

// NewSpanID mints the next span ID in this trace. IDs are sequential
// within the trace (the trace ID provides the global uniqueness), so a
// span tree reads in creation order and tests can assert exact IDs.
func (jt *JobTrace) NewSpanID() string {
	if jt == nil {
		return ""
	}
	jt.mu.Lock()
	jt.seq++
	id := fmt.Sprintf("%016x", jt.seq)
	jt.mu.Unlock()
	return id
}

// Add records a completed span measured by the caller, minting its ID.
// parent "" parents to the root (the client's span).
func (jt *JobTrace) Add(parent, name, cat string, start, end time.Time, args map[string]string) string {
	if jt == nil {
		return ""
	}
	id := jt.NewSpanID()
	jt.AddWithID(id, parent, name, cat, start, end, args)
	return id
}

// AddWithID records a completed span under a pre-minted ID — used when
// the ID had to exist before the span ended (the job's execute span is
// the parent of engine spans recorded while it is still open).
func (jt *JobTrace) AddWithID(id, parent, name, cat string, start, end time.Time, args map[string]string) {
	if jt == nil {
		return
	}
	if parent == "" {
		parent = jt.tc.SpanID
	}
	rec := SpanRecord{
		SpanID:   id,
		ParentID: parent,
		Name:     name,
		Cat:      cat,
		StartUS:  start.Sub(jt.base).Microseconds(),
		DurUS:    end.Sub(start).Microseconds(),
		Args:     args,
	}
	jt.mu.Lock()
	if len(jt.buf) < jt.cap {
		jt.buf = append(jt.buf, rec)
		jt.count++
	} else {
		// Ring full: evict the oldest span, count the drop. The newest
		// spans are the ones an operator debugging a live job needs.
		jt.buf[jt.start] = rec
		jt.start = (jt.start + 1) % jt.cap
		jt.dropped++
	}
	jt.mu.Unlock()
}

// Mark records an instantaneous span (zero duration) — memo hits and
// coalesce joins, which have no extent but matter to "where did the time
// go" (they explain where it did not have to).
func (jt *JobTrace) Mark(parent, name, cat string, args map[string]string) {
	if jt == nil {
		return
	}
	now := time.Now()
	jt.Add(parent, name, cat, now, now, args)
}

// Snapshot returns the retained spans oldest-first plus the drop count.
func (jt *JobTrace) Snapshot() (spans []SpanRecord, dropped uint64) {
	if jt == nil {
		return nil, 0
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	spans = make([]SpanRecord, 0, jt.count)
	for i := 0; i < jt.count; i++ {
		spans = append(spans, jt.buf[(jt.start+i)%len(jt.buf)])
	}
	return spans, jt.dropped
}

// Dropped returns how many spans the ring has evicted.
func (jt *JobTrace) Dropped() uint64 {
	if jt == nil {
		return 0
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.dropped
}

// SpanNode is one node of the assembled span tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the retained spans into a tree rooted at the client's
// span. The root is synthetic — the client owns that span; the server
// only saw its ID — with the job's full extent as its duration. Spans
// whose parent was evicted from the ring attach to the root, so eviction
// degrades detail, never connectivity.
func (jt *JobTrace) Tree() *SpanNode {
	if jt == nil {
		return nil
	}
	spans, _ := jt.Snapshot()
	root := &SpanNode{SpanRecord: SpanRecord{
		SpanID: jt.tc.SpanID,
		Name:   "request",
		Cat:    "client",
	}}
	nodes := map[string]*SpanNode{root.SpanID: root}
	for i := range spans {
		n := &SpanNode{SpanRecord: spans[i]}
		nodes[n.SpanID] = n
		if end := n.StartUS + n.DurUS; end > root.DurUS {
			root.DurUS = end
		}
	}
	for _, n := range nodes {
		if n == root {
			continue
		}
		parent, ok := nodes[n.ParentID]
		if !ok || parent == n {
			parent = root
		}
		parent.Children = append(parent.Children, n)
	}
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.Slice(n.Children, func(i, k int) bool {
			a, b := n.Children[i], n.Children[k]
			if a.StartUS != b.StartUS {
				return a.StartUS < b.StartUS
			}
			return a.SpanID < b.SpanID
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sortChildren(root)
	return root
}

// WriteChrome renders the trace as Chrome trace_event JSON (complete
// events on one track, span IDs in args), directly loadable in
// about://tracing or Perfetto alongside the process-wide -tracepath
// export.
func (jt *JobTrace) WriteChrome(w io.Writer) error {
	if jt == nil {
		return fmt.Errorf("telemetry: nil job trace has nothing to write")
	}
	spans, _ := jt.Snapshot()
	events := make([]traceEvent, 0, len(spans))
	for _, sp := range spans {
		args := map[string]string{
			"trace_id":       jt.tc.TraceID,
			"span_id":        sp.SpanID,
			"parent_span_id": sp.ParentID,
		}
		for k, v := range sp.Args {
			args[k] = v
		}
		events = append(events, traceEvent{
			Name: sp.Name, Cat: sp.Cat, Phase: "X",
			TS: sp.StartUS, Dur: sp.DurUS, PID: 1, TID: 1, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events})
}
