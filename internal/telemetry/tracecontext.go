package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// HeaderTraceparent is the W3C trace-context header carrying the
// distributed-trace identity of a request: internal/client stamps it on
// every call, the server adopts (after strict validation) or mints one at
// admission, and the job executes with it bound to its context, so the
// span tree served at GET /jobs/{id}/trace is rooted at the span the
// client chose — a fleet run stitches into one trace per request.
const HeaderTraceparent = "traceparent"

// TraceContext is the parsed identity of a traceparent header: the
// 128-bit trace ID naming the whole request and the 64-bit span ID of the
// caller's span, both lowercase hex. The zero value is invalid.
type TraceContext struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
}

// Valid reports whether tc could round-trip through a traceparent header.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Traceparent renders the header value in W3C form,
// "00-<trace-id>-<span-id>-01" (version 00, sampled flag set).
func (tc TraceContext) Traceparent() string {
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent validates and parses a traceparent header. The rules
// mirror the X-Request-ID sanitization stance: anything malformed —
// wrong field count, bad lengths, uppercase or non-hex digits, all-zero
// IDs, or the reserved version ff — is rejected outright (ok false) and
// the caller mints a fresh context, so a hostile header can never reach
// logs, SSE frames or the trace tree.
func ParseTraceparent(h string) (TraceContext, bool) {
	// Fixed layout: 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 bytes. Longer values
	// (future versions may append fields) are rejected rather than
	// half-trusted.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := h[:2], h[3:35], h[36:52], h[53:55]
	if !isHexField(version) || version == "ff" || !isHexField(flags) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: traceID, SpanID: spanID}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// isHexField reports whether s is entirely lowercase hex digits.
func isHexField(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// isHexID reports whether s is n lowercase hex digits and not all zero.
func isHexID(s string, n int) bool {
	if len(s) != n || !isHexField(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

// tcCounter disambiguates minted IDs if the random source ever fails,
// mirroring obslog's request-ID fallback.
var tcCounter atomic.Uint64

// NewTraceContext mints a trace identity: random trace and span IDs.
// Trace IDs are correlation handles only — like request IDs, they never
// enter cache keys or BENCH artifacts, so their randomness does not
// threaten reproducibility.
func NewTraceContext() TraceContext {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A broken entropy source must not take tracing down: fall back to
		// the counter, still unique within the process.
		n := tcCounter.Add(1)
		return TraceContext{
			TraceID: fmt.Sprintf("%032x", n),
			SpanID:  fmt.Sprintf("%016x", n),
		}
	}
	tc := TraceContext{
		TraceID: hex.EncodeToString(b[:16]),
		SpanID:  hex.EncodeToString(b[16:]),
	}
	if !tc.Valid() { // astronomically unlikely all-zero draw
		return NewTraceContext()
	}
	return tc
}

type traceCtxKey int

const (
	traceContextKey traceCtxKey = iota
	jobTraceKey
)

// WithTraceContext returns a context carrying the request's trace
// identity (invalid contexts are not stored).
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceContextKey, tc)
}

// TraceContextFrom extracts the trace identity bound to ctx.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceContextKey).(TraceContext)
	return tc, ok
}

// spanRef is what WithSpan stores: the job's span buffer plus the span ID
// that children created under this context should parent to.
type spanRef struct {
	jt     *JobTrace
	parent string
}

// WithSpan binds a job's span buffer and the current parent span ID to
// ctx, so downstream layers (the engine, most importantly) record their
// spans into the right tree under the right parent without any API
// surface between the layers beyond the context they already share.
func WithSpan(ctx context.Context, jt *JobTrace, parent string) context.Context {
	if jt == nil {
		return ctx
	}
	return context.WithValue(ctx, jobTraceKey, spanRef{jt: jt, parent: parent})
}

// SpanFrom extracts the span buffer and parent span ID bound to ctx; a
// nil JobTrace means no trace is attached and recording should no-op.
func SpanFrom(ctx context.Context) (*JobTrace, string) {
	if ctx == nil {
		return nil, ""
	}
	ref, _ := ctx.Value(jobTraceKey).(spanRef)
	return ref.jt, ref.parent
}
