// Package telemetry is the repository's dependency-free observability
// layer: a concurrency-safe metrics registry (counters, gauges and
// fixed-bucket histograms with deterministic snapshot ordering), a
// Prometheus text-exposition writer for the server's GET /metrics, a span
// recorder exporting Chrome trace_event JSON, and a periodic progress
// reporter the CLIs drive from the same counters.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Instruments are plain atomics updated at
//     per-job granularity (engine submissions, server jobs, search
//     evaluations) — never inside internal/core stepping, which stays
//     allocation-free. A nil *Tracer records nothing and its guard is a
//     single pointer comparison.
//   - Determinism of artifacts. Wall-clock quantities (latencies, busy
//     time, ETAs) live only in /metrics scrapes, trace files and stderr
//     progress lines — never in BENCH_*.json or search results, so the
//     byte-reproducibility invariant is untouched.
//   - No dependencies. The exposition format is the stable Prometheus
//     text format, written by hand; the trace format is the Chrome
//     trace_event JSON that about://tracing and Perfetto open directly.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric name constants shared by the instrumented layers and the
// progress reporter, so a rename cannot silently decouple them.
const (
	MetricEngineSubmitted    = "hdsmt_engine_submitted_total"
	MetricEngineMemoHits     = "hdsmt_engine_memo_hits_total"
	MetricEngineDiskHits     = "hdsmt_engine_disk_hits_total"
	MetricEngineCoalesced    = "hdsmt_engine_coalesced_total"
	MetricEngineExecuted     = "hdsmt_engine_executed_total"
	MetricEngineErrors       = "hdsmt_engine_errors_total"
	MetricEngineRestored     = "hdsmt_engine_restored_total"
	MetricEngineStoreCorrupt = "hdsmt_engine_store_corrupt_total"
	MetricEnginePanics       = "hdsmt_engine_runner_panics_total"
	MetricEngineJournalTorn  = "hdsmt_engine_journal_truncated_total"
	MetricEngineCacheRatio   = "hdsmt_engine_cache_hit_ratio"
	MetricEngineQueueDepth   = "hdsmt_engine_queue_depth"
	MetricEngineShardDepth   = "hdsmt_engine_shard_queue_depth"
	MetricEngineWorkerBusy   = "hdsmt_engine_worker_busy_seconds_total"
	MetricEngineJobSeconds   = "hdsmt_engine_job_seconds"

	MetricServerJobs        = "hdsmt_server_jobs_total"
	MetricServerInflight    = "hdsmt_server_jobs_inflight"
	MetricServerJobSeconds  = "hdsmt_server_job_seconds"
	MetricServerRejected    = "hdsmt_server_rejected_total"
	MetricServerPending     = "hdsmt_server_jobs_pending"
	MetricServerJobPanics   = "hdsmt_server_job_panics_total"
	MetricServerRecovered   = "hdsmt_server_jobs_recovered_total"
	MetricServerJournalTorn = "hdsmt_server_job_journal_truncated_total"

	MetricSearchEvaluations = "hdsmt_search_evaluations_total"
	MetricSearchSubmitted   = "hdsmt_search_submitted_total"
	MetricSearchCacheHits   = "hdsmt_search_cache_hits_total"
	MetricSearchBestAge     = "hdsmt_search_best_age"

	MetricBuildInfo        = "hdsmt_build_info"
	MetricServerSSEStreams = "hdsmt_server_sse_streams"
	MetricServerSSEEvents  = "hdsmt_server_sse_events_total"
	MetricServerJobEvents  = "hdsmt_server_job_events_total"

	MetricServerHTTPResponses = "hdsmt_server_http_responses_total"
	MetricTraceDropped        = "hdsmt_trace_events_dropped_total"
	MetricSLOBurnRate         = "hdsmt_slo_burn_rate"
	MetricSLOBreach           = "hdsmt_slo_breach"
)

// Counter is a monotonically increasing float64. The float representation
// lets one type carry both event counts and accumulated durations
// (seconds); contention is per-job, so the CAS loop never spins in
// practice.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (v < 0 is a programming error and is
// ignored rather than allowed to corrupt monotonicity).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc and Dec shift the gauge by ±1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative upper
// bounds, ascending) plus an implicit +Inf bucket, and accumulates their
// sum. Buckets are fixed at registration so snapshots are deterministic
// and mergeable.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Counter
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// HistogramSnapshot is a histogram's state at one instant: cumulative
// bucket counts aligned with Bounds (+Inf last), the observation count and
// sum.
type HistogramSnapshot struct {
	Bounds  []float64 // upper bounds, ascending, +Inf excluded
	Buckets []uint64  // cumulative counts, len(Bounds)+1
	Count   uint64
	Sum     float64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Buckets: make([]uint64, len(h.counts))}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	s.Count = cum
	s.Sum = h.sum.Value()
	return s
}

// DefBuckets is the default latency bucket ladder (seconds): fine enough
// to separate cache hits from executed simulations, coarse enough to stay
// a dozen series.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindInfo
	kindCounterFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family is one metric name: its metadata and its series (one per label
// value; the empty label value is the unlabeled series).
type family struct {
	name, help string
	kind       kind
	labelKey   string
	bounds     []float64
	series     map[string]any // label value -> *Counter | *Gauge | *Histogram | func() float64
	// info holds the label pairs of a kindInfo family — a constant gauge
	// like build_info whose value is always 1 and whose labels are the
	// payload.
	info [][2]string
}

// Registry holds metric families by name. All methods are safe for
// concurrent use; registration is idempotent — re-registering an existing
// (name, label value) returns the existing instrument, so several engines
// or searches sharing one registry accumulate into the same series.
// Re-registering a name with a different type, label key or bucket layout
// panics: that is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, k kind, labelKey string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, labelKey: labelKey, bounds: bounds, series: map[string]any{}}
		r.families[name] = f
		return f
	}
	if f.kind != k || f.labelKey != labelKey || len(f.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s/%q (have %s/%q)", name, k, labelKey, f.kind, f.labelKey))
	}
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.counterWith(name, help, "", "")
}

// CounterVec registers a labeled counter family; With returns the series
// for one label value.
type CounterVec struct {
	r          *Registry
	name, help string
	label      string
}

// CounterVec registers (or finds) a counter family labeled by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.family(name, help, kindCounter, label, nil)
	return &CounterVec{r: r, name: name, help: help, label: label}
}

// With returns the counter series for one label value.
func (cv *CounterVec) With(value string) *Counter {
	return cv.r.counterWith(cv.name, cv.help, cv.label, value)
}

func (r *Registry) counterWith(name, help, label, value string) *Counter {
	f := r.family(name, help, kindCounter, label, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := f.series[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.series[value] = c
	return c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.gaugeWith(name, help, "", "")
}

// GaugeVec registers a labeled gauge family; With returns the series for
// one label value.
type GaugeVec struct {
	r          *Registry
	name, help string
	label      string
}

// GaugeVec registers (or finds) a gauge family labeled by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	r.family(name, help, kindGauge, label, nil)
	return &GaugeVec{r: r, name: name, help: help, label: label}
}

// With returns the gauge series for one label value.
func (gv *GaugeVec) With(value string) *Gauge {
	return gv.r.gaugeWith(gv.name, gv.help, gv.label, value)
}

func (r *Registry) gaugeWith(name, help, label, value string) *Gauge {
	f := r.family(name, help, kindGauge, label, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := f.series[value]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.series[value] = g
	return g
}

// CounterFunc registers a counter whose value is sampled at snapshot
// time — for monotone counts owned by another structure (a tracer's drop
// count) that would be wasteful to mirror write-by-write.
// Re-registration replaces the function, like GaugeFunc.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounterFunc, "", nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.series[""] = fn
}

// GaugeFunc registers a gauge whose value is sampled at snapshot time.
// Re-registration replaces the function (last writer wins), so a restarted
// component's gauges track the live instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.gaugeFuncWith(name, help, "", "", fn)
}

// GaugeFuncWith registers a labeled sampled gauge.
func (r *Registry) GaugeFuncWith(name, help, label, value string, fn func() float64) {
	r.gaugeFuncWith(name, help, label, value, fn)
}

func (r *Registry) gaugeFuncWith(name, help, label, value string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, label, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.series[value] = fn
}

// Info registers a constant informational gauge, Prometheus build_info
// style: its value is always 1 and its label pairs — rendered in the
// order given — are the payload (version, go version, ...). Registering
// the same name again replaces the pairs, so a restarted component's
// metadata tracks the live instance.
func (r *Registry) Info(name, help string, pairs [][2]string) {
	f := r.family(name, help, kindInfo, "", nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.info = append([][2]string(nil), pairs...)
}

// Histogram registers (or finds) an unlabeled fixed-bucket histogram.
// bounds must be ascending; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.histogramWith(name, help, "", "", bounds)
}

// HistogramVec registers a labeled histogram family.
type HistogramVec struct {
	r          *Registry
	name, help string
	label      string
	bounds     []float64
}

// HistogramVec registers (or finds) a histogram family labeled by label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	r.family(name, help, kindHistogram, label, bounds)
	return &HistogramVec{r: r, name: name, help: help, label: label, bounds: bounds}
}

// With returns the histogram series for one label value.
func (hv *HistogramVec) With(value string) *Histogram {
	return hv.r.histogramWith(hv.name, hv.help, hv.label, value, hv.bounds)
}

func (r *Registry) histogramWith(name, help, label, value string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: %s bucket bounds not ascending: %v", name, bounds))
		}
	}
	f := r.family(name, help, kindHistogram, label, bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := f.series[value]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	f.series[value] = h
	return h
}

// Sample is one series' state in a Snapshot.
type Sample struct {
	Name string
	Type string // counter|gauge|histogram
	// Label/LabelValue identify the series within the family ("" when
	// unlabeled).
	Label, LabelValue string
	// Pairs carries the label pairs of an info-style constant gauge
	// (Registry.Info); nil otherwise.
	Pairs [][2]string
	// Value carries counter/gauge samples; Hist carries histograms.
	Value float64
	Hist  *HistogramSnapshot
}

// Snapshot returns every series in deterministic order: families sorted
// by name, series sorted by label value. Sampled gauges are evaluated
// outside the registry lock, so a gauge function may itself take locks.
func (r *Registry) Snapshot() []Sample {
	type pending struct {
		sample Sample
		fn     func() float64
	}
	r.mu.Lock()
	var out []pending
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.kind == kindInfo {
			out = append(out, pending{sample: Sample{
				Name: f.name, Type: f.kind.String(),
				Pairs: f.info, Value: 1,
			}})
			continue
		}
		values := make([]string, 0, len(f.series))
		for v := range f.series {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			s := Sample{Name: f.name, Type: f.kind.String(), Label: f.labelKey, LabelValue: v}
			switch inst := f.series[v].(type) {
			case *Counter:
				s.Value = inst.Value()
			case *Gauge:
				s.Value = inst.Value()
			case *Histogram:
				snap := inst.snapshot()
				s.Hist = &snap
			case func() float64:
				out = append(out, pending{sample: s, fn: inst})
				continue
			}
			out = append(out, pending{sample: s})
		}
	}
	r.mu.Unlock()

	samples := make([]Sample, len(out))
	for i, p := range out {
		if p.fn != nil {
			p.sample.Value = p.fn()
		}
		samples[i] = p.sample
	}
	return samples
}

// Total sums a metric's value across all of its series (0 when the metric
// is not registered). Histograms contribute their observation counts. The
// progress reporter reads counters through this.
func (r *Registry) Total(name string) float64 {
	var total float64
	for _, s := range r.Snapshot() {
		if s.Name != name {
			continue
		}
		if s.Hist != nil {
			total += float64(s.Hist.Count)
		} else {
			total += s.Value
		}
	}
	return total
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var b strings.Builder
	lastName := ""
	for _, s := range samples {
		if s.Name != lastName {
			// HELP text is stored per family; recover it from the registry.
			r.mu.Lock()
			help := r.families[s.Name].help
			r.mu.Unlock()
			fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, escapeHelp(help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Type)
			lastName = s.Name
		}
		switch {
		case s.Hist != nil:
			for i, bound := range s.Hist.Bounds {
				fmt.Fprintf(&b, "%s_bucket{%s} %d\n", s.Name,
					labelPairs(s.Label, s.LabelValue, "le", formatFloat(bound)), s.Hist.Buckets[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", s.Name,
				labelPairs(s.Label, s.LabelValue, "le", "+Inf"), s.Hist.Buckets[len(s.Hist.Buckets)-1])
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, labelBlock(s.Label, s.LabelValue), formatFloat(s.Hist.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, labelBlock(s.Label, s.LabelValue), s.Hist.Count)
		case s.Pairs != nil:
			pairs := make([]string, len(s.Pairs))
			for i, p := range s.Pairs {
				pairs[i] = p[0] + `="` + escapeLabel(p[1]) + `"`
			}
			fmt.Fprintf(&b, "%s{%s} %s\n", s.Name, strings.Join(pairs, ","), formatFloat(s.Value))
		default:
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, labelBlock(s.Label, s.LabelValue), formatFloat(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelBlock renders {label="value"} or "" for unlabeled series.
func labelBlock(label, value string) string {
	if label == "" {
		return ""
	}
	return "{" + label + `="` + escapeLabel(value) + `"}`
}

// labelPairs renders the inside of a label block with an extra pair (the
// histogram's le), keeping the family label first.
func labelPairs(label, value, extraKey, extraValue string) string {
	if label == "" {
		return extraKey + `="` + escapeLabel(extraValue) + `"`
	}
	return label + `="` + escapeLabel(value) + `",` + extraKey + `="` + escapeLabel(extraValue) + `"`
}
