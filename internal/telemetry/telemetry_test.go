package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test counter")
	g := reg.Gauge("g", "test gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	// Counters are monotone: a negative add is ignored.
	c.Add(-5)
	if got := c.Value(); got != 8000 {
		t.Errorf("counter after negative add = %v, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// Cumulative: <=0.1 -> 2, <=1 -> 3, <=10 -> 4, +Inf -> 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Buckets[i], w)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-55.65) > 1e-9 {
		t.Errorf("sum = %v, want 55.65", snap.Sum)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same_total", "help")
	b := reg.Counter("same_total", "help")
	if a != b {
		t.Error("re-registering a counter must return the same instrument")
	}
	cv := reg.CounterVec("vec_total", "help", "kind")
	if cv.With("x") != cv.With("x") {
		t.Error("vec series must be shared per label value")
	}
	if cv.With("x") == cv.With("y") {
		t.Error("distinct label values must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type must panic")
		}
	}()
	reg.Gauge("same_total", "help")
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() []Sample {
		reg := NewRegistry()
		// Register in scrambled order; snapshot must not care.
		reg.CounterVec("zz_total", "z", "kind").With("b").Add(2)
		reg.Gauge("aa", "a").Set(1)
		reg.CounterVec("zz_total", "z", "kind").With("a").Inc()
		reg.Histogram("mm_seconds", "m", []float64{1}).Observe(0.5)
		return reg.Snapshot()
	}
	first, second := build(), build()
	if len(first) != len(second) || len(first) != 4 {
		t.Fatalf("snapshot sizes: %d vs %d, want 4", len(first), len(second))
	}
	wantOrder := []string{"aa", "mm_seconds", "zz_total", "zz_total"}
	for i, s := range first {
		if s.Name != wantOrder[i] {
			t.Errorf("sample %d = %s, want %s", i, s.Name, wantOrder[i])
		}
		if s.Name != second[i].Name || s.LabelValue != second[i].LabelValue {
			t.Errorf("snapshot order differs at %d: %v vs %v", i, s, second[i])
		}
	}
	// Label values sorted within a family.
	if first[2].LabelValue != "a" || first[3].LabelValue != "b" {
		t.Errorf("label order = %s, %s; want a, b", first[2].LabelValue, first[3].LabelValue)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "jobs completed").Add(3)
	reg.CounterVec("req_total", "requests", "kind").With("run").Add(2)
	reg.GaugeFunc("depth", "queue depth", func() float64 { return 7 })
	reg.HistogramVec("lat_seconds", "latency", "kind", []float64{0.5, 1}).With("run").Observe(0.25)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total jobs completed",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`req_total{kind="run"} 2`,
		"# TYPE depth gauge",
		"depth 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{kind="run",le="0.5"} 1`,
		`lat_seconds_bucket{kind="run",le="+Inf"} 1`,
		`lat_seconds_sum{kind="run"} 0.25`,
		`lat_seconds_count{kind="run"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Two scrapes render identically (deterministic ordering).
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestTotalSumsSeries(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("evals_total", "evals", "strategy")
	cv.With("aco").Add(4)
	cv.With("nsga2").Add(6)
	if got := reg.Total("evals_total"); got != 10 {
		t.Errorf("Total = %v, want 10", got)
	}
	if got := reg.Total("absent"); got != 0 {
		t.Errorf("Total(absent) = %v, want 0", got)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read zero")
	}
}

func TestReporterLine(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricEngineSubmitted, "s").Add(10)
	reg.Counter(MetricEngineMemoHits, "h").Add(4)
	reg.Counter(MetricEngineExecuted, "e").Add(6)
	r := StartReporter(nil, reg, time.Hour)
	defer func() { close(r.stop); <-r.done }()

	line := r.line()
	if !strings.Contains(line, "10 jobs") || !strings.Contains(line, "cache-hit 40%") {
		t.Errorf("jobs-mode line = %q", line)
	}

	// A search instrumented in the same registry switches the unit and,
	// with a total, adds an ETA.
	reg.CounterVec(MetricSearchEvaluations, "evals", "strategy").With("aco").Add(5)
	r.SetTotal(20)
	line = r.line()
	if !strings.Contains(line, "5/20 evaluations") || !strings.Contains(line, "ETA") {
		t.Errorf("evaluations-mode line = %q", line)
	}
}

func TestInfoGauge(t *testing.T) {
	r := NewRegistry()
	r.Info(MetricBuildInfo, "build metadata", [][2]string{
		{"version", "v0.8.0"}, {"goversion", "go1.24.0"},
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `hdsmt_build_info{version="v0.8.0",goversion="go1.24.0"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
	// Re-registration replaces the pairs rather than duplicating the series.
	r.Info(MetricBuildInfo, "build metadata", [][2]string{{"version", "v0.8.1"}})
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "v0.8.0") || !strings.Contains(sb.String(), `{version="v0.8.1"} 1`) {
		t.Errorf("re-registration did not replace pairs:\n%s", sb.String())
	}
}
